// Ablations of the paper's design choices (§VI and DESIGN.md §5):
//   1. adversarial (faulty) vs fault-free training data for thresholds,
//   2. TMEE vs TeLEx vs MSE learning loss,
//   3. fixed-max vs context-scaled mitigation policy,
//   4. tolerance-window sweep for the sample-level metrics.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/stack.h"

namespace {

using namespace aps;

sim::MonitorFactory cawt_with(const core::ExperimentContext& context,
                              const core::ThresholdLearningOptions& options,
                              const sim::CampaignResult& training,
                              const std::string& name) {
  auto artifacts = core::learn_artifacts(context.stack, training,
                                         context.fault_free, options);
  auto thresholds =
      std::make_shared<const std::vector<std::map<std::string, double>>>(
          artifacts.patient_thresholds);
  return [thresholds, name](int patient_index) {
    monitor::CawConfig config;
    config.thresholds =
        (*thresholds)[static_cast<std::size_t>(patient_index)];
    config.name = name;
    return std::make_unique<monitor::CawMonitor>(config);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/false);
  bench::print_header("Ablations: training data, loss, mitigation, window",
                      config);

  ThreadPool pool;
  const auto stack = sim::glucosym_openaps_stack();
  auto context = core::prepare_experiment(stack, config, pool);

  // --- 1. adversarial vs fault-free training data (paper §VI-3).
  std::printf("(1) training-data ablation\n");
  TextTable data_table({"training data", "FPR", "FNR", "ACC", "F1", "EDR"});
  {
    const core::ThresholdLearningOptions options;
    const struct {
      const char* label;
      const sim::CampaignResult* training;
    } variants[] = {{"faulty (adversarial)", &context.baseline},
                    {"fault-free only", &context.fault_free}};
    for (const auto& variant : variants) {
      const auto eval = core::evaluate_monitor(
          context, variant.label,
          cawt_with(context, options, *variant.training, variant.label),
          pool);
      data_table.add_row({variant.label,
                          TextTable::num(eval.accuracy.sample.fpr(), 3),
                          TextTable::num(eval.accuracy.sample.fnr(), 3),
                          TextTable::num(eval.accuracy.sample.accuracy(), 3),
                          TextTable::num(eval.accuracy.sample.f1(), 3),
                          TextTable::pct(
                              eval.timeliness.early_detection_rate())});
    }
  }
  data_table.print(std::cout);

  // --- 2. learning-loss ablation (TMEE vs TeLEx vs MSE).
  //
  // "Coverage" is the safety property the loss must deliver: the fraction
  // of observed hazardous UCA samples on which the learned rule fires
  // (robustness margin >= 0). MSE/MAE park thresholds inside the data and
  // silently give up on about half of them (Fig. 3's argument); TeLEx
  // covers everything but with slack thresholds that raise the FPR.
  std::printf("\n(2) learning-loss ablation\n");
  TextTable loss_table({"loss", "coverage", "FPR", "FNR", "ACC", "F1"});
  for (const auto loss : {learn::LossKind::kTmee, learn::LossKind::kTelex,
                          learn::LossKind::kMse}) {
    core::ThresholdLearningOptions options;
    options.loss = loss;
    // Constraint off: isolate the loss shape itself (Fig. 3's argument);
    // the production pipeline keeps Eq. 3's hard constraint on.
    options.enforce_coverage = false;
    const std::string label = learn::to_string(loss);

    // Violation coverage over all patients' rule datasets.
    std::size_t covered = 0;
    std::size_t total = 0;
    for (std::size_t p = 0; p < context.baseline.by_patient.size(); ++p) {
      const auto& profile = context.artifacts.profiles[p];
      std::vector<const sim::SimResult*> runs;
      for (const auto& r : context.baseline.by_patient[p]) runs.push_back(&r);
      monitor::CawConfig context_config;
      const auto datasets = core::extract_rule_datasets(
          runs, context_config, profile.basal_rate, profile.isf, options);
      const auto defaults =
          monitor::default_thresholds(profile.steady_state_iob);
      const auto learned =
          core::learn_thresholds(datasets, defaults, options);
      for (const auto& rule : monitor::caw_rules()) {
        const auto it = datasets.find(rule.param);
        if (it == datasets.end()) continue;
        const double beta = learned.values.at(rule.param);
        for (const double mu : it->second) {
          ++total;
          const double r = rule.upper_bound ? beta - mu : mu - beta;
          if (r >= 0.0) ++covered;
        }
      }
    }
    const double coverage =
        total > 0 ? static_cast<double>(covered) / static_cast<double>(total)
                  : 0.0;

    const auto eval = core::evaluate_monitor(
        context, label, cawt_with(context, options, context.baseline, label),
        pool);
    loss_table.add_row({label, TextTable::pct(coverage),
                        TextTable::num(eval.accuracy.sample.fpr(), 3),
                        TextTable::num(eval.accuracy.sample.fnr(), 3),
                        TextTable::num(eval.accuracy.sample.accuracy(), 3),
                        TextTable::num(eval.accuracy.sample.f1(), 3)});
  }
  loss_table.print(std::cout);
  std::printf(
      "note: MSE's F1 can look competitive downstream, but its thresholds\n"
      "violate the observed hazardous samples (coverage < 100%%) — the\n"
      "learned formula is falsified by the training data itself.\n");

  // --- 3. mitigation-policy ablation.
  std::printf("\n(3) mitigation-policy ablation (CAWT)\n");
  TextTable mit_table({"policy", "recovery", "new hazards", "avg risk"});
  for (const auto policy : {monitor::MitigationPolicy::kFixedMax,
                            monitor::MitigationPolicy::kContextScaled}) {
    sim::CampaignOptions options;
    options.mitigation_enabled = true;
    options.mitigation.policy = policy;
    const auto campaign = sim::run_campaign(
        stack, context.scenarios, core::cawt_factory(context.artifacts),
        options, &pool);
    const auto report =
        metrics::evaluate_mitigation(context.baseline, campaign);
    mit_table.add_row(
        {policy == monitor::MitigationPolicy::kFixedMax ? "fixed-max"
                                                        : "context-scaled",
         TextTable::pct(report.recovery_rate()),
         std::to_string(report.new_hazards),
         TextTable::num(report.average_risk, 3)});
  }
  mit_table.print(std::cout);

  // --- 4. tolerance-window sweep.
  std::printf("\n(4) tolerance-window sweep (CAWT sample-level metrics)\n");
  TextTable window_table({"delta (steps)", "FPR", "FNR", "ACC", "F1"});
  const auto eval = core::evaluate_monitor(
      context, "cawt", core::cawt_factory(context.artifacts), pool);
  for (const int delta : {3, 6, 12, 24, 36}) {
    const auto accuracy =
        metrics::evaluate_accuracy(eval.campaign, delta);
    window_table.add_row({std::to_string(delta),
                          TextTable::num(accuracy.sample.fpr(), 3),
                          TextTable::num(accuracy.sample.fnr(), 3),
                          TextTable::num(accuracy.sample.accuracy(), 3),
                          TextTable::num(accuracy.sample.f1(), 3)});
  }
  window_table.print(std::cout);
  return 0;
}
