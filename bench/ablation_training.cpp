// Ablations of the paper's design choices (§VI and DESIGN.md §5):
//   1. adversarial (faulty) vs fault-free training data for thresholds,
//   2. TMEE vs TeLEx vs MSE learning loss,
//   3. fixed-max vs context-scaled mitigation policy,
//   4. tolerance-window sweep for the sample-level metrics.
//
// All threshold re-learning works from the rule-violation datasets the
// streaming baseline pass extracted (context.rule_data) — no campaign is
// re-run for training data — and every passive line-up is scored from one
// fused campaign pass; the tolerance sweep rides a single pass with one
// accumulator per window.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/stack.h"

namespace {

using namespace aps;

sim::MonitorFactory cawt_from(const core::TrainingArtifacts& artifacts,
                              const std::string& name) {
  auto thresholds =
      std::make_shared<const std::vector<std::map<std::string, double>>>(
          artifacts.patient_thresholds);
  return [thresholds, name](int patient_index) {
    monitor::CawConfig config;
    config.thresholds =
        (*thresholds)[static_cast<std::size_t>(patient_index)];
    config.name = name;
    return std::make_unique<monitor::CawMonitor>(config);
  };
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/false);
  bench::print_header("Ablations: training data, loss, mitigation, window",
                      config);
  bench::BenchRecorder recorder("ablation_training");

  ThreadPool pool;
  const auto stack = sim::glucosym_openaps_stack();
  core::ExperimentContext context;
  recorder.time_stage("prepare", 0, [&] {
    context = core::prepare_experiment(stack, config, pool);
  });

  // --- 1. adversarial vs fault-free training data (paper §VI-3).
  std::printf("(1) training-data ablation\n");
  TextTable data_table({"training data", "FPR", "FNR", "ACC", "F1", "EDR"});
  {
    const core::ThresholdLearningOptions options;
    const auto fault_free_artifacts = core::learn_artifacts(
        context.stack, context.fault_free, context.fault_free, options);
    std::vector<core::MonitorEval> evals;
    recorder.time_stage("evaluate[data ablation]", context.run_count(), [&] {
      evals = core::evaluate_monitor_set(
          context,
          {{"faulty (adversarial)",
            cawt_from(context.artifacts, "faulty (adversarial)")},
           {"fault-free only",
            cawt_from(fault_free_artifacts, "fault-free only")}},
          pool);
    });
    for (const auto& eval : evals) {
      data_table.add_row({eval.name,
                          TextTable::num(eval.accuracy.sample.fpr(), 3),
                          TextTable::num(eval.accuracy.sample.fnr(), 3),
                          TextTable::num(eval.accuracy.sample.accuracy(), 3),
                          TextTable::num(eval.accuracy.sample.f1(), 3),
                          TextTable::pct(
                              eval.timeliness.early_detection_rate())});
    }
  }
  data_table.print(std::cout);

  // --- 2. learning-loss ablation (TMEE vs TeLEx vs MSE).
  //
  // "Coverage" is the safety property the loss must deliver: the fraction
  // of observed hazardous UCA samples on which the learned rule fires
  // (robustness margin >= 0). MSE/MAE park thresholds inside the data and
  // silently give up on about half of them (Fig. 3's argument); TeLEx
  // covers everything but with slack thresholds that raise the FPR.
  std::printf("\n(2) learning-loss ablation\n");
  TextTable loss_table({"loss", "coverage", "FPR", "FNR", "ACC", "F1"});
  {
    std::vector<core::NamedMonitor> variants;
    std::vector<double> coverages;
    for (const auto loss : {learn::LossKind::kTmee, learn::LossKind::kTelex,
                            learn::LossKind::kMse}) {
      core::ThresholdLearningOptions options;
      options.loss = loss;
      // Constraint off: isolate the loss shape itself (Fig. 3's argument);
      // the production pipeline keeps Eq. 3's hard constraint on.
      options.enforce_coverage = false;
      const std::string label = learn::to_string(loss);

      // Violation coverage over the streamed per-patient rule datasets.
      std::size_t covered = 0;
      std::size_t total = 0;
      for (std::size_t p = 0; p < context.rule_data.size(); ++p) {
        const auto& profile = context.artifacts.profiles[p];
        const auto& datasets = context.rule_data[p];
        const auto defaults =
            monitor::default_thresholds(profile.steady_state_iob);
        const auto learned =
            core::learn_thresholds(datasets, defaults, options);
        for (const auto& rule : monitor::caw_rules()) {
          const auto it = datasets.find(rule.param);
          if (it == datasets.end()) continue;
          const double beta = learned.values.at(rule.param);
          for (const double mu : it->second) {
            ++total;
            const double r = rule.upper_bound ? beta - mu : mu - beta;
            if (r >= 0.0) ++covered;
          }
        }
      }
      coverages.push_back(
          total > 0
              ? static_cast<double>(covered) / static_cast<double>(total)
              : 0.0);

      const auto artifacts = core::learn_artifacts_from_data(
          context.stack, context.rule_data, context.fault_free, options,
          &pool);
      variants.push_back({label, cawt_from(artifacts, label)});
    }
    std::vector<core::MonitorEval> evals;
    recorder.time_stage("evaluate[loss ablation]", context.run_count(), [&] {
      evals = core::evaluate_monitor_set(context, variants, pool);
    });
    for (std::size_t v = 0; v < evals.size(); ++v) {
      const auto& eval = evals[v];
      loss_table.add_row({eval.name, TextTable::pct(coverages[v]),
                          TextTable::num(eval.accuracy.sample.fpr(), 3),
                          TextTable::num(eval.accuracy.sample.fnr(), 3),
                          TextTable::num(eval.accuracy.sample.accuracy(), 3),
                          TextTable::num(eval.accuracy.sample.f1(), 3)});
    }
  }
  loss_table.print(std::cout);
  std::printf(
      "note: MSE's F1 can look competitive downstream, but its thresholds\n"
      "violate the observed hazardous samples (coverage < 100%%) — the\n"
      "learned formula is falsified by the training data itself.\n");

  // --- 3. mitigation-policy ablation.
  std::printf("\n(3) mitigation-policy ablation (CAWT)\n");
  TextTable mit_table({"policy", "recovery", "new hazards", "avg risk"});
  for (const auto policy : {monitor::MitigationPolicy::kFixedMax,
                            monitor::MitigationPolicy::kContextScaled}) {
    core::EvalOptions options;
    options.mitigation_enabled = true;
    options.mitigation.policy = policy;
    const char* label = policy == monitor::MitigationPolicy::kFixedMax
                            ? "fixed-max"
                            : "context-scaled";
    std::vector<core::MonitorEval> evals;
    recorder.time_stage(std::string("evaluate[mitigation ") + label + "]",
                        context.run_count(), [&] {
                          evals = core::evaluate_monitor_set(
                              context,
                              {{"cawt",
                                core::cawt_factory(context.artifacts)}},
                              pool, options);
                        });
    const auto& report = evals.front().mitigation;
    mit_table.add_row({label, TextTable::pct(report.recovery_rate()),
                       std::to_string(report.new_hazards),
                       TextTable::num(report.average_risk(), 3)});
  }
  mit_table.print(std::cout);

  // --- 4. tolerance-window sweep: one pass, one accumulator per window.
  std::printf("\n(4) tolerance-window sweep (CAWT sample-level metrics)\n");
  TextTable window_table({"delta (steps)", "FPR", "FNR", "ACC", "F1"});
  {
    core::EvalOptions options;
    options.extra_tolerances = {3, 6, 12, 24, 36};
    std::vector<core::MonitorEval> evals;
    recorder.time_stage("evaluate[tolerance sweep]", context.run_count(),
                        [&] {
                          evals = core::evaluate_monitor_set(
                              context,
                              {{"cawt",
                                core::cawt_factory(context.artifacts)}},
                              pool, options);
                        });
    const auto& eval = evals.front();
    for (std::size_t t = 0; t < options.extra_tolerances.size(); ++t) {
      const auto& accuracy = eval.accuracy_by_tolerance[t];
      window_table.add_row(
          {std::to_string(options.extra_tolerances[t]),
           TextTable::num(accuracy.sample.fpr(), 3),
           TextTable::num(accuracy.sample.fnr(), 3),
           TextTable::num(accuracy.sample.accuracy(), 3),
           TextTable::num(accuracy.sample.f1(), 3)});
    }
  }
  window_table.print(std::cout);
  return 0;
}
