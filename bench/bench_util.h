// Shared helpers for the bench binaries.
#pragma once

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/experiment.h"
#include "obs/metrics.h"

namespace aps::bench {

/// Parse the standard bench flags: --full (paper-sized grid), --no-ml,
/// --tolerance=<steps>, --seed=<n>, --dt-cv (k-fold DT depth selection).
[[nodiscard]] inline core::ExperimentConfig config_from_flags(
    const CliFlags& flags, bool needs_ml) {
  core::ExperimentConfig config;
  config.full = flags.get_bool("full", false);
  config.train_ml = needs_ml && flags.get_bool("ml", true);
  config.tolerance_steps =
      flags.get_int("tolerance", metrics::kDefaultToleranceSteps);
  config.dt_depth_cv = flags.get_bool("dt-cv", false);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2021));
  return config;
}

inline void print_header(const std::string& title,
                         const core::ExperimentConfig& config) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("mode: %s grid, tolerance window %d steps (%d min)\n\n",
              config.full ? "FULL (paper-sized)" : "QUICK (scaled)",
              config.tolerance_steps,
              config.tolerance_steps * 5);
}

/// Accuracy row used by Tables V/VI: FPR FNR ACC F1.
inline void add_accuracy_row(TextTable& table, const std::string& simulator,
                             const core::MonitorEval& eval,
                             std::size_t scenarios, double hazard_fraction) {
  const auto& cm = eval.accuracy.sample;
  table.add_row({simulator, eval.name, std::to_string(scenarios),
                 TextTable::pct(hazard_fraction), TextTable::num(cm.fpr(), 3),
                 TextTable::num(cm.fnr(), 3),
                 TextTable::num(cm.accuracy(), 3),
                 TextTable::num(cm.f1(), 3)});
}

/// Peak resident set size so far (MB; ru_maxrss is KB on Linux).
[[nodiscard]] inline double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Per-stage wall-clock / throughput / RSS recorder. Next to the
/// human-readable table every bench emits a machine-readable
/// BENCH_<name>.json so the perf trajectory is tracked across PRs:
///
///   {"bench": "table6_ml_monitors", "total_wall_s": ..., "stages": [
///     {"name": "prepare glucosym+openaps", "wall_s": ..., "runs": ...,
///      "runs_per_s": ..., "peak_rss_mb": ..., "delta_rss_mb": ...}, ...]}
///
/// Usage: one recorder per binary; wrap stages in time_stage() or call
/// stage_done() with an explicit duration; the file is written by flush()
/// (also invoked by the destructor).
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string name)
      : name_(std::move(name)),
        start_(std::chrono::steady_clock::now()) {}

  BenchRecorder(const BenchRecorder&) = delete;
  BenchRecorder& operator=(const BenchRecorder&) = delete;

  ~BenchRecorder() { flush(); }

  /// Time `fn` as one stage; `runs` (0 = not throughput-shaped) feeds the
  /// runs_per_s field.
  template <typename Fn>
  void time_stage(const std::string& stage, std::size_t runs, Fn&& fn) {
    const double rss_before = peak_rss_mb();
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stage_done(stage, wall_s, runs, rss_before);
  }

  /// Variant for stages that only know their run count afterwards: `fn`
  /// returns it.
  template <typename Fn>
  void time_stage_counted(const std::string& stage, Fn&& fn) {
    const double rss_before = peak_rss_mb();
    const auto t0 = std::chrono::steady_clock::now();
    const std::size_t runs = fn();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stage_done(stage, wall_s, runs, rss_before);
  }

  /// `extra` appends bench-specific numeric fields to the stage's JSON
  /// object (e.g. latency percentiles), next to the standard ones.
  void stage_done(const std::string& stage, double wall_s, std::size_t runs,
                  double rss_before_mb,
                  std::vector<std::pair<std::string, double>> extra = {}) {
    stages_.push_back({stage, wall_s, runs, peak_rss_mb(),
                       peak_rss_mb() - rss_before_mb, std::move(extra),
                       take_counter_deltas()});
  }

  /// Attach a metric registry: every stage recorded from here on also
  /// carries the counter deltas that accrued during it, as a "counters"
  /// object in the stage's JSON. Detached recorders emit exactly the
  /// pre-telemetry schema, so downstream BENCH_*.json consumers keep
  /// working either way.
  void attach_registry(aps::obs::Registry* registry) {
    registry_ = registry;
    last_counters_ = counter_values();
  }

  [[nodiscard]] double total_wall_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  /// Write BENCH_<name>.json into the working directory.
  void flush() {
    if (flushed_) return;
    flushed_ = true;
    std::ofstream out("BENCH_" + name_ + ".json");
    if (!out) return;
    out << "{\"bench\": \"" << name_ << "\", \"total_wall_s\": "
        << total_wall_s() << ", \"stages\": [";
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      const Stage& s = stages_[i];
      const double rps =
          s.wall_s > 0.0 ? static_cast<double>(s.runs) / s.wall_s : 0.0;
      out << (i > 0 ? ", " : "") << "{\"name\": \"" << s.name
          << "\", \"wall_s\": " << s.wall_s << ", \"runs\": " << s.runs
          << ", \"runs_per_s\": " << rps
          << ", \"peak_rss_mb\": " << s.peak_rss_mb
          << ", \"delta_rss_mb\": " << s.delta_rss_mb;
      for (const auto& [key, value] : s.extra) {
        out << ", \"" << key << "\": " << value;
      }
      if (!s.counters.empty()) {
        out << ", \"counters\": {";
        bool first = true;
        for (const auto& [series, delta] : s.counters) {
          out << (first ? "" : ", ") << "\"" << json_escape(series)
              << "\": " << delta;
          first = false;
        }
        out << "}";
      }
      out << "}";
    }
    out << "]}\n";
    std::printf("\n[bench] wrote BENCH_%s.json (total %.2fs, peak RSS %.1f MB)\n",
                name_.c_str(), total_wall_s(), peak_rss_mb());
  }

 private:
  struct Stage {
    std::string name;
    double wall_s = 0.0;
    std::size_t runs = 0;
    double peak_rss_mb = 0.0;
    double delta_rss_mb = 0.0;
    std::vector<std::pair<std::string, double>> extra;
    std::map<std::string, std::uint64_t> counters;
  };

  [[nodiscard]] static std::string json_escape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  [[nodiscard]] std::map<std::string, std::uint64_t> counter_values() const {
    std::map<std::string, std::uint64_t> values;
    if (registry_ == nullptr) return values;
    for (const auto& sample : registry_->scrape().samples) {
      if (sample.kind == aps::obs::MetricKind::kCounter) {
        values[sample.series()] = sample.counter;
      }
    }
    return values;
  }

  /// Counter deltas since the previous stage boundary (counters that did
  /// not move are dropped; a counter reset mid-stage clamps to its current
  /// value instead of wrapping).
  [[nodiscard]] std::map<std::string, std::uint64_t> take_counter_deltas() {
    std::map<std::string, std::uint64_t> deltas;
    if (registry_ == nullptr) return deltas;
    auto now = counter_values();
    for (const auto& [series, value] : now) {
      const auto it = last_counters_.find(series);
      const std::uint64_t before =
          it != last_counters_.end() ? it->second : 0;
      const std::uint64_t delta = value >= before ? value - before : value;
      if (delta > 0) deltas[series] = delta;
    }
    last_counters_ = std::move(now);
    return deltas;
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<Stage> stages_;
  bool flushed_ = false;
  aps::obs::Registry* registry_ = nullptr;
  std::map<std::string, std::uint64_t> last_counters_;
};

}  // namespace aps::bench
