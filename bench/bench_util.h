// Shared helpers for the bench binaries.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "common/cli.h"
#include "common/table.h"
#include "core/experiment.h"

namespace aps::bench {

/// Parse the standard bench flags: --full (paper-sized grid), --no-ml,
/// --tolerance=<steps>, --seed=<n>.
[[nodiscard]] inline core::ExperimentConfig config_from_flags(
    const CliFlags& flags, bool needs_ml) {
  core::ExperimentConfig config;
  config.full = flags.get_bool("full", false);
  config.train_ml = needs_ml && flags.get_bool("ml", true);
  config.tolerance_steps =
      flags.get_int("tolerance", metrics::kDefaultToleranceSteps);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2021));
  return config;
}

inline void print_header(const std::string& title,
                         const core::ExperimentConfig& config) {
  std::printf("== %s ==\n", title.c_str());
  std::printf("mode: %s grid, tolerance window %d steps (%d min)\n\n",
              config.full ? "FULL (paper-sized)" : "QUICK (scaled)",
              config.tolerance_steps,
              config.tolerance_steps * 5);
}

/// Accuracy row used by Tables V/VI: FPR FNR ACC F1.
inline void add_accuracy_row(TextTable& table, const std::string& simulator,
                             const core::MonitorEval& eval,
                             std::size_t scenarios, double hazard_fraction) {
  const auto& cm = eval.accuracy.sample;
  table.add_row({simulator, eval.name, std::to_string(scenarios),
                 TextTable::pct(hazard_fraction), TextTable::num(cm.fpr(), 3),
                 TextTable::num(cm.fnr(), 3),
                 TextTable::num(cm.accuracy(), 3),
                 TextTable::num(cm.f1(), 3)});
}

}  // namespace aps::bench
