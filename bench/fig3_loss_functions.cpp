// Fig. 3 — loss-function shapes for STL threshold learning.
//
// Regenerates the qualitative comparison of MSE/MAE (panel a) against the
// TeLEx tightness function and the paper's TMEE (panel b): TMEE blows up
// exponentially on the violation side (r < 0), grows ~linearly in the
// slack, and has its minimum at a small positive robustness margin; the
// TeLEx minimum sits much further from 0 (not tight); MSE/MAE are blind to
// the sign of r. Also reports the resulting learned-threshold tightness on
// a synthetic violation set.
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "learn/loss.h"
#include "learn/stl_learning.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  std::printf("== Fig. 3: loss functions over robustness margin r ==\n\n");

  const std::vector<learn::LossKind> kinds = {
      learn::LossKind::kMse, learn::LossKind::kMae, learn::LossKind::kTelex,
      learn::LossKind::kTmee};

  TextTable curve({"r", "MSE", "MAE", "TeLEx", "TMEE"});
  const double lo = flags.get_double("lo", -2.0);
  const double hi = flags.get_double("hi", 4.0);
  const double step = flags.get_double("step", 0.5);
  for (double r = lo; r <= hi + 1e-9; r += step) {
    curve.add_row({TextTable::num(r, 1),
                   TextTable::num(learn::mse_loss(r), 3),
                   TextTable::num(learn::mae_loss(r), 3),
                   TextTable::num(learn::telex_loss(r), 3),
                   TextTable::num(learn::tmee_loss(r), 3)});
  }
  curve.print(std::cout);

  std::printf("\nper-sample loss minima (distance of learned threshold from "
              "the data edge):\n");
  TextTable minima({"loss", "argmin r*", "note"});
  for (const auto kind : kinds) {
    const double argmin = learn::loss_argmin(kind);
    const char* note =
        kind == learn::LossKind::kTmee   ? "tight & safe (small r* > 0)"
        : kind == learn::LossKind::kTelex ? "safe but slack (large r*)"
                                          : "violation-blind (r* = 0)";
    minima.add_row({learn::to_string(kind), TextTable::num(argmin, 3), note});
  }
  minima.print(std::cout);

  // Learned thresholds on a synthetic violation set: IOB values of
  // hazardous samples clustered around 2.0 U; an upper-bound rule
  // (IOB < beta) must cover them all, as tightly as possible.
  std::printf("\nlearned upper-bound threshold over violation set "
              "{1.8, 1.9, 2.0, 2.1, 2.2} U:\n");
  TextTable learned({"loss", "beta", "min margin", "violations covered"});
  for (const auto kind : kinds) {
    learn::ThresholdProblem problem;
    problem.violation_values = {1.8, 1.9, 2.0, 2.1, 2.2};
    problem.side = learn::BoundSide::kUpperBound;
    problem.lower_limit = 0.0;
    problem.upper_limit = 20.0;
    problem.loss = kind;
    const auto result = learn::learn_threshold(problem);
    learned.add_row({learn::to_string(kind),
                     TextTable::num(result->beta, 3),
                     TextTable::num(result->min_margin, 3),
                     result->min_margin >= 0.0 ? "all" : "NO (unsafe)"});
  }
  learned.print(std::cout);
  std::printf(
      "\nexpected shape: MSE/MAE park beta inside the data (unsafe);\n"
      "TeLEx covers everything but with a slack margin; TMEE covers\n"
      "everything with the smallest safe margin.\n");
  return 0;
}
