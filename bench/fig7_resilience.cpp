// Fig. 7 — resilience of the unmonitored APS under fault injection:
// (a) hazard coverage per patient, (b) time-to-hazard distribution.
// Streamed: the campaign folds into BaselineStats, no trace retained.
//
// Paper shape: overall coverage ~33.9% on Glucosym with a wide per-patient
// spread (6.7%..92.4%); mean TTH ~3 h with a small negative-TTH tail.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/stats.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/false);
  bench::print_header("Fig. 7: baseline APS resilience (no monitor)",
                      config);
  bench::BenchRecorder recorder("fig7_resilience");

  ThreadPool pool;
  const auto stack = sim::glucosym_openaps_stack();
  core::BaselineStats stats;
  recorder.time_stage_counted("campaign[streamed]", [&] {
    stats = core::run_baseline_stats(stack, config, pool);
    return stats.resilience.total_runs;
  });

  // --- (a) hazard coverage per patient.
  TextTable coverage({"patient", "runs", "hazards", "coverage"});
  for (std::size_t p = 0; p < stats.by_patient.size(); ++p) {
    const auto& bucket = stats.by_patient[p];
    const auto patient = stack.make_patient(static_cast<int>(p));
    coverage.add_row({patient->name(), std::to_string(bucket.runs),
                      std::to_string(bucket.hazards),
                      TextTable::pct(bucket.coverage())});
  }
  std::printf("(a) hazard coverage per patient\n");
  coverage.print(std::cout);

  const auto& res = stats.resilience;
  std::printf("\noverall hazard coverage: %s (paper: 33.9%%)\n",
              TextTable::pct(res.hazard_coverage()).c_str());

  // --- (b) TTH distribution.
  std::printf("\n(b) time-to-hazard distribution (minutes)\n");
  TextTable tth({"bin (min)", "count"});
  const double bin_width = 60.0;
  const auto bins =
      histogram(res.tth_min, -60.0, 720.0, static_cast<std::size_t>(13));
  for (std::size_t b = 0; b < bins.size(); ++b) {
    const double lo = -60.0 + static_cast<double>(b) * bin_width;
    tth.add_row({"[" + TextTable::num(lo, 0) + "," +
                     TextTable::num(lo + bin_width, 0) + ")",
                 std::to_string(bins[b])});
  }
  tth.print(std::cout);
  std::printf(
      "\nmean TTH %.0f min (paper: ~180 min), std %.0f min, negative-TTH "
      "fraction %s (paper: 7.1%%)\n",
      res.mean_tth_min(), stddev(res.tth_min),
      TextTable::pct(res.negative_tth_fraction()).c_str());
  return 0;
}
