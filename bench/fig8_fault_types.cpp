// Fig. 8 — average hazard coverage by fault type and by initial BG value
// (Glucosym stack, no monitor). Streamed: the campaign folds into
// BaselineStats buckets, no trace retained.
//
// Paper shape: maximize-rate / maximize-glucose faults are the most
// damaging (IOB keeps acting after the fault clears), truncate/decrease
// faults the least (the controller re-doses afterwards); coverage grows
// with the initial BG for about half the fault kinds.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/false);
  bench::print_header("Fig. 8: hazard coverage by fault type / initial BG",
                      config);
  bench::BenchRecorder recorder("fig8_fault_types");

  ThreadPool pool;
  const auto stack = sim::glucosym_openaps_stack();
  core::BaselineStats stats;
  recorder.time_stage_counted("campaign[streamed]", [&] {
    stats = core::run_baseline_stats(stack, config, pool);
    return stats.resilience.total_runs;
  });

  std::printf("hazard coverage by fault kind (type_target)\n");
  TextTable fault_table({"fault", "runs", "hazards", "coverage"});
  for (const auto& [name, bucket] : stats.by_fault) {
    fault_table.add_row({name, std::to_string(bucket.runs),
                         std::to_string(bucket.hazards),
                         TextTable::pct(bucket.coverage())});
  }
  fault_table.print(std::cout);

  std::printf("\nhazard coverage by initial BG (mg/dL)\n");
  TextTable bg_table({"initial BG", "runs", "hazards", "coverage"});
  for (const auto& [bg, bucket] : stats.by_initial_bg) {
    bg_table.add_row({TextTable::num(bg, 0), std::to_string(bucket.runs),
                      std::to_string(bucket.hazards),
                      TextTable::pct(bucket.coverage())});
  }
  bg_table.print(std::cout);
  std::printf(
      "\nexpected shape: max_rate / max_glucose dominate; truncate/"
      "bitflip-decrease kinds are mild; coverage tends to grow with the\n"
      "initial BG for the aggressive kinds.\n");
  return 0;
}
