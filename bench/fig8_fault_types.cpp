// Fig. 8 — average hazard coverage by fault type and by initial BG value
// (Glucosym stack, no monitor).
//
// Paper shape: maximize-rate / maximize-glucose faults are the most
// damaging (IOB keeps acting after the fault clears), truncate/decrease
// faults the least (the controller re-doses afterwards); coverage grows
// with the initial BG for about half the fault kinds.
#include <cstdio>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "metrics/evaluation.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/false);
  bench::print_header("Fig. 8: hazard coverage by fault type / initial BG",
                      config);

  ThreadPool pool;
  const auto stack = sim::glucosym_openaps_stack();
  const auto grid = config.grid();
  const auto scenarios = fi::enumerate_scenarios(grid);
  const auto campaign = sim::run_campaign(
      stack, scenarios, sim::null_monitor_factory(), {}, &pool);

  struct Bucket {
    std::size_t runs = 0;
    std::size_t hazards = 0;
  };
  std::map<std::string, Bucket> by_fault;
  std::map<double, Bucket> by_bg;
  for (const auto* run : campaign.flat()) {
    auto& fault_bucket = by_fault[run->config.fault.name()];
    ++fault_bucket.runs;
    auto& bg_bucket = by_bg[run->config.initial_bg];
    ++bg_bucket.runs;
    if (run->label.hazardous) {
      ++fault_bucket.hazards;
      ++bg_bucket.hazards;
    }
  }

  std::printf("hazard coverage by fault kind (type_target)\n");
  TextTable fault_table({"fault", "runs", "hazards", "coverage"});
  for (const auto& [name, bucket] : by_fault) {
    fault_table.add_row({name, std::to_string(bucket.runs),
                         std::to_string(bucket.hazards),
                         TextTable::pct(static_cast<double>(bucket.hazards) /
                                        static_cast<double>(bucket.runs))});
  }
  fault_table.print(std::cout);

  std::printf("\nhazard coverage by initial BG (mg/dL)\n");
  TextTable bg_table({"initial BG", "runs", "hazards", "coverage"});
  for (const auto& [bg, bucket] : by_bg) {
    bg_table.add_row({TextTable::num(bg, 0), std::to_string(bucket.runs),
                      std::to_string(bucket.hazards),
                      TextTable::pct(static_cast<double>(bucket.hazards) /
                                     static_cast<double>(bucket.runs))});
  }
  bg_table.print(std::cout);
  std::printf(
      "\nexpected shape: max_rate / max_glucose dominate; truncate/"
      "bitflip-decrease kinds are mild; coverage tends to grow with the\n"
      "initial BG for the aggressive kinds.\n");
  return 0;
}
