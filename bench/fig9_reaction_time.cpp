// Fig. 9 — average reaction time (minutes before hazard onset) and early
// detection rate for every monitor on the Glucosym stack, scored from one
// fused campaign pass.
//
// Paper shape: CAWT detects ~2 h ahead with the smallest spread; Guideline
// and MPC react late (~tens of minutes) with a large spread; ML monitors
// sit in between / slightly ahead but less stable.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/true);
  bench::print_header("Fig. 9: monitor reaction time", config);
  bench::BenchRecorder recorder("fig9_reaction_time");

  ThreadPool pool;
  const auto stack = sim::glucosym_openaps_stack();
  core::ExperimentContext context;
  recorder.time_stage("prepare", 0, [&] {
    context = core::prepare_experiment(stack, config, pool);
  });

  TextTable table({"monitor", "mean reaction (min)", "std (min)",
                   "early detection rate", "alarmed hazards"});
  const std::vector<std::string> monitors =
      config.train_ml
          ? std::vector<std::string>{"guideline", "mpc", "cawot", "dt",
                                     "mlp", "lstm", "cawt"}
          : std::vector<std::string>{"guideline", "mpc", "cawot", "cawt"};
  std::vector<core::MonitorEval> evals;
  recorder.time_stage("evaluate[fused]", context.run_count(), [&] {
    evals = core::evaluate_monitors(context, monitors, pool);
  });
  for (const auto& eval : evals) {
    const auto& t = eval.timeliness;
    table.add_row({eval.name, TextTable::num(t.mean_reaction_min(), 1),
                   TextTable::num(t.stddev_reaction_min(), 1),
                   TextTable::pct(t.early_detection_rate()),
                   std::to_string(t.reaction_min.size()) + "/" +
                       std::to_string(t.hazardous_runs)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape (paper Fig. 9): CAWT ~2 h ahead with the lowest\n"
      "spread; Guideline/MPC far shorter and noisier.\n");
  return 0;
}
