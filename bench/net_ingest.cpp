// Network ingest bench: how much does the TCP front door cost on top of
// direct engine feeds? Three stages over the same workload:
//
//   1. record-live    direct engine.feed() batches, recorded to a listfile
//   2. replay-direct  replay_listfile() re-drives a fresh engine from the
//                     file (no sockets) and verifies every decision
//   3. replay-socket  the same file drives a real IngestServer through a
//                     loopback BlockingClient (window flow control), and
//                     every decision fanned back is compared against the
//                     recorded one
//
// The bench is self-gating: any decision mismatch, dropped frame, or
// protocol error — or a socket path slower than the throughput floor —
// exits nonzero so CI can smoke-gate BENCH_net_ingest.json.
//
// Flags: --sessions=<n> --steps=<n> --cohort=<n> --window=<n>
//        --floor=<cycles/s socket-path gate, 0 disables>
#include <cstdio>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/rng.h"
#include "monitor/caw.h"
#include "net/client.h"
#include "net/listfile.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/engine.h"

namespace {

using namespace aps;

/// Small rule-monitor cohort built directly (no campaign) so the bench
/// measures serving + transport, not training.
core::ArtifactBundle rule_bundle(int cohort) {
  core::ArtifactBundle bundle;
  auto& artifacts = bundle.artifacts;
  artifacts.target_bg = 120.0;
  for (int p = 0; p < cohort; ++p) {
    core::PatientProfile profile;
    profile.basal_rate = 0.8 + 0.07 * p;
    profile.isf = 38.0 + 2.0 * p;
    profile.steady_state_iob = 1.1 + 0.12 * p;
    artifacts.profiles.push_back(profile);
    artifacts.patient_thresholds.push_back(
        monitor::default_thresholds(profile.steady_state_iob));
    monitor::GuidelineConfig guideline;
    guideline.lambda10 = 82.0 + p;
    guideline.lambda90 = 190.0 + 2.0 * p;
    artifacts.guideline_configs.push_back(guideline);
  }
  artifacts.population_thresholds = monitor::default_thresholds(1.4);
  return bundle;
}

monitor::Observation synth_observation(Rng& rng, double time_min) {
  monitor::Observation obs;
  obs.time_min = time_min;
  obs.bg = rng.uniform(40.0, 320.0);
  obs.bg_rate = rng.uniform(-8.0, 8.0);
  obs.iob = rng.uniform(0.0, 10.0);
  obs.iob_rate = rng.uniform(-0.5, 0.5);
  obs.commanded_rate = rng.uniform(0.0, 3.0);
  obs.previous_rate = rng.uniform(0.0, 3.0);
  obs.action = static_cast<ControlAction>(rng.uniform_int(0, 3));
  obs.basal_rate = 1.0;
  obs.isf = 40.0;
  return obs;
}

bool decisions_identical(const monitor::Decision& a,
                         const monitor::Decision& b) {
  return a.alarm == b.alarm && a.predicted == b.predicted &&
         a.rule_id == b.rule_id;
}

struct LiveRun {
  std::uint64_t cycles = 0;
  serve::LatencySummary latency;
};

/// Stage 1: direct batched feeds, recorded the way the server records.
LiveRun record_live(serve::MonitorEngine& engine, const std::string& path,
                    std::size_t sessions, std::size_t steps, int cohort) {
  const std::vector<std::string> monitors = {"guideline", "cawot", "cawt"};
  net::ListfileWriter writer(path);
  struct Live {
    serve::SessionId id;
    Rng rng;
  };
  std::vector<Live> live;
  for (std::size_t s = 0; s < sessions; ++s) {
    const std::string& monitor_name = monitors[s % monitors.size()];
    const auto id = engine.open_session(
        "bench/session" + std::to_string(s), monitor_name,
        static_cast<int>(s % static_cast<std::size_t>(cohort)));
    writer.record_open({.key = id,
                        .patient_id = "bench/session" + std::to_string(s),
                        .monitor = monitor_name,
                        .patient_index =
                            static_cast<int>(s % static_cast<std::size_t>(
                                                     cohort))});
    live.push_back({id, Rng(9000 + s)});
  }
  LiveRun result;
  std::vector<serve::SessionInput> batch(live.size());
  std::vector<monitor::Decision> decisions(live.size());
  for (std::size_t k = 0; k < steps; ++k) {
    for (std::size_t i = 0; i < live.size(); ++i) {
      batch[i] = {live[i].id,
                  synth_observation(live[i].rng,
                                    5.0 * static_cast<double>(k))};
      writer.record_tick({.key = live[i].id, .seq = k, .obs = batch[i].obs});
    }
    engine.feed(batch, decisions);
    for (std::size_t i = 0; i < live.size(); ++i) {
      writer.record_decision(
          {.key = live[i].id, .seq = k, .decision = decisions[i]});
    }
    result.cycles += batch.size();
  }
  for (const auto& session : live) {
    writer.record_close({.key = session.id});
    engine.close_session(session.id);
  }
  writer.finish();
  result.latency = engine.latency();
  return result;
}

struct SocketRun {
  std::uint64_t ticks = 0;
  std::uint64_t compared = 0;
  std::uint64_t mismatches = 0;
  serve::LatencySummary latency;
  net::ServerStats server;
};

/// Stage 3: re-drive the recorded file through a real loopback server.
/// `window` bounds in-flight ticks so the client never overruns the
/// server's per-connection queue into multi-tick latency.
SocketRun replay_over_socket(const std::string& path,
                             const core::ArtifactBundle& bundle,
                             std::size_t window) {
  obs::Registry registry;
  serve::MonitorEngine engine({.threads = 2, .registry = &registry});
  engine.register_bundle(bundle);
  net::ServerConfig config;
  config.registry = &registry;
  config.max_queued_events = window * 2;
  net::IngestServer server(engine, config);
  server.start();

  SocketRun result;
  net::BlockingClient client("127.0.0.1", server.port(), "bench replayer");
  // Per-key queue of recorded decisions, matched as live ones fan back.
  std::unordered_map<std::uint64_t, std::deque<monitor::Decision>> recorded;
  std::unordered_map<std::uint64_t, std::uint64_t> outstanding;
  std::uint64_t in_flight = 0;

  const auto consume_one = [&] {
    const net::DecisionMsg msg = client.recv_decision();
    auto& queue = recorded[msg.token];
    if (queue.empty()) {
      ++result.mismatches;  // decision with no recorded counterpart
    } else {
      ++result.compared;
      if (!decisions_identical(msg.decision, queue.front())) {
        ++result.mismatches;
      }
      queue.pop_front();
    }
    --in_flight;
    --outstanding[msg.token];
  };

  net::ListfileReader reader(path);
  while (auto record = reader.next()) {
    switch (record->kind) {
      case net::RecordKind::kOpen:
        client.open_session(record->open.key, record->open.patient_id,
                            record->open.monitor,
                            record->open.patient_index);
        break;
      case net::RecordKind::kTick:
        client.send_tick(record->tick.key, record->tick.seq,
                         record->tick.obs);
        ++result.ticks;
        ++in_flight;
        ++outstanding[record->tick.key];
        while (in_flight >= window) consume_one();
        break;
      case net::RecordKind::kDecision:
        recorded[record->decision.key].push_back(
            record->decision.decision);
        break;
      case net::RecordKind::kClose:
        while (outstanding[record->close.key] > 0) consume_one();
        (void)client.close_session(record->close.key);
        break;
      case net::RecordKind::kSync:
        break;
    }
  }
  while (in_flight > 0) consume_one();
  for (const auto& [key, queue] : recorded) {
    result.mismatches += queue.size();  // recorded but never reproduced
  }
  result.latency = engine.latency();
  server.stop();
  result.server = server.stats();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  CliFlags flags(argc, argv);
  const auto sessions =
      static_cast<std::size_t>(flags.get_int("sessions", 64));
  const auto steps = static_cast<std::size_t>(flags.get_int("steps", 300));
  const int cohort = flags.get_int("cohort", 8);
  const auto window = static_cast<std::size_t>(flags.get_int("window", 256));
  const double floor_cps = flags.get_double("floor", 10000.0);
  const std::string path = "net_ingest.listfile";
  const std::uint64_t total = sessions * steps;

  std::printf("== net ingest bench: %zu sessions x %zu steps ==\n\n",
              sessions, steps);
  aps::bench::BenchRecorder recorder("net_ingest");
  const auto bundle = rule_bundle(cohort);

  // 1. Record the live run.
  LiveRun live;
  {
    obs::Registry registry;
    serve::MonitorEngine engine({.threads = 2, .registry = &registry});
    engine.register_bundle(bundle);
    const double rss = aps::bench::peak_rss_mb();
    const auto t0 = std::chrono::steady_clock::now();
    live = record_live(engine, path, sessions, steps, cohort);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    recorder.stage_done("record-live", wall, live.cycles, rss,
                        {{"p50_us", live.latency.p50_us},
                         {"p99_us", live.latency.p99_us}});
    std::printf("record-live:    %8.0f cycles/s  (p50 %.1fus p99 %.1fus)\n",
                static_cast<double>(live.cycles) / wall,
                live.latency.p50_us, live.latency.p99_us);
  }

  // 2. Replay the file straight into a fresh engine.
  net::ReplayResult direct;
  {
    serve::MonitorEngine engine({.threads = 2});
    engine.register_bundle(bundle);
    const double rss = aps::bench::peak_rss_mb();
    const auto t0 = std::chrono::steady_clock::now();
    direct = net::replay_listfile(path, engine);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    recorder.stage_done("replay-direct", wall, direct.ticks, rss,
                        {{"mismatches",
                          static_cast<double>(direct.mismatches)}});
    std::printf("replay-direct:  %8.0f cycles/s  (%ju compared, %ju "
                "mismatches)\n",
                static_cast<double>(direct.ticks) / wall,
                static_cast<std::uintmax_t>(direct.compared),
                static_cast<std::uintmax_t>(direct.mismatches));
  }

  // 3. Replay through a real loopback server.
  SocketRun socket_run;
  double socket_cps = 0.0;
  {
    const double rss = aps::bench::peak_rss_mb();
    const auto t0 = std::chrono::steady_clock::now();
    socket_run = replay_over_socket(path, bundle, window);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    socket_cps = static_cast<double>(socket_run.ticks) / wall;
    recorder.stage_done(
        "replay-socket", wall, socket_run.ticks, rss,
        {{"p50_us", socket_run.latency.p50_us},
         {"p99_us", socket_run.latency.p99_us},
         {"mismatches", static_cast<double>(socket_run.mismatches)},
         {"batches", static_cast<double>(socket_run.server.batches)},
         {"bytes_in", static_cast<double>(socket_run.server.bytes_in)},
         {"bytes_out", static_cast<double>(socket_run.server.bytes_out)}});
    std::printf("replay-socket:  %8.0f cycles/s  (p50 %.1fus p99 %.1fus, "
                "%ju batches, %ju mismatches)\n",
                socket_cps, socket_run.latency.p50_us,
                socket_run.latency.p99_us,
                static_cast<std::uintmax_t>(socket_run.server.batches),
                static_cast<std::uintmax_t>(socket_run.mismatches));
  }
  recorder.flush();

  // ---- Self-gates ----------------------------------------------------------
  int failures = 0;
  const auto gate = [&](bool ok, const char* what) {
    if (!ok) {
      std::fprintf(stderr, "GATE FAILED: %s\n", what);
      ++failures;
    }
  };
  gate(live.cycles == total, "live run served every cycle");
  gate(direct.mismatches == 0 && direct.compared == total,
       "direct replay reproduces every recorded decision");
  gate(socket_run.mismatches == 0 && socket_run.compared == total,
       "socket replay reproduces every recorded decision");
  gate(socket_run.server.frames_dropped == 0, "no frames dropped");
  gate(socket_run.server.protocol_errors == 0, "no protocol errors");
  gate(floor_cps <= 0.0 || socket_cps >= floor_cps,
       "socket path above the throughput floor");
  if (failures == 0) {
    std::printf("\nall gates passed (socket path %.0f cycles/s)\n",
                socket_cps);
  }
  return failures == 0 ? 0 : 1;
}
