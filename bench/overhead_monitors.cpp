// §V-E6 — per-decision runtime overhead of every monitor, measured with
// google-benchmark over a realistic stream of observations.
//
// Paper shape: the synthesized CAWT rules are the cheapest check by a wide
// margin (hundreds of microseconds on the authors' setup, dominated there
// by process plumbing; here we measure the pure decision kernel), the MPC
// model roll-out is the most expensive non-neural monitor, and the neural
// monitors pay for their matrix products.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/experiment.h"
#include "sim/stack.h"

namespace {

using namespace aps;

/// Build a stream of observations from a short faulty run.
std::vector<monitor::Observation> observation_stream() {
  const auto stack = sim::glucosym_openaps_stack();
  const auto patient = stack.make_patient(3);
  const auto controller = stack.make_controller(*patient);
  monitor::NullMonitor null_monitor;
  sim::SimConfig config;
  config.initial_bg = 150.0;
  config.fault.type = fi::FaultType::kMax;
  config.fault.target = fi::FaultTarget::kCommandRate;
  config.fault.start_step = 30;
  config.fault.duration_steps = 40;
  const auto run =
      sim::run_simulation(*patient, *controller, null_monitor, config);

  std::vector<monitor::Observation> stream;
  const auto profiles = core::stack_profiles(stack);
  for (std::size_t k = 0; k < run.steps.size(); ++k) {
    stream.push_back(
        core::observation_at(run, k, profiles[3].basal_rate, profiles[3].isf));
  }
  return stream;
}

struct BenchContext {
  std::vector<monitor::Observation> stream = observation_stream();
  core::ExperimentContext experiment;

  BenchContext() {
    core::ExperimentConfig config;
    config.train_ml = true;
    // Smallest grid that still trains the ML models.
    ThreadPool pool;
    experiment =
        core::prepare_experiment(sim::glucosym_openaps_stack(), config, pool);
  }
};

BenchContext& context() {
  static BenchContext ctx;
  return ctx;
}

void run_monitor_bench(benchmark::State& state, const std::string& name) {
  auto& ctx = context();
  const auto factory = core::monitor_factory_by_name(ctx.experiment, name);
  const auto monitor = factory(3);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& obs = ctx.stream[i];
    i = (i + 1) % ctx.stream.size();
    benchmark::DoNotOptimize(monitor->observe(obs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_Cawt(benchmark::State& s) { run_monitor_bench(s, "cawt"); }
void BM_Cawot(benchmark::State& s) { run_monitor_bench(s, "cawot"); }
void BM_Guideline(benchmark::State& s) { run_monitor_bench(s, "guideline"); }
void BM_Mpc(benchmark::State& s) { run_monitor_bench(s, "mpc"); }
void BM_Dt(benchmark::State& s) { run_monitor_bench(s, "dt"); }
void BM_Mlp(benchmark::State& s) { run_monitor_bench(s, "mlp"); }
void BM_Lstm(benchmark::State& s) { run_monitor_bench(s, "lstm"); }

BENCHMARK(BM_Cawt);
BENCHMARK(BM_Cawot);
BENCHMARK(BM_Guideline);
BENCHMARK(BM_Mpc);
BENCHMARK(BM_Dt);
BENCHMARK(BM_Mlp);
BENCHMARK(BM_Lstm);

}  // namespace

BENCHMARK_MAIN();
