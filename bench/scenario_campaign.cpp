// Scenario-engine campaign bench: throughput (runs/sec) and peak RSS as
// the scenario count grows, for the three execution modes —
//   grid        streamed exhaustive paper grid (spec_from_grid)
//   stochastic  sampled from the default stochastic spec
//   ce          cross-entropy tilted rare-event estimation
// The streamed modes keep peak memory flat as the count ramps 1k -> 100k
// (the delta-RSS column), which is the point of the streaming executor.
//
// An A/B stage runs the same stochastic campaign on the scalar and the
// batched SoA backends and prints the speedup; both rows must report the
// same hazard/alarm numbers (the backends are bit-identical — see
// tests/batch_equivalence_test.cpp).
//
// Build & run:  ./build/bench_scenario_campaign [--runs=100000]
//               [--budget-ms=0] [--threads=0] [--seed=2021] [--full]
//               [--materialized] [--csv] [--backend=both|batched|scalar]
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "scenario/cross_entropy.h"
#include "scenario/executor.h"
#include "sim/stack.h"

namespace {

using namespace aps;

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KB -> MB on Linux
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const auto max_runs =
      static_cast<std::size_t>(flags.get_int("runs", 100000));
  const double budget_ms = flags.get_double("budget-ms", 0.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2021));
  const bool full = flags.get_bool("full", false);
  const bool csv = flags.get_bool("csv", false);
  ThreadPool pool(static_cast<std::size_t>(flags.get_int("threads", 0)));

  const auto stack = sim::glucosym_openaps_stack();
  const auto t0 = std::chrono::steady_clock::now();
  const auto out_of_budget = [&] {
    return budget_ms > 0.0 && seconds_since(t0) * 1000.0 >= budget_ms;
  };

  std::printf("== scenario campaign bench ==\n");
  std::printf("stack: %s (%d patients), %zu threads, seed %llu\n\n",
              stack.name.c_str(), stack.cohort_size, pool.thread_count(),
              static_cast<unsigned long long>(seed));

  TextTable table({"mode", "runs", "wall_s", "runs_per_s", "hazard",
                   "alarmed", "peak_rss_mb", "delta_rss_mb"});
  const auto add_row = [&](const std::string& mode,
                           const scenario::CampaignStats& stats,
                           double wall_s, double rss_before) {
    table.add_row({mode, std::to_string(stats.runs),
                   TextTable::num(wall_s, 2),
                   TextTable::num(static_cast<double>(stats.runs) /
                                      std::max(wall_s, 1e-9),
                                  0),
                   TextTable::pct(stats.hazard_rate()),
                   std::to_string(stats.alarmed_runs),
                   TextTable::num(peak_rss_mb(), 1),
                   TextTable::num(peak_rss_mb() - rss_before, 1)});
  };

  // --- Grid mode: the paper campaign, streamed. -----------------------------
  const auto grid =
      full ? fi::CampaignGrid::extended() : fi::CampaignGrid::quick();
  const auto grid_spec = scenario::spec_from_grid(grid, stack.cohort_size);
  {
    const double rss_before = peak_rss_mb();
    const auto stage = std::chrono::steady_clock::now();
    const auto stats = scenario::run_enumerated_campaign(
        stack, grid_spec, {}, sim::null_monitor_factory(), &pool);
    add_row(full ? "grid(extended)" : "grid(quick)", stats,
            seconds_since(stage), rss_before);
  }

  // Optional contrast: the materializing run_campaign path, whose memory
  // grows with the run count (O(N) retained traces).
  if (flags.get_bool("materialized", false) && !out_of_budget()) {
    const double rss_before = peak_rss_mb();
    const auto stage = std::chrono::steady_clock::now();
    const auto campaign =
        sim::run_campaign(stack, fi::enumerate_scenarios(grid),
                          sim::null_monitor_factory(), {}, &pool);
    std::size_t hazards = 0;
    for (const auto* run : campaign.flat()) {
      if (run->label.hazardous) ++hazards;
    }
    table.add_row(
        {"materialized", std::to_string(campaign.total_runs()),
         TextTable::num(seconds_since(stage), 2), "-",
         TextTable::pct(static_cast<double>(hazards) /
                        static_cast<double>(campaign.total_runs())),
         "-", TextTable::num(peak_rss_mb(), 1),
         TextTable::num(peak_rss_mb() - rss_before, 1)});
  }

  // --- Backend A/B: the same campaign on both execution backends. -----------
  const auto spec = scenario::default_stochastic_spec(stack.cohort_size);
  const std::string backend_flag = flags.get_string("backend", "both");
  double scalar_rps = 0.0;
  double batched_rps = 0.0;
  if (!out_of_budget()) {
    const std::size_t ab_runs = std::min<std::size_t>(max_runs, 5000);
    const auto run_backend = [&](sim::SimBackend backend,
                                 const std::string& label, double* rps) {
      scenario::StochasticCampaignConfig config;
      config.runs = ab_runs;
      config.seed = seed;
      config.streaming.backend = backend;
      const double rss_before = peak_rss_mb();
      const auto stage = std::chrono::steady_clock::now();
      const auto stats = scenario::run_stochastic_campaign(
          stack, spec, config, sim::null_monitor_factory(), &pool);
      const double wall = seconds_since(stage);
      *rps = static_cast<double>(stats.runs) / std::max(wall, 1e-9);
      add_row(label, stats, wall, rss_before);
    };
    if (backend_flag == "both" || backend_flag == "scalar") {
      run_backend(sim::SimBackend::kScalar, "stochastic[scalar]",
                  &scalar_rps);
    }
    if (backend_flag == "both" || backend_flag == "batched") {
      run_backend(sim::SimBackend::kBatched, "stochastic[batched]",
                  &batched_rps);
    }
  }

  // --- Stochastic mode: ramp the count; delta-RSS should stay ~0. ----------
  for (std::size_t runs = 1000; runs <= max_runs; runs *= 10) {
    if (out_of_budget()) break;
    scenario::StochasticCampaignConfig config;
    config.runs = runs;
    config.seed = seed;
    const double rss_before = peak_rss_mb();
    const auto stage = std::chrono::steady_clock::now();
    const auto stats = scenario::run_stochastic_campaign(
        stack, spec, config, sim::null_monitor_factory(), &pool);
    add_row("stochastic", stats, seconds_since(stage), rss_before);
  }

  // --- Cross-entropy mode: tilted rare-event estimation. --------------------
  scenario::RareEventEstimate estimate;
  bool ran_ce = false;
  if (!out_of_budget()) {
    // Fault-driven rare events only: mild faults, in-range starts, no
    // unannounced meals (those alone make ~1/3 of runs hazardous).
    auto rare = spec;
    rare.fault_prob = 0.4;
    rare.duration_steps = scenario::IntDist::range(2, 30, 4);
    rare.magnitude_scale = scenario::ValueDist::range(0.1, 1.0, 4);
    rare.initial_bg = scenario::ValueDist::range(90.0, 180.0, 5);
    rare.meal_prob = 0.0;
    rare.cgm_noise_std = 0.0;
    scenario::CrossEntropyConfig ce;
    ce.seed = seed;
    ce.pilot_runs = full ? 2000 : 500;
    ce.final_runs = full ? 8000 : 2000;
    const double rss_before = peak_rss_mb();
    const auto stage = std::chrono::steady_clock::now();
    estimate = scenario::estimate_hazard_probability(
        stack, rare, sim::null_monitor_factory(), ce, &pool);
    add_row("cross-entropy", estimate.final_stats, seconds_since(stage),
            rss_before);
    ran_ce = true;
  }

  if (csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (scalar_rps > 0.0 && batched_rps > 0.0) {
    std::printf("\nbatched backend speedup: %.2fx (%.0f vs %.0f runs/s)\n",
                batched_rps / scalar_rps, batched_rps, scalar_rps);
  }
  if (ran_ce) {
    std::printf(
        "\nrare-event estimate (no monitor): P(hazard) = %.5f +- %.5f\n"
        "  95%% CI [%.5f, %.5f], ESS %.0f, %zu total runs\n",
        estimate.probability, estimate.std_error, estimate.ci_low,
        estimate.ci_high, estimate.effective_sample_size,
        estimate.total_runs);
    for (const auto& level : estimate.levels) {
      std::printf("  tilt round: level %.3f, hazard fraction %.3f\n",
                  level.level, level.hazard_fraction);
    }
  }
  std::printf("\ntotal wall time %.2fs%s\n", seconds_since(t0),
              out_of_budget() ? " (budget reached, stages skipped)" : "");
  return 0;
}
