// Replica-sharded serving soak: hold 100k+ live sessions on an
// serve::EngineGroup, churn sessions open/closed every tick, and verify the
// group holds its latency and memory envelope over the run. Self-gating:
//
//   * every requested session is still live (and fed) at the end,
//   * tick p99 stays under the latency budget,
//   * resident memory is FLAT across the soak window — growth between the
//     first post-warmup checkpoint and the end stays inside the allocator
//     slack budget, catching any per-churn leak (lanes, ids, registry
//     series) at 10k+ churn events,
//   * with the overload deadline disabled, zero ticks serve degraded.
//
// After the soak, two ADMISSION OVERLOAD stages drive a fresh group at 2x
// offered load (every session ticked twice per cycle) with the ladder
// pinned to one rung each, proving the shed policy end to end:
//
//   * overload_degrade — ladder held at kDegrade: every cycle is served
//     (zero sheds), LSTM lanes answer from their DT twin, and the tick
//     p99 stays inside the same budget as the calm soak;
//   * overload_shed — ladder held at kShed with an unlimited "care"
//     tenant and a quota-capped "bulk" tenant: care never loses a tick,
//     bulk sheds exactly its over-quota excess (reconciled input by
//     input: offered == served + shed), session opens come back as typed
//     rejects, and every shed is counted by reason and tenant.
//
// Results go to BENCH_serve_soak.json (stages: open, soak, overload_*,
// latency percentiles, shed counts, RSS trajectory) for the CI gate +
// EXPERIMENTS.md.
//
// Flags:
//   --sessions=<n>     live sessions to hold (default 100000)
//   --replicas=<n>     engine replicas (default 4)
//   --ticks=<n>        measured soak ticks (default 120)
//   --churn=<n>        sessions closed+reopened per tick (default 32)
//   --deadline-us=<n>  group tick deadline; 0 = degradation off (default 0)
//   --ml               include DT/MLP/LSTM sessions (default ON)
//   --p99-budget-ms=<x>  tick p99 gate (default 250 ms — single-core CI
//                        containers time-slice all replicas on one CPU)
//   --rss-slack-mb=<x>   flat-RSS gate (default 64 MB)
//   --smoke            CI-sized run: 2000 sessions, 2 replicas, 40 ticks
//   --long             nightly-sized run: full fleet, 600 soak ticks and
//                      longer overload stages (minutes of wall time)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/monitor_factory.h"
#include "ml/decision_tree.h"
#include "ml/lstm.h"
#include "ml/mlp.h"
#include "monitor/ml_monitor.h"
#include "obs/metrics.h"
#include "serve/group.h"
#include "sim/stack.h"

namespace {

using namespace aps;

ml::Dataset synth_dataset(std::size_t n, std::uint64_t seed) {
  ml::Dataset data;
  data.classes = 2;
  data.x = ml::Matrix(n, monitor::kMlFeatureCount);
  data.y.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double bg = rng.uniform(40.0, 320.0);
    const double iob = rng.uniform(0.0, 10.0);
    data.x.at(i, 0) = bg;
    data.x.at(i, 1) = rng.uniform(-8.0, 8.0);
    data.x.at(i, 2) = iob;
    data.x.at(i, 3) = rng.uniform(-0.5, 0.5);
    data.x.at(i, 4) = rng.uniform(0.0, 3.0);
    data.x.at(i, 5) = static_cast<double>(rng.uniform_int(0, 3));
    data.y[i] = (bg < 80.0 && iob > 4.0) || bg > 260.0 ? 1 : 0;
  }
  return data;
}

ml::SequenceDataset synth_sequences(std::size_t n, std::uint64_t seed) {
  ml::SequenceDataset data;
  data.classes = 2;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ml::Matrix window(monitor::kLstmWindow, monitor::kMlFeatureCount);
    double bg = 120.0;
    for (std::size_t t = 0; t < monitor::kLstmWindow; ++t) {
      bg = rng.uniform(40.0, 320.0);
      window.at(t, 0) = bg;
      window.at(t, 1) = rng.uniform(-8.0, 8.0);
      window.at(t, 2) = rng.uniform(0.0, 10.0);
      window.at(t, 3) = rng.uniform(-0.5, 0.5);
      window.at(t, 4) = rng.uniform(0.0, 3.0);
      window.at(t, 5) = static_cast<double>(rng.uniform_int(0, 3));
    }
    data.sequences.push_back(std::move(window));
    data.labels.push_back(bg > 260.0 || bg < 80.0 ? 1 : 0);
  }
  return data;
}

core::ArtifactBundle build_bundle(bool with_ml) {
  core::ArtifactBundle bundle;
  const auto stack = sim::glucosym_openaps_stack();
  auto& artifacts = bundle.artifacts;
  artifacts.profiles = core::stack_profiles(stack);
  double mean_ss_iob = 0.0;
  for (const auto& profile : artifacts.profiles) {
    artifacts.patient_thresholds.push_back(
        monitor::default_thresholds(profile.steady_state_iob));
    artifacts.guideline_configs.push_back({});
    mean_ss_iob += profile.steady_state_iob;
  }
  mean_ss_iob /= static_cast<double>(artifacts.profiles.size());
  artifacts.population_thresholds = monitor::default_thresholds(mean_ss_iob);
  if (with_ml) {
    ml::DecisionTree dt;
    dt.fit(synth_dataset(2000, 1));
    bundle.dt = std::make_shared<const ml::DecisionTree>(std::move(dt));
    ml::MlpConfig mlp_config;
    mlp_config.hidden_units = {16, 8};
    mlp_config.max_epochs = 4;
    ml::Mlp mlp(mlp_config);
    mlp.fit(synth_dataset(1500, 2));
    bundle.mlp = std::make_shared<const ml::Mlp>(std::move(mlp));
    ml::LstmConfig lstm_config;
    lstm_config.hidden_units = {8};
    lstm_config.max_epochs = 2;
    ml::Lstm lstm(lstm_config);
    lstm.fit(synth_sequences(300, 3));
    bundle.lstm = std::make_shared<const ml::Lstm>(std::move(lstm));
  }
  return bundle;
}

/// Current (not peak) resident set, so the flatness gate can see memory
/// being returned as well as taken.
[[nodiscard]] double current_rss_mb() {
  std::ifstream statm("/proc/self/statm");
  std::size_t pages = 0, resident = 0;
  statm >> pages >> resident;
  return static_cast<double>(resident) *
         static_cast<double>(sysconf(_SC_PAGESIZE)) / (1024.0 * 1024.0);
}

/// Session-kind mix for the held population: dominated by the cheap rule
/// monitors (the realistic fleet shape — ML tiers are opt-in), with a thin
/// ML slice so shard churn and LSTM windows stay exercised at scale.
const char* kind_for(std::size_t s, bool with_ml) {
  if (!with_ml) return s % 2 == 0 ? "cawt" : "guideline";
  const std::size_t bucket = s % 100;
  if (bucket < 40) return "cawt";
  if (bucket < 80) return "guideline";
  if (bucket < 95) return "dt";
  if (bucket < 99) return "mlp";
  return "lstm";
}

}  // namespace

int main(int argc, char** argv) try {
  CliFlags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const bool long_run = flags.get_bool("long", false);
  const std::size_t sessions =
      static_cast<std::size_t>(flags.get_int("sessions", smoke ? 2000 : 100000));
  const std::size_t replicas =
      static_cast<std::size_t>(flags.get_int("replicas", smoke ? 2 : 4));
  const std::size_t ticks = static_cast<std::size_t>(
      flags.get_int("ticks", smoke ? 40 : (long_run ? 600 : 120)));
  const std::size_t churn = static_cast<std::size_t>(
      flags.get_int("churn", smoke ? 16 : (long_run ? 64 : 32)));
  const auto deadline_us =
      static_cast<std::uint32_t>(flags.get_int("deadline-us", 0));
  const bool with_ml = flags.get_bool("ml", true);
  const double p99_budget_ms = flags.get_double("p99-budget-ms", 250.0);
  const double rss_slack_mb = flags.get_double("rss-slack-mb", 64.0);

  bench::BenchRecorder recorder("serve_soak");
  recorder.attach_registry(&obs::Registry::global());

  std::printf("== serve_soak ==\n");
  std::printf(
      "%zu sessions, %zu replicas, %zu ticks, churn %zu/tick, deadline %u us, "
      "%s models\n",
      sessions, replicas, ticks, churn, deadline_us,
      with_ml ? "rule+ML" : "rule-based");

  core::ArtifactBundle bundle;
  recorder.time_stage("build bundle", 0, [&] { bundle = build_bundle(with_ml); });
  const int cohort = static_cast<int>(bundle.artifacts.profiles.size());

  serve::GroupConfig config;
  config.replicas = replicas;
  config.tick_deadline_us = deadline_us;
  serve::EngineGroup group(config);
  group.register_bundle(bundle);

  // -- Open the fleet --------------------------------------------------------
  std::vector<serve::SessionId> ids;
  ids.reserve(sessions);
  recorder.time_stage("open/" + std::to_string(sessions), sessions, [&] {
    for (std::size_t s = 0; s < sessions; ++s) {
      ids.push_back(group.open_session("soak-" + std::to_string(s),
                                       kind_for(s, with_ml),
                                       static_cast<int>(s) % cohort));
    }
  });
  std::printf("opened %zu sessions, RSS %.1f MB\n", group.session_count(),
              current_rss_mb());

  // Observation variants covering quiet and alarming contexts.
  std::vector<monitor::Observation> variants;
  Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    monitor::Observation obs;
    obs.time_min = 5.0 * i;
    obs.bg = rng.uniform(50.0, 300.0);
    obs.bg_rate = rng.uniform(-6.0, 6.0);
    obs.iob = rng.uniform(0.0, 8.0);
    obs.iob_rate = rng.uniform(-0.4, 0.4);
    obs.commanded_rate = rng.uniform(0.0, 3.0);
    obs.previous_rate = rng.uniform(0.0, 3.0);
    obs.action = static_cast<ControlAction>(rng.uniform_int(0, 3));
    obs.basal_rate = 1.0;
    obs.isf = 40.0;
    variants.push_back(obs);
  }

  std::vector<serve::SessionInput> batch(sessions);
  std::vector<monitor::Decision> decisions(sessions);
  const auto fill_batch = [&](std::size_t variant) {
    for (std::size_t s = 0; s < sessions; ++s) {
      batch[s] = {ids[s], variants[variant % variants.size()]};
    }
  };

  // Warmup: fill LSTM windows and page every shard in before measuring.
  const std::size_t warm_ticks = with_ml ? monitor::kLstmWindow : 4;
  for (std::size_t w = 0; w < warm_ticks; ++w) {
    fill_batch(w);
    group.feed(batch, decisions);
  }
  group.reset_latency();

  // -- Soak loop: feed the whole fleet each tick, churning sessions ----------
  std::size_t churned_total = 0;
  std::size_t churn_cursor = 0;   ///< next fleet slot to churn
  std::size_t churn_serial = 0;   ///< unique patient ids for reopened slots
  std::vector<double> rss_checkpoints;
  const std::size_t checkpoint_every = std::max<std::size_t>(1, ticks / 8);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < ticks; ++k) {
    for (std::size_t c = 0; c < churn; ++c) {
      const std::size_t slot = churn_cursor++ % sessions;
      group.close_session(ids[slot]);
      ids[slot] = group.open_session(
          "soak-churn-" + std::to_string(churn_serial++),
          kind_for(slot, with_ml), static_cast<int>(slot) % cohort);
      ++churned_total;
    }
    fill_batch(k);
    group.feed(batch, decisions);
    if (k % checkpoint_every == 0) rss_checkpoints.push_back(current_rss_mb());
  }
  const double soak_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  rss_checkpoints.push_back(current_rss_mb());

  const serve::LatencySummary m = group.latency();
  const double rss_first = rss_checkpoints.front();
  const double rss_last = rss_checkpoints.back();
  const double rss_growth = rss_last - rss_first;

  TextTable table({"metric", "value"});
  table.add_row({"held sessions", std::to_string(group.session_count())});
  table.add_row({"ticks", std::to_string(m.ticks)});
  table.add_row({"cycles", std::to_string(m.cycles)});
  table.add_row({"cycles/sec", TextTable::num(m.cycles_per_sec(), 0)});
  table.add_row({"tick p50 ms", TextTable::num(m.p50_us / 1000.0, 2)});
  table.add_row({"tick p99 ms", TextTable::num(m.p99_us / 1000.0, 2)});
  table.add_row({"tick max ms", TextTable::num(m.max_us / 1000.0, 2)});
  table.add_row({"degraded cycles", std::to_string(m.degraded_ticks)});
  table.add_row({"churn events", std::to_string(churned_total)});
  table.add_row({"RSS first/last MB", TextTable::num(rss_first, 1) + " / " +
                                          TextTable::num(rss_last, 1)});
  table.print(std::cout);

  recorder.stage_done(
      "soak/" + std::to_string(sessions) + "x" + std::to_string(ticks),
      soak_wall_s, m.cycles, rss_first,
      {{"sessions", static_cast<double>(sessions)},
       {"replicas", static_cast<double>(replicas)},
       {"churn_events", static_cast<double>(churned_total)},
       {"deadline_us", static_cast<double>(deadline_us)},
       {"p50_us", m.p50_us},
       {"p95_us", m.p95_us},
       {"p99_us", m.p99_us},
       {"max_us", m.max_us},
       {"degraded_cycles", static_cast<double>(m.degraded_ticks)},
       {"rss_first_mb", rss_first},
       {"rss_last_mb", rss_last},
       {"rss_growth_mb", rss_growth}});

  // -- Self-gates -------------------------------------------------------------
  bool ok = true;
  if (group.session_count() != sessions) {
    std::printf("GATE FAIL: held %zu of %zu sessions\n", group.session_count(),
                sessions);
    ok = false;
  }
  if (m.p99_us / 1000.0 > p99_budget_ms) {
    std::printf("GATE FAIL: tick p99 %.2f ms > budget %.2f ms\n",
                m.p99_us / 1000.0, p99_budget_ms);
    ok = false;
  }
  if (rss_growth > rss_slack_mb) {
    std::printf("GATE FAIL: RSS grew %.1f MB across the soak (> %.1f MB)\n",
                rss_growth, rss_slack_mb);
    ok = false;
  }
  if (deadline_us == 0 && m.degraded_ticks != 0) {
    std::printf(
        "GATE FAIL: %ju degraded cycles with degradation disabled\n",
        static_cast<std::uintmax_t>(m.degraded_ticks));
    ok = false;
  }
  std::printf("\nsoak gates (p99 <= %.0f ms, RSS growth <= %.0f MB, "
              "%zu sessions held%s): %s\n",
              p99_budget_ms, rss_slack_mb, sessions,
              deadline_us == 0 ? ", 0 degraded" : "", ok ? "PASS" : "FAIL");

  // == Admission overload stages ============================================
  // A fresh, smaller group per stage with a PRIVATE registry, so shed and
  // transition counters reconcile exactly per stage. Offered load is 2x:
  // every session is ticked twice per cycle — twice the sustainable rate
  // the calm soak just demonstrated for this population shape.
  const std::size_t ov_per_tenant = static_cast<std::size_t>(flags.get_int(
      "overload-sessions", smoke ? 600 : (long_run ? 4000 : 2000)));
  const std::size_t ov_ticks = static_cast<std::size_t>(
      flags.get_int("overload-ticks", smoke ? 24 : (long_run ? 240 : 60)));

  // -- Stage 1: overload_degrade --------------------------------------------
  // Ladder pinned at kDegrade (latency signal trips on the first measured
  // tick; an effectively infinite dwell holds the rung). 2x offered load
  // must be absorbed by degradation alone: zero sheds, every cycle served,
  // LSTM lanes twin-answered, p99 still inside the calm-soak budget.
  {
    obs::Registry registry;
    serve::GroupConfig oconfig;
    oconfig.replicas = replicas;
    oconfig.engine.registry = &registry;
    oconfig.admission.enabled = true;
    oconfig.admission.degrade_queue_frac = 2.0;  // latency signal only
    oconfig.admission.shed_queue_frac = 2.0;
    oconfig.admission.degrade_p99_us = 1.0;
    oconfig.admission.shed_p99_us = 0.0;  // never past kDegrade
    oconfig.admission.min_dwell_ticks = 1u << 30;
    serve::EngineGroup ogroup(oconfig);
    ogroup.register_bundle(bundle);

    std::vector<serve::SessionId> oids;
    oids.reserve(ov_per_tenant);
    for (std::size_t s = 0; s < ov_per_tenant; ++s) {
      oids.push_back(ogroup.open_session("care/ov-" + std::to_string(s),
                                         kind_for(s, with_ml),
                                         static_cast<int>(s) % cohort));
    }
    std::vector<serve::SessionInput> obatch(2 * ov_per_tenant);
    std::vector<monitor::Decision> odecisions(obatch.size());
    std::vector<serve::TickOutcome> outcomes(obatch.size());
    const std::size_t warm = with_ml ? monitor::kLstmWindow : 4;
    std::uint64_t shed_cycles = 0, served_cycles = 0;
    const auto ot0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < warm + ov_ticks; ++k) {
      if (k == warm) ogroup.reset_latency();
      for (std::size_t s = 0; s < ov_per_tenant; ++s) {
        obatch[2 * s] = {oids[s], variants[k % variants.size()]};
        obatch[2 * s + 1] = {oids[s], variants[(k + 7) % variants.size()]};
      }
      ogroup.feed(obatch, odecisions, outcomes);
      for (const auto& outcome : outcomes) {
        outcome.served() ? ++served_cycles : ++shed_cycles;
      }
    }
    const double ov_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - ot0)
            .count();
    const serve::LatencySummary om = ogroup.latency();
    const double state = registry.gauge_value("serve_overload_state");

    std::printf("\n== overload_degrade: 2x load, %zu sessions, %zu ticks ==\n",
                ov_per_tenant, ov_ticks);
    std::printf(
        "ladder %.0f, p99 %.2f ms, degraded cycles %ju, shed %ju of %ju\n",
        state, om.p99_us / 1000.0,
        static_cast<std::uintmax_t>(om.degraded_ticks),
        static_cast<std::uintmax_t>(shed_cycles),
        static_cast<std::uintmax_t>(served_cycles + shed_cycles));

    recorder.stage_done(
        "overload_degrade/" + std::to_string(ov_per_tenant) + "x2",
        ov_wall_s, served_cycles, rss_last,
        {{"offered_cycles", static_cast<double>(served_cycles + shed_cycles)},
         {"served_cycles", static_cast<double>(served_cycles)},
         {"shed_cycles", static_cast<double>(shed_cycles)},
         {"degraded_cycles", static_cast<double>(om.degraded_ticks)},
         {"p50_us", om.p50_us},
         {"p99_us", om.p99_us},
         {"overload_state", state}});

    if (state != 1.0) {
      std::printf("GATE FAIL: ladder sat at %.0f, expected kDegrade (1)\n",
                  state);
      ok = false;
    }
    if (shed_cycles != 0) {
      std::printf("GATE FAIL: %ju cycles shed in the degrade-only stage\n",
                  static_cast<std::uintmax_t>(shed_cycles));
      ok = false;
    }
    if (with_ml && om.degraded_ticks == 0) {
      std::printf("GATE FAIL: no twin-answered cycles at 2x load\n");
      ok = false;
    }
    if (om.p99_us / 1000.0 > p99_budget_ms) {
      std::printf("GATE FAIL: degraded p99 %.2f ms > budget %.2f ms\n",
                  om.p99_us / 1000.0, p99_budget_ms);
      ok = false;
    }
  }

  // -- Stage 2: overload_shed -----------------------------------------------
  // Ladder pinned at kShed. Tenant "care" is unlimited, tenant "bulk" has a
  // one-tick burst and ~zero refill: bulk must shed exactly its over-quota
  // excess (offered == served + shed, reconciled against the per-tenant
  // counters), care must not lose a single cycle, and opens must come back
  // as typed rejects.
  {
    obs::Registry registry;
    serve::GroupConfig sconfig;
    sconfig.replicas = replicas;
    sconfig.engine.registry = &registry;
    sconfig.admission.enabled = true;
    sconfig.admission.degrade_queue_frac = 2.0;
    sconfig.admission.shed_queue_frac = 2.0;
    sconfig.admission.degrade_p99_us = 0.5;
    sconfig.admission.shed_p99_us = 1.0;  // any tick latency trips kShed
    sconfig.admission.min_dwell_ticks = 1u << 30;
    sconfig.admission.tenant_quotas = {
        {"bulk",
         {.ticks_per_sec = 1e-9,
          .burst = static_cast<double>(ov_per_tenant)}}};
    serve::EngineGroup sgroup(sconfig);
    sgroup.register_bundle(bundle);

    std::vector<serve::SessionId> sids;
    sids.reserve(2 * ov_per_tenant);
    for (std::size_t s = 0; s < ov_per_tenant; ++s) {
      sids.push_back(sgroup.open_session("care/ov-" + std::to_string(s),
                                         kind_for(s, false),
                                         static_cast<int>(s) % cohort));
    }
    for (std::size_t s = 0; s < ov_per_tenant; ++s) {
      sids.push_back(sgroup.open_session("bulk/ov-" + std::to_string(s),
                                         kind_for(s, false),
                                         static_cast<int>(s) % cohort));
    }
    // Batch order: all care cycles (2 per session), then all bulk cycles.
    std::vector<serve::SessionInput> sbatch(4 * ov_per_tenant);
    std::vector<monitor::Decision> sdecisions(sbatch.size());
    std::vector<serve::TickOutcome> soutcomes(sbatch.size());
    std::uint64_t care_shed = 0, bulk_shed = 0, served = 0, offered = 0;
    std::uint64_t open_attempts = 0, open_rejects = 0;
    const auto st0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < ov_ticks; ++k) {
      for (std::size_t i = 0; i < 2 * ov_per_tenant; ++i) {
        sbatch[2 * i] = {sids[i], variants[k % variants.size()]};
        sbatch[2 * i + 1] = {sids[i], variants[(k + 3) % variants.size()]};
      }
      sgroup.feed(sbatch, sdecisions, soutcomes);
      offered += soutcomes.size();
      for (std::size_t i = 0; i < soutcomes.size(); ++i) {
        if (soutcomes[i].served()) {
          ++served;
        } else if (i < 2 * ov_per_tenant) {
          ++care_shed;
        } else {
          ++bulk_shed;
        }
      }
      // Once shedding, opens must be refused with the typed error.
      if (sgroup.admission().state() == serve::OverloadState::kShed) {
        ++open_attempts;
        try {
          (void)sgroup.open_session("care/late-" + std::to_string(k),
                                    "cawt", 0);
        } catch (const serve::ShedError&) {
          ++open_rejects;
        }
      }
    }
    const double sh_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - st0)
            .count();
    const std::uint64_t bulk_counted = registry.counter_value(
        "serve_shed_total", {{"reason", "tick"}, {"tenant", "bulk"}});
    const std::uint64_t care_counted = registry.counter_value(
        "serve_shed_total", {{"reason", "tick"}, {"tenant", "care"}});
    const std::uint64_t open_counted = registry.counter_value(
        "serve_shed_total", {{"reason", "open"}, {"tenant", "care"}});
    const double state = registry.gauge_value("serve_overload_state");

    std::printf("\n== overload_shed: 2x load, %zu+%zu sessions, %zu ticks ==\n",
                ov_per_tenant, ov_per_tenant, ov_ticks);
    std::printf("ladder %.0f: offered %ju = served %ju + shed %ju "
                "(care %ju, bulk %ju), opens rejected %ju/%ju\n",
                state, static_cast<std::uintmax_t>(offered),
                static_cast<std::uintmax_t>(served),
                static_cast<std::uintmax_t>(care_shed + bulk_shed),
                static_cast<std::uintmax_t>(care_shed),
                static_cast<std::uintmax_t>(bulk_shed),
                static_cast<std::uintmax_t>(open_rejects),
                static_cast<std::uintmax_t>(open_attempts));

    recorder.stage_done(
        "overload_shed/" + std::to_string(2 * ov_per_tenant) + "x2",
        sh_wall_s, served, rss_last,
        {{"offered_cycles", static_cast<double>(offered)},
         {"served_cycles", static_cast<double>(served)},
         {"shed_tick_care", static_cast<double>(care_counted)},
         {"shed_tick_bulk", static_cast<double>(bulk_counted)},
         {"shed_open", static_cast<double>(open_counted)},
         {"open_attempts", static_cast<double>(open_attempts)},
         {"overload_state", state}});

    if (state != 2.0) {
      std::printf("GATE FAIL: ladder sat at %.0f, expected kShed (2)\n",
                  state);
      ok = false;
    }
    if (care_shed != 0 || care_counted != 0) {
      std::printf("GATE FAIL: in-quota tenant lost %ju cycles "
                  "(%ju counted)\n",
                  static_cast<std::uintmax_t>(care_shed),
                  static_cast<std::uintmax_t>(care_counted));
      ok = false;
    }
    if (bulk_shed == 0) {
      std::printf("GATE FAIL: over-quota tenant shed nothing at 2x load\n");
      ok = false;
    }
    if (bulk_shed != bulk_counted) {
      std::printf("GATE FAIL: shed %ju bulk cycles but counted %ju\n",
                  static_cast<std::uintmax_t>(bulk_shed),
                  static_cast<std::uintmax_t>(bulk_counted));
      ok = false;
    }
    if (offered != served + care_shed + bulk_shed) {
      std::printf("GATE FAIL: offered %ju != served %ju + shed %ju\n",
                  static_cast<std::uintmax_t>(offered),
                  static_cast<std::uintmax_t>(served),
                  static_cast<std::uintmax_t>(care_shed + bulk_shed));
      ok = false;
    }
    if (open_attempts == 0 || open_rejects != open_attempts ||
        open_counted != open_rejects) {
      std::printf("GATE FAIL: open rejects %ju/%ju attempts (%ju counted)\n",
                  static_cast<std::uintmax_t>(open_rejects),
                  static_cast<std::uintmax_t>(open_attempts),
                  static_cast<std::uintmax_t>(open_counted));
      ok = false;
    }
  }

  std::printf("\noverload gates (degrade absorbs 2x inside %.0f ms p99, "
              "shed spares in-quota tenants, every shed counted): %s\n",
              p99_budget_ms, ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
