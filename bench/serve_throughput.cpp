// Serving-path throughput: monitor cycles/sec through MonitorEngine as the
// concurrent session count scales 1 -> 10,000, per monitor type. Every
// monitor is built from a bundle that was saved to disk and loaded back —
// the serving deployment path, no retraining.
//
// Flags:
//   --sessions-max=<n>   largest session count (default 10000)
//   --budget-ms=<ms>     measurement window per configuration (default 400)
//   --threads=<n>        engine worker threads (default: hardware)
//   --ml                 also bench DT/MLP/LSTM monitors (tiny synthetic
//                        models; rule-based monitors are the default)
//   --dir=<path>         where the bundle file is written (default /tmp)
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/monitor_factory.h"
#include "io/artifact_io.h"
#include "monitor/ml_monitor.h"
#include "serve/engine.h"
#include "sim/stack.h"

namespace {

using namespace aps;

ml::Dataset synth_dataset(std::size_t n, std::uint64_t seed) {
  ml::Dataset data;
  data.classes = 2;
  data.x = ml::Matrix(n, monitor::kMlFeatureCount);
  data.y.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double bg = rng.uniform(40.0, 320.0);
    const double iob = rng.uniform(0.0, 10.0);
    data.x.at(i, 0) = bg;
    data.x.at(i, 1) = rng.uniform(-8.0, 8.0);
    data.x.at(i, 2) = iob;
    data.x.at(i, 3) = rng.uniform(-0.5, 0.5);
    data.x.at(i, 4) = rng.uniform(0.0, 3.0);
    data.x.at(i, 5) = static_cast<double>(rng.uniform_int(0, 3));
    data.y[i] = (bg < 80.0 && iob > 4.0) || bg > 260.0 ? 1 : 0;
  }
  return data;
}

ml::SequenceDataset synth_sequences(std::size_t n, std::uint64_t seed) {
  ml::SequenceDataset data;
  data.classes = 2;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ml::Matrix window(monitor::kLstmWindow, monitor::kMlFeatureCount);
    double bg = 120.0;
    for (std::size_t t = 0; t < monitor::kLstmWindow; ++t) {
      bg = rng.uniform(40.0, 320.0);
      window.at(t, 0) = bg;
      window.at(t, 1) = rng.uniform(-8.0, 8.0);
      window.at(t, 2) = rng.uniform(0.0, 10.0);
      window.at(t, 3) = rng.uniform(-0.5, 0.5);
      window.at(t, 4) = rng.uniform(0.0, 3.0);
      window.at(t, 5) = static_cast<double>(rng.uniform_int(0, 3));
    }
    data.sequences.push_back(std::move(window));
    data.labels.push_back(bg > 260.0 || bg < 80.0 ? 1 : 0);
  }
  return data;
}

/// Artifact bundle from profile defaults — built once, persisted, and
/// loaded back so the bench exercises the deployment path.
core::ArtifactBundle build_bundle(bool with_ml) {
  core::ArtifactBundle bundle;
  const auto stack = sim::glucosym_openaps_stack();
  auto& artifacts = bundle.artifacts;
  artifacts.profiles = core::stack_profiles(stack);
  double mean_ss_iob = 0.0;
  for (const auto& profile : artifacts.profiles) {
    artifacts.patient_thresholds.push_back(
        monitor::default_thresholds(profile.steady_state_iob));
    artifacts.guideline_configs.push_back({});
    mean_ss_iob += profile.steady_state_iob;
  }
  mean_ss_iob /= static_cast<double>(artifacts.profiles.size());
  artifacts.population_thresholds = monitor::default_thresholds(mean_ss_iob);

  if (with_ml) {
    ml::DecisionTree dt;
    dt.fit(synth_dataset(2000, 1));
    bundle.dt = std::make_shared<const ml::DecisionTree>(std::move(dt));

    ml::MlpConfig mlp_config;
    mlp_config.hidden_units = {16, 8};
    mlp_config.max_epochs = 4;
    ml::Mlp mlp(mlp_config);
    mlp.fit(synth_dataset(1500, 2));
    bundle.mlp = std::make_shared<const ml::Mlp>(std::move(mlp));

    ml::LstmConfig lstm_config;
    lstm_config.hidden_units = {8};
    lstm_config.max_epochs = 2;
    ml::Lstm lstm(lstm_config);
    lstm.fit(synth_sequences(300, 3));
    bundle.lstm = std::make_shared<const ml::Lstm>(std::move(lstm));
  }
  return bundle;
}

struct Measurement {
  std::uint64_t cycles = 0;
  double seconds = 0.0;
  [[nodiscard]] double cycles_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(cycles) / seconds : 0.0;
  }
};

Measurement measure(serve::MonitorEngine& engine,
                    std::vector<serve::SessionInput>& batch,
                    const std::vector<monitor::Observation>& variants,
                    double budget_ms) {
  using clock = std::chrono::steady_clock;
  // Warm-up pass (first LSTM windows, page-in).
  (void)engine.feed(batch);

  Measurement m;
  std::size_t variant = 0;
  const auto start = clock::now();
  for (;;) {
    // Rotate the observation so the monitors see a changing stream.
    const auto& obs = variants[variant];
    variant = (variant + 1) % variants.size();
    for (auto& input : batch) input.obs = obs;
    (void)engine.feed(batch);
    m.cycles += batch.size();
    m.seconds = std::chrono::duration<double>(clock::now() - start).count();
    if (m.seconds * 1000.0 >= budget_ms) break;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) try {
  CliFlags flags(argc, argv);
  const int sessions_max = flags.get_int("sessions-max", 10000);
  const double budget_ms = flags.get_double("budget-ms", 400.0);
  const auto threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  const bool with_ml = flags.get_bool("ml", false);
  const std::string dir = flags.get_string(
      "dir", (std::filesystem::temp_directory_path() / "aps_serve_bench")
                 .string());

  std::filesystem::create_directories(dir);
  const std::string bundle_path = dir + "/bundle.aps";
  io::save_bundle(build_bundle(with_ml), bundle_path);
  const core::ArtifactBundle bundle = io::load_bundle(bundle_path);
  const int cohort = static_cast<int>(bundle.artifacts.profiles.size());

  std::printf("== serve_throughput ==\n");
  std::printf("bundle: %s (%ju bytes), cohort %d, %s models\n",
              bundle_path.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(bundle_path)),
              cohort, with_ml ? "rule+ML" : "rule-based");

  std::vector<std::string> monitors = {"cawt", "cawot", "guideline"};
  if (with_ml) {
    monitors.emplace_back("dt");
    monitors.emplace_back("mlp");
    monitors.emplace_back("lstm");
  }
  std::vector<int> session_counts;
  for (const int n : {1, 10, 100, 1000, 10000}) {
    if (n <= sessions_max) session_counts.push_back(n);
  }

  // A handful of observation variants covering quiet and alarming contexts.
  std::vector<monitor::Observation> variants;
  Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    monitor::Observation obs;
    obs.time_min = 5.0 * i;
    obs.bg = rng.uniform(50.0, 300.0);
    obs.bg_rate = rng.uniform(-6.0, 6.0);
    obs.iob = rng.uniform(0.0, 8.0);
    obs.iob_rate = rng.uniform(-0.4, 0.4);
    obs.commanded_rate = rng.uniform(0.0, 3.0);
    obs.previous_rate = rng.uniform(0.0, 3.0);
    obs.action = static_cast<ControlAction>(rng.uniform_int(0, 3));
    obs.basal_rate = 1.0;
    obs.isf = 40.0;
    variants.push_back(obs);
  }

  TextTable table({"monitor", "sessions", "cycles", "secs", "cycles/sec"});
  double rule_based_at_max = 0.0;
  int max_sessions_run = 0;

  for (const auto& name : monitors) {
    for (const int n : session_counts) {
      serve::MonitorEngine engine({.threads = threads});
      engine.register_bundle(bundle);
      std::vector<serve::SessionInput> batch;
      batch.reserve(static_cast<std::size_t>(n));
      for (int s = 0; s < n; ++s) {
        const auto id = engine.open_session(
            name + "/patient-" + std::to_string(s), name, s % cohort);
        batch.push_back({id, variants[0]});
      }
      const Measurement m = measure(engine, batch, variants, budget_ms);
      table.add_row({name, std::to_string(n), std::to_string(m.cycles),
                     TextTable::num(m.seconds, 3),
                     TextTable::num(m.cycles_per_sec(), 0)});
      if (name == "cawt" && n >= max_sessions_run) {
        max_sessions_run = n;
        rule_based_at_max = m.cycles_per_sec();
      }
    }
  }

  table.print(std::cout);
  std::printf(
      "\nrule-based (cawt) aggregate at %d concurrent sessions: %.0f "
      "cycles/sec (target >= 100000): %s\n",
      max_sessions_run, rule_based_at_max,
      rule_based_at_max >= 100000.0 ? "PASS" : "FAIL");
  return rule_based_at_max >= 100000.0 ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
