// Serving-path throughput A/B: monitor cycles/sec through MonitorEngine,
// per monitor kind, on the sharded SoA backend (one batched model call per
// shard per tick) versus the retained per-session scalar backend. Every
// monitor is built from a bundle that was saved to disk and loaded back —
// the serving deployment path, no retraining. Per-tick latency percentiles
// (p50/p95/p99) come from the engine's own instrumentation; everything is
// recorded into BENCH_serve_throughput.json (stage per
// monitor/backend/session-count cell), which the CI smoke step parses to
// fail on a sharded-vs-scalar throughput regression.
//
// Flags:
//   --sessions-max=<n>   largest session count (default 8192)
//   --budget-ms=<ms>     measurement window per cell (default 300)
//   --threads=<n>        engine worker threads (default: hardware)
//   --ml                 bench DT/MLP/LSTM monitors too (default ON; tiny
//                        synthetic models) — --ml=0 for rule-based only
//   --dir=<path>         where the bundle file is written (default /tmp)
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/table.h"
#include "core/monitor_factory.h"
#include "io/artifact_io.h"
#include "ml/kernels/kernels.h"
#include "monitor/ml_monitor.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "sim/stack.h"

namespace {

using namespace aps;

ml::Dataset synth_dataset(std::size_t n, std::uint64_t seed) {
  ml::Dataset data;
  data.classes = 2;
  data.x = ml::Matrix(n, monitor::kMlFeatureCount);
  data.y.resize(n);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double bg = rng.uniform(40.0, 320.0);
    const double iob = rng.uniform(0.0, 10.0);
    data.x.at(i, 0) = bg;
    data.x.at(i, 1) = rng.uniform(-8.0, 8.0);
    data.x.at(i, 2) = iob;
    data.x.at(i, 3) = rng.uniform(-0.5, 0.5);
    data.x.at(i, 4) = rng.uniform(0.0, 3.0);
    data.x.at(i, 5) = static_cast<double>(rng.uniform_int(0, 3));
    data.y[i] = (bg < 80.0 && iob > 4.0) || bg > 260.0 ? 1 : 0;
  }
  return data;
}

ml::SequenceDataset synth_sequences(std::size_t n, std::uint64_t seed) {
  ml::SequenceDataset data;
  data.classes = 2;
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    ml::Matrix window(monitor::kLstmWindow, monitor::kMlFeatureCount);
    double bg = 120.0;
    for (std::size_t t = 0; t < monitor::kLstmWindow; ++t) {
      bg = rng.uniform(40.0, 320.0);
      window.at(t, 0) = bg;
      window.at(t, 1) = rng.uniform(-8.0, 8.0);
      window.at(t, 2) = rng.uniform(0.0, 10.0);
      window.at(t, 3) = rng.uniform(-0.5, 0.5);
      window.at(t, 4) = rng.uniform(0.0, 3.0);
      window.at(t, 5) = static_cast<double>(rng.uniform_int(0, 3));
    }
    data.sequences.push_back(std::move(window));
    data.labels.push_back(bg > 260.0 || bg < 80.0 ? 1 : 0);
  }
  return data;
}

/// Artifact bundle from profile defaults — built once, persisted, and
/// loaded back so the bench exercises the deployment path.
core::ArtifactBundle build_bundle(bool with_ml) {
  core::ArtifactBundle bundle;
  const auto stack = sim::glucosym_openaps_stack();
  auto& artifacts = bundle.artifacts;
  artifacts.profiles = core::stack_profiles(stack);
  double mean_ss_iob = 0.0;
  for (const auto& profile : artifacts.profiles) {
    artifacts.patient_thresholds.push_back(
        monitor::default_thresholds(profile.steady_state_iob));
    artifacts.guideline_configs.push_back({});
    mean_ss_iob += profile.steady_state_iob;
  }
  mean_ss_iob /= static_cast<double>(artifacts.profiles.size());
  artifacts.population_thresholds = monitor::default_thresholds(mean_ss_iob);

  // Training-time feature statistics ride along in the bundle (optional
  // trailing section) so the engine's drift detectors run during the
  // bench — telemetry overhead is measured with drift scoring active.
  {
    const ml::Dataset stats_data = synth_dataset(4000, 9);
    bundle.training_stats = std::make_shared<const obs::TrainingStats>(
        obs::training_stats_from_samples(
            stats_data.x.cols(),
            std::span<const double>(stats_data.x.data(),
                                    stats_data.x.size())));
  }

  if (with_ml) {
    ml::DecisionTree dt;
    dt.fit(synth_dataset(2000, 1));
    bundle.dt = std::make_shared<const ml::DecisionTree>(std::move(dt));

    ml::MlpConfig mlp_config;
    mlp_config.hidden_units = {16, 8};
    mlp_config.max_epochs = 4;
    ml::Mlp mlp(mlp_config);
    mlp.fit(synth_dataset(1500, 2));
    bundle.mlp = std::make_shared<const ml::Mlp>(std::move(mlp));

    ml::LstmConfig lstm_config;
    lstm_config.hidden_units = {8};
    lstm_config.max_epochs = 2;
    ml::Lstm lstm(lstm_config);
    lstm.fit(synth_sequences(300, 3));
    bundle.lstm = std::make_shared<const ml::Lstm>(std::move(lstm));
  }
  return bundle;
}

/// One measured cell: warm up (fills LSTM windows, pages weights in), then
/// feed rotating whole-population batches until the budget elapses; the
/// engine's own per-tick instrumentation yields cycles/s and percentiles.
/// The measured loop drives the SoA feed overload with preallocated
/// decision storage — the production hot path (replica workers, the net
/// front door): no per-tick allocation, and steady-state batches take the
/// engine's already-grouped fast path.
serve::LatencySummary measure(serve::MonitorEngine& engine,
                              std::vector<serve::SessionInput>& batch,
                              const std::vector<monitor::Observation>& variants,
                              double budget_ms) {
  using clock = std::chrono::steady_clock;
  std::vector<serve::SessionId> sessions(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    sessions[i] = batch[i].session;
  }
  std::vector<monitor::Observation> obs_row(batch.size());
  std::vector<monitor::Decision> decisions(batch.size());
  for (std::size_t warm = 0; warm < monitor::kLstmWindow; ++warm) {
    (void)engine.feed(batch);
  }
  engine.reset_latency();
  std::size_t variant = 0;
  const auto start = clock::now();
  for (;;) {
    const auto& obs = variants[variant];
    variant = (variant + 1) % variants.size();
    for (auto& row : obs_row) row = obs;
    engine.feed(sessions, obs_row, decisions);
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(clock::now() - start)
            .count();
    if (elapsed_ms >= budget_ms) break;
  }
  return engine.latency();
}

const char* backend_name(serve::ServeBackend backend) {
  return backend == serve::ServeBackend::kSharded ? "sharded" : "scalar";
}

}  // namespace

int main(int argc, char** argv) try {
  CliFlags flags(argc, argv);
  const int sessions_max = flags.get_int("sessions-max", 8192);
  const double budget_ms = flags.get_double("budget-ms", 300.0);
  const auto threads =
      static_cast<std::size_t>(flags.get_int("threads", 0));
  const bool with_ml = flags.get_bool("ml", true);
  const std::string dir = flags.get_string(
      "dir", (std::filesystem::temp_directory_path() / "aps_serve_bench")
                 .string());

  bench::BenchRecorder recorder("serve_throughput");
  // Engines default to the process-global registry, so each stage's JSON
  // carries the serve_*/drift_* counter deltas that accrued during it.
  recorder.attach_registry(&obs::Registry::global());
  std::filesystem::create_directories(dir);
  const std::string bundle_path = dir + "/bundle.aps";
  recorder.time_stage("build+save+load bundle", 0, [&] {
    io::save_bundle(build_bundle(with_ml), bundle_path);
  });
  const core::ArtifactBundle bundle = io::load_bundle(bundle_path);
  const int cohort = static_cast<int>(bundle.artifacts.profiles.size());

  std::printf("== serve_throughput ==\n");
  std::printf("bundle: %s (%ju bytes), cohort %d, %s models\n",
              bundle_path.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(bundle_path)),
              cohort, with_ml ? "rule+ML" : "rule-based");
  std::printf("kernels backend: %s\n", ml::kernels::backend_name());

  std::vector<std::string> monitors = {"cawt", "cawot", "guideline"};
  std::vector<std::string> ml_monitors;
  if (with_ml) {
    ml_monitors = {"dt", "mlp", "lstm"};
    monitors.insert(monitors.end(), ml_monitors.begin(), ml_monitors.end());
  }
  std::vector<int> session_counts;
  for (const int n : {1, 64, 1024, 8192}) {
    if (n <= sessions_max) session_counts.push_back(n);
  }
  const int top_sessions = session_counts.back();

  // A handful of observation variants covering quiet and alarming contexts.
  std::vector<monitor::Observation> variants;
  Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    monitor::Observation obs;
    obs.time_min = 5.0 * i;
    obs.bg = rng.uniform(50.0, 300.0);
    obs.bg_rate = rng.uniform(-6.0, 6.0);
    obs.iob = rng.uniform(0.0, 8.0);
    obs.iob_rate = rng.uniform(-0.4, 0.4);
    obs.commanded_rate = rng.uniform(0.0, 3.0);
    obs.previous_rate = rng.uniform(0.0, 3.0);
    obs.action = static_cast<ControlAction>(rng.uniform_int(0, 3));
    obs.basal_rate = 1.0;
    obs.isf = 40.0;
    variants.push_back(obs);
  }

  TextTable table({"monitor", "backend", "sessions", "cycles", "cycles/sec",
                   "p50us", "p95us", "p99us", "maxus"});
  // cycles/s per (monitor, backend, sessions) for the A/B verdict and the
  // CI regression smoke.
  std::map<std::string, std::map<std::string, std::map<int, double>>> rate;

  for (const auto& name : monitors) {
    for (const serve::ServeBackend backend :
         {serve::ServeBackend::kScalar, serve::ServeBackend::kSharded}) {
      for (const int n : session_counts) {
        const double rss_before_mb = bench::peak_rss_mb();
        serve::MonitorEngine engine(
            {.threads = threads, .backend = backend});
        engine.register_bundle(bundle);
        std::vector<serve::SessionInput> batch;
        batch.reserve(static_cast<std::size_t>(n));
        for (int s = 0; s < n; ++s) {
          const auto id = engine.open_session(
              name + "/patient-" + std::to_string(s), name, s % cohort);
          batch.push_back({id, variants[0]});
        }
        const serve::LatencySummary m =
            measure(engine, batch, variants, budget_ms);
        table.add_row({name, backend_name(backend), std::to_string(n),
                       std::to_string(m.cycles),
                       TextTable::num(m.cycles_per_sec(), 0),
                       TextTable::num(m.p50_us, 1),
                       TextTable::num(m.p95_us, 1),
                       TextTable::num(m.p99_us, 1),
                       TextTable::num(m.max_us, 1)});
        recorder.stage_done(
            name + "/" + backend_name(backend) + "/" + std::to_string(n),
            m.seconds, m.cycles, rss_before_mb,
            {{"sessions", static_cast<double>(n)},
             {"p50_us", m.p50_us},
             {"p95_us", m.p95_us},
             {"p99_us", m.p99_us},
             {"max_us", m.max_us}});
        rate[name][backend_name(backend)][n] = m.cycles_per_sec();
      }
    }
  }
  // Float32 serving lanes (precision = kF32 on the sharded backend) for
  // the two monitors with a float32 kernel path. Stage names keep the
  // 3-part "<kind>/<backend>/<sessions>" shape with a "-f32" kind suffix
  // so the CI JSON gate parses them alongside the f64 cells.
  std::vector<std::string> f32_monitors;
  if (with_ml) f32_monitors = {"mlp", "lstm"};
  for (const auto& name : f32_monitors) {
    for (const int n : session_counts) {
      const double rss_before_mb = bench::peak_rss_mb();
      serve::MonitorEngine engine({.threads = threads,
                                   .backend = serve::ServeBackend::kSharded,
                                   .precision = monitor::Precision::kF32});
      engine.register_bundle(bundle);
      std::vector<serve::SessionInput> batch;
      batch.reserve(static_cast<std::size_t>(n));
      for (int s = 0; s < n; ++s) {
        const auto id = engine.open_session(
            name + "-f32/patient-" + std::to_string(s), name, s % cohort);
        batch.push_back({id, variants[0]});
      }
      const serve::LatencySummary m =
          measure(engine, batch, variants, budget_ms);
      table.add_row({name + "-f32", "sharded", std::to_string(n),
                     std::to_string(m.cycles),
                     TextTable::num(m.cycles_per_sec(), 0),
                     TextTable::num(m.p50_us, 1),
                     TextTable::num(m.p95_us, 1),
                     TextTable::num(m.p99_us, 1),
                     TextTable::num(m.max_us, 1)});
      recorder.stage_done(name + "-f32/sharded/" + std::to_string(n),
                          m.seconds, m.cycles, rss_before_mb,
                          {{"sessions", static_cast<double>(n)},
                           {"p50_us", m.p50_us},
                           {"p95_us", m.p95_us},
                           {"p99_us", m.p99_us},
                           {"max_us", m.max_us}});
      rate[name + "-f32"]["sharded"][n] = m.cycles_per_sec();
    }
  }
  table.print(std::cout);

  // Telemetry overhead A/B: the full sharded tick at the top session count
  // with telemetry on (histograms + spans + drift scoring) versus off
  // (mandatory counters into a private registry only). Cheapest rule-based
  // monitor = worst-case telemetry fraction of the tick. Informational —
  // recorded in the JSON for the EXPERIMENTS.md trail, target < 2%.
  {
    const std::string kind = "guideline";
    double cps[2] = {0.0, 0.0};
    double wall[2] = {0.0, 0.0};
    std::uint64_t cycles[2] = {0, 0};
    const double rss_before_mb = bench::peak_rss_mb();
    // Both engines live side by side and are measured in alternating
    // rounds, best-of per arm: a single window per arm is at the mercy of
    // scheduler/turbo jitter on shared runners (observed swings of +-7%,
    // larger than the 2% budget the gate enforces).
    serve::MonitorEngine engines[2] = {
        serve::MonitorEngine({.threads = threads,
                              .backend = serve::ServeBackend::kSharded,
                              .telemetry = true}),
        serve::MonitorEngine({.threads = threads,
                              .backend = serve::ServeBackend::kSharded,
                              .telemetry = false})};
    std::vector<serve::SessionInput> batches[2];
    for (const int arm : {0, 1}) {
      engines[arm].register_bundle(bundle);
      batches[arm].reserve(static_cast<std::size_t>(top_sessions));
      for (int s = 0; s < top_sessions; ++s) {
        const auto id = engines[arm].open_session(
            "ab" + std::to_string(arm) + "/patient-" + std::to_string(s),
            kind, s % cohort);
        batches[arm].push_back({id, variants[0]});
      }
    }
    // Interruption noise on a shared host is one-sided (a preempted window
    // only reads slower, never faster), so the best window per arm across
    // alternating rounds is the estimator that converges to the
    // uncontended rate; single-window A/B readings here swing several
    // percent against a <2% budget.
    const int kRounds = 8;
    const auto run_rounds = [&]() {
      for (int round = 0; round < kRounds; ++round) {
        // Alternate which arm measures first so a periodic external load
        // cannot land on the same arm's window every round.
        for (const int arm : {round % 2, 1 - round % 2}) {
          const serve::LatencySummary m = measure(
              engines[arm], batches[arm], variants, budget_ms / kRounds);
          if (m.cycles_per_sec() > cps[arm]) {
            cps[arm] = m.cycles_per_sec();
            wall[arm] = m.seconds;
            cycles[arm] = m.cycles;
          }
        }
      }
      return cps[1] > 0.0 ? 100.0 * (1.0 - cps[0] / cps[1]) : 0.0;
    };
    double overhead_pct = run_rounds();
    // Adaptive retry: best-of accumulates monotonically, so extra rounds
    // can only help an arm that never got a quiet window — they cannot
    // mask a genuine regression, which stays slow in every window. This
    // keeps a hard 2% CI gate from flaking on contention bursts that
    // outlast one batch of rounds.
    for (int retry = 0; retry < 2 && overhead_pct > 2.0; ++retry) {
      overhead_pct = run_rounds();
    }
    std::printf(
        "\ntelemetry overhead (%s, %d sessions, sharded): on %.0f vs off "
        "%.0f cycles/s -> %.2f%%\n",
        kind.c_str(), top_sessions, cps[0], cps[1], overhead_pct);
    recorder.stage_done("telemetry_overhead/" + kind + "/" +
                            std::to_string(top_sessions),
                        wall[0], cycles[0], rss_before_mb,
                        {{"cycles_per_sec_on", cps[0]},
                         {"cycles_per_sec_off", cps[1]},
                         {"overhead_pct", overhead_pct}});
  }

  // Kernel-layer A/B (the kernel refactor's headline gate): the LSTM
  // serving tick at 64 sessions, float64 on the forced-scalar kernels
  // (bit-identical to the pre-kernel code, so this IS the "before" cell)
  // versus float32 sharded lanes on the dispatch backend. Back-to-back in
  // one process so the comparison shares cache/turbo state.
  double kernels_speedup = 0.0;
  const bool kernels_simd =
      ml::kernels::active_backend() != ml::kernels::Backend::kScalar;
  if (with_ml && sessions_max >= 64) {
    const int n_ab = 64;
    const auto run_cell = [&](monitor::Precision precision,
                              const char* tag) {
      serve::MonitorEngine engine({.threads = threads,
                                   .backend = serve::ServeBackend::kSharded,
                                   .precision = precision});
      engine.register_bundle(bundle);
      std::vector<serve::SessionInput> batch;
      batch.reserve(static_cast<std::size_t>(n_ab));
      for (int s = 0; s < n_ab; ++s) {
        const auto id = engine.open_session(
            std::string("kab-") + tag + "/patient-" + std::to_string(s),
            "lstm", s % cohort);
        batch.push_back({id, variants[0]});
      }
      return measure(engine, batch, variants, budget_ms);
    };
    const double rss_before_mb = bench::peak_rss_mb();
    const auto dispatch = ml::kernels::active_backend();
    ml::kernels::set_backend(ml::kernels::Backend::kScalar);
    const serve::LatencySummary before =
        run_cell(monitor::Precision::kF64, "f64");
    ml::kernels::set_backend(dispatch);
    const serve::LatencySummary after =
        run_cell(monitor::Precision::kF32, "f32");
    kernels_speedup = before.cycles_per_sec() > 0.0
                          ? after.cycles_per_sec() / before.cycles_per_sec()
                          : 0.0;
    std::printf(
        "\nkernels A/B (lstm, %d sessions, sharded): f64/scalar-kernels "
        "%.0f vs f32/%s %.0f cycles/s -> %.2fx\n",
        n_ab, before.cycles_per_sec(), ml::kernels::backend_name(),
        after.cycles_per_sec(), kernels_speedup);
    recorder.stage_done("kernels_ab/lstm/" + std::to_string(n_ab),
                        after.seconds, after.cycles, rss_before_mb,
                        {{"cycles_per_sec_f64_scalar_kernels",
                          before.cycles_per_sec()},
                         {"cycles_per_sec_f32_simd", after.cycles_per_sec()},
                         {"speedup", kernels_speedup},
                         {"simd", kernels_simd ? 1.0 : 0.0}});
  }

  // A/B verdict. Per monitor kind: the sharded/scalar cycles/s ratio at
  // every session count; a kind's headline speedup is its best ratio (the
  // batching win peaks where model-call overhead dominates the tick). The
  // sharded path must not regress below the scalar path on any ML monitor
  // at the top session count, and at least one ML monitor must show the
  // >= 2x batching win the refactor exists for.
  std::printf("\nsharded vs scalar cycles/s ratio per session count:\n");
  bool ok = true;
  double best_ml_ratio = 0.0;
  for (const auto& name : monitors) {
    const bool is_ml = std::find(ml_monitors.begin(), ml_monitors.end(),
                                 name) != ml_monitors.end();
    std::printf("  %-10s", name.c_str());
    double best = 0.0;
    for (const int n : session_counts) {
      const double scalar = rate[name]["scalar"][n];
      const double sharded = rate[name]["sharded"][n];
      const double ratio = scalar > 0.0 ? sharded / scalar : 0.0;
      best = std::max(best, ratio);
      std::printf("  %5d: %.2fx", n, ratio);
      if (is_ml && n == top_sessions && ratio < 0.9) {
        ok = false;  // regression guard (10% jitter allowance)
      }
    }
    std::printf("  best %.2fx%s\n", best, is_ml ? "" : "  [rule-based]");
    if (is_ml) best_ml_ratio = std::max(best_ml_ratio, best);
  }
  if (with_ml && best_ml_ratio < 2.0) ok = false;
  if (with_ml) {
    std::printf(
        "best ML speedup: %.2fx (need >= 2x, no ML kind < 0.9x at %d "
        "sessions): %s\n",
        best_ml_ratio, top_sessions, ok ? "PASS" : "FAIL");
  }

  // Float32 verdict: per kind the f32/f64 sharded ratio (informational —
  // the equivalence suite owns correctness), plus the hard >= 4x kernel
  // gate on a SIMD dispatch backend (a scalar-only host still reports the
  // speedup but can't be held to the vector-width target).
  if (with_ml) {
    std::printf("\nfloat32 vs float64 sharded cycles/s ratio:\n");
    for (const auto& name : f32_monitors) {
      std::printf("  %-10s", (name + "-f32").c_str());
      for (const int n : session_counts) {
        const double f64_rate = rate[name]["sharded"][n];
        const double f32_rate = rate[name + "-f32"]["sharded"][n];
        std::printf("  %5d: %.2fx", n,
                    f64_rate > 0.0 ? f32_rate / f64_rate : 0.0);
      }
      std::printf("\n");
    }
    if (sessions_max >= 64) {
      const bool kernels_ok = !kernels_simd || kernels_speedup >= 4.0;
      std::printf(
          "kernels gate: lstm f32-sharded vs pre-kernel f64 %.2fx "
          "(need >= 4x on SIMD backends, backend=%s): %s\n",
          kernels_speedup, ml::kernels::backend_name(),
          kernels_ok ? "PASS" : "FAIL");
      if (!kernels_ok) ok = false;
    }
  }
  return ok ? 0 : 1;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
