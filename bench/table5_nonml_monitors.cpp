// Table V — CAWT vs the non-ML baseline monitors (Guideline, MPC, CAWOT)
// on both simulation stacks; sample-level accuracy with tolerance window.
// The whole line-up is scored from one fused campaign pass per stack.
//
// Paper shape: CAWT best F1 and lowest FPR on both stacks; CAWOT between
// the generic monitors and CAWT on Glucosym; the Guideline monitor
// collapses (FPR ~ 1) on the Padova stack.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/false);
  bench::print_header("Table V: CAWT vs non-ML monitors", config);
  bench::BenchRecorder recorder("table5_nonml_monitors");

  ThreadPool pool;
  TextTable table({"simulator", "monitor", "runs", "hazard%", "FPR", "FNR",
                   "ACC", "F1"});
  const std::vector<std::string> lineup = {"guideline", "mpc", "cawot",
                                           "cawt"};

  for (const auto& stack :
       {sim::glucosym_openaps_stack(), sim::padova_basalbolus_stack()}) {
    core::ExperimentContext context;
    recorder.time_stage("prepare " + stack.name, 0, [&] {
      context = core::prepare_experiment(stack, config, pool);
    });
    const auto hazard_fraction =
        context.baseline.resilience.hazard_coverage();

    std::vector<core::MonitorEval> evals;
    recorder.time_stage("evaluate[fused] " + stack.name, context.run_count(),
                        [&] {
                          evals = core::evaluate_monitors(context, lineup,
                                                          pool);
                        });
    for (const auto& eval : evals) {
      bench::add_accuracy_row(table, stack.name, eval, context.run_count(),
                              hazard_fraction);
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape (paper Table V): CAWT holds the best F1/ACC and\n"
      "lowest FPR on both stacks; CAWOT beats Guideline/MPC on Glucosym;\n"
      "Guideline collapses on the Padova stack (FPR ~ 0.99).\n");
  return 0;
}
