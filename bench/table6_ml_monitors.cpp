// Table VI — CAWT vs the ML baseline monitors (DT, MLP, LSTM) on both
// stacks, at the sample level (tolerance window) and the simulation level
// (two regions).
//
// The whole line-up is scored from ONE fused campaign pass per stack:
// without mitigation the monitors are passive observers, so a single
// simulation feeds all of them (sim observer banks + MonitorBatch ML
// inference), replacing the former one-campaign-per-monitor protocol.
// `--fused=0` restores the per-monitor passes for A/B timing; both paths
// produce byte-identical reports.
//
// Paper shape: CAWT best F1 at both levels; DT keeps FNR low but pays a
// high FPR (0.08-0.20 sample level; 0.56-1.00 simulation level).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/true);
  const bool fused = flags.get_bool("fused", true);
  bench::print_header("Table VI: CAWT vs ML monitors", config);
  bench::BenchRecorder recorder("table6_ml_monitors");
  bool ab_failed = false;

  ThreadPool pool;
  TextTable table({"simulator", "monitor", "FPR", "FNR", "ACC", "F1",
                   "simFPR", "simFNR", "simACC", "simF1"});
  const std::vector<std::string> lineup = {"dt", "mlp", "lstm", "cawt"};

  for (const auto& stack :
       {sim::glucosym_openaps_stack(), sim::padova_basalbolus_stack()}) {
    core::ExperimentContext context;
    recorder.time_stage("prepare " + stack.name, 0, [&] {
      context = core::prepare_experiment(stack, config, pool);
    });

    std::vector<core::MonitorEval> evals;
    recorder.time_stage(
        (fused ? "evaluate[fused] " : "evaluate[per-monitor] ") + stack.name,
        context.run_count() * (fused ? 1 : lineup.size()), [&] {
          if (fused) {
            evals = core::evaluate_monitors(context, lineup, pool);
          } else {
            for (const std::string& name : lineup) {
              evals.push_back(core::evaluate_monitor(
                  context, name,
                  core::monitor_factory_by_name(context, name), pool));
            }
          }
        });

    for (const auto& eval : evals) {
      const auto& s = eval.accuracy.sample;
      const auto& sim_cm = eval.accuracy.simulation;
      table.add_row({stack.name, eval.name, TextTable::num(s.fpr(), 3),
                     TextTable::num(s.fnr(), 3),
                     TextTable::num(s.accuracy(), 3),
                     TextTable::num(s.f1(), 3),
                     TextTable::num(sim_cm.fpr(), 3),
                     TextTable::num(sim_cm.fnr(), 3),
                     TextTable::num(sim_cm.accuracy(), 3),
                     TextTable::num(sim_cm.f1(), 3)});
    }

    // A/B stage: the pre-refactor evaluation protocol (one campaign per
    // monitor, scalar backend, per-lane monitor stepping) against the
    // fused batched pass above — reports must be byte-identical.
    if (flags.get_bool("ab", false)) {
      core::EvalOptions old_path;
      old_path.fused = false;
      old_path.backend = sim::SimBackend::kScalar;
      std::vector<core::MonitorEval> reference;
      recorder.time_stage("evaluate[pre-refactor] " + stack.name,
                          context.run_count() * lineup.size(), [&] {
                            reference = core::evaluate_monitors(
                                context, lineup, pool, old_path);
                          });
      bool identical = evals.size() == reference.size();
      for (std::size_t m = 0; identical && m < evals.size(); ++m) {
        const auto& a = evals[m];
        const auto& b = reference[m];
        identical =
            a.accuracy.sample.tp == b.accuracy.sample.tp &&
            a.accuracy.sample.fp == b.accuracy.sample.fp &&
            a.accuracy.sample.fn == b.accuracy.sample.fn &&
            a.accuracy.sample.tn == b.accuracy.sample.tn &&
            a.accuracy.simulation.tp == b.accuracy.simulation.tp &&
            a.accuracy.simulation.fp == b.accuracy.simulation.fp &&
            a.accuracy.simulation.fn == b.accuracy.simulation.fn &&
            a.accuracy.simulation.tn == b.accuracy.simulation.tn &&
            a.accuracy.runs == b.accuracy.runs &&
            a.accuracy.hazardous_runs == b.accuracy.hazardous_runs &&
            a.timeliness.reaction_min == b.timeliness.reaction_min &&
            a.timeliness.hazardous_runs == b.timeliness.hazardous_runs &&
            a.timeliness.early_detections == b.timeliness.early_detections;
      }
      std::printf("A/B %s: fused reports byte-identical to pre-refactor: %s\n",
                  stack.name.c_str(), identical ? "yes" : "NO (bug!)");
      ab_failed |= !identical;
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape (paper Table VI): CAWT leads F1 at both levels;\n"
      "DT trades a low FNR for the highest FPR of the line-up.\n");
  // The --ab stage is an executable guarantee: report divergence is a
  // failing exit, not just a printed note.
  return ab_failed ? 1 : 0;
}
