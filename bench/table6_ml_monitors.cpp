// Table VI — CAWT vs the ML baseline monitors (DT, MLP, LSTM) on both
// stacks, at the sample level (tolerance window) and the simulation level
// (two regions).
//
// Paper shape: CAWT best F1 at both levels; DT keeps FNR low but pays a
// high FPR (0.08-0.20 sample level; 0.56-1.00 simulation level).
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/true);
  bench::print_header("Table VI: CAWT vs ML monitors", config);

  ThreadPool pool;
  TextTable table({"simulator", "monitor", "FPR", "FNR", "ACC", "F1",
                   "simFPR", "simFNR", "simACC", "simF1"});

  for (const auto& stack :
       {sim::glucosym_openaps_stack(), sim::padova_basalbolus_stack()}) {
    auto context = core::prepare_experiment(stack, config, pool);
    for (const std::string name : {"dt", "mlp", "lstm", "cawt"}) {
      const auto eval = core::evaluate_monitor(
          context, name, core::monitor_factory_by_name(context, name), pool);
      const auto& s = eval.accuracy.sample;
      const auto& sim_cm = eval.accuracy.simulation;
      table.add_row({stack.name, eval.name, TextTable::num(s.fpr(), 3),
                     TextTable::num(s.fnr(), 3),
                     TextTable::num(s.accuracy(), 3),
                     TextTable::num(s.f1(), 3),
                     TextTable::num(sim_cm.fpr(), 3),
                     TextTable::num(sim_cm.fnr(), 3),
                     TextTable::num(sim_cm.accuracy(), 3),
                     TextTable::num(sim_cm.f1(), 3)});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape (paper Table VI): CAWT leads F1 at both levels;\n"
      "DT trades a low FNR for the highest FPR of the line-up.\n");
  return 0;
}
