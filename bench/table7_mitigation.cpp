// Table VII — hazard mitigation with Algorithm 1: recovery rate, new
// hazards introduced by false alarms, and average risk (Eq. 9), comparing
// CAWT against the DT, MLP, and MPC monitors under the same fixed-max
// mitigation strategy (Glucosym stack). Mitigation makes monitors active,
// so each drives its own streaming pass; the matched unmitigated twins
// come from the baseline hazard bits — no campaign is retained.
//
// Paper shape: CAWT prevents ~54% of hazards with almost no new hazards
// and the lowest average risk; DT/MLP recover ~40% but introduce hundreds
// of new hazards from false alarms; MPC barely recovers (~4%) for lack of
// reaction time.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/true);
  bench::print_header("Table VII: hazard mitigation (Algorithm 1)", config);
  bench::BenchRecorder recorder("table7_mitigation");

  ThreadPool pool;
  const auto stack = sim::glucosym_openaps_stack();
  core::ExperimentContext context;
  recorder.time_stage("prepare", 0, [&] {
    context = core::prepare_experiment(stack, config, pool);
  });

  TextTable table({"monitor", "recovery rate", "new hazards", "avg risk",
                   "baseline hazards"});
  const std::vector<std::string> monitors =
      config.train_ml ? std::vector<std::string>{"cawt", "dt", "mlp", "mpc"}
                      : std::vector<std::string>{"cawt", "mpc"};
  core::EvalOptions options;
  options.mitigation_enabled = true;
  std::vector<core::MonitorEval> evals;
  recorder.time_stage("evaluate[mitigation]",
                      context.run_count() * monitors.size(), [&] {
                        evals = core::evaluate_monitors(context, monitors,
                                                        pool, options);
                      });
  for (const auto& eval : evals) {
    const auto& report = eval.mitigation;
    table.add_row({eval.name, TextTable::pct(report.recovery_rate()),
                   std::to_string(report.new_hazards),
                   TextTable::num(report.average_risk(), 3),
                   std::to_string(report.baseline_hazards)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape (paper Table VII): CAWT best recovery with ~no new\n"
      "hazards and the lowest average risk; MPC recovers the least; DT/MLP\n"
      "recover some but inject many new hazards via false alarms.\n");
  return 0;
}
