// Table VII — hazard mitigation with Algorithm 1: recovery rate, new
// hazards introduced by false alarms, and average risk (Eq. 9), comparing
// CAWT against the DT, MLP, and MPC monitors under the same fixed-max
// mitigation strategy (Glucosym stack).
//
// Paper shape: CAWT prevents ~54% of hazards with almost no new hazards
// and the lowest average risk; DT/MLP recover ~40% but introduce hundreds
// of new hazards from false alarms; MPC barely recovers (~4%) for lack of
// reaction time.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/true);
  bench::print_header("Table VII: hazard mitigation (Algorithm 1)", config);

  ThreadPool pool;
  const auto stack = sim::glucosym_openaps_stack();
  auto context = core::prepare_experiment(stack, config, pool);

  TextTable table({"monitor", "recovery rate", "new hazards", "avg risk",
                   "baseline hazards"});
  const std::vector<std::string> monitors =
      config.train_ml ? std::vector<std::string>{"cawt", "dt", "mlp", "mpc"}
                      : std::vector<std::string>{"cawt", "mpc"};
  for (const auto& name : monitors) {
    const auto eval = core::evaluate_monitor(
        context, name, core::monitor_factory_by_name(context, name), pool,
        /*mitigation_enabled=*/true);
    const auto report =
        metrics::evaluate_mitigation(context.baseline, eval.campaign);
    table.add_row({eval.name, TextTable::pct(report.recovery_rate()),
                   std::to_string(report.new_hazards),
                   TextTable::num(report.average_risk, 3),
                   std::to_string(report.baseline_hazards)});
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape (paper Table VII): CAWT best recovery with ~no new\n"
      "hazards and the lowest average risk; MPC recovers the least; DT/MLP\n"
      "recover some but inject many new hazards via false alarms.\n");
  return 0;
}
