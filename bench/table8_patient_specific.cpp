// Table VIII — patient-specific vs population-based CAWT thresholds.
//
// Both threshold variants are passive observers, so the whole table comes
// from ONE fused campaign pass with per-patient accumulators (formerly one
// campaign per patient per variant). Paper shape: the patient-specific
// monitor keeps FNR near zero and gains F1/accuracy/EDR over the
// population monitor on every examined patient.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/false);
  bench::print_header("Table VIII: patient-specific vs population thresholds",
                      config);
  bench::BenchRecorder recorder("table8_patient_specific");

  ThreadPool pool;
  const auto stack = sim::glucosym_openaps_stack();
  core::ExperimentContext context;
  recorder.time_stage("prepare", 0, [&] {
    context = core::prepare_experiment(stack, config, pool);
  });

  core::EvalOptions options;
  options.per_patient = true;
  std::vector<core::MonitorEval> evals;
  recorder.time_stage("evaluate[fused per-patient]", context.run_count(),
                      [&] {
                        evals = core::evaluate_monitor_set(
                            context,
                            {{"patient-specific",
                              core::cawt_factory(context.artifacts)},
                             {"population",
                              core::cawt_population_factory(
                                  context.artifacts)}},
                            pool, options);
                      });

  TextTable table({"patient", "thresholds", "FPR", "FNR", "ACC", "F1",
                   "EDR"});
  // The paper reports three representative patients; we report every
  // patient of the cohort for both threshold variants.
  for (int p = 0; p < stack.cohort_size; ++p) {
    const auto patient = stack.make_patient(p);
    for (const auto& eval : evals) {
      const auto& accuracy =
          eval.accuracy_by_patient[static_cast<std::size_t>(p)];
      const auto& timeliness =
          eval.timeliness_by_patient[static_cast<std::size_t>(p)];
      table.add_row(
          {patient->name(), eval.name,
           TextTable::num(accuracy.sample.fpr(), 3),
           TextTable::num(accuracy.sample.fnr(), 3),
           TextTable::num(accuracy.sample.accuracy(), 3),
           TextTable::num(accuracy.sample.f1(), 3),
           TextTable::pct(timeliness.early_detection_rate())});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape (paper Table VIII): patient-specific thresholds\n"
      "keep FNR low and win on F1 and early-detection rate.\n");
  return 0;
}
