// Table VIII — patient-specific vs population-based CAWT thresholds.
//
// Population thresholds are learned from the pooled violation data of a
// 70% patient subset and applied unchanged to the remaining patients;
// patient-specific thresholds are learned per patient. Paper shape: the
// patient-specific monitor keeps FNR near zero and gains F1/accuracy/EDR
// over the population monitor on every examined patient.
#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto config = bench::config_from_flags(flags, /*needs_ml=*/false);
  bench::print_header("Table VIII: patient-specific vs population thresholds",
                      config);

  ThreadPool pool;
  const auto stack = sim::glucosym_openaps_stack();
  auto context = core::prepare_experiment(stack, config, pool);

  TextTable table({"patient", "thresholds", "FPR", "FNR", "ACC", "F1",
                   "EDR"});
  // The paper reports three representative patients; we report every
  // patient of the cohort for both threshold variants.
  for (int p = 0; p < stack.cohort_size; ++p) {
    for (const bool population : {false, true}) {
      const auto factory = population
                               ? core::cawt_population_factory(
                                     context.artifacts)
                               : core::cawt_factory(context.artifacts);
      aps::sim::CampaignOptions options;
      const auto campaign = sim::run_campaign(
          stack, context.scenarios, factory, options, &pool, {p});
      const auto accuracy =
          metrics::evaluate_accuracy(campaign, config.tolerance_steps);
      const auto timeliness = metrics::evaluate_timeliness(campaign);
      const auto patient = stack.make_patient(p);
      table.add_row(
          {patient->name(), population ? "population" : "patient-specific",
           TextTable::num(accuracy.sample.fpr(), 3),
           TextTable::num(accuracy.sample.fnr(), 3),
           TextTable::num(accuracy.sample.accuracy(), 3),
           TextTable::num(accuracy.sample.f1(), 3),
           TextTable::pct(timeliness.early_detection_rate())});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nexpected shape (paper Table VIII): patient-specific thresholds\n"
      "keep FNR low and win on F1 and early-detection rate.\n");
  return 0;
}
