#!/usr/bin/env python3
"""Regression gate over BENCH_serve_soak.json.

Belt and braces next to the bench's own exit code: re-checks the recorded
JSON so the gate also covers what actually lands in the published artifact.
Checks the calm soak stage (p99 budget, flat RSS, zero degraded cycles with
degradation disabled, churn actually happened) and both admission overload
stages:

  * overload_degrade -- the ladder sat at kDegrade, 2x offered load was
    absorbed with zero sheds, and tick p99 stayed inside the same budget
    the calm soak is held to;
  * overload_shed -- the ladder sat at kShed, no in-quota ("care") cycle
    was ever dropped, the over-quota ("bulk") tenant shed a nonzero
    excess, offered == served + shed reconciles exactly, and every
    session-open attempted while shedding came back as a typed reject.

Usage: gate_serve_soak.py [path-to-BENCH_serve_soak.json]
"""
import json
import sys

P99_BUDGET_US = 250_000
RSS_SLACK_MB = 64


def stage(data, prefix):
    return next(
        (s for s in data["stages"] if s["name"].startswith(prefix)), None)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_serve_soak.json"
    data = json.load(open(path))
    failures = []

    soak = stage(data, "soak/")
    if soak is None:
        sys.exit("FAIL: no soak stage recorded")
    print(f"{soak['name']}: {soak['runs_per_s']:.0f} cycles/s, "
          f"p99 {soak['p99_us'] / 1000:.2f} ms, "
          f"RSS {soak['rss_first_mb']:.1f} -> {soak['rss_last_mb']:.1f} MB, "
          f"degraded {soak['degraded_cycles']:.0f}, "
          f"churn {soak['churn_events']:.0f}")
    if soak["p99_us"] > P99_BUDGET_US:
        failures.append(
            f"soak tick p99 {soak['p99_us'] / 1000:.2f} ms > "
            f"{P99_BUDGET_US / 1000:.0f} ms budget")
    if soak["rss_growth_mb"] > RSS_SLACK_MB:
        failures.append(
            f"RSS grew {soak['rss_growth_mb']:.1f} MB across the soak")
    if soak["deadline_us"] == 0 and soak["degraded_cycles"] != 0:
        failures.append(f"{soak['degraded_cycles']:.0f} degraded cycles "
                        f"with degradation disabled")
    if soak["churn_events"] <= 0:
        failures.append("no churn events recorded")

    degrade = stage(data, "overload_degrade/")
    if degrade is None:
        failures.append("no overload_degrade stage recorded")
    else:
        print(f"{degrade['name']}: state {degrade['overload_state']:.0f}, "
              f"p99 {degrade['p99_us'] / 1000:.2f} ms, "
              f"served {degrade['served_cycles']:.0f}/"
              f"{degrade['offered_cycles']:.0f}, "
              f"degraded {degrade['degraded_cycles']:.0f}")
        if degrade["overload_state"] != 1:
            failures.append(
                f"overload_degrade: ladder sat at "
                f"{degrade['overload_state']:.0f}, expected kDegrade (1)")
        if degrade["shed_cycles"] != 0:
            failures.append(
                f"overload_degrade: {degrade['shed_cycles']:.0f} cycles "
                f"shed in the degrade-only stage")
        if degrade["p99_us"] > P99_BUDGET_US:
            failures.append(
                f"overload_degrade: p99 {degrade['p99_us'] / 1000:.2f} ms "
                f"over budget at 2x load")

    shed = stage(data, "overload_shed/")
    if shed is None:
        failures.append("no overload_shed stage recorded")
    else:
        total_shed = shed["shed_tick_care"] + shed["shed_tick_bulk"]
        print(f"{shed['name']}: state {shed['overload_state']:.0f}, "
              f"offered {shed['offered_cycles']:.0f} = "
              f"served {shed['served_cycles']:.0f} + shed {total_shed:.0f} "
              f"(care {shed['shed_tick_care']:.0f}, "
              f"bulk {shed['shed_tick_bulk']:.0f}), "
              f"opens rejected {shed['shed_open']:.0f}/"
              f"{shed['open_attempts']:.0f}")
        if shed["overload_state"] != 2:
            failures.append(
                f"overload_shed: ladder sat at "
                f"{shed['overload_state']:.0f}, expected kShed (2)")
        if shed["shed_tick_care"] != 0:
            failures.append(
                f"overload_shed: in-quota tenant lost "
                f"{shed['shed_tick_care']:.0f} cycles")
        if shed["shed_tick_bulk"] == 0:
            failures.append(
                "overload_shed: over-quota tenant shed nothing at 2x load")
        if shed["offered_cycles"] != shed["served_cycles"] + total_shed:
            failures.append(
                f"overload_shed: offered {shed['offered_cycles']:.0f} != "
                f"served {shed['served_cycles']:.0f} + shed {total_shed:.0f}")
        if (shed["open_attempts"] == 0
                or shed["shed_open"] != shed["open_attempts"]):
            failures.append(
                f"overload_shed: {shed['shed_open']:.0f} typed open rejects "
                f"for {shed['open_attempts']:.0f} attempts while shedding")

    for failure in failures:
        print("FAIL:", failure)
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
