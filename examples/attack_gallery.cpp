// Attack gallery: walks each fault/attack class of Table II through the
// closed loop on one patient and reports what the unprotected controller
// does versus the CAWT-guarded system — a compact tour of the threat model
// (availability, DoS, integrity, memory faults).
//
// Build & run:  ./build/examples/attack_gallery [--patient=N]
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/monitor_factory.h"
#include "fi/campaign.h"
#include "sim/runner.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const int patient_id = flags.get_int("patient", 7);

  const sim::Stack stack = sim::glucosym_openaps_stack();
  const auto patient = stack.make_patient(patient_id);
  const auto controller = stack.make_controller(*patient);
  std::printf("patient %s, basal %.2f U/h\n\n", patient->name().c_str(),
              patient->basal_rate_u_per_h());

  // Learn patient-specific thresholds from a quick adversarial campaign.
  ThreadPool pool;
  const auto grid = fi::CampaignGrid::quick();
  const auto training = sim::run_campaign(
      stack, fi::enumerate_scenarios(grid), sim::null_monitor_factory(), {},
      &pool, {patient_id});
  const auto profiles = core::stack_profiles(stack);
  const auto& profile = profiles[static_cast<std::size_t>(patient_id)];
  monitor::CawConfig caw_config;
  std::vector<const sim::SimResult*> runs;
  for (const auto& r : training.by_patient[0]) runs.push_back(&r);
  const auto learned = core::learn_thresholds(
      core::extract_rule_datasets(runs, caw_config, profile.basal_rate,
                                  profile.isf),
      monitor::default_thresholds(profile.steady_state_iob));
  caw_config.thresholds = learned.values;

  TextTable table({"attack", "unprotected BG range", "hazard",
                   "guarded BG range", "alarm step", "rule"});
  for (const auto type :
       {fi::FaultType::kTruncate, fi::FaultType::kHold, fi::FaultType::kMax,
        fi::FaultType::kMin, fi::FaultType::kAdd, fi::FaultType::kSub,
        fi::FaultType::kBitflipDec}) {
    for (const auto target :
         {fi::FaultTarget::kSensorGlucose, fi::FaultTarget::kCommandRate}) {
      sim::SimConfig config;
      config.initial_bg = 140.0;
      config.fault.type = type;
      config.fault.target = target;
      config.fault.magnitude =
          target == fi::FaultTarget::kSensorGlucose ? 75.0 : 2.0;
      config.fault.start_step = 30;
      config.fault.duration_steps = 36;

      monitor::NullMonitor unprotected;
      const auto bare =
          sim::run_simulation(*patient, *controller, unprotected, config);

      monitor::CawMonitor cawt(caw_config);
      config.mitigation_enabled = true;
      const auto guarded =
          sim::run_simulation(*patient, *controller, cawt, config);

      const auto range = [](const sim::SimResult& r) {
        double lo = 1e9, hi = -1e9;
        for (const auto& s : r.steps) {
          lo = std::min(lo, s.true_bg);
          hi = std::max(hi, s.true_bg);
        }
        return "[" + TextTable::num(lo, 0) + "," + TextTable::num(hi, 0) +
               "]";
      };
      int rule = -1;
      const int alarm_step = guarded.first_alarm_step();
      if (alarm_step >= 0) {
        rule = guarded.steps[static_cast<std::size_t>(alarm_step)].rule_id;
      }
      table.add_row({config.fault.name(), range(bare),
                     bare.label.hazardous ? to_string(bare.label.type) : "-",
                     range(guarded),
                     alarm_step >= 0 ? std::to_string(alarm_step) : "-",
                     rule >= 0 ? std::to_string(rule) : "-"});
    }
  }
  table.print(std::cout);
  std::printf(
      "\nreading: forced-max attacks drag BG down (H1); starvation attacks\n"
      "(truncate/min/sub on the rate, or forced-low glucose readings) push\n"
      "it up (H2); the guarded column shows the monitor + Algorithm 1\n"
      "narrowing the excursion, with the Table I rule that caught it.\n");
  return 0;
}
