// Meal disturbance (extension beyond the paper's no-meal protocol): checks
// that the learned monitor does not mistake ordinary post-meal glucose
// excursions for attacks, and still catches an attack launched during the
// meal absorption window.
//
// Build & run:  ./build/example_meal_disturbance
#include <cstdio>

#include "core/monitor_factory.h"
#include "fi/campaign.h"
#include "sim/runner.h"
#include "sim/stack.h"

namespace {

using namespace aps;

/// Run one simulation with a 45 g dinner at t = 2 h, optional attack.
sim::SimResult run_meal(const patient::PatientModel& patient,
                        const controller::Controller& controller,
                        monitor::Monitor& monitor, bool with_attack,
                        bool mitigate) {
  sim::SimConfig config;
  config.initial_bg = 120.0;
  config.meals.push_back({/*step=*/24, /*carbs_g=*/45.0});  // t = 2 h
  if (with_attack) {
    config.fault.type = fi::FaultType::kMax;
    config.fault.target = fi::FaultTarget::kCommandRate;
    config.fault.start_step = 36;  // during meal absorption
    config.fault.duration_steps = 30;
  }
  config.mitigation_enabled = mitigate;
  return sim::run_simulation(patient, controller, monitor, config);
}

}  // namespace

int main() {
  const auto stack = sim::glucosym_openaps_stack();
  const int patient_id = 5;
  const auto patient = stack.make_patient(patient_id);
  const auto controller = stack.make_controller(*patient);

  // Train CAWT on the standard (no-meal) adversarial campaign.
  ThreadPool pool;
  const auto training = sim::run_campaign(
      stack, fi::enumerate_scenarios(fi::CampaignGrid::quick()),
      sim::null_monitor_factory(), {}, &pool, {patient_id});
  const auto profiles = core::stack_profiles(stack);
  const auto& profile = profiles[static_cast<std::size_t>(patient_id)];
  monitor::CawConfig caw_config;
  std::vector<const sim::SimResult*> runs;
  for (const auto& r : training.by_patient[0]) runs.push_back(&r);
  caw_config.thresholds =
      core::learn_thresholds(
          core::extract_rule_datasets(runs, caw_config, profile.basal_rate,
                                      profile.isf),
          monitor::default_thresholds(profile.steady_state_iob))
          .values;
  monitor::CawMonitor cawt(caw_config);

  const auto summarize = [](const char* tag, const sim::SimResult& r) {
    double lo = 1e9, hi = -1e9;
    int alarms = 0;
    for (const auto& s : r.steps) {
      lo = std::min(lo, s.true_bg);
      hi = std::max(hi, s.true_bg);
      alarms += s.alarm ? 1 : 0;
    }
    std::printf("%-28s BG [%3.0f, %3.0f]  hazard=%-4s  alarms=%d\n", tag, lo,
                hi, r.label.hazardous ? "YES" : "no", alarms);
  };

  std::printf("patient %s, 45 g meal at t = 2 h\n\n",
              patient->name().c_str());
  summarize("meal only, no monitor:",
            run_meal(*patient, *controller, cawt, false, false));
  monitor::CawMonitor fresh1(caw_config);
  summarize("meal only, CAWT watching:",
            run_meal(*patient, *controller, fresh1, false, false));
  monitor::NullMonitor null_monitor;
  summarize("meal + overdose attack:",
            run_meal(*patient, *controller, null_monitor, true, false));
  monitor::CawMonitor fresh2(caw_config);
  summarize("meal + attack, CAWT+mitig.:",
            run_meal(*patient, *controller, fresh2, true, true));
  std::printf(
      "\nthe monitor should stay (mostly) quiet through the benign meal\n"
      "excursion and still catch and blunt the overdose attack.\n");
  return 0;
}
