// Tiny blocking ingest client: opens N synthetic sessions against a
// running `serve_demo --listen` server, streams a plausible CGM-ish
// observation sequence through each, and prints the decisions the server
// fans back. Demonstrates the full conversation (hello -> open -> tick
// stream -> close with final stats) a real device gateway would speak.
//
// Flags:
//   --host=<ip>       server address (default 127.0.0.1)
//   --port=<n>        server port (required)
//   --sessions=<n>    concurrent synthetic sessions (default 4)
//   --cycles=<n>      observations per session (default 48)
//   --monitor=<name>  registered monitor to attach (default guideline)
//   --prefix=<str>    patient-id prefix so repeated runs don't collide
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "net/client.h"

namespace {

/// A benign daily-rhythm glucose trace with a late hypo swing, so the
/// monitors have something to alarm about.
aps::monitor::Observation synth_observation(std::uint64_t session,
                                            std::uint64_t cycle) {
  aps::monitor::Observation obs;
  const double phase = static_cast<double>(session) * 0.7;
  const double t = static_cast<double>(cycle);
  obs.time_min = t * 5.0;
  obs.bg = 120.0 + 40.0 * std::sin(t / 24.0 + phase) - t * 0.5;
  obs.bg_rate = 40.0 / 24.0 * std::cos(t / 24.0 + phase) - 0.5;
  obs.iob = 1.5 + 0.5 * std::sin(t / 12.0 + phase);
  obs.iob_rate = 0.5 / 12.0 * std::cos(t / 12.0 + phase);
  obs.commanded_rate = 1.0 + 0.2 * std::sin(t / 6.0);
  obs.previous_rate = 1.0 + 0.2 * std::sin((t - 1.0) / 6.0);
  obs.action = aps::ControlAction::kKeepInsulin;
  obs.basal_rate = 1.0;
  obs.isf = 45.0;
  return obs;
}

}  // namespace

int main(int argc, char** argv) try {
  aps::CliFlags flags(argc, argv);
  const std::string host = flags.get_string("host", "127.0.0.1");
  const int port = flags.get_int("port", 0);
  const auto sessions =
      static_cast<std::uint64_t>(flags.get_int("sessions", 4));
  const auto cycles = static_cast<std::uint64_t>(flags.get_int("cycles", 48));
  const std::string monitor = flags.get_string("monitor", "guideline");
  const std::string prefix = flags.get_string("prefix", "net-client");
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "usage: net_client --port=<n> [--host=<ip>] "
                         "[--sessions=<n>] [--cycles=<n>] "
                         "[--monitor=<name>]\n");
    return 2;
  }

  aps::net::BlockingClient client(host, static_cast<std::uint16_t>(port),
                                  "net_client example");
  std::printf("connected to %s:%d (server generation %ju)\n", host.c_str(),
              port, static_cast<std::uintmax_t>(client.server_generation()));

  for (std::uint64_t token = 0; token < sessions; ++token) {
    client.open_session(token,
                        prefix + "/session" + std::to_string(token), monitor,
                        0);
  }
  std::printf("opened %ju '%s' sessions\n",
              static_cast<std::uintmax_t>(sessions), monitor.c_str());

  // Interleave the sessions cycle by cycle, the way a gateway multiplexing
  // many pumps would, and collect each cycle's decisions as they fan back.
  std::uint64_t alarms = 0;
  for (std::uint64_t cycle = 0; cycle < cycles; ++cycle) {
    for (std::uint64_t token = 0; token < sessions; ++token) {
      client.send_tick(token, cycle, synth_observation(token, cycle));
    }
    for (std::uint64_t i = 0; i < sessions; ++i) {
      const aps::net::DecisionMsg decision = client.recv_decision();
      if (decision.decision.alarm) {
        ++alarms;
        std::printf("  alarm: session %ju cycle %ju hazard %d rule %d\n",
                    static_cast<std::uintmax_t>(decision.token),
                    static_cast<std::uintmax_t>(decision.seq),
                    static_cast<int>(decision.decision.predicted),
                    decision.decision.rule_id);
      }
    }
  }

  std::uint64_t served_cycles = 0;
  for (std::uint64_t token = 0; token < sessions; ++token) {
    const aps::net::CloseAckMsg ack = client.close_session(token);
    served_cycles += ack.cycles;
  }
  std::printf(
      "done: %ju cycles served, %ju alarms, %ju bytes sent, %ju received\n",
      static_cast<std::uintmax_t>(served_cycles),
      static_cast<std::uintmax_t>(alarms),
      static_cast<std::uintmax_t>(client.bytes_sent()),
      static_cast<std::uintmax_t>(client.bytes_received()));
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
