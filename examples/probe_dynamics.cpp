// Diagnostic probe: prints cohort profiles, fault-free convergence, and a
// quick fault-injection sweep so the simulator's behaviour can be sanity-
// checked at a glance (development aid; not one of the paper's tables).
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "fi/campaign.h"
#include "metrics/evaluation.h"
#include "sim/runner.h"
#include "sim/stack.h"

namespace {

void probe_stack(const aps::sim::Stack& stack) {
  std::printf("=== %s ===\n", stack.name.c_str());

  // Profiles + fault-free convergence from BG 180.
  aps::TextTable profile_table(
      {"patient", "basal U/h", "BG@0", "BG@6h", "BG@12h", "hazard-free"});
  for (int p = 0; p < stack.cohort_size; ++p) {
    const auto patient = stack.make_patient(p);
    const auto controller = stack.make_controller(*patient);
    aps::monitor::NullMonitor monitor;
    aps::sim::SimConfig config;
    config.initial_bg = 180.0;
    const auto result =
        aps::sim::run_simulation(*patient, *controller, monitor, config);
    profile_table.add_row(
        {patient->name(), aps::TextTable::num(patient->basal_rate_u_per_h()),
         aps::TextTable::num(result.steps.front().true_bg, 0),
         aps::TextTable::num(result.steps[72].true_bg, 0),
         aps::TextTable::num(result.steps.back().true_bg, 0),
         result.label.hazardous ? "NO" : "yes"});
  }
  profile_table.print(std::cout);

  // Quick FI sweep without a monitor.
  const auto grid = aps::fi::CampaignGrid::quick();
  const auto scenarios = aps::fi::enumerate_scenarios(grid);
  aps::ThreadPool pool;
  const auto campaign =
      aps::sim::run_campaign(stack, scenarios,
                             aps::sim::null_monitor_factory(), {}, &pool);
  const auto res = aps::metrics::resilience(campaign);
  std::printf(
      "quick campaign: %zu runs, hazard coverage %.1f%%, mean TTH %.0f min, "
      "negative TTH %.1f%%\n",
      res.total_runs, res.hazard_coverage() * 100.0, res.mean_tth_min(),
      res.negative_tth_fraction() * 100.0);

  std::printf("per-patient coverage:");
  for (const auto& runs : campaign.by_patient) {
    std::size_t hazards = 0;
    for (const auto& r : runs) hazards += r.label.hazardous ? 1u : 0u;
    std::printf(" %.0f%%", 100.0 * static_cast<double>(hazards) /
                               static_cast<double>(runs.size()));
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  probe_stack(aps::sim::glucosym_openaps_stack());
  probe_stack(aps::sim::padova_basalbolus_stack());
  probe_stack(aps::sim::glucosym_pid_stack());
  return 0;
}
