// Quickstart: wrap an OpenAPS-style controller with a learned context-aware
// safety monitor and watch it veto an insulin-overdose attack.
//
//   1. pick a virtual patient and its controller,
//   2. run a short fault-injection campaign to collect hazardous traces,
//   3. learn the patient-specific STL thresholds (CAWT),
//   4. replay an attack with and without the monitor + mitigation.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/monitor_factory.h"
#include "fi/campaign.h"
#include "monitor/caw.h"
#include "sim/runner.h"
#include "sim/stack.h"

int main() {
  using namespace aps;

  // --- 1. The closed loop: Glucosym-style patient + OpenAPS controller.
  const sim::Stack stack = sim::glucosym_openaps_stack();
  const int patient_id = 4;
  const auto patient = stack.make_patient(patient_id);
  const auto controller = stack.make_controller(*patient);
  std::printf("patient  : %s (basal %.2f U/h)\n", patient->name().c_str(),
              patient->basal_rate_u_per_h());

  // --- 2. Adversarial training data: inject faults, no monitor.
  const auto grid = fi::CampaignGrid::quick();
  ThreadPool pool;
  const auto training = sim::run_campaign(
      stack, fi::enumerate_scenarios(grid), sim::null_monitor_factory(), {},
      &pool, {patient_id});
  const auto fault_free = sim::run_campaign(
      stack, fi::fault_free_scenarios(grid), sim::null_monitor_factory(), {},
      &pool, {patient_id});

  // --- 3. Learn the patient-specific thresholds for the Table I rules.
  const auto profiles = core::stack_profiles(stack);
  const auto& profile = profiles[static_cast<std::size_t>(patient_id)];
  monitor::CawConfig caw_config;
  std::vector<const sim::SimResult*> runs;
  for (const auto& r : training.by_patient[0]) runs.push_back(&r);
  const auto datasets = core::extract_rule_datasets(
      runs, caw_config, profile.basal_rate, profile.isf);
  const auto learned = core::learn_thresholds(
      datasets, monitor::default_thresholds(profile.steady_state_iob));

  std::printf("learned  :");
  for (const auto& [param, value] : learned.values) {
    std::printf(" %s=%.2f", param.c_str(), value);
  }
  std::printf("\n");

  // --- 4. Replay an insulin-overdose attack (command forced to max for
  //        2.5 h) with and without the monitor.
  sim::SimConfig attack;
  attack.initial_bg = 120.0;
  attack.fault.type = fi::FaultType::kMax;
  attack.fault.target = fi::FaultTarget::kCommandRate;
  attack.fault.start_step = 30;
  attack.fault.duration_steps = 30;

  monitor::NullMonitor unprotected;
  const auto bare =
      sim::run_simulation(*patient, *controller, unprotected, attack);

  caw_config.thresholds = learned.values;
  caw_config.name = "cawt";
  monitor::CawMonitor cawt(caw_config);
  attack.mitigation_enabled = true;
  const auto guarded =
      sim::run_simulation(*patient, *controller, cawt, attack);

  const auto show = [](const char* tag, const sim::SimResult& r) {
    double min_bg = 1e9;
    for (const auto& s : r.steps) min_bg = std::min(min_bg, s.true_bg);
    std::printf("%-10s min BG %.0f mg/dL, hazard=%s, first alarm step %d\n",
                tag, min_bg, r.label.hazardous ? "YES" : "no",
                r.first_alarm_step());
  };
  show("attack:", bare);
  show("guarded:", guarded);
  return 0;
}
