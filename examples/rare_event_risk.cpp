// Rare-event risk analysis of monitored vs unmonitored closed loops
// (scenario engine + cross-entropy importance sampling).
//
// Estimates P(hazard) on the Glucosym cohort under a mild-fault nominal
// distribution for three configurations: no monitor, the rule-based CAWOT
// monitor, and the data-driven CAWT monitor — both with mitigation enabled,
// so an accurate early alarm actually prevents the hazard. Crude Monte
// Carlo at these probabilities would need ~100/p runs per configuration;
// the cross-entropy sampler tilts toward the hazard region and gets a
// tight unbiased estimate from a few thousand.
//
// Build & run:  ./build/example_rare_event_risk [--pilot=500] [--final=2000]
#include <cstdio>

#include "common/cli.h"
#include "core/monitor_factory.h"
#include "fi/campaign.h"
#include "scenario/cross_entropy.h"
#include "sim/runner.h"
#include "sim/stack.h"

int main(int argc, char** argv) {
  using namespace aps;
  const CliFlags flags(argc, argv);
  const auto stack = sim::glucosym_openaps_stack();
  ThreadPool pool;

  // Train CAWT thresholds on the standard adversarial grid campaign.
  std::printf("training CAWT thresholds on the quick grid campaign...\n");
  const auto grid = fi::CampaignGrid::quick();
  const auto training = sim::run_campaign(
      stack, fi::enumerate_scenarios(grid), sim::null_monitor_factory(), {},
      &pool);
  const auto fault_free = sim::run_campaign(
      stack, fi::fault_free_scenarios(grid), sim::null_monitor_factory(), {},
      &pool);
  const auto artifacts = core::learn_artifacts(stack, training, fault_free);

  // Nominal operational distribution: mild transient faults, in-range
  // initial BG, no unannounced meals — hazards are rare by construction.
  auto nominal = scenario::default_stochastic_spec(stack.cohort_size);
  nominal.fault_prob = 0.4;
  nominal.duration_steps = scenario::IntDist::range(2, 30, 4);
  nominal.magnitude_scale = scenario::ValueDist::range(0.1, 1.0, 4);
  nominal.initial_bg = scenario::ValueDist::range(90.0, 180.0, 5);
  nominal.meal_prob = 0.0;
  nominal.cgm_noise_std = 0.0;

  scenario::CrossEntropyConfig ce;
  ce.pilot_runs = static_cast<std::size_t>(flags.get_int("pilot", 500));
  ce.final_runs = static_cast<std::size_t>(flags.get_int("final", 2000));
  ce.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2021));
  ce.options.mitigation_enabled = true;

  struct Config {
    const char* label;
    sim::MonitorFactory factory;
  };
  const Config configs[] = {
      {"no monitor", sim::null_monitor_factory()},
      {"CAWOT (rule-based)", core::cawot_factory(stack)},
      {"CAWT (learned)", core::cawt_factory(artifacts)},
  };

  std::printf("\n%-20s %12s %22s %8s %12s\n", "monitor", "P(hazard)",
              "95% CI", "ESS", "severe hypo");
  for (const Config& config : configs) {
    const auto estimate = scenario::estimate_hazard_probability(
        stack, nominal, config.factory, ce, &pool);
    const auto& final_stats = estimate.final_stats;
    std::printf("%-20s %12.5f [%9.5f,%9.5f] %8.0f %11.2f%%\n", config.label,
                estimate.probability, estimate.ci_low, estimate.ci_high,
                estimate.effective_sample_size,
                100.0 * static_cast<double>(final_stats.severe_hypo_runs) /
                    static_cast<double>(final_stats.runs));
  }
  std::printf(
      "\nboth monitors push P(hazard) well below the no-monitor baseline.\n"
      "note: CAWT trained on the coarse adversarial grid can trail the\n"
      "rule-based defaults on these out-of-distribution *mild* faults —\n"
      "exactly the gap stochastic-campaign training data is meant to close.\n");
  return 0;
}
