// SCS designer: the framework side of the library. Prints the full APS
// Safety Context Specification — accidents, hazards, every UCAS row as its
// STL template (Eq. 1), the HMS templates (Eq. 2) — then refines the free
// thresholds from data for one patient and verifies the refined formulas
// against a recorded trace with the STL engine (offline checking).
//
// Build & run:  ./build/examples/scs_designer
#include <cstdio>
#include <iostream>

#include "core/monitor_factory.h"
#include "core/scs.h"
#include "fi/campaign.h"
#include "sim/runner.h"
#include "sim/stack.h"
#include "stl/formula.h"

namespace {

/// Convert a recorded simulation into an STL trace over the monitor's
/// context variables (BG, BG_rate, IOB, IOB_rate, u1..u4).
aps::stl::Trace to_stl_trace(const aps::sim::SimResult& run) {
  aps::stl::Trace trace(5.0);
  std::vector<double> bg, bg_rate, iob, iob_rate;
  std::vector<std::vector<double>> actions(4);
  for (std::size_t k = 0; k < run.steps.size(); ++k) {
    const auto& s = run.steps[k];
    bg.push_back(s.cgm_bg);
    bg_rate.push_back(k > 0 ? s.cgm_bg - run.steps[k - 1].cgm_bg : 0.0);
    iob.push_back(s.iob);
    iob_rate.push_back(k > 0 ? s.iob - run.steps[k - 1].iob : 0.0);
    for (int a = 0; a < 4; ++a) {
      actions[static_cast<std::size_t>(a)].push_back(
          static_cast<int>(s.action) == a ? 1.0 : 0.0);
    }
  }
  trace.set("BG", bg);
  trace.set("BG_rate", bg_rate);
  trace.set("IOB", iob);
  trace.set("IOB_rate", iob_rate);
  for (int a = 0; a < 4; ++a) {
    trace.set("u" + std::to_string(a + 1), actions[static_cast<std::size_t>(a)]);
  }
  return trace;
}

}  // namespace

int main() {
  using namespace aps;

  // --- 1. The specification, from hazard analysis to STL templates.
  const auto scs = core::aps_scs();
  std::printf("accidents:\n");
  for (const auto& a : scs.accidents()) {
    std::printf("  %s: %s\n", a.id.c_str(), a.description.c_str());
  }
  std::printf("hazards:\n");
  for (const auto& h : scs.hazards()) {
    std::printf("  %s (-> %s): %s\n", h.id.c_str(), h.accident_id.c_str(),
                h.description.c_str());
  }
  std::printf("\nUCAS as STL templates (Eq. 1), thresholds free:\n");
  for (std::size_t i = 0; i < scs.ucas().size(); ++i) {
    std::printf("  rule %-2d [%s]  %s\n", scs.ucas()[i].rule.id,
                scs.ucas()[i].hazard_id.c_str(),
                scs.ucas_formula(i)->to_string().c_str());
  }
  std::printf("\nHMS as STL templates (Eq. 2):\n");
  for (std::size_t i = 0; i < scs.hms().size(); ++i) {
    std::printf("  %s: %s\n", scs.hms()[i].action.c_str(),
                scs.hms_formula(i)->to_string().c_str());
  }

  // --- 2. Data-driven refinement for one patient.
  const auto stack = sim::glucosym_openaps_stack();
  const int patient_id = 6;
  ThreadPool pool;
  const auto training = sim::run_campaign(
      stack, fi::enumerate_scenarios(fi::CampaignGrid::quick()),
      sim::null_monitor_factory(), {}, &pool, {patient_id});
  const auto profiles = core::stack_profiles(stack);
  const auto& profile = profiles[static_cast<std::size_t>(patient_id)];
  std::vector<const sim::SimResult*> runs;
  for (const auto& r : training.by_patient[0]) runs.push_back(&r);
  const auto learned = core::learn_thresholds(
      core::extract_rule_datasets(runs, scs.context_config(),
                                  profile.basal_rate, profile.isf),
      monitor::default_thresholds(profile.steady_state_iob));

  std::printf("\nrefined thresholds for %s:\n",
              stack.make_patient(patient_id)->name().c_str());
  for (const auto& [param, diag] : learned.diagnostics) {
    std::printf("  %-8s = %7.3f   (%d L-BFGS-B iterations, min margin "
                "%+.3f)\n",
                param.c_str(), diag.beta, diag.iterations, diag.min_margin);
  }
  for (const auto& param : learned.defaulted) {
    std::printf("  %-8s   silenced (no hazard evidence in this campaign)\n",
                param.c_str());
  }

  // --- 3. Offline verification of the refined formulas with the STL
  //        engine: hazardous traces must violate at least one UCAS formula;
  //        a fault-free trace must satisfy all of them.
  stl::ParamMap params;
  for (const auto& [name, value] : learned.values) params[name] = value;

  std::size_t hazardous = 0, flagged = 0;
  for (const auto* run : runs) {
    if (!run->label.hazardous) continue;
    ++hazardous;
    const auto trace = to_stl_trace(*run);
    for (std::size_t i = 0; i < scs.ucas().size(); ++i) {
      if (!scs.ucas_formula(i)->sat(trace, 0, params)) {
        ++flagged;
        break;
      }
    }
  }
  std::printf("\noffline STL check: %zu/%zu hazardous traces violate a "
              "refined UCAS formula\n",
              flagged, hazardous);

  const auto fault_free = sim::run_campaign(
      stack, fi::fault_free_scenarios(fi::CampaignGrid::quick()),
      sim::null_monitor_factory(), {}, &pool, {patient_id});
  std::size_t clean = 0, total = 0;
  for (const auto& run : fault_free.by_patient[0]) {
    ++total;
    const auto trace = to_stl_trace(run);
    bool all_sat = true;
    for (std::size_t i = 0; i < scs.ucas().size(); ++i) {
      all_sat &= scs.ucas_formula(i)->sat(trace, 0, params);
    }
    clean += all_sat ? 1u : 0u;
  }
  std::printf("                   %zu/%zu fault-free traces satisfy all "
              "refined formulas\n",
              clean, total);
  return 0;
}
