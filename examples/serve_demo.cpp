// End-to-end serving walkthrough: learn monitor artifacts from a quick
// fault-injection campaign, persist them, load them back in a *fresh*
// MonitorEngine (as a deployed server would — no retraining), and stream
// the recorded cohort traces through concurrent per-patient sessions.
//
// The engine serves on the sharded SoA backend: sessions of one monitor
// land in contiguous lanes behind one batched model call per tick, and a
// hot bundle reload (step 5) bumps the model generation under live
// sessions without perturbing them.
//
// Flags:
//   --dir=<path>        artifact output directory (default serve_artifacts)
//   --ml                also train + serve the tiny DT/MLP/LSTM baselines
//   --scenarios=<n>     scenarios replayed per patient (default 6)
//   --threads=<n>       engine worker threads (default: hardware)
//   --backend=<name>    "sharded" (default) or "scalar" reference path
//   --metrics           dump the engine's metric registry after serving
//                       (Prometheus text on stdout; --metrics-json for the
//                       JSON exposition instead)
//   --replay=<listfile> skip the cohort stream: re-drive a recorded
//                       session listfile through the loaded engine and
//                       verify the decisions match the recording
//   --listen=<port>     after serving, open the TCP ingest front door on
//                       the port (0 = ephemeral) and accept clients until
//                       stdin closes (or --listen-secs elapses)
//   --record=<listfile> with --listen: record every served session to a
//                       listfile replayable via --replay
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "core/experiment.h"
#include "core/threshold_pipeline.h"
#include "io/artifact_io.h"
#include "net/listfile.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "sim/stack.h"

namespace {

using namespace aps;

struct ReplayStats {
  std::size_t sessions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t alarms = 0;
};

/// Replay every recorded trace through one engine session per
/// (patient, scenario) pair, batching all sessions cycle by cycle.
ReplayStats replay_cohort(serve::MonitorEngine& engine,
                          const std::string& monitor_name,
                          const sim::CampaignResult& replay,
                          const core::ExperimentContext& context,
                          int scenarios_per_patient) {
  ReplayStats stats;
  struct Trace {
    serve::SessionId session;
    const sim::SimResult* run;
    double basal_rate;
    double isf;
  };
  std::vector<Trace> traces;
  const auto& by_patient = replay.by_patient;
  for (std::size_t p = 0; p < by_patient.size(); ++p) {
    const auto& profile = context.artifacts.profiles[p];
    const auto count = std::min<std::size_t>(
        by_patient[p].size(), static_cast<std::size_t>(scenarios_per_patient));
    for (std::size_t s = 0; s < count; ++s) {
      const auto id = engine.open_session(
          monitor_name + "/patient" + std::to_string(p) + "/scenario" +
              std::to_string(s),
          monitor_name, static_cast<int>(p));
      traces.push_back(
          {id, &by_patient[p][s], profile.basal_rate, profile.isf});
    }
  }
  stats.sessions = traces.size();

  std::size_t steps = 0;
  for (const auto& trace : traces) {
    steps = std::max(steps, trace.run->steps.size());
  }
  std::vector<serve::SessionInput> batch;
  for (std::size_t k = 0; k < steps; ++k) {
    batch.clear();
    for (const auto& trace : traces) {
      if (k >= trace.run->steps.size()) continue;
      batch.push_back({trace.session,
                       core::observation_at(*trace.run, k, trace.basal_rate,
                                            trace.isf)});
    }
    for (const auto& decision : engine.feed(batch)) {
      if (decision.alarm) ++stats.alarms;
    }
    stats.cycles += batch.size();
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) try {
  CliFlags flags(argc, argv);
  const std::string dir = flags.get_string("dir", "serve_artifacts");
  const bool with_ml = flags.get_bool("ml", false);
  const int scenarios = flags.get_int("scenarios", 6);
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const serve::ServeBackend backend =
      flags.get_string("backend", "sharded") == "scalar"
          ? serve::ServeBackend::kScalar
          : serve::ServeBackend::kSharded;
  const bool metrics_json = flags.get_bool("metrics-json", false);
  const bool metrics = flags.get_bool("metrics", false) || metrics_json;

  // 1. Train: quick campaign + threshold learning (+ tiny ML if asked).
  std::printf("[1/5] running quick training campaign...\n");
  ThreadPool pool;
  core::ExperimentConfig config;
  config.train_ml = with_ml;
  config.ml_data = {.classes = 2, .stride = 10, .max_samples = 5000};
  config.lstm_data = {.classes = 2, .stride = 15, .max_samples = 1500};
  const auto stack = sim::glucosym_openaps_stack();
  const auto context = core::prepare_experiment(stack, config, pool);

  // A small recorded campaign to stream through the engine later (the
  // training pipeline itself is streaming and retains no traces).
  std::vector<fi::Scenario> replay_scenarios(
      context.scenarios.begin(),
      context.scenarios.begin() +
          std::min<std::size_t>(context.scenarios.size(),
                                static_cast<std::size_t>(scenarios)));
  const auto replay = sim::run_campaign(
      stack, replay_scenarios, sim::null_monitor_factory(), {}, &pool);

  // 2. Persist everything a server needs.
  std::filesystem::create_directories(dir);
  const std::string bundle_path = dir + "/bundle.aps";
  io::save_bundle(core::bundle_from_context(context), bundle_path);
  std::printf("[2/5] saved artifact bundle: %s (%ju bytes)\n",
              bundle_path.c_str(),
              static_cast<std::uintmax_t>(
                  std::filesystem::file_size(bundle_path)));

  // 3. Fresh engine, loaded (not retrained) artifacts.
  const core::ArtifactBundle bundle = io::load_bundle(bundle_path);
  serve::MonitorEngine engine({.threads = threads, .backend = backend});
  engine.register_bundle(bundle);
  std::printf("[3/5] fresh %s engine (generation %ju) loaded monitors:",
              backend == serve::ServeBackend::kSharded ? "sharded" : "scalar",
              static_cast<std::uintmax_t>(engine.generation()));
  for (const auto& name : engine.registered_monitors()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  // Sanity: the loaded CAWT reproduces the in-memory monitor exactly.
  {
    auto in_memory = core::cawt_factory(context.artifacts)(0);
    auto loaded = core::factory_from_bundle(bundle, "cawt")(0);
    const auto& run = replay.by_patient[0][0];
    const auto& profile = context.artifacts.profiles[0];
    bool identical = true;
    for (std::size_t k = 0; k < run.steps.size(); ++k) {
      const auto obs =
          core::observation_at(run, k, profile.basal_rate, profile.isf);
      const auto a = in_memory->observe(obs);
      const auto b = loaded->observe(obs);
      if (a.alarm != b.alarm || a.predicted != b.predicted ||
          a.rule_id != b.rule_id) {
        identical = false;
        break;
      }
    }
    std::printf("      loaded bundle reproduces in-memory decisions: %s\n",
                identical ? "yes" : "NO (bug!)");
  }

  // Replay mode: re-drive a recorded listfile instead of the cohort
  // stream. The engine must carry the same bundle the recording ran
  // against for the decision verification to come back clean.
  if (flags.has("replay")) {
    const std::string listfile = flags.get_string("replay", "");
    std::printf("[4/5] replaying session listfile %s...\n", listfile.c_str());
    const net::ReplayResult result = net::replay_listfile(listfile, engine);
    std::printf(
        "      %zu sessions (%zu closed), %ju ticks re-driven\n"
        "      %ju decisions compared, %ju mismatches, %ju unmatched -> %s\n",
        result.sessions_opened, result.sessions_closed,
        static_cast<std::uintmax_t>(result.ticks),
        static_cast<std::uintmax_t>(result.compared),
        static_cast<std::uintmax_t>(result.mismatches),
        static_cast<std::uintmax_t>(result.unmatched),
        result.mismatches == 0 ? "replay matches the recording"
                               : "REPLAY DIVERGED (bug!)");
    return result.mismatches == 0 ? 0 : 1;
  }

  // 4. Stream the recorded cohort through concurrent sessions.
  std::printf("[4/5] streaming cohort traces (%d scenarios/patient)...\n\n",
              scenarios);
  std::vector<std::string> monitors = {"guideline", "cawot", "cawt"};
  if (bundle.dt != nullptr) monitors.emplace_back("dt");
  if (bundle.mlp != nullptr) monitors.emplace_back("mlp");
  if (bundle.lstm != nullptr) monitors.emplace_back("lstm");

  TextTable table({"monitor", "sessions", "cycles", "alarms", "alarm rate"});
  for (const auto& name : monitors) {
    const ReplayStats stats =
        replay_cohort(engine, name, replay, context, scenarios);
    table.add_row({name, std::to_string(stats.sessions),
                   std::to_string(stats.cycles),
                   std::to_string(stats.alarms),
                   stats.cycles == 0
                       ? "-"
                       : TextTable::pct(static_cast<double>(stats.alarms) /
                                        static_cast<double>(stats.cycles))});
  }
  table.print(std::cout);
  const serve::LatencySummary latency = engine.latency();
  std::printf(
      "\n%zu sessions total, %ju cycles served, %zu threads\n"
      "per-tick latency p50/p95/p99: %.1f / %.1f / %.1f us  "
      "(%.0f cycles/s aggregate)\n",
      engine.session_count(),
      static_cast<std::uintmax_t>(engine.total_cycles()),
      engine.thread_count(), latency.p50_us, latency.p95_us, latency.p99_us,
      latency.cycles_per_sec());

  // 5. Hot reload: re-register the bundle file under the live sessions.
  // In-flight sessions keep their generation; new sessions pick up the
  // fresh one — and a corrupt file would throw IoError touching nothing.
  const auto before = engine.generation();
  engine.register_bundle_file(bundle_path);
  std::printf(
      "[5/5] hot-reloaded %s: generation %ju -> %ju, %zu live sessions "
      "untouched\n",
      bundle_path.c_str(), static_cast<std::uintmax_t>(before),
      static_cast<std::uintmax_t>(engine.generation()),
      engine.session_count());

  // Optional network front door: serve live TCP clients on the same
  // engine (see examples/net_client.cpp for the matching client).
  if (flags.has("listen")) {
    net::ServerConfig server_config;
    server_config.port =
        static_cast<std::uint16_t>(flags.get_int("listen", 0));
    server_config.listfile = flags.get_string("record", "");
    net::IngestServer server(engine, server_config);
    server.start();
    std::printf("\ningest server listening on 127.0.0.1:%u%s%s\n",
                server.port(),
                server_config.listfile.empty() ? "" : ", recording to ",
                server_config.listfile.c_str());
    const int listen_secs = flags.get_int("listen-secs", 0);
    if (listen_secs > 0) {
      std::this_thread::sleep_for(std::chrono::seconds(listen_secs));
    } else {
      std::printf("press enter (or close stdin) to stop\n");
      std::cin.get();
    }
    server.stop();
    const net::ServerStats net_stats = server.stats();
    std::printf(
        "served %ju connections, %ju observations in %ju batches "
        "(%ju bytes in, %ju bytes out)\n",
        static_cast<std::uintmax_t>(net_stats.accepted),
        static_cast<std::uintmax_t>(net_stats.ticks_fed),
        static_cast<std::uintmax_t>(net_stats.batches),
        static_cast<std::uintmax_t>(net_stats.bytes_in),
        static_cast<std::uintmax_t>(net_stats.bytes_out));
  }

  // Optional scrape: everything the engine (and the training pipeline)
  // recorded, in the exposition a Prometheus agent — or a JSON consumer —
  // would pull from a real serving process.
  if (metrics) {
    std::printf("\n==== metrics scrape (%s) ====\n",
                metrics_json ? "json" : "prometheus text");
    const obs::RegistrySnapshot snapshot = engine.registry().scrape();
    std::fputs(
        (metrics_json ? snapshot.json() : snapshot.prometheus()).c_str(),
        stdout);
  }
  return 0;
} catch (const std::exception& e) {
  std::fprintf(stderr, "error: %s\n", e.what());
  return 1;
}
