// Tiny command-line flag parser for benches and examples.
//
// Supported syntax: --name=value, --name value, and boolean --flag.
// Unknown flags are reported so bench invocations stay typo-safe.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace aps {

class CliFlags {
 public:
  CliFlags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace aps
