// Bounded lock-free multi-producer queue (Vyukov-style array queue with
// per-cell sequence numbers). The serving group's ingest path uses one per
// engine replica: any number of frontend threads push tick jobs, the
// replica's worker pops them. try_push never blocks — a full queue returns
// false so the caller applies explicit backpressure (count it, yield,
// retry) instead of letting the queue grow without bound.
//
// The implementation is the classic bounded MPMC design, so it is also
// safe with several consumers; we only rely on (and test) the MPSC shape.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace aps {

template <typename T>
class MpscQueue {
 public:
  /// Capacity is rounded up to the next power of two (minimum 2).
  explicit MpscQueue(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        cells_(mask_ + 1) {
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Enqueue from any thread. Returns false when the queue is full (the
  /// explicit backpressure signal — nothing was enqueued).
  [[nodiscard]] bool try_push(T value) {
    std::size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(value);
          cell.sequence.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS refreshed pos; retry against the new slot.
      } else if (diff < 0) {
        return false;  // full: the cell still holds an unpopped value
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Dequeue (single consumer in our usage). Returns false when empty.
  [[nodiscard]] bool try_pop(T& out) {
    std::size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      const std::size_t seq = cell.sequence.load(std::memory_order_acquire);
      const std::intptr_t diff = static_cast<std::intptr_t>(seq) -
                                 static_cast<std::intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          out = std::move(cell.value);
          cell.sequence.store(pos + mask_ + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
  }

  /// Instantaneous occupancy; approximate under concurrency (monitoring
  /// gauge material, never used for correctness).
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<std::size_t> sequence{0};
    T value{};
  };

  std::size_t mask_;
  std::vector<Cell> cells_;
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producers
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer
};

}  // namespace aps
