// Fixed-capacity ring buffer used for sliding-window computations
// (IOB history, LBGI/HBGI windows, LSTM input windows).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace aps {

/// FIFO with bounded capacity; pushing beyond capacity drops the oldest
/// element. Index 0 is the oldest retained element.
template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {
    assert(capacity_ > 0);
    data_.reserve(capacity_);
  }

  void push(const T& value) {
    if (data_.size() < capacity_) {
      data_.push_back(value);
    } else {
      data_[head_] = value;
      head_ = (head_ + 1) % capacity_;
    }
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] bool full() const { return data_.size() == capacity_; }

  /// i = 0 is the oldest element, i = size()-1 the newest.
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[(head_ + i) % data_.size()];
  }

  [[nodiscard]] const T& back() const { return (*this)[size() - 1]; }
  [[nodiscard]] const T& front() const { return (*this)[0]; }

  void clear() {
    data_.clear();
    head_ = 0;
  }

  /// Copy out in oldest-to-newest order.
  [[nodiscard]] std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) out.push_back((*this)[i]);
    return out;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::vector<T> data_;
};

}  // namespace aps
