// Deterministic random number generation.
//
// Every stochastic component in the library receives an explicit seed so a
// campaign is exactly reproducible run-to-run (DESIGN.md §6). SplitMix64 is
// used to derive independent streams from (seed, stream-id) pairs so that
// adding a consumer never perturbs the draws of existing consumers.
#pragma once

#include <cstdint>
#include <random>

namespace aps {

/// SplitMix64 step; good avalanche, used for seed derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Derive an independent child seed from a parent seed and a stream tag.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t parent,
                                                  std::uint64_t stream) {
  return splitmix64(parent ^ splitmix64(stream));
}

/// Thin deterministic wrapper around mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(seed) {}

  /// Seed this generator was constructed with (split() derives from it, so
  /// children are independent of how many draws the parent has made).
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Child generator on an independent stream; the canonical way to seed
  /// per-scenario / per-consumer randomness. split(t) of the same parent
  /// seed and tag always yields the same stream, regardless of call order.
  [[nodiscard]] Rng split(std::uint64_t tag) const {
    return Rng(derive_seed(seed_, tag));
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Gaussian with the given mean / standard deviation.
  [[nodiscard]] double gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw.
  [[nodiscard]] bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::uint64_t seed_ = 0;
  std::mt19937_64 engine_;
};

}  // namespace aps
