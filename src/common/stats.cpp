#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aps {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> counts(bins, 0);
  if (bins == 0 || hi <= lo) return counts;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<long>(std::floor((x - lo) / width));
    idx = std::clamp(idx, 0L, static_cast<long>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

HistogramAccumulator::HistogramAccumulator(double lo, double hi,
                                           std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {}

void HistogramAccumulator::add(double x) {
  if (counts_.empty() || hi_ <= lo_) return;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>(std::floor((x - lo_) / width));
  idx = std::clamp(idx, 0L, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void HistogramAccumulator::merge(const HistogramAccumulator& other) {
  if (counts_.empty()) {
    *this = other;
    return;
  }
  if (other.counts_.empty()) return;
  if (other.counts_.size() != counts_.size() || other.lo_ != lo_ ||
      other.hi_ != hi_) {
    throw std::invalid_argument(
        "HistogramAccumulator::merge: incompatible (lo, hi, bins)");
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  total_ += other.total_;
}

double HistogramAccumulator::bin_lo(std::size_t b) const {
  if (counts_.empty()) return lo_;
  return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                   static_cast<double>(counts_.size());
}

}  // namespace aps
