#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace aps {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank =
      clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<std::size_t> histogram(std::span<const double> xs, double lo,
                                   double hi, std::size_t bins) {
  std::vector<std::size_t> counts(bins, 0);
  if (bins == 0 || hi <= lo) return counts;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (double x : xs) {
    auto idx = static_cast<long>(std::floor((x - lo) / width));
    idx = std::clamp(idx, 0L, static_cast<long>(bins) - 1);
    ++counts[static_cast<std::size_t>(idx)];
  }
  return counts;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace aps
