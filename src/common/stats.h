// Descriptive statistics helpers used across metrics and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace aps {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  ///< population
[[nodiscard]] double stddev(std::span<const double> xs);    ///< population

/// Linear-interpolated percentile, p in [0, 100]. Empty input -> 0.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

[[nodiscard]] double min_of(std::span<const double> xs);
[[nodiscard]] double max_of(std::span<const double> xs);

/// Equal-width histogram over [lo, hi]; values outside are clamped to the
/// edge bins. Returns per-bin counts.
[[nodiscard]] std::vector<std::size_t> histogram(std::span<const double> xs,
                                                 double lo, double hi,
                                                 std::size_t bins);

/// Incremental mean/variance accumulator (Welford). Mergeable: per-shard
/// accumulators can be combined losslessly (Chan et al. parallel variance),
/// so campaign statistics never require materializing per-run values.
class RunningStats {
 public:
  void add(double x);
  /// Fold another accumulator into this one; equivalent to having added all
  /// of `other`'s samples here.
  void merge(const RunningStats& other);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming equal-width histogram over [lo, hi] with edge-clamped
/// outliers; the mergeable counterpart of histogram() above.
class HistogramAccumulator {
 public:
  HistogramAccumulator() = default;
  HistogramAccumulator(double lo, double hi, std::size_t bins);

  void add(double x);
  /// Fold another accumulator into this one. Both must share (lo, hi, bins).
  void merge(const HistogramAccumulator& other);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }
  [[nodiscard]] const std::vector<std::size_t>& counts() const {
    return counts_;
  }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Inclusive lower edge of bin b.
  [[nodiscard]] double bin_lo(std::size_t b) const;

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace aps
