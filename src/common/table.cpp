#include "common/table.h"

#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace aps {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };

  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace aps
