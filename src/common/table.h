// Minimal fixed-width ASCII table / CSV writer for bench output.
//
// Benches regenerate the paper's tables as text; this keeps their layout
// consistent and diff-able across runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace aps {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append one row; it must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Format a double with the given precision (helper for row building).
  [[nodiscard]] static std::string num(double v, int precision = 2);
  /// Format as percent with given precision, e.g. 33.9%.
  [[nodiscard]] static std::string pct(double fraction, int precision = 1);

  /// Render with column alignment and a header rule.
  void print(std::ostream& os) const;

  /// Render as CSV (no alignment padding).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aps
