#include "common/thread_pool.h"

#include <algorithm>

namespace aps {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  // Block-chunked to limit queue churn for large n.
  const std::size_t chunks = std::min(n, thread_count() * 4);
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    submit([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace aps
