// Small fixed-size thread pool used to run fault-injection campaigns in
// parallel. Tasks are independent simulations; the pool offers a simple
// parallel_for over an index range with deterministic result placement
// (results are written by index, so ordering never depends on scheduling).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace aps {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace aps
