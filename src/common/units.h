// Units and domain-wide constants for the APS safety-monitor library.
//
// Conventions (DESIGN.md §6):
//   - blood glucose (BG)    : mg/dL
//   - insulin amounts       : U (international units)
//   - insulin rates         : U/h
//   - time                  : minutes
//   - one control cycle     : 5 minutes (CGM sampling period)
//   - one simulation        : 150 cycles ~= 12.5 hours
#pragma once

#include <cstdint>

namespace aps {

/// Minutes between consecutive CGM samples / controller decisions.
inline constexpr double kControlPeriodMin = 5.0;

/// Number of control cycles per simulation (paper §V-A: 150 iterations).
inline constexpr int kDefaultSimSteps = 150;

/// Euglycemic range bounds used by medical guidelines (mg/dL).
inline constexpr double kBgLow = 70.0;
inline constexpr double kBgHigh = 180.0;

/// Severe hypoglycemia threshold (mg/dL), paper §VI: "BG < 40 implies
/// severe hypoglycemia and that the patient was unable to function".
inline constexpr double kBgSevereHypo = 40.0;

/// Default controller target BG (mg/dL).
inline constexpr double kBgTarget = 120.0;

/// Physiological clamp for simulated BG values (mg/dL).
inline constexpr double kBgMin = 10.0;
inline constexpr double kBgMax = 600.0;

/// Risk-index thresholds for hazard labeling (paper §IV-C2, refs [63][64]).
inline constexpr double kLbgiHazardThreshold = 5.0;
inline constexpr double kHbgiHazardThreshold = 9.0;

/// Hazard classes (paper §IV-B).
enum class HazardType : std::uint8_t {
  kNone = 0,
  kH1TooMuchInsulin,   ///< over-infusion -> hypoglycemia risk (accident A1)
  kH2TooLittleInsulin, ///< under-infusion -> hyperglycemia risk (accident A2)
};

/// Abstract control actions U = {u1..u4} (paper Table I footnote).
enum class ControlAction : std::uint8_t {
  kDecreaseInsulin = 0, ///< u1
  kIncreaseInsulin = 1, ///< u2
  kStopInsulin = 2,     ///< u3
  kKeepInsulin = 3,     ///< u4
};

[[nodiscard]] constexpr const char* to_string(HazardType h) {
  switch (h) {
    case HazardType::kNone: return "none";
    case HazardType::kH1TooMuchInsulin: return "H1";
    case HazardType::kH2TooLittleInsulin: return "H2";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(ControlAction a) {
  switch (a) {
    case ControlAction::kDecreaseInsulin: return "decrease_insulin";
    case ControlAction::kIncreaseInsulin: return "increase_insulin";
    case ControlAction::kStopInsulin: return "stop_insulin";
    case ControlAction::kKeepInsulin: return "keep_insulin";
  }
  return "?";
}

}  // namespace aps
