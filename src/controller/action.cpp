#include "controller/action.h"

namespace aps::controller {

aps::ControlAction classify_action(double commanded_rate_u_per_h,
                                   double previous_rate_u_per_h) {
  if (commanded_rate_u_per_h <= kStopRateThreshold) {
    return aps::ControlAction::kStopInsulin;
  }
  const double delta = commanded_rate_u_per_h - previous_rate_u_per_h;
  if (delta < -kRateChangeTolerance) {
    return aps::ControlAction::kDecreaseInsulin;
  }
  if (delta > kRateChangeTolerance) {
    return aps::ControlAction::kIncreaseInsulin;
  }
  return aps::ControlAction::kKeepInsulin;
}

}  // namespace aps::controller
