// Classification of a commanded infusion rate into the paper's abstract
// control-action set U = {u1 decrease, u2 increase, u3 stop, u4 keep}
// (Table I footnote). The classification is relative to the previously
// delivered rate, since "decrease"/"increase" describe the change the
// command makes to the ongoing therapy.
#pragma once

#include "common/units.h"

namespace aps::controller {

/// Rates below this (U/h) count as a full suspension (u3).
inline constexpr double kStopRateThreshold = 0.05;

/// Minimum rate change (U/h) that counts as an increase/decrease rather
/// than noise.
inline constexpr double kRateChangeTolerance = 0.05;

[[nodiscard]] aps::ControlAction classify_action(double commanded_rate_u_per_h,
                                                 double previous_rate_u_per_h);

}  // namespace aps::controller
