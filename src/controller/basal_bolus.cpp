#include "controller/basal_bolus.h"

#include <algorithm>

#include "common/units.h"

namespace aps::controller {

BasalBolusConfig basal_bolus_config_for(double basal_u_per_h,
                                        double basal_iob_u, double target_bg) {
  BasalBolusConfig cfg;
  cfg.basal_u_per_h = basal_u_per_h;
  cfg.correction_factor = isf_from_basal(basal_u_per_h);
  cfg.target_bg = target_bg;
  cfg.basal_iob_u = basal_iob_u;
  return cfg;
}

BasalBolusController::BasalBolusController(BasalBolusConfig config)
    : config_(config) {}

double BasalBolusController::decide(const BasalBolusConfig& c,
                                    const ControllerInput& in) {
  if (in.bg_mg_dl <= c.suspend_bg) return 0.0;
  double bolus_u = 0.0;
  if (in.bg_mg_dl > c.correction_threshold) {
    const double needed = (in.bg_mg_dl - c.target_bg) / c.correction_factor;
    const double correction_on_board = std::max(0.0, in.iob_u - c.basal_iob_u);
    bolus_u = std::clamp(needed - correction_on_board, 0.0, c.max_bolus_u);
  }
  // The correction is delivered across the next cycle as an elevated rate.
  return c.basal_u_per_h + bolus_u * (60.0 / kControlPeriodMin);
}

double BasalBolusController::decide_rate(const ControllerInput& in) {
  return decide(config_, in);
}

std::unique_ptr<Controller> BasalBolusController::clone() const {
  return std::make_unique<BasalBolusController>(*this);
}

std::unique_ptr<ControllerBatch> BasalBolusController::make_batch() const {
  return std::make_unique<BasalBolusBatch>();
}

// ---- BasalBolusBatch -------------------------------------------------------

bool BasalBolusBatch::add_lane(const Controller& prototype) {
  const auto* bb = dynamic_cast<const BasalBolusController*>(&prototype);
  if (bb == nullptr) return false;
  configs_.push_back(bb->config());
  return true;
}

void BasalBolusBatch::decide_rates(std::span<const ControllerInput> in,
                                   std::span<double> rates) {
  for (std::size_t l = 0; l < configs_.size(); ++l) {
    rates[l] = BasalBolusController::decide(configs_[l], in[l]);
  }
}

}  // namespace aps::controller
