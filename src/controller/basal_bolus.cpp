#include "controller/basal_bolus.h"

#include <algorithm>

#include "common/units.h"

namespace aps::controller {

BasalBolusConfig basal_bolus_config_for(double basal_u_per_h,
                                        double basal_iob_u, double target_bg) {
  BasalBolusConfig cfg;
  cfg.basal_u_per_h = basal_u_per_h;
  cfg.correction_factor = isf_from_basal(basal_u_per_h);
  cfg.target_bg = target_bg;
  cfg.basal_iob_u = basal_iob_u;
  return cfg;
}

BasalBolusController::BasalBolusController(BasalBolusConfig config)
    : config_(config) {}

double BasalBolusController::decide_rate(const ControllerInput& in) {
  const auto& c = config_;
  if (in.bg_mg_dl <= c.suspend_bg) return 0.0;
  double bolus_u = 0.0;
  if (in.bg_mg_dl > c.correction_threshold) {
    const double needed = (in.bg_mg_dl - c.target_bg) / c.correction_factor;
    const double correction_on_board = std::max(0.0, in.iob_u - c.basal_iob_u);
    bolus_u = std::clamp(needed - correction_on_board, 0.0, c.max_bolus_u);
  }
  // The correction is delivered across the next cycle as an elevated rate.
  return c.basal_u_per_h + bolus_u * (60.0 / kControlPeriodMin);
}

std::unique_ptr<Controller> BasalBolusController::clone() const {
  return std::make_unique<BasalBolusController>(*this);
}

}  // namespace aps::controller
