// Basal-Bolus protocol controller (paper ref [24]): a scheduled basal rate
// plus a correction bolus whenever the reading exceeds a correction
// threshold, discounted by the insulin already on board above the basal
// baseline; delivery suspends below a hypo threshold. This mirrors the
// hospital glycemic-control protocol used with the UVA-Padova simulator in
// the paper's second evaluation stack.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "controller/controller.h"

namespace aps::controller {

struct BasalBolusConfig {
  double basal_u_per_h = 1.0;
  double correction_factor = 40.0;   ///< mg/dL per U (same role as ISF)
  double target_bg = 120.0;
  double correction_threshold = 150.0;  ///< start correcting above this
  double suspend_bg = 80.0;
  double max_bolus_u = 5.0;          ///< single-correction cap
  double basal_iob_u = 0.0;          ///< steady-state IOB of the basal alone
};

class BasalBolusController final : public Controller {
 public:
  explicit BasalBolusController(BasalBolusConfig config);

  void reset() override {}
  [[nodiscard]] double decide_rate(const ControllerInput& in) override;
  [[nodiscard]] double basal_rate() const override {
    return config_.basal_u_per_h;
  }
  [[nodiscard]] double isf() const override {
    return config_.correction_factor;
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Controller> clone() const override;
  [[nodiscard]] std::unique_ptr<ControllerBatch> make_batch() const override;

  [[nodiscard]] const BasalBolusConfig& config() const { return config_; }

 private:
  friend class BasalBolusBatch;

  /// The protocol itself, stateless — the single kernel shared by the
  /// scalar controller and BasalBolusBatch.
  [[nodiscard]] static double decide(const BasalBolusConfig& c,
                                     const ControllerInput& in);

  BasalBolusConfig config_;
  std::string name_ = "basal-bolus";
};

/// Batched basal-bolus protocol: per-lane configs, no state; every lane
/// runs the same BasalBolusController::decide kernel as the scalar
/// controller, so the backends are bit-identical by construction.
class BasalBolusBatch final : public ControllerBatch {
 public:
  [[nodiscard]] bool add_lane(const Controller& prototype) override;
  [[nodiscard]] std::size_t lanes() const override { return configs_.size(); }
  void reset_lane(std::size_t) override {}
  void decide_rates(std::span<const ControllerInput> in,
                    std::span<double> rates) override;

 private:
  std::vector<BasalBolusConfig> configs_;
};

[[nodiscard]] BasalBolusConfig basal_bolus_config_for(double basal_u_per_h,
                                                      double basal_iob_u,
                                                      double target_bg = 120.0);

}  // namespace aps::controller
