// Abstract APS controller interface (paper Fig. 4b).
//
// Controllers are deliberately *stateless with respect to insulin history*:
// the closed-loop engine owns the delivery ledger (IobCalculator) and hands
// the controller its IOB estimate each cycle. This keeps the fault-injection
// surface explicit — the FI engine can corrupt the glucose reading, the IOB
// estimate, or the commanded rate without reaching into controller
// internals (threat model of §IV-C1).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

namespace aps::controller {

struct ControllerInput {
  double bg_mg_dl = 0.0;        ///< glucose reading as seen by the algorithm
  double iob_u = 0.0;           ///< insulin-on-board estimate (U)
  double activity_u_per_min = 0.0;  ///< current insulin activity (U/min)
  double time_min = 0.0;        ///< simulation time
};

class Controller;

/// Lockstep batch counterpart of Controller: N independent control laws
/// deciding together, with any per-lane state held as structure-of-arrays.
/// Lane semantics are bit-identical to one Controller clone per lane.
class ControllerBatch {
 public:
  virtual ~ControllerBatch() = default;

  /// Append a lane configured like `prototype`; returns false when the
  /// prototype is not this batch's controller kind.
  [[nodiscard]] virtual bool add_lane(const Controller& prototype) = 0;

  [[nodiscard]] virtual std::size_t lanes() const = 0;

  /// Controller::reset for one lane.
  virtual void reset_lane(std::size_t lane) = 0;

  /// rates[lane] = lane's decide_rate(in[lane]) for every lane.
  virtual void decide_rates(std::span<const ControllerInput> in,
                            std::span<double> rates) = 0;
};

class Controller {
 public:
  virtual ~Controller() = default;

  virtual void reset() = 0;

  /// Commanded infusion rate (U/h) for the next control cycle.
  [[nodiscard]] virtual double decide_rate(const ControllerInput& in) = 0;

  /// The profile basal rate this controller is configured around (U/h).
  [[nodiscard]] virtual double basal_rate() const = 0;

  /// Insulin sensitivity factor the controller assumes (mg/dL per U);
  /// exposed because the Guideline/MPC baselines and the mitigation policy
  /// reuse the profile.
  [[nodiscard]] virtual double isf() const = 0;

  [[nodiscard]] virtual const std::string& name() const = 0;

  [[nodiscard]] virtual std::unique_ptr<Controller> clone() const = 0;

  /// A fresh, empty batch backend of this controller's kind, or nullptr
  /// when there is no specialized batch implementation (the simulator then
  /// calls decide_rate on per-lane clones).
  [[nodiscard]] virtual std::unique_ptr<ControllerBatch> make_batch() const {
    return nullptr;
  }
};

/// Derive an insulin sensitivity factor from a basal profile with the
/// classic 1800 rule, assuming basal covers half the total daily dose:
/// TDD = 48 * basal, ISF = 1800 / TDD.
[[nodiscard]] inline double isf_from_basal(double basal_u_per_h) {
  const double tdd = 48.0 * basal_u_per_h;
  return tdd > 0.0 ? 1800.0 / tdd : 50.0;
}

}  // namespace aps::controller
