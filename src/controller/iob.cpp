#include "controller/iob.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/units.h"

namespace aps::controller {

namespace {
struct CurveConstants {
  double tau;
  double a;
  double s;
};

CurveConstants constants(const IobCurve& c) {
  const double td = c.dia_min;
  const double tp = c.peak_min;
  const double tau = tp * (1.0 - tp / td) / (1.0 - 2.0 * tp / td);
  const double a = 2.0 * tau / td;
  const double s = 1.0 / (1.0 - a + (1.0 + a) * std::exp(-td / tau));
  return {tau, a, s};
}
}  // namespace

double IobCurve::iob_fraction(double t_min) const {
  if (t_min <= 0.0) return 1.0;
  if (t_min >= dia_min) return 0.0;
  const auto [tau, a, s] = constants(*this);
  const double t = t_min;
  return 1.0 - s * (1.0 - a) *
                   ((t * t / (tau * dia_min * (1.0 - a)) - t / tau - 1.0) *
                        std::exp(-t / tau) +
                    1.0);
}

double IobCurve::activity(double t_min) const {
  if (t_min <= 0.0 || t_min >= dia_min) return 0.0;
  const auto [tau, a, s] = constants(*this);
  return (s / (tau * tau)) * t_min * (1.0 - t_min / dia_min) *
         std::exp(-t_min / tau);
}

IobCalculator::IobCalculator(IobCurve curve) : curve_(curve) {
  assert(curve_.dia_min > 2.0 * curve_.peak_min &&
         "exponential model requires td > 2*tp");
}

void IobCalculator::reset() { pulses_.clear(); }

void IobCalculator::record(double units, double dt_min) {
  for (auto& p : pulses_) p.age_min += dt_min;
  while (!pulses_.empty() && pulses_.front().age_min >= curve_.dia_min) {
    pulses_.pop_front();
  }
  if (units > 0.0) {
    // The pulse is centered in the just-elapsed cycle.
    pulses_.push_back({units, dt_min * 0.5});
  }
}

double IobCalculator::iob() const {
  double total = 0.0;
  for (const auto& p : pulses_) {
    total += p.units * curve_.iob_fraction(p.age_min);
  }
  return total;
}

double IobCalculator::activity() const {
  double total = 0.0;
  for (const auto& p : pulses_) {
    total += p.units * curve_.activity(p.age_min);
  }
  return total;
}

double IobCalculator::steady_state_iob(double rate_u_per_h) const {
  // Discrete sum of per-cycle pulses across the DIA window.
  const double per_cycle = rate_u_per_h * kControlPeriodMin / 60.0;
  double total = 0.0;
  for (double age = kControlPeriodMin * 0.5; age < curve_.dia_min;
       age += kControlPeriodMin) {
    total += per_cycle * curve_.iob_fraction(age);
  }
  return total;
}

}  // namespace aps::controller
