#include "controller/iob.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/units.h"

namespace aps::controller {

namespace {
struct CurveConstants {
  double tau;
  double a;
  double s;
};

CurveConstants constants(const IobCurve& c) {
  const double td = c.dia_min;
  const double tp = c.peak_min;
  const double tau = tp * (1.0 - tp / td) / (1.0 - 2.0 * tp / td);
  const double a = 2.0 * tau / td;
  const double s = 1.0 / (1.0 - a + (1.0 + a) * std::exp(-td / tau));
  return {tau, a, s};
}
}  // namespace

double IobCurve::iob_fraction(double t_min) const {
  if (t_min <= 0.0) return 1.0;
  if (t_min >= dia_min) return 0.0;
  const auto [tau, a, s] = constants(*this);
  const double t = t_min;
  return 1.0 - s * (1.0 - a) *
                   ((t * t / (tau * dia_min * (1.0 - a)) - t / tau - 1.0) *
                        std::exp(-t / tau) +
                    1.0);
}

double IobCurve::activity(double t_min) const {
  if (t_min <= 0.0 || t_min >= dia_min) return 0.0;
  const auto [tau, a, s] = constants(*this);
  return (s / (tau * tau)) * t_min * (1.0 - t_min / dia_min) *
         std::exp(-t_min / tau);
}

IobCalculator::IobCalculator(IobCurve curve) : curve_(curve) {
  assert(curve_.dia_min > 2.0 * curve_.peak_min &&
         "exponential model requires td > 2*tp");
}

void IobCalculator::reset() { pulses_.clear(); }

void IobCalculator::record(double units, double dt_min) {
  for (auto& p : pulses_) p.age_min += dt_min;
  while (!pulses_.empty() && pulses_.front().age_min >= curve_.dia_min) {
    pulses_.pop_front();
  }
  if (units > 0.0) {
    // The pulse is centered in the just-elapsed cycle.
    pulses_.push_back({units, dt_min * 0.5});
  }
}

double IobCalculator::iob() const {
  double total = 0.0;
  for (const auto& p : pulses_) {
    total += p.units * curve_.iob_fraction(p.age_min);
  }
  return total;
}

double IobCalculator::activity() const {
  double total = 0.0;
  for (const auto& p : pulses_) {
    total += p.units * curve_.activity(p.age_min);
  }
  return total;
}

IobTable IobTable::build(const IobCurve& curve, double period_min) {
  IobTable table;
  table.period_min = period_min;
  // Ages accumulate exactly as IobCalculator::record accumulates them: a
  // pulse starts at period/2 and gains one period per cycle, so slot ages
  // repeat the same chain of additions (bit-identical doubles).
  for (double age = period_min * 0.5; age < curve.dia_min;
       age += period_min) {
    table.iob_fraction.push_back(curve.iob_fraction(age));
    table.activity.push_back(curve.activity(age));
  }
  return table;
}

BatchIobLedger::BatchIobLedger(std::size_t lanes, IobCurve curve,
                               double period_min)
    : lanes_(lanes),
      curve_(curve),
      table_(IobTable::build(curve, period_min)),
      units_(table_.slots() * lanes, 0.0),
      head_(table_.slots() - 1) {}

void BatchIobLedger::warm(std::size_t lane, double rate_u_per_h) {
  const double pulse = rate_u_per_h * table_.period_min / 60.0;
  for (std::size_t slot = 0; slot < table_.slots(); ++slot) {
    units_[slot * lanes_ + lane] = pulse;
  }
}

void BatchIobLedger::record(std::span<const double> units) {
  const std::size_t slots = table_.slots();
  // The oldest slot ages past DIA and is recycled for the new pulse.
  head_ = (head_ + 1) % slots;
  double* dst = units_.data() + head_ * lanes_;
  for (std::size_t lane = 0; lane < lanes_; ++lane) dst[lane] = units[lane];
}

void BatchIobLedger::iob(std::span<double> out) const {
  const std::size_t slots = table_.slots();
  for (std::size_t lane = 0; lane < lanes_; ++lane) out[lane] = 0.0;
  // j = cycles since delivery; iterate oldest pulse (largest age) first so
  // each lane's sum order matches IobCalculator::iob.
  for (std::size_t j = slots; j-- > 0;) {
    const double* src = units_.data() + ((head_ + slots - j) % slots) * lanes_;
    const double fraction = table_.iob_fraction[j];
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      out[lane] += src[lane] * fraction;
    }
  }
}

void BatchIobLedger::activity(std::span<double> out) const {
  const std::size_t slots = table_.slots();
  for (std::size_t lane = 0; lane < lanes_; ++lane) out[lane] = 0.0;
  for (std::size_t j = slots; j-- > 0;) {
    const double* src = units_.data() + ((head_ + slots - j) % slots) * lanes_;
    const double act = table_.activity[j];
    for (std::size_t lane = 0; lane < lanes_; ++lane) {
      out[lane] += src[lane] * act;
    }
  }
}

double IobCalculator::steady_state_iob(double rate_u_per_h) const {
  // Discrete sum of per-cycle pulses across the DIA window.
  const double per_cycle = rate_u_per_h * kControlPeriodMin / 60.0;
  double total = 0.0;
  for (double age = kControlPeriodMin * 0.5; age < curve_.dia_min;
       age += kControlPeriodMin) {
    total += per_cycle * curve_.iob_fraction(age);
  }
  return total;
}

}  // namespace aps::controller
