// Insulin-on-board (IOB) bookkeeping from the delivery history, using the
// exponential insulin-activity model employed by open-source APS stacks
// (oref0 / Loop):
//
//   tau = tp*(1 - tp/td) / (1 - 2*tp/td)
//   a   = 2*tau/td
//   S   = 1 / (1 - a + (1 + a)*exp(-td/tau))
//   activity(t) = (S/tau^2) * t * (1 - t/td) * exp(-t/tau)        [1/min]
//   iob(t)      = 1 - S*(1-a)*((t^2/(tau*td*(1-a)) - t/tau - 1)
//                             * exp(-t/tau) + 1)                  [fraction]
//
// where td is the duration of insulin action (DIA) and tp the time of peak
// activity. Deliveries are accumulated as per-cycle pulses; IOB(t) is the
// fraction-weighted sum of pulses within the DIA window. Both the
// controller's internal estimate and the monitor's independent estimate use
// this calculator (the paper's monitor computes IOB "based on previous
// insulin deliveries", §IV-B).
#pragma once

#include <cstddef>
#include <deque>

namespace aps::controller {

struct IobCurve {
  double dia_min = 300.0;   ///< duration of insulin action td (minutes)
  double peak_min = 75.0;   ///< time of peak activity tp (minutes)

  /// Fraction of a unit still active `t_min` after delivery (1 at t=0,
  /// 0 beyond DIA).
  [[nodiscard]] double iob_fraction(double t_min) const;

  /// Activity density (fraction consumed per minute) at `t_min`.
  [[nodiscard]] double activity(double t_min) const;
};

/// Accumulates insulin pulses and answers IOB / activity queries.
class IobCalculator {
 public:
  explicit IobCalculator(IobCurve curve = {});

  void reset();

  /// Record that `units` of insulin were delivered over the cycle ending
  /// now; advances internal time by `dt_min`.
  void record(double units, double dt_min);

  /// Total insulin on board (U) as of the last `record` call.
  [[nodiscard]] double iob() const;

  /// Total insulin activity (U consumed per minute) as of now; multiplying
  /// by ISF gives the expected BG drop per minute.
  [[nodiscard]] double activity() const;

  /// Steady-state IOB (U) maintained by a constant `rate_u_per_h` basal.
  [[nodiscard]] double steady_state_iob(double rate_u_per_h) const;

  [[nodiscard]] const IobCurve& curve() const { return curve_; }

 private:
  struct Pulse {
    double units;
    double age_min;
  };

  IobCurve curve_;
  std::deque<Pulse> pulses_;
};

}  // namespace aps::controller
