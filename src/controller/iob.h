// Insulin-on-board (IOB) bookkeeping from the delivery history, using the
// exponential insulin-activity model employed by open-source APS stacks
// (oref0 / Loop):
//
//   tau = tp*(1 - tp/td) / (1 - 2*tp/td)
//   a   = 2*tau/td
//   S   = 1 / (1 - a + (1 + a)*exp(-td/tau))
//   activity(t) = (S/tau^2) * t * (1 - t/td) * exp(-t/tau)        [1/min]
//   iob(t)      = 1 - S*(1-a)*((t^2/(tau*td*(1-a)) - t/tau - 1)
//                             * exp(-t/tau) + 1)                  [fraction]
//
// where td is the duration of insulin action (DIA) and tp the time of peak
// activity. Deliveries are accumulated as per-cycle pulses; IOB(t) is the
// fraction-weighted sum of pulses within the DIA window. Both the
// controller's internal estimate and the monitor's independent estimate use
// this calculator (the paper's monitor computes IOB "based on previous
// insulin deliveries", §IV-B).
#pragma once

#include <cstddef>
#include <deque>
#include <span>
#include <vector>

namespace aps::controller {

struct IobCurve {
  double dia_min = 300.0;   ///< duration of insulin action td (minutes)
  double peak_min = 75.0;   ///< time of peak activity tp (minutes)

  /// Fraction of a unit still active `t_min` after delivery (1 at t=0,
  /// 0 beyond DIA).
  [[nodiscard]] double iob_fraction(double t_min) const;

  /// Activity density (fraction consumed per minute) at `t_min`.
  [[nodiscard]] double activity(double t_min) const;
};

/// Accumulates insulin pulses and answers IOB / activity queries.
class IobCalculator {
 public:
  explicit IobCalculator(IobCurve curve = {});

  void reset();

  /// Record that `units` of insulin were delivered over the cycle ending
  /// now; advances internal time by `dt_min`.
  void record(double units, double dt_min);

  /// Total insulin on board (U) as of the last `record` call.
  [[nodiscard]] double iob() const;

  /// Total insulin activity (U consumed per minute) as of now; multiplying
  /// by ISF gives the expected BG drop per minute.
  [[nodiscard]] double activity() const;

  /// Steady-state IOB (U) maintained by a constant `rate_u_per_h` basal.
  [[nodiscard]] double steady_state_iob(double rate_u_per_h) const;

  [[nodiscard]] const IobCurve& curve() const { return curve_; }

 private:
  struct Pulse {
    double units;
    double age_min;
  };

  IobCurve curve_;
  std::deque<Pulse> pulses_;
};

/// Precomputed curve samples for the fixed-cadence pulse trains of
/// closed-loop simulation. A pulse recorded `j` cycles ago has age
/// (j + 0.5) * period (IobCalculator centers each pulse in its cycle), so
/// slot j caches iob_fraction/activity at exactly that age — evaluating
/// the curve's exponentials once per batch instead of once per pulse per
/// query. Values are produced by the IobCurve itself, so table lookups are
/// bit-identical to direct evaluation.
struct IobTable {
  double period_min = 0.0;
  std::vector<double> iob_fraction;  ///< [slot j] = fraction at (j+0.5)*period
  std::vector<double> activity;      ///< [slot j] = activity at (j+0.5)*period

  /// Slots cover every age below the curve's DIA (pulses at or beyond DIA
  /// are dropped by IobCalculator::record and contribute nothing).
  [[nodiscard]] static IobTable build(const IobCurve& curve,
                                      double period_min);

  [[nodiscard]] std::size_t slots() const { return iob_fraction.size(); }
};

/// Structure-of-arrays insulin-on-board ledger for N lanes advancing in
/// lockstep at a fixed cadence. Holds one ring of per-cycle pulse units per
/// lane plus the shared IobTable; iob()/activity() for each lane are
/// bit-identical to an IobCalculator fed the same (non-negative) per-cycle
/// pulses, because zero-unit slots add exact +0.0 terms and table entries
/// equal direct curve evaluations.
class BatchIobLedger {
 public:
  BatchIobLedger(std::size_t lanes, IobCurve curve, double period_min);

  [[nodiscard]] std::size_t lanes() const { return lanes_; }
  [[nodiscard]] const IobCurve& curve() const { return curve_; }

  /// Fill every slot of `lane` with the per-cycle pulse of a constant
  /// `rate_u_per_h` basal — the state the scalar path reaches by warming a
  /// fresh IobCalculator for one full DIA window.
  void warm(std::size_t lane, double rate_u_per_h);

  /// Record the units delivered over the cycle just ended (units[lane]
  /// must be >= 0), advancing every lane by one period.
  void record(std::span<const double> units);

  /// out[lane] = insulin on board (U); oldest-pulse-first summation to
  /// match IobCalculator::iob exactly.
  void iob(std::span<double> out) const;
  /// out[lane] = insulin activity (U/min).
  void activity(std::span<double> out) const;

 private:
  std::size_t lanes_ = 0;
  IobCurve curve_;
  IobTable table_;
  std::vector<double> units_;  ///< slot-major: units_[slot * lanes_ + lane]
  std::size_t head_ = 0;       ///< slot holding the most recent pulse
};

}  // namespace aps::controller
