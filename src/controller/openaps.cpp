#include "controller/openaps.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace aps::controller {

OpenApsConfig openaps_config_for(double basal_u_per_h, double target_bg) {
  OpenApsConfig cfg;
  cfg.basal_u_per_h = basal_u_per_h;
  cfg.isf_mg_dl_per_u = isf_from_basal(basal_u_per_h);
  cfg.target_bg = target_bg;
  cfg.min_bg = target_bg - 20.0;
  cfg.max_bg = target_bg + 20.0;
  return cfg;
}

OpenApsController::OpenApsController(OpenApsConfig config) : config_(config) {}

void OpenApsController::reset() {
  last_bg_ = -1.0;
  last_eventual_bg_ = 0.0;
}

double OpenApsController::decide_rate(const ControllerInput& in) {
  const auto& c = config_;
  const double bg = in.bg_mg_dl;

  // BG impact of active insulin over one cycle (mg/dL per 5 min), the
  // oref0 "BGI" term.
  const double bgi =
      -in.activity_u_per_min * c.isf_mg_dl_per_u * kControlPeriodMin;
  // Deviation: how much the observed 5-min delta disagrees with the
  // insulin-only prediction, extrapolated over the deviation horizon.
  const double delta = last_bg_ < 0.0 ? 0.0 : bg - last_bg_;
  const double deviation =
      (c.deviation_horizon_min / kControlPeriodMin) * (delta - bgi);
  // Insulin-only projection: all IOB eventually drops BG by IOB*ISF.
  const double naive_eventual = bg - in.iob_u * c.isf_mg_dl_per_u;
  const double eventual_bg = naive_eventual + deviation;
  last_eventual_bg_ = eventual_bg;
  last_bg_ = bg;

  const double max_basal = c.max_basal_factor * c.basal_u_per_h;

  // Hard safety: suspend when measurably hypo.
  if (bg <= c.suspend_bg) return 0.0;

  if (eventual_bg < c.min_bg) {
    // Low-temp: reduce delivery proportionally to the projected shortfall.
    // insulin_req (U) is negative; spread over ~deviation_horizon minutes.
    const double insulin_req = (eventual_bg - c.target_bg) / c.isf_mg_dl_per_u;
    const double rate =
        c.basal_u_per_h + insulin_req * (60.0 / c.deviation_horizon_min);
    return std::clamp(rate, 0.0, max_basal);
  }
  if (eventual_bg > c.max_bg) {
    // High-temp: add the missing insulin over the horizon.
    const double insulin_req = (eventual_bg - c.target_bg) / c.isf_mg_dl_per_u;
    const double rate =
        c.basal_u_per_h + insulin_req * (60.0 / c.deviation_horizon_min);
    return std::clamp(rate, 0.0, max_basal);
  }
  // In-corridor: keep scheduled basal.
  return c.basal_u_per_h;
}

std::unique_ptr<Controller> OpenApsController::clone() const {
  return std::make_unique<OpenApsController>(*this);
}

}  // namespace aps::controller
