// OpenAPS-style control-to-target controller: a C++ port of the decision
// core of oref0 `determine-basal` (paper ref [75]). Each cycle it projects
// the eventual BG from the current reading, the short-term deviation trend,
// and the insulin on board, then sets a temporary basal rate that steers
// the projection back to target, bounded by [0, max_basal].
#pragma once

#include <memory>
#include <string>

#include "controller/controller.h"

namespace aps::controller {

struct OpenApsConfig {
  double basal_u_per_h = 1.0;   ///< scheduled basal
  double isf_mg_dl_per_u = 40.0;
  double target_bg = 120.0;
  double min_bg = 100.0;        ///< low edge of the no-action corridor
  double max_bg = 140.0;        ///< high edge of the no-action corridor
  double suspend_bg = 70.0;     ///< hard zero-temp threshold
  double max_basal_factor = 4.0;  ///< max temp = factor * basal
  double deviation_horizon_min = 30.0;  ///< trend extrapolation window
};

class OpenApsController final : public Controller {
 public:
  explicit OpenApsController(OpenApsConfig config);

  void reset() override;
  [[nodiscard]] double decide_rate(const ControllerInput& in) override;
  [[nodiscard]] double basal_rate() const override {
    return config_.basal_u_per_h;
  }
  [[nodiscard]] double isf() const override {
    return config_.isf_mg_dl_per_u;
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Controller> clone() const override;

  [[nodiscard]] const OpenApsConfig& config() const { return config_; }

  /// The eventual-BG projection computed by the last decide_rate call;
  /// exposed for tests and the quickstart example.
  [[nodiscard]] double last_eventual_bg() const { return last_eventual_bg_; }

 private:
  OpenApsConfig config_;
  std::string name_ = "openaps";
  double last_bg_ = -1.0;  ///< <0 means no previous sample
  double last_eventual_bg_ = 0.0;
};

/// Build a controller configured for a patient's basal profile.
[[nodiscard]] OpenApsConfig openaps_config_for(double basal_u_per_h,
                                               double target_bg = 120.0);

}  // namespace aps::controller
