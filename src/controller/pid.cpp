#include "controller/pid.h"

#include <algorithm>

#include "common/units.h"

namespace aps::controller {

PidConfig pid_config_for(double basal_u_per_h, double basal_iob_u,
                         double target_bg) {
  PidConfig cfg;
  cfg.basal_u_per_h = basal_u_per_h;
  cfg.target_bg = target_bg;
  cfg.basal_iob_u = basal_iob_u;
  // Proportional gain scaled to the patient's insulin needs: a sustained
  // +60 mg/dL error should command roughly one extra basal unit.
  cfg.kp = basal_u_per_h / 60.0;
  return cfg;
}

PidController::PidController(PidConfig config) : config_(config) {}

void PidController::reset() {
  integral_ = 0.0;
  last_bg_ = -1.0;
}

double PidController::decide(const PidConfig& c, const ControllerInput& in,
                             double& integral, double& last_bg) {
  if (in.bg_mg_dl <= c.suspend_bg) {
    // Suspend and bleed the integral so resumption is not aggressive.
    integral *= 0.5;
    return 0.0;
  }

  const double error = in.bg_mg_dl - c.target_bg;
  const double max_rate = c.max_basal_factor * c.basal_u_per_h;

  const double p_term = c.kp * error;

  // Integral with conditional anti-windup: only integrate while the output
  // is not saturated in the same direction.
  const double delta = last_bg < 0.0 ? 0.0 : in.bg_mg_dl - last_bg;
  last_bg = in.bg_mg_dl;
  const double d_term = c.kp * (c.td_min / kControlPeriodMin) * delta;

  const double iob_excess = std::max(0.0, in.iob_u - c.basal_iob_u);
  const double feedback = c.insulin_feedback * iob_excess;

  const double unsat = c.basal_u_per_h + p_term + integral + d_term -
                       feedback;
  const double rate = std::clamp(unsat, 0.0, max_rate);
  const bool saturated_high = unsat > max_rate && error > 0.0;
  const bool saturated_low = unsat < 0.0 && error < 0.0;
  if (!saturated_high && !saturated_low) {
    integral += c.kp * (kControlPeriodMin / c.ti_min) * error;
    // Bound the integral to one max-basal swing either way.
    integral = std::clamp(integral, -max_rate, max_rate);
  }
  return rate;
}

double PidController::decide_rate(const ControllerInput& in) {
  return decide(config_, in, integral_, last_bg_);
}

std::unique_ptr<Controller> PidController::clone() const {
  return std::make_unique<PidController>(*this);
}

std::unique_ptr<ControllerBatch> PidController::make_batch() const {
  return std::make_unique<PidBatch>();
}

// ---- PidBatch --------------------------------------------------------------

bool PidBatch::add_lane(const Controller& prototype) {
  const auto* pid = dynamic_cast<const PidController*>(&prototype);
  if (pid == nullptr) return false;
  configs_.push_back(pid->config());
  integral_.push_back(0.0);
  last_bg_.push_back(-1.0);
  return true;
}

void PidBatch::reset_lane(std::size_t lane) {
  // Mirrors PidController::reset.
  integral_[lane] = 0.0;
  last_bg_[lane] = -1.0;
}

void PidBatch::decide_rates(std::span<const ControllerInput> in,
                            std::span<double> rates) {
  for (std::size_t l = 0; l < configs_.size(); ++l) {
    rates[l] =
        PidController::decide(configs_[l], in[l], integral_[l], last_bg_[l]);
  }
}

}  // namespace aps::controller
