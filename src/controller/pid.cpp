#include "controller/pid.h"

#include <algorithm>

#include "common/units.h"

namespace aps::controller {

PidConfig pid_config_for(double basal_u_per_h, double basal_iob_u,
                         double target_bg) {
  PidConfig cfg;
  cfg.basal_u_per_h = basal_u_per_h;
  cfg.target_bg = target_bg;
  cfg.basal_iob_u = basal_iob_u;
  // Proportional gain scaled to the patient's insulin needs: a sustained
  // +60 mg/dL error should command roughly one extra basal unit.
  cfg.kp = basal_u_per_h / 60.0;
  return cfg;
}

PidController::PidController(PidConfig config) : config_(config) {}

void PidController::reset() {
  integral_ = 0.0;
  last_bg_ = -1.0;
}

double PidController::decide_rate(const ControllerInput& in) {
  const auto& c = config_;
  if (in.bg_mg_dl <= c.suspend_bg) {
    // Suspend and bleed the integral so resumption is not aggressive.
    integral_ *= 0.5;
    return 0.0;
  }

  const double error = in.bg_mg_dl - c.target_bg;
  const double max_rate = c.max_basal_factor * c.basal_u_per_h;

  const double p_term = c.kp * error;

  // Integral with conditional anti-windup: only integrate while the output
  // is not saturated in the same direction.
  const double delta = last_bg_ < 0.0 ? 0.0 : in.bg_mg_dl - last_bg_;
  last_bg_ = in.bg_mg_dl;
  const double d_term = c.kp * (c.td_min / kControlPeriodMin) * delta;

  const double iob_excess = std::max(0.0, in.iob_u - c.basal_iob_u);
  const double feedback = c.insulin_feedback * iob_excess;

  const double unsat = c.basal_u_per_h + p_term + integral_ + d_term -
                       feedback;
  const double rate = std::clamp(unsat, 0.0, max_rate);
  const bool saturated_high = unsat > max_rate && error > 0.0;
  const bool saturated_low = unsat < 0.0 && error < 0.0;
  if (!saturated_high && !saturated_low) {
    integral_ += c.kp * (kControlPeriodMin / c.ti_min) * error;
    // Bound the integral to one max-basal swing either way.
    integral_ = std::clamp(integral_, -max_rate, max_rate);
  }
  return rate;
}

std::unique_ptr<Controller> PidController::clone() const {
  return std::make_unique<PidController>(*this);
}

}  // namespace aps::controller
