// PID controller (extension): the classic commercial closed-loop insulin
// algorithm (Medtronic 670G family) — proportional on the BG error,
// integral with anti-windup, derivative on the CGM trend, plus insulin
// feedback that tempers output as IOB accumulates. Included as a third
// controller so the monitor framework can be exercised against a
// fundamentally different control law than OpenAPS's projection logic or
// the basal-bolus protocol.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "controller/controller.h"

namespace aps::controller {

struct PidConfig {
  double basal_u_per_h = 1.0;
  double target_bg = 120.0;
  double kp = 0.015;   ///< U/h per mg/dL of error
  double ti_min = 240.0;  ///< integral time constant (minutes)
  double td_min = 30.0;   ///< derivative time constant (minutes)
  double max_basal_factor = 4.0;
  double suspend_bg = 70.0;
  /// Insulin-feedback gain: output is reduced proportionally to the IOB
  /// above the basal baseline (gamma * excess IOB, in U/h per U).
  double insulin_feedback = 0.25;
  double basal_iob_u = 0.0;  ///< steady-state IOB of the basal alone
};

class PidController final : public Controller {
 public:
  explicit PidController(PidConfig config);

  void reset() override;
  [[nodiscard]] double decide_rate(const ControllerInput& in) override;
  [[nodiscard]] double basal_rate() const override {
    return config_.basal_u_per_h;
  }
  [[nodiscard]] double isf() const override {
    return isf_from_basal(config_.basal_u_per_h);
  }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Controller> clone() const override;
  [[nodiscard]] std::unique_ptr<ControllerBatch> make_batch() const override;

  [[nodiscard]] const PidConfig& config() const { return config_; }
  /// Integral state (U/h), exposed for anti-windup tests.
  [[nodiscard]] double integral() const { return integral_; }

 private:
  friend class PidBatch;

  /// The control law itself, over explicit state references — the single
  /// kernel shared by the scalar controller and PidBatch, so the two
  /// backends cannot diverge.
  [[nodiscard]] static double decide(const PidConfig& c,
                                     const ControllerInput& in,
                                     double& integral, double& last_bg);

  PidConfig config_;
  std::string name_ = "pid";
  double integral_ = 0.0;   ///< accumulated integral term (U/h)
  double last_bg_ = -1.0;
};

/// Batched PID: per-lane configs plus SoA integral/last-BG state; every
/// lane runs the same PidController::decide kernel as the scalar
/// controller, so the backends are bit-identical by construction.
class PidBatch final : public ControllerBatch {
 public:
  [[nodiscard]] bool add_lane(const Controller& prototype) override;
  [[nodiscard]] std::size_t lanes() const override { return configs_.size(); }
  void reset_lane(std::size_t lane) override;
  void decide_rates(std::span<const ControllerInput> in,
                    std::span<double> rates) override;

 private:
  std::vector<PidConfig> configs_;
  std::vector<double> integral_;
  std::vector<double> last_bg_;
};

[[nodiscard]] PidConfig pid_config_for(double basal_u_per_h,
                                       double basal_iob_u,
                                       double target_bg = 120.0);

}  // namespace aps::controller
