#include "core/experiment.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "learn/kfold.h"
#include "monitor/ml_monitor.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace aps::core {

namespace {

/// Phase span over the process-global tracer: the experiment pipeline's
/// coarse phases (baseline campaign, artifact learning, ML training,
/// evaluation) show up in Registry::scrape() next to the serving spans.
[[nodiscard]] aps::obs::Tracer::Scope phase_span(const char* name) {
  return aps::obs::Registry::global().tracer().span(name);
}

}  // namespace

// ---- BaselineStats ----------------------------------------------------------

void BaselineStats::add_run(std::size_t patient_slot,
                            const aps::sim::SimResult& run) {
  resilience.add_run(run);
  if (patient_slot < by_patient.size()) {
    by_patient[patient_slot].add(run.label.hazardous);
  }
  const auto& fault = run.config.fault;
  by_fault[fault.enabled() ? fault.name() : "fault_free"].add(
      run.label.hazardous);
  by_initial_bg[run.config.initial_bg].add(run.label.hazardous);
}

void BaselineStats::merge(const BaselineStats& other) {
  resilience.merge(other.resilience);
  if (by_patient.size() < other.by_patient.size()) {
    by_patient.resize(other.by_patient.size());
  }
  for (std::size_t p = 0; p < other.by_patient.size(); ++p) {
    by_patient[p].merge(other.by_patient[p]);
  }
  for (const auto& [name, bucket] : other.by_fault) {
    by_fault[name].merge(bucket);
  }
  for (const auto& [bg, bucket] : other.by_initial_bg) {
    by_initial_bg[bg].merge(bucket);
  }
}

// ---- Preparation ------------------------------------------------------------

namespace {

/// One shard per patient keeps the former parallelization granularity (and
/// one monitor instance per patient per campaign pass), and makes the
/// shard-ordered merge reproduce the sequential (patient, scenario)
/// accumulation order exactly.
aps::sim::StreamingOptions campaign_streaming(std::size_t scenario_count) {
  aps::sim::StreamingOptions streaming;
  streaming.shard_size = std::max<std::size_t>(scenario_count, 1);
  return streaming;
}

/// The one index -> run mapping every campaign pass of the pipeline uses:
/// run i is (patient i / |scenarios|, scenario i % |scenarios|). The
/// baseline hazard bits and every evaluation pass are matched by this
/// index, so all passes MUST build requests through here. `scenarios` is
/// captured by reference and must outlive the returned function.
aps::sim::RunRequestFn campaign_request_fn(
    const std::vector<aps::fi::Scenario>& scenarios,
    bool mitigation_enabled = false,
    const aps::monitor::MitigationConfig& mitigation = {}) {
  return [&scenarios, mitigation_enabled,
          mitigation](std::size_t i) {
    aps::sim::RunRequest req;
    req.patient_index = static_cast<int>(i / scenarios.size());
    const auto& scenario = scenarios[i % scenarios.size()];
    req.config.initial_bg = scenario.initial_bg;
    req.config.fault = scenario.fault;
    req.config.mitigation_enabled = mitigation_enabled;
    req.config.mitigation = mitigation;
    return req;
  };
}

}  // namespace

ExperimentContext prepare_experiment(const aps::sim::Stack& stack,
                                     const ExperimentConfig& config,
                                     aps::ThreadPool& pool) {
  ExperimentContext context;
  context.stack = stack;
  context.config = config;

  const auto grid = config.grid();
  context.scenarios = aps::fi::enumerate_scenarios(grid);
  const std::size_t scenario_count = context.scenarios.size();
  const std::size_t count = context.run_count();
  const auto cohort = static_cast<std::size_t>(stack.cohort_size);

  // Fault-free campaign: O(cohort) runs by construction, retained for the
  // guideline percentiles and the fault-free training ablation.
  context.fault_free =
      aps::sim::run_campaign(stack, aps::fi::fault_free_scenarios(grid),
                             aps::sim::null_monitor_factory(), {}, &pool);

  const auto profiles = stack_profiles(stack);
  aps::monitor::CawConfig context_config;
  context_config.target_bg = TrainingArtifacts{}.target_bg;
  const ThresholdLearningOptions threshold_options;

  context.baseline_hazard.assign(count, 0);
  context.baseline.by_patient.assign(cohort, {});

  // ---- One streaming pass over the baseline campaign ----------------------
  //
  // Per-shard accumulators; merged in shard order below, so every result
  // equals the sequential accumulation no matter the thread count.
  const auto streaming = campaign_streaming(scenario_count);
  const std::size_t shards = aps::sim::shard_count(count, streaming);
  const std::uint64_t tabular_seed =
      derive_seed(config.seed, config.ml_data.sample_seed);
  const std::uint64_t sequence_seed =
      derive_seed(config.seed, config.lstm_data.sample_seed + 1);
  struct Shard {
    BaselineStats stats;
    std::map<std::size_t, RuleDatasets> rules;
    std::unique_ptr<aps::ml::DatasetBuilder> tabular;
    std::unique_ptr<aps::ml::SequenceDatasetBuilder> sequences;
  };
  std::vector<Shard> shard_acc(shards);
  for (auto& shard : shard_acc) {
    shard.stats.by_patient.assign(cohort, {});
    if (config.train_ml) {
      shard.tabular = std::make_unique<aps::ml::DatasetBuilder>(
          aps::monitor::kMlFeatureCount, config.ml_data.classes,
          config.ml_data.max_samples, tabular_seed);
      shard.sequences = std::make_unique<aps::ml::SequenceDatasetBuilder>(
          config.lstm_data.classes, config.lstm_data.max_samples,
          sequence_seed);
    }
  }

  const auto request = campaign_request_fn(context.scenarios);
  const auto sink = [&](std::size_t shard, std::size_t i,
                        const aps::sim::SimResult& run) {
    Shard& acc = shard_acc[shard];
    const std::size_t patient_slot = i / scenario_count;
    acc.stats.add_run(patient_slot, run);
    context.baseline_hazard[i] = run.label.hazardous ? 1 : 0;
    if (run.label.hazardous) {
      const auto& profile = profiles[patient_slot];
      const std::vector<const aps::sim::SimResult*> one{&run};
      const auto extracted =
          extract_rule_datasets(one, context_config, profile.basal_rate,
                                profile.isf, threshold_options);
      auto& bucket = acc.rules[patient_slot];
      for (const auto& [param, values] : extracted) {
        auto& dest = bucket[param];
        dest.insert(dest.end(), values.begin(), values.end());
      }
    }
    if (config.train_ml) {
      accumulate_tabular_samples(run, profiles[patient_slot], i,
                                 config.ml_data, *acc.tabular);
      accumulate_sequence_samples(run, profiles[patient_slot], i,
                                  config.lstm_data, *acc.sequences);
    }
  };
  {
    const auto baseline_span = phase_span("experiment.baseline");
    aps::sim::for_each_run(stack, count, request,
                           aps::sim::null_monitor_factory(), sink, &pool,
                           streaming);
  }

  // Shard-ordered merge == sequential accumulation.
  context.rule_data.assign(cohort, {});
  aps::ml::DatasetBuilder tabular_builder(
      aps::monitor::kMlFeatureCount, config.ml_data.classes,
      config.ml_data.max_samples, tabular_seed);
  aps::ml::SequenceDatasetBuilder sequence_builder(
      config.lstm_data.classes, config.lstm_data.max_samples, sequence_seed);
  for (auto& shard : shard_acc) {
    context.baseline.merge(shard.stats);
    for (auto& [patient_slot, rules] : shard.rules) {
      auto& dest_patient = context.rule_data[patient_slot];
      for (auto& [param, values] : rules) {
        auto& dest = dest_patient[param];
        dest.insert(dest.end(), values.begin(), values.end());
      }
    }
    if (config.train_ml) {
      tabular_builder.merge(std::move(*shard.tabular));
      sequence_builder.merge(std::move(*shard.sequences));
    }
  }

  {
    const auto learn_span = phase_span("experiment.learn_artifacts");
    context.artifacts =
        learn_artifacts_from_data(stack, context.rule_data,
                                  context.fault_free, threshold_options,
                                  &pool);
  }

  if (config.train_ml) {
    context.tabular = tabular_builder.build();
    context.sequences = sequence_builder.build();
    train_ml_baselines(context, pool);
  }
  return context;
}

BaselineStats run_baseline_stats(const aps::sim::Stack& stack,
                                 const ExperimentConfig& config,
                                 aps::ThreadPool& pool) {
  const auto scenarios = aps::fi::enumerate_scenarios(config.grid());
  const std::size_t scenario_count = scenarios.size();
  const auto cohort = static_cast<std::size_t>(stack.cohort_size);
  const std::size_t count = cohort * scenario_count;
  const auto streaming = campaign_streaming(scenario_count);
  const std::size_t shards = aps::sim::shard_count(count, streaming);

  std::vector<BaselineStats> shard_acc(shards);
  for (auto& shard : shard_acc) shard.by_patient.assign(cohort, {});
  const auto request = campaign_request_fn(scenarios);
  const auto sink = [&](std::size_t shard, std::size_t i,
                        const aps::sim::SimResult& run) {
    shard_acc[shard].add_run(i / scenario_count, run);
  };
  aps::sim::for_each_run(stack, count, request,
                         aps::sim::null_monitor_factory(), sink, &pool,
                         streaming);

  BaselineStats total;
  total.by_patient.assign(cohort, {});
  for (const BaselineStats& shard : shard_acc) total.merge(shard);
  return total;
}

// ---- ML training ------------------------------------------------------------

int select_dt_depth(const aps::ml::Dataset& data,
                    const std::vector<int>& candidates, int k,
                    std::uint64_t seed, aps::ThreadPool* pool) {
  if (candidates.empty()) {
    throw std::invalid_argument("select_dt_depth: no candidates");
  }
  int best_depth = candidates.front();
  double best_score = -1.0;
  for (const int depth : candidates) {
    const auto scores = aps::learn::cross_validate(
        data.size(), k, seed,
        [&](std::size_t, const aps::learn::FoldSplit& split) {
          aps::ml::DecisionTreeConfig config;
          config.max_depth = depth;
          aps::ml::DecisionTree tree(config);
          tree.fit(data.subset(split.train_indices));
          std::size_t correct = 0;
          for (const std::size_t i : split.test_indices) {
            const std::span<const double> row(
                data.x.data() + i * data.x.cols(), data.x.cols());
            if (tree.predict(row) == data.y[i]) ++correct;
          }
          return split.test_indices.empty()
                     ? 0.0
                     : static_cast<double>(correct) /
                           static_cast<double>(split.test_indices.size());
        },
        pool);
    double mean = 0.0;
    for (const double s : scores) mean += s;
    mean /= static_cast<double>(scores.size());
    if (mean > best_score) {
      best_score = mean;
      best_depth = depth;
    }
  }
  return best_depth;
}

void train_ml_baselines(ExperimentContext& context, aps::ThreadPool& pool) {
  const auto& config = context.config;
  if (context.tabular.size() == 0 || context.sequences.size() == 0) {
    throw std::runtime_error(
        "train_ml_baselines: context has no training data (prepare with "
        "train_ml=true)");
  }
  const auto train_span = phase_span("experiment.train_ml");

  {
    const auto dt_span = phase_span("experiment.train_dt");
    aps::ml::DecisionTreeConfig dt_config;
    dt_config.max_depth = config.full ? 12 : 8;
    if (config.dt_depth_cv) {
      dt_config.max_depth = select_dt_depth(context.tabular, {6, 8, 10, 12},
                                            4, config.seed, &pool);
    }
    auto dt = std::make_shared<aps::ml::DecisionTree>(dt_config);
    dt->fit(context.tabular);
    context.dt = std::move(dt);
  }
  {
    const auto mlp_span = phase_span("experiment.train_mlp");
    aps::ml::MlpConfig mlp_config;
    mlp_config.hidden_units =
        config.full ? std::vector<std::size_t>{256, 128}
                    : std::vector<std::size_t>{64, 32};
    mlp_config.max_epochs = config.full ? 40 : 20;
    mlp_config.seed = config.seed;
    auto mlp = std::make_shared<aps::ml::Mlp>(mlp_config);
    mlp->fit(context.tabular, &pool);
    context.mlp = std::move(mlp);
  }
  {
    const auto lstm_span = phase_span("experiment.train_lstm");
    aps::ml::LstmConfig lstm_config;
    lstm_config.hidden_units =
        config.full ? std::vector<std::size_t>{128, 64}
                    : std::vector<std::size_t>{32, 16};
    lstm_config.max_epochs = config.full ? 20 : 8;
    lstm_config.seed = config.seed;
    auto lstm = std::make_shared<aps::ml::Lstm>(lstm_config);
    lstm->fit(context.sequences, &pool);
    context.lstm = std::move(lstm);
  }
}

// ---- Evaluation -------------------------------------------------------------

namespace {

/// Per-monitor, per-shard accumulator bundle.
struct MonitorAcc {
  aps::metrics::AccuracyReport accuracy;
  aps::metrics::TimelinessStats timeliness;
  aps::metrics::MitigationReport mitigation;
  std::vector<aps::metrics::AccuracyReport> by_patient_accuracy;
  std::vector<aps::metrics::TimelinessStats> by_patient_timeliness;
  std::vector<aps::metrics::AccuracyReport> by_tolerance;

  MonitorAcc(const EvalOptions& options, std::size_t cohort) {
    if (options.per_patient) {
      by_patient_accuracy.resize(cohort);
      by_patient_timeliness.resize(cohort);
    }
    by_tolerance.resize(options.extra_tolerances.size());
  }

  void merge(const MonitorAcc& other) {
    accuracy.merge(other.accuracy);
    timeliness.merge(other.timeliness);
    mitigation.merge(other.mitigation);
    for (std::size_t p = 0; p < by_patient_accuracy.size(); ++p) {
      by_patient_accuracy[p].merge(other.by_patient_accuracy[p]);
      by_patient_timeliness[p].merge(other.by_patient_timeliness[p]);
    }
    for (std::size_t t = 0; t < by_tolerance.size(); ++t) {
      by_tolerance[t].merge(other.by_tolerance[t]);
    }
  }
};

}  // namespace

std::vector<MonitorEval> evaluate_monitor_set(
    const ExperimentContext& context,
    const std::vector<NamedMonitor>& monitors, aps::ThreadPool& pool,
    const EvalOptions& options) {
  std::vector<MonitorEval> evals(monitors.size());
  for (std::size_t m = 0; m < monitors.size(); ++m) {
    evals[m].name = monitors[m].name;
  }
  if (monitors.empty()) return evals;
  const auto eval_span = phase_span("experiment.evaluate");

  const std::size_t scenario_count = context.scenarios.size();
  const std::size_t count = context.run_count();
  const auto cohort = static_cast<std::size_t>(context.stack.cohort_size);
  auto streaming = campaign_streaming(scenario_count);
  streaming.backend = options.backend;
  const std::size_t shards = aps::sim::shard_count(count, streaming);
  const int tolerance = context.config.tolerance_steps;

  const auto request = campaign_request_fn(
      context.scenarios, options.mitigation_enabled, options.mitigation);

  const auto score_run = [&](MonitorAcc& acc, std::size_t index,
                             const std::vector<bool>& alarms,
                             const aps::sim::SimResult& run) {
    const int fault_step = aps::metrics::fault_step_of(run);
    acc.accuracy.add_run(alarms, run.label, fault_step, tolerance);
    acc.timeliness.add_run(alarms, run.label, fault_step);
    if (options.per_patient) {
      const std::size_t slot = index / scenario_count;
      acc.by_patient_accuracy[slot].add_run(alarms, run.label, fault_step,
                                            tolerance);
      acc.by_patient_timeliness[slot].add_run(alarms, run.label, fault_step);
    }
    for (std::size_t t = 0; t < acc.by_tolerance.size(); ++t) {
      acc.by_tolerance[t].add_run(alarms, run.label, fault_step,
                                  options.extra_tolerances[t]);
    }
  };

  const auto finalize = [&](std::size_t m, std::vector<MonitorAcc>& shard_acc) {
    MonitorAcc total(options, cohort);
    for (const MonitorAcc& shard : shard_acc) total.merge(shard);
    evals[m].accuracy = std::move(total.accuracy);
    evals[m].timeliness = std::move(total.timeliness);
    evals[m].mitigation = std::move(total.mitigation);
    evals[m].accuracy_by_patient = std::move(total.by_patient_accuracy);
    evals[m].timeliness_by_patient = std::move(total.by_patient_timeliness);
    evals[m].accuracy_by_tolerance = std::move(total.by_tolerance);
  };

  if (!options.mitigation_enabled && options.fused) {
    // Fused pass: the simulation runs unmonitored once; every monitor of
    // the line-up observes passively and is scored from its own decision
    // stream.
    std::vector<aps::sim::MonitorFactory> observers;
    observers.reserve(monitors.size());
    for (const NamedMonitor& monitor : monitors) {
      observers.push_back(monitor.factory);
    }
    std::vector<std::vector<MonitorAcc>> shard_acc(
        shards, std::vector<MonitorAcc>(monitors.size(),
                                        MonitorAcc(options, cohort)));
    const auto sink =
        [&](std::size_t shard, std::size_t i, const aps::sim::SimResult& run,
            std::span<const std::vector<aps::monitor::Decision>> observed) {
          for (std::size_t m = 0; m < monitors.size(); ++m) {
            score_run(shard_acc[shard][m], i,
                      aps::metrics::alarms_of(observed[m]), run);
          }
        };
    aps::sim::for_each_run_observed(context.stack, count, request,
                                    aps::sim::null_monitor_factory(),
                                    observers, sink, &pool, streaming);
    std::vector<MonitorAcc> per_monitor;
    for (std::size_t m = 0; m < monitors.size(); ++m) {
      per_monitor.clear();
      for (std::size_t s = 0; s < shards; ++s) {
        per_monitor.push_back(std::move(shard_acc[s][m]));
      }
      finalize(m, per_monitor);
    }
    return evals;
  }

  // Per-monitor driving passes: with mitigation each monitor's alarms
  // change delivery; without it this is the pre-refactor protocol kept for
  // A/B benches. The matched unmitigated twin for the mitigation report
  // comes from the baseline hazard bits.
  if (options.mitigation_enabled && context.baseline_hazard.size() != count) {
    throw std::runtime_error(
        "evaluate_monitor_set: context baseline is missing (prepare the "
        "experiment first)");
  }
  for (std::size_t m = 0; m < monitors.size(); ++m) {
    std::vector<MonitorAcc> shard_acc(shards, MonitorAcc(options, cohort));
    const auto sink = [&](std::size_t shard, std::size_t i,
                          const aps::sim::SimResult& run) {
      MonitorAcc& acc = shard_acc[shard];
      score_run(acc, i, aps::metrics::alarms_of(run), run);
      if (options.mitigation_enabled) {
        acc.mitigation.add_run(context.baseline_hazard[i] != 0, run);
      }
    };
    aps::sim::for_each_run(context.stack, count, request,
                           monitors[m].factory, sink, &pool, streaming);
    finalize(m, shard_acc);
  }
  return evals;
}

std::vector<MonitorEval> evaluate_monitors(
    const ExperimentContext& context, const std::vector<std::string>& names,
    aps::ThreadPool& pool, const EvalOptions& options) {
  std::vector<NamedMonitor> monitors;
  monitors.reserve(names.size());
  for (const std::string& name : names) {
    monitors.push_back({name, monitor_factory_by_name(context, name)});
  }
  return evaluate_monitor_set(context, monitors, pool, options);
}

MonitorEval evaluate_monitor(const ExperimentContext& context,
                             const std::string& name,
                             const aps::sim::MonitorFactory& factory,
                             aps::ThreadPool& pool, bool mitigation_enabled) {
  EvalOptions options;
  options.mitigation_enabled = mitigation_enabled;
  auto evals =
      evaluate_monitor_set(context, {{name, factory}}, pool, options);
  return std::move(evals.front());
}

aps::sim::MonitorFactory monitor_factory_by_name(
    const ExperimentContext& context, const std::string& name) {
  if (name == "guideline") return guideline_factory(context.artifacts);
  if (name == "mpc") return mpc_factory();
  if (name == "cawot") return cawot_factory(context.stack);
  if (name == "cawt") return cawt_factory(context.artifacts);
  if (name == "cawt-population") {
    return cawt_population_factory(context.artifacts);
  }
  if (name == "dt") {
    if (context.dt == nullptr) throw std::runtime_error("DT not trained");
    return dt_factory(context.dt, context.config.ml_data.classes);
  }
  if (name == "mlp") {
    if (context.mlp == nullptr) throw std::runtime_error("MLP not trained");
    return mlp_factory(context.mlp, context.config.ml_data.classes);
  }
  if (name == "lstm") {
    if (context.lstm == nullptr) throw std::runtime_error("LSTM not trained");
    return lstm_factory(context.lstm, context.config.lstm_data.classes);
  }
  if (name == "none") return aps::sim::null_monitor_factory();
  throw std::invalid_argument("unknown monitor '" + name + "'");
}

ArtifactBundle bundle_from_context(const ExperimentContext& context) {
  ArtifactBundle bundle;
  bundle.artifacts = context.artifacts;
  bundle.dt = context.dt;
  bundle.mlp = context.mlp;
  bundle.lstm = context.lstm;
  bundle.ml_classes = context.config.ml_data.classes;
  bundle.lstm_classes = context.config.lstm_data.classes;
  // Training-time feature statistics feed the serving engine's drift
  // detectors; only available when the context retained the ML dataset.
  if (context.tabular.size() > 0) {
    bundle.training_stats =
        std::make_shared<const aps::obs::TrainingStats>(
            aps::obs::training_stats_from_samples(
                context.tabular.x.cols(),
                std::span<const double>(context.tabular.x.data(),
                                        context.tabular.x.size())));
  }
  return bundle;
}

}  // namespace aps::core
