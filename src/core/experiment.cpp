#include "core/experiment.h"

#include <stdexcept>

namespace aps::core {

ExperimentContext prepare_experiment(const aps::sim::Stack& stack,
                                     const ExperimentConfig& config,
                                     aps::ThreadPool& pool) {
  ExperimentContext context;
  context.stack = stack;
  context.config = config;

  const auto grid = config.grid();
  context.scenarios = aps::fi::enumerate_scenarios(grid);

  context.baseline =
      aps::sim::run_campaign(stack, context.scenarios,
                             aps::sim::null_monitor_factory(), {}, &pool);
  context.fault_free =
      aps::sim::run_campaign(stack, aps::fi::fault_free_scenarios(grid),
                             aps::sim::null_monitor_factory(), {}, &pool);

  context.artifacts =
      learn_artifacts(stack, context.baseline, context.fault_free);

  if (config.train_ml) train_ml_baselines(context);
  return context;
}

void train_ml_baselines(ExperimentContext& context) {
  const auto flat = flatten(context.baseline);
  const auto& profiles = context.artifacts.profiles;
  const auto& config = context.config;

  const auto tabular = build_tabular_dataset(flat.runs, profiles,
                                             flat.run_patient, config.ml_data);

  {
    aps::ml::DecisionTreeConfig dt_config;
    dt_config.max_depth = config.full ? 12 : 8;
    auto dt = std::make_shared<aps::ml::DecisionTree>(dt_config);
    dt->fit(tabular);
    context.dt = std::move(dt);
  }
  {
    aps::ml::MlpConfig mlp_config;
    mlp_config.hidden_units =
        config.full ? std::vector<std::size_t>{256, 128}
                    : std::vector<std::size_t>{64, 32};
    mlp_config.max_epochs = config.full ? 40 : 20;
    mlp_config.seed = config.seed;
    auto mlp = std::make_shared<aps::ml::Mlp>(mlp_config);
    mlp->fit(tabular);
    context.mlp = std::move(mlp);
  }
  {
    const auto sequences = build_sequence_dataset(
        flat.runs, profiles, flat.run_patient, config.lstm_data);
    aps::ml::LstmConfig lstm_config;
    lstm_config.hidden_units =
        config.full ? std::vector<std::size_t>{128, 64}
                    : std::vector<std::size_t>{32, 16};
    lstm_config.max_epochs = config.full ? 20 : 8;
    lstm_config.seed = config.seed;
    auto lstm = std::make_shared<aps::ml::Lstm>(lstm_config);
    lstm->fit(sequences);
    context.lstm = std::move(lstm);
  }
}

MonitorEval evaluate_monitor(const ExperimentContext& context,
                             const std::string& name,
                             const aps::sim::MonitorFactory& factory,
                             aps::ThreadPool& pool, bool mitigation_enabled) {
  MonitorEval eval;
  eval.name = name;
  aps::sim::CampaignOptions options;
  options.mitigation_enabled = mitigation_enabled;
  eval.campaign = aps::sim::run_campaign(context.stack, context.scenarios,
                                         factory, options, &pool);
  eval.accuracy =
      aps::metrics::evaluate_accuracy(eval.campaign,
                                      context.config.tolerance_steps);
  eval.timeliness = aps::metrics::evaluate_timeliness(eval.campaign);
  return eval;
}

aps::sim::MonitorFactory monitor_factory_by_name(
    const ExperimentContext& context, const std::string& name) {
  if (name == "guideline") return guideline_factory(context.artifacts);
  if (name == "mpc") return mpc_factory();
  if (name == "cawot") return cawot_factory(context.stack);
  if (name == "cawt") return cawt_factory(context.artifacts);
  if (name == "cawt-population") {
    return cawt_population_factory(context.artifacts);
  }
  if (name == "dt") {
    if (context.dt == nullptr) throw std::runtime_error("DT not trained");
    return dt_factory(context.dt, context.config.ml_data.classes);
  }
  if (name == "mlp") {
    if (context.mlp == nullptr) throw std::runtime_error("MLP not trained");
    return mlp_factory(context.mlp, context.config.ml_data.classes);
  }
  if (name == "lstm") {
    if (context.lstm == nullptr) throw std::runtime_error("LSTM not trained");
    return lstm_factory(context.lstm, context.config.lstm_data.classes);
  }
  if (name == "none") return aps::sim::null_monitor_factory();
  throw std::invalid_argument("unknown monitor '" + name + "'");
}

ArtifactBundle bundle_from_context(const ExperimentContext& context) {
  ArtifactBundle bundle;
  bundle.artifacts = context.artifacts;
  bundle.dt = context.dt;
  bundle.mlp = context.mlp;
  bundle.lstm = context.lstm;
  bundle.ml_classes = context.config.ml_data.classes;
  bundle.lstm_classes = context.config.lstm_data.classes;
  return bundle;
}

}  // namespace aps::core
