// Shared experiment harness behind the bench binaries: prepares a stack
// (training campaign, learned artifacts, trained ML baselines) and
// evaluates monitors by re-running the campaign with each monitor wrapped
// around the controller — the same protocol as the paper's §V.
//
// Scale: `full=false` uses the scaled grid (84 scenarios/patient) and small
// ML models so a bench finishes in minutes on two cores; `full=true` uses
// the paper-sized grid (882 scenarios/patient) and the paper's layer sizes.
// EXPERIMENTS.md records which mode produced the committed outputs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/monitor_factory.h"
#include "fi/campaign.h"
#include "metrics/evaluation.h"
#include "sim/runner.h"
#include "sim/stack.h"

namespace aps::core {

struct ExperimentConfig {
  bool full = false;
  int tolerance_steps = aps::metrics::kDefaultToleranceSteps;
  bool train_ml = true;
  MlDataOptions ml_data{.classes = 2, .stride = 3, .max_samples = 30000};
  MlDataOptions lstm_data{.classes = 2, .stride = 5, .max_samples = 8000};
  std::uint64_t seed = 2021;

  [[nodiscard]] aps::fi::CampaignGrid grid() const {
    return full ? aps::fi::CampaignGrid::full()
                : aps::fi::CampaignGrid::quick();
  }
};

/// Everything shared by the benches for one APS stack.
struct ExperimentContext {
  aps::sim::Stack stack;
  ExperimentConfig config;
  std::vector<aps::fi::Scenario> scenarios;
  aps::sim::CampaignResult baseline;    ///< null monitor (training data)
  aps::sim::CampaignResult fault_free;  ///< for guideline percentiles
  TrainingArtifacts artifacts;
  std::shared_ptr<const aps::ml::DecisionTree> dt;
  std::shared_ptr<const aps::ml::Mlp> mlp;
  std::shared_ptr<const aps::ml::Lstm> lstm;
};

[[nodiscard]] ExperimentContext prepare_experiment(
    const aps::sim::Stack& stack, const ExperimentConfig& config,
    aps::ThreadPool& pool);

/// One evaluated monitor: accuracy (both levels) + timeliness, and the
/// campaign itself for downstream analyses.
struct MonitorEval {
  std::string name;
  aps::metrics::AccuracyReport accuracy;
  aps::metrics::TimelinessStats timeliness;
  aps::sim::CampaignResult campaign;
};

[[nodiscard]] MonitorEval evaluate_monitor(
    const ExperimentContext& context, const std::string& name,
    const aps::sim::MonitorFactory& factory, aps::ThreadPool& pool,
    bool mitigation_enabled = false);

/// Train the three ML baselines on the context's baseline campaign.
void train_ml_baselines(ExperimentContext& context);

/// Standard monitor line-up for Tables V/VI: factory by name.
[[nodiscard]] aps::sim::MonitorFactory monitor_factory_by_name(
    const ExperimentContext& context, const std::string& name);

/// Package the context's learned artifacts + trained models for
/// persistence (io::save_bundle) and serving (serve::MonitorEngine).
[[nodiscard]] ArtifactBundle bundle_from_context(
    const ExperimentContext& context);

}  // namespace aps::core
