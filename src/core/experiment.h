// Shared experiment harness behind the bench binaries: prepares a stack
// (training campaign, learned artifacts, trained ML baselines) and
// evaluates monitors by re-running the campaign with each monitor wrapped
// around the controller — the same protocol as the paper's §V.
//
// The pipeline is streaming end to end: the baseline campaign flows once
// through sim::for_each_run while per-shard accumulators collect hazard
// statistics, rule-violation datasets, and reservoir-sampled ML training
// sets — no trace is ever retained, so peak memory is flat in the campaign
// size. Monitor evaluation is fused: when mitigation is off a monitor is a
// passive observer, so every monitor of a line-up is scored from ONE
// campaign pass (sim observer banks), bit-identical to dedicated passes.
//
// Scale: `full=false` uses the scaled grid (84 scenarios/patient) and small
// ML models so a bench finishes in minutes on two cores; `full=true` uses
// the paper-sized grid (882 scenarios/patient) and the paper's layer sizes.
// EXPERIMENTS.md records which mode produced the committed outputs.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/monitor_factory.h"
#include "fi/campaign.h"
#include "metrics/evaluation.h"
#include "sim/runner.h"
#include "sim/stack.h"

namespace aps::core {

struct ExperimentConfig {
  bool full = false;
  int tolerance_steps = aps::metrics::kDefaultToleranceSteps;
  bool train_ml = true;
  MlDataOptions ml_data{.classes = 2, .stride = 3, .max_samples = 30000};
  MlDataOptions lstm_data{.classes = 2, .stride = 5, .max_samples = 8000};
  /// Cross-validate the decision tree's depth (parallel k-fold) instead of
  /// using the fixed per-mode default. Off by default: it trains k trees
  /// per candidate depth.
  bool dt_depth_cv = false;
  std::uint64_t seed = 2021;

  [[nodiscard]] aps::fi::CampaignGrid grid() const {
    return full ? aps::fi::CampaignGrid::full()
                : aps::fi::CampaignGrid::quick();
  }
};

/// Streaming summary of the unmonitored baseline campaign — everything the
/// benches read (Fig. 7/8, Table V context), accumulated per shard and
/// merged in shard order so the result is independent of scheduling.
struct BaselineStats {
  struct Bucket {
    std::size_t runs = 0;
    std::size_t hazards = 0;

    void add(bool hazard) {
      ++runs;
      if (hazard) ++hazards;
    }
    void merge(const Bucket& other) {
      runs += other.runs;
      hazards += other.hazards;
    }
    [[nodiscard]] double coverage() const {
      return runs > 0
                 ? static_cast<double>(hazards) / static_cast<double>(runs)
                 : 0.0;
    }
  };

  aps::metrics::ResilienceStats resilience;
  std::vector<Bucket> by_patient;             ///< indexed by cohort slot
  std::map<std::string, Bucket> by_fault;     ///< fault kind ("fault_free")
  std::map<double, Bucket> by_initial_bg;

  void add_run(std::size_t patient_slot, const aps::sim::SimResult& run);
  void merge(const BaselineStats& other);
};

/// Everything shared by the benches for one APS stack. Holds only
/// fixed-size summaries and reservoir-bounded training data — never the
/// campaign traces themselves.
struct ExperimentContext {
  aps::sim::Stack stack;
  ExperimentConfig config;
  std::vector<aps::fi::Scenario> scenarios;

  BaselineStats baseline;  ///< streamed summary of the null-monitor pass
  /// Hazard flag per baseline run index ((patient, scenario) order): the
  /// matched unmitigated twin for streaming mitigation evaluation.
  std::vector<std::uint8_t> baseline_hazard;
  /// Per-patient rule-violation datasets (default extraction options),
  /// extracted while the baseline streamed; ablations re-learn thresholds
  /// from these without another campaign.
  std::vector<RuleDatasets> rule_data;
  /// Fault-free campaign, retained: it is O(cohort) runs by construction
  /// (guideline percentiles, fault-free training ablation).
  aps::sim::CampaignResult fault_free;

  TrainingArtifacts artifacts;
  /// Reservoir-sampled ML training sets (bounded by MlDataOptions
  /// capacities); kept for retraining ablations.
  aps::ml::Dataset tabular;
  aps::ml::SequenceDataset sequences;
  std::shared_ptr<const aps::ml::DecisionTree> dt;
  std::shared_ptr<const aps::ml::Mlp> mlp;
  std::shared_ptr<const aps::ml::Lstm> lstm;

  /// Campaign run count (cohort x scenarios).
  [[nodiscard]] std::size_t run_count() const {
    return static_cast<std::size_t>(stack.cohort_size) * scenarios.size();
  }
};

[[nodiscard]] ExperimentContext prepare_experiment(
    const aps::sim::Stack& stack, const ExperimentConfig& config,
    aps::ThreadPool& pool);

/// Stream the unmonitored baseline campaign only — the BaselineStats the
/// resilience figures (Fig. 7/8) read — without learning artifacts or
/// collecting training data. Peak memory is flat in the grid size.
[[nodiscard]] BaselineStats run_baseline_stats(const aps::sim::Stack& stack,
                                               const ExperimentConfig& config,
                                               aps::ThreadPool& pool);

/// One evaluated monitor: accuracy (both levels) + timeliness, plus the
/// optional breakdowns the benches request. No campaign is retained.
struct MonitorEval {
  std::string name;
  aps::metrics::AccuracyReport accuracy;
  aps::metrics::TimelinessStats timeliness;
  /// Filled only by mitigation passes (EvalOptions::mitigation_enabled).
  aps::metrics::MitigationReport mitigation;
  /// Per-cohort-slot breakdowns (EvalOptions::per_patient).
  std::vector<aps::metrics::AccuracyReport> accuracy_by_patient;
  std::vector<aps::metrics::TimelinessStats> timeliness_by_patient;
  /// One extra sample-level report per EvalOptions::extra_tolerances entry.
  std::vector<aps::metrics::AccuracyReport> accuracy_by_tolerance;
};

struct EvalOptions {
  /// Mitigation makes monitors active (their alarms change delivery), so
  /// each monitor needs its own campaign pass; passive line-ups fuse into
  /// one pass.
  bool mitigation_enabled = false;
  aps::monitor::MitigationConfig mitigation;
  bool per_patient = false;
  std::vector<int> extra_tolerances;
  /// fused=false re-runs the campaign once per monitor with the monitor
  /// driving (the pre-refactor protocol); reports are byte-identical to
  /// the fused pass, it is only slower. Exposed for A/B benches.
  bool fused = true;
  /// Execution backend for the passes (scalar = reference path).
  aps::sim::SimBackend backend = aps::sim::SimBackend::kBatched;
};

/// A monitor line-up entry for fused evaluation.
struct NamedMonitor {
  std::string name;
  aps::sim::MonitorFactory factory;
};

/// Evaluate a whole monitor line-up. Without mitigation this is ONE
/// campaign pass — the simulation runs unmonitored while every factory's
/// monitors observe passively — and each monitor's reports are
/// byte-identical to a dedicated pass of its own. With mitigation each
/// monitor drives its own pass (streaming accumulators either way).
[[nodiscard]] std::vector<MonitorEval> evaluate_monitor_set(
    const ExperimentContext& context,
    const std::vector<NamedMonitor>& monitors, aps::ThreadPool& pool,
    const EvalOptions& options = {});

/// Name-resolved convenience over evaluate_monitor_set.
[[nodiscard]] std::vector<MonitorEval> evaluate_monitors(
    const ExperimentContext& context, const std::vector<std::string>& names,
    aps::ThreadPool& pool, const EvalOptions& options = {});

[[nodiscard]] MonitorEval evaluate_monitor(
    const ExperimentContext& context, const std::string& name,
    const aps::sim::MonitorFactory& factory, aps::ThreadPool& pool,
    bool mitigation_enabled = false);

/// Train the three ML baselines on the context's reservoir-sampled
/// training sets (chunk-parallel minibatches across the pool).
void train_ml_baselines(ExperimentContext& context, aps::ThreadPool& pool);

/// Pick the decision-tree depth with the best k-fold CV macro accuracy
/// (folds evaluated in parallel). Exposed for the --dt-cv bench flag.
[[nodiscard]] int select_dt_depth(const aps::ml::Dataset& data,
                                  const std::vector<int>& candidates, int k,
                                  std::uint64_t seed,
                                  aps::ThreadPool* pool = nullptr);

/// Standard monitor line-up for Tables V/VI: factory by name.
[[nodiscard]] aps::sim::MonitorFactory monitor_factory_by_name(
    const ExperimentContext& context, const std::string& name);

/// Package the context's learned artifacts + trained models for
/// persistence (io::save_bundle) and serving (serve::MonitorEngine).
[[nodiscard]] ArtifactBundle bundle_from_context(
    const ExperimentContext& context);

}  // namespace aps::core
