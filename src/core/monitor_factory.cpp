#include "core/monitor_factory.h"

#include <algorithm>
#include <stdexcept>

#include "common/stats.h"
#include "controller/iob.h"
#include "monitor/ml_monitor.h"

namespace aps::core {

int ml_sample_label(const aps::sim::SimResult& run, std::size_t k,
                    int classes) {
  if (!run.label.hazardous) return 0;
  const bool positive = static_cast<int>(k) <= run.label.onset_step ||
                        run.label.sample_hazard[k];
  if (!positive) return 0;
  if (classes < 3) return 1;
  return run.label.type == aps::HazardType::kH1TooMuchInsulin ? 1 : 2;
}

aps::monitor::GuidelineConfig guideline_config_from_traces(
    const std::vector<const aps::sim::SimResult*>& fault_free_runs) {
  std::vector<double> bgs;
  for (const auto* run : fault_free_runs) {
    const auto trace = run->cgm_trace();
    bgs.insert(bgs.end(), trace.begin(), trace.end());
  }
  aps::monitor::GuidelineConfig config;
  if (!bgs.empty()) {
    config.lambda10 = aps::percentile(bgs, 10.0);
    config.lambda90 = aps::percentile(bgs, 90.0);
  }
  return config;
}

std::vector<PatientProfile> stack_profiles(const aps::sim::Stack& stack) {
  std::vector<PatientProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(stack.cohort_size));
  const aps::controller::IobCalculator iob_calc;
  for (int p = 0; p < stack.cohort_size; ++p) {
    const auto patient = stack.make_patient(p);
    const auto controller = stack.make_controller(*patient);
    PatientProfile profile;
    profile.basal_rate = controller->basal_rate();
    profile.isf = controller->isf();
    profile.steady_state_iob = iob_calc.steady_state_iob(profile.basal_rate);
    profiles.push_back(profile);
  }
  return profiles;
}

aps::sim::MonitorFactory cawot_factory(const aps::sim::Stack& stack,
                                       double target_bg) {
  return cawot_factory(stack_profiles(stack), target_bg);
}

aps::sim::MonitorFactory cawot_factory(std::vector<PatientProfile> profiles,
                                       double target_bg) {
  auto shared = std::make_shared<const std::vector<PatientProfile>>(
      std::move(profiles));
  return [shared, target_bg](int patient_index) {
    const auto& profile = shared->at(static_cast<std::size_t>(patient_index));
    aps::monitor::CawConfig config;
    config.target_bg = target_bg;
    config.thresholds =
        aps::monitor::default_thresholds(profile.steady_state_iob);
    config.name = "cawot";
    return std::make_unique<aps::monitor::CawMonitor>(config);
  };
}

aps::sim::MonitorFactory mpc_factory(aps::monitor::MpcConfig config) {
  return [config](int) {
    return std::make_unique<aps::monitor::MpcMonitor>(config);
  };
}

TrainingArtifacts learn_artifacts_from_data(
    const aps::sim::Stack& stack, const std::vector<RuleDatasets>& rule_data,
    const aps::sim::CampaignResult& fault_free,
    const ThresholdLearningOptions& options, aps::ThreadPool* pool) {
  TrainingArtifacts artifacts;
  artifacts.profiles = stack_profiles(stack);
  const auto patients = rule_data.size();

  // Patient-specific thresholds: independent optimizations, placed by
  // patient index.
  artifacts.patient_thresholds.resize(patients);
  const auto learn_patient = [&](std::size_t p) {
    const auto& profile = artifacts.profiles[p];
    const auto defaults =
        aps::monitor::default_thresholds(profile.steady_state_iob);
    artifacts.patient_thresholds[p] =
        learn_thresholds(rule_data[p], defaults, options).values;
  };
  if (pool != nullptr && patients > 1) {
    pool->parallel_for(patients, learn_patient);
  } else {
    for (std::size_t p = 0; p < patients; ++p) learn_patient(p);
  }

  // Population thresholds from the pooled violation data (patient order,
  // so pooling is independent of how the campaign was sharded), with
  // defaults anchored to the cohort-average basal IOB.
  RuleDatasets pooled;
  for (std::size_t p = 0; p < patients; ++p) {
    for (const auto& [param, values] : rule_data[p]) {
      auto& bucket = pooled[param];
      bucket.insert(bucket.end(), values.begin(), values.end());
    }
  }
  double mean_ss_iob = 0.0;
  for (const auto& profile : artifacts.profiles) {
    mean_ss_iob += profile.steady_state_iob;
  }
  mean_ss_iob /= static_cast<double>(artifacts.profiles.size());
  const auto pop_defaults = aps::monitor::default_thresholds(mean_ss_iob);
  artifacts.population_thresholds =
      learn_thresholds(pooled, pop_defaults, options).values;

  // Guideline percentiles per patient from fault-free operation.
  for (std::size_t p = 0; p < patients; ++p) {
    std::vector<const aps::sim::SimResult*> runs;
    if (p < fault_free.by_patient.size()) {
      for (const auto& r : fault_free.by_patient[p]) runs.push_back(&r);
    }
    artifacts.guideline_configs.push_back(
        guideline_config_from_traces(runs));
  }
  return artifacts;
}

TrainingArtifacts learn_artifacts(const aps::sim::Stack& stack,
                                  const aps::sim::CampaignResult& training,
                                  const aps::sim::CampaignResult& fault_free,
                                  const ThresholdLearningOptions& options) {
  aps::monitor::CawConfig context_config;
  context_config.target_bg = TrainingArtifacts{}.target_bg;

  const auto profiles = stack_profiles(stack);
  std::vector<RuleDatasets> rule_data;
  rule_data.reserve(training.by_patient.size());
  for (std::size_t p = 0; p < training.by_patient.size(); ++p) {
    std::vector<const aps::sim::SimResult*> runs;
    for (const auto& r : training.by_patient[p]) runs.push_back(&r);
    rule_data.push_back(extract_rule_datasets(runs, context_config,
                                              profiles[p].basal_rate,
                                              profiles[p].isf, options));
  }
  return learn_artifacts_from_data(stack, rule_data, fault_free, options);
}

aps::sim::MonitorFactory cawt_factory(const TrainingArtifacts& artifacts) {
  auto thresholds =
      std::make_shared<const std::vector<std::map<std::string, double>>>(
          artifacts.patient_thresholds);
  const double target_bg = artifacts.target_bg;
  return [thresholds, target_bg](int patient_index) {
    aps::monitor::CawConfig config;
    config.target_bg = target_bg;
    config.thresholds =
        thresholds->at(static_cast<std::size_t>(patient_index));
    config.name = "cawt";
    return std::make_unique<aps::monitor::CawMonitor>(config);
  };
}

aps::sim::MonitorFactory cawt_population_factory(
    const TrainingArtifacts& artifacts) {
  auto thresholds = std::make_shared<const std::map<std::string, double>>(
      artifacts.population_thresholds);
  const double target_bg = artifacts.target_bg;
  return [thresholds, target_bg](int) {
    aps::monitor::CawConfig config;
    config.target_bg = target_bg;
    config.thresholds = *thresholds;
    config.name = "cawt-population";
    return std::make_unique<aps::monitor::CawMonitor>(config);
  };
}

aps::sim::MonitorFactory guideline_factory(
    const TrainingArtifacts& artifacts) {
  auto configs =
      std::make_shared<const std::vector<aps::monitor::GuidelineConfig>>(
          artifacts.guideline_configs);
  return [configs](int patient_index) {
    return std::make_unique<aps::monitor::GuidelineMonitor>(
        configs->at(static_cast<std::size_t>(patient_index)));
  };
}

FlatCampaign flatten(const aps::sim::CampaignResult& campaign) {
  FlatCampaign flat;
  for (std::size_t p = 0; p < campaign.by_patient.size(); ++p) {
    for (const auto& run : campaign.by_patient[p]) {
      flat.runs.push_back(&run);
      flat.run_patient.push_back(static_cast<int>(p));
    }
  }
  return flat;
}

void accumulate_tabular_samples(const aps::sim::SimResult& run,
                                const PatientProfile& profile,
                                std::uint64_t run_index,
                                const MlDataOptions& options,
                                aps::ml::DatasetBuilder& builder) {
  for (std::size_t k = 0; k < run.steps.size();
       k += static_cast<std::size_t>(options.stride)) {
    const auto obs = observation_at(run, k, profile.basal_rate, profile.isf);
    builder.add(run_index, k, aps::monitor::ml_features(obs),
                ml_sample_label(run, k, options.classes));
  }
}

void accumulate_sequence_samples(const aps::sim::SimResult& run,
                                 const PatientProfile& profile,
                                 std::uint64_t run_index,
                                 const MlDataOptions& options,
                                 aps::ml::SequenceDatasetBuilder& builder) {
  const std::size_t window = aps::monitor::kLstmWindow;
  if (run.steps.size() < window) return;
  for (std::size_t end = window - 1; end < run.steps.size();
       end += static_cast<std::size_t>(options.stride)) {
    aps::ml::Matrix seq(window, aps::monitor::kMlFeatureCount);
    for (std::size_t t = 0; t < window; ++t) {
      const std::size_t k = end - window + 1 + t;
      const auto obs =
          observation_at(run, k, profile.basal_rate, profile.isf);
      const auto features = aps::monitor::ml_features(obs);
      for (std::size_t c = 0; c < features.size(); ++c) {
        seq.at(t, c) = features[c];
      }
    }
    builder.add(run_index, end, std::move(seq),
                ml_sample_label(run, end, options.classes));
  }
}

aps::ml::Dataset build_tabular_dataset(
    const std::vector<const aps::sim::SimResult*>& runs,
    const std::vector<PatientProfile>& profiles,
    const std::vector<int>& run_patient, const MlDataOptions& options) {
  aps::ml::DatasetBuilder builder(aps::monitor::kMlFeatureCount,
                                  options.classes, options.max_samples,
                                  options.sample_seed);
  for (std::size_t r = 0; r < runs.size(); ++r) {
    accumulate_tabular_samples(
        *runs[r], profiles[static_cast<std::size_t>(run_patient[r])], r,
        options, builder);
  }
  return builder.build();
}

aps::ml::SequenceDataset build_sequence_dataset(
    const std::vector<const aps::sim::SimResult*>& runs,
    const std::vector<PatientProfile>& profiles,
    const std::vector<int>& run_patient, const MlDataOptions& options) {
  aps::ml::SequenceDatasetBuilder builder(options.classes,
                                          options.max_samples,
                                          options.sample_seed);
  for (std::size_t r = 0; r < runs.size(); ++r) {
    accumulate_sequence_samples(
        *runs[r], profiles[static_cast<std::size_t>(run_patient[r])], r,
        options, builder);
  }
  return builder.build();
}

aps::sim::MonitorFactory dt_factory(
    std::shared_ptr<const aps::ml::DecisionTree> model, int classes) {
  return [model, classes](int) {
    return std::make_unique<aps::monitor::DtMonitor>(model, classes);
  };
}

aps::sim::MonitorFactory mlp_factory(
    std::shared_ptr<const aps::ml::Mlp> model, int classes) {
  return [model, classes](int) {
    return std::make_unique<aps::monitor::MlpMonitor>(model, classes);
  };
}

aps::sim::MonitorFactory lstm_factory(
    std::shared_ptr<const aps::ml::Lstm> model, int classes) {
  return [model, classes](int) {
    return std::make_unique<aps::monitor::LstmMonitor>(model, classes);
  };
}

std::vector<std::string> bundle_monitor_names(const ArtifactBundle& bundle) {
  std::vector<std::string> names = {"none",  "guideline",      "mpc",
                                    "cawot", "cawt",           "cawt-population"};
  if (bundle.dt != nullptr) names.emplace_back("dt");
  if (bundle.mlp != nullptr) names.emplace_back("mlp");
  if (bundle.lstm != nullptr) names.emplace_back("lstm");
  return names;
}

int bundle_cohort_size(const ArtifactBundle& bundle) {
  return static_cast<int>(bundle.artifacts.profiles.size());
}

aps::sim::MonitorFactory factory_from_bundle(const ArtifactBundle& bundle,
                                             const std::string& name) {
  if (name == "none") return aps::sim::null_monitor_factory();
  if (name == "guideline") return guideline_factory(bundle.artifacts);
  if (name == "mpc") return mpc_factory();
  if (name == "cawot") {
    return cawot_factory(bundle.artifacts.profiles,
                         bundle.artifacts.target_bg);
  }
  if (name == "cawt") return cawt_factory(bundle.artifacts);
  if (name == "cawt-population") {
    return cawt_population_factory(bundle.artifacts);
  }
  if (name == "dt") {
    if (bundle.dt == nullptr) {
      throw std::runtime_error("bundle has no decision-tree model");
    }
    return dt_factory(bundle.dt, bundle.ml_classes);
  }
  if (name == "mlp") {
    if (bundle.mlp == nullptr) {
      throw std::runtime_error("bundle has no MLP model");
    }
    return mlp_factory(bundle.mlp, bundle.ml_classes);
  }
  if (name == "lstm") {
    if (bundle.lstm == nullptr) {
      throw std::runtime_error("bundle has no LSTM model");
    }
    return lstm_factory(bundle.lstm, bundle.lstm_classes);
  }
  throw std::invalid_argument("unknown monitor '" + name + "'");
}

}  // namespace aps::core
