// Monitor synthesis: turn campaign data + profiles into each of the
// paper's monitors (Guideline, MPC, CAWOT, CAWT, DT, MLP, LSTM) behind the
// common sim::MonitorFactory interface, plus the ML dataset builders.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/threshold_pipeline.h"
#include "ml/decision_tree.h"
#include "ml/lstm.h"
#include "ml/mlp.h"
#include "monitor/caw.h"
#include "monitor/guideline.h"
#include "monitor/mpc.h"
#include "obs/drift.h"
#include "sim/runner.h"

namespace aps::core {

// ---- Profile-only monitors ---------------------------------------------------

/// Guideline monitor with lambda10/lambda90 estimated from the patient's
/// fault-free BG distribution.
[[nodiscard]] aps::monitor::GuidelineConfig guideline_config_from_traces(
    const std::vector<const aps::sim::SimResult*>& fault_free_runs);

/// CAWOT: Table I logic with profile-derived default thresholds.
[[nodiscard]] aps::sim::MonitorFactory cawot_factory(
    const aps::sim::Stack& stack, double target_bg = 120.0);

struct PatientProfile;
/// CAWOT from pre-extracted profiles (no live stack needed — the serving
/// path builds it from persisted artifacts).
[[nodiscard]] aps::sim::MonitorFactory cawot_factory(
    std::vector<PatientProfile> profiles, double target_bg = 120.0);

/// MPC monitor factory (population model; same config for every patient).
[[nodiscard]] aps::sim::MonitorFactory mpc_factory(
    aps::monitor::MpcConfig config = {});

// ---- Data-driven monitors -------------------------------------------------------

/// Per-patient basal / ISF profile of a stack (used during extraction).
struct PatientProfile {
  double basal_rate = 0.0;
  double isf = 0.0;
  double steady_state_iob = 0.0;
};
[[nodiscard]] std::vector<PatientProfile> stack_profiles(
    const aps::sim::Stack& stack);

/// Everything the data-driven monitors need, learned from one training
/// campaign run without a monitor.
struct TrainingArtifacts {
  std::vector<PatientProfile> profiles;
  /// Patient-specific learned thresholds (CAWT).
  std::vector<std::map<std::string, double>> patient_thresholds;
  /// Thresholds learned from all patients pooled (population ablation).
  std::map<std::string, double> population_thresholds;
  /// Guideline configs per patient (percentiles from fault-free runs).
  std::vector<aps::monitor::GuidelineConfig> guideline_configs;
  double target_bg = 120.0;
};

/// Learn all artifacts from a training campaign (`training` must come from
/// the same stack, run with the null monitor) plus fault-free runs for the
/// guideline percentiles.
[[nodiscard]] TrainingArtifacts learn_artifacts(
    const aps::sim::Stack& stack, const aps::sim::CampaignResult& training,
    const aps::sim::CampaignResult& fault_free,
    const ThresholdLearningOptions& options = {});

/// Learn artifacts from pre-extracted per-patient rule datasets (the
/// streaming pipeline's path: violation values are accumulated while the
/// baseline campaign streams, so no trace is ever retained) plus the
/// retained fault-free campaign for the guideline percentiles. With a
/// pool, per-patient threshold optimizations run concurrently; results are
/// placed by patient index, so output never depends on scheduling.
[[nodiscard]] TrainingArtifacts learn_artifacts_from_data(
    const aps::sim::Stack& stack, const std::vector<RuleDatasets>& rule_data,
    const aps::sim::CampaignResult& fault_free,
    const ThresholdLearningOptions& options = {},
    aps::ThreadPool* pool = nullptr);

[[nodiscard]] aps::sim::MonitorFactory cawt_factory(
    const TrainingArtifacts& artifacts);
/// CAWT with the pooled population thresholds for every patient.
[[nodiscard]] aps::sim::MonitorFactory cawt_population_factory(
    const TrainingArtifacts& artifacts);
[[nodiscard]] aps::sim::MonitorFactory guideline_factory(
    const TrainingArtifacts& artifacts);

// ---- ML monitors ------------------------------------------------------------------

struct MlDataOptions {
  int classes = 2;   ///< 2 = safe/unsafe, 3 = none/H1/H2 (ablation §VI-1)
  int stride = 1;    ///< take every stride-th sample
  /// Reservoir capacity: when the campaign yields more candidate samples,
  /// a deterministic seeded bottom-k reservoir keeps a uniform subsample
  /// that is invariant to shard layout and thread count.
  std::size_t max_samples = 200000;
  std::uint64_t sample_seed = 0x5EEDu;  ///< reservoir priority seed
};

/// Eq. 7 label of step k of a labeled run: positive when a hazard lies in
/// the run's future (pre-onset) or the sample itself is hazardous; with
/// classes >= 3 the positive class distinguishes H1 from H2.
[[nodiscard]] int ml_sample_label(const aps::sim::SimResult& run,
                                  std::size_t k, int classes);

/// Stream one finished run's strided samples into the tabular reservoir
/// (features per Eq. 7). `run_index` addresses the run globally so the
/// reservoir's sample identity is campaign-wide.
void accumulate_tabular_samples(const aps::sim::SimResult& run,
                                const PatientProfile& profile,
                                std::uint64_t run_index,
                                const MlDataOptions& options,
                                aps::ml::DatasetBuilder& builder);

/// Stream one finished run's sliding windows (Eq. 8) into the sequence
/// reservoir.
void accumulate_sequence_samples(const aps::sim::SimResult& run,
                                 const PatientProfile& profile,
                                 std::uint64_t run_index,
                                 const MlDataOptions& options,
                                 aps::ml::SequenceDatasetBuilder& builder);

/// Tabular dataset over ml_features(...) with Eq. 7 labels.
[[nodiscard]] aps::ml::Dataset build_tabular_dataset(
    const std::vector<const aps::sim::SimResult*>& runs,
    const std::vector<PatientProfile>& profiles,
    const std::vector<int>& run_patient, const MlDataOptions& options = {});

/// Sliding-window dataset (Eq. 8) for the LSTM.
[[nodiscard]] aps::ml::SequenceDataset build_sequence_dataset(
    const std::vector<const aps::sim::SimResult*>& runs,
    const std::vector<PatientProfile>& profiles,
    const std::vector<int>& run_patient, const MlDataOptions& options = {});

/// Flatten a campaign into (runs, patient-index-per-run) pairs.
struct FlatCampaign {
  std::vector<const aps::sim::SimResult*> runs;
  std::vector<int> run_patient;
};
[[nodiscard]] FlatCampaign flatten(const aps::sim::CampaignResult& campaign);

[[nodiscard]] aps::sim::MonitorFactory dt_factory(
    std::shared_ptr<const aps::ml::DecisionTree> model, int classes);
[[nodiscard]] aps::sim::MonitorFactory mlp_factory(
    std::shared_ptr<const aps::ml::Mlp> model, int classes);
[[nodiscard]] aps::sim::MonitorFactory lstm_factory(
    std::shared_ptr<const aps::ml::Lstm> model, int classes);

// ---- Serving bundle ---------------------------------------------------------

/// Everything a serving process needs to stand up any of the paper's
/// monitors without retraining: the learned thresholds/percentiles plus
/// the (optional) trained ML models. The models are shared immutable state:
/// every session monitor cloned from a bundle-backed factory holds the same
/// shared_ptr, so N sessions cost one copy of the weights.
struct ArtifactBundle {
  TrainingArtifacts artifacts;
  std::shared_ptr<const aps::ml::DecisionTree> dt;  ///< may be null
  std::shared_ptr<const aps::ml::Mlp> mlp;          ///< may be null
  std::shared_ptr<const aps::ml::Lstm> lstm;        ///< may be null
  int ml_classes = 2;    ///< label space of dt/mlp
  int lstm_classes = 2;  ///< label space of lstm
  /// Training-time per-feature statistics (optional trailing bundle
  /// section; null for bundles written before it existed or trained
  /// without the ML dataset). The serving engine seeds its per-shard
  /// drift detectors from it.
  std::shared_ptr<const aps::obs::TrainingStats> training_stats;
};

/// Monitor names constructible from this bundle (subset of the Table V/VI
/// line-up depending on which models are present).
[[nodiscard]] std::vector<std::string> bundle_monitor_names(
    const ArtifactBundle& bundle);

/// Number of per-patient artifact rows the bundle's factories accept:
/// patient_index must lie in [0, bundle_cohort_size()). The serving engine
/// validates session opens and snapshot restores against it up front
/// instead of relying on each factory's out-of-range throw.
[[nodiscard]] int bundle_cohort_size(const ArtifactBundle& bundle);

/// Construct any named monitor ("none", "guideline", "mpc", "cawot",
/// "cawt", "cawt-population", "dt", "mlp", "lstm") from the bundle.
/// Throws std::invalid_argument for unknown names and std::runtime_error
/// when the requested model is absent from the bundle.
[[nodiscard]] aps::sim::MonitorFactory factory_from_bundle(
    const ArtifactBundle& bundle, const std::string& name);

}  // namespace aps::core
