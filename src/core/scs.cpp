#include "core/scs.h"

#include <set>
#include <stdexcept>

namespace aps::core {

SafetyContextSpec::SafetyContextSpec(std::vector<Accident> accidents,
                                     std::vector<Hazard> hazards,
                                     std::vector<UcasEntry> ucas,
                                     std::vector<HmsEntry> hms,
                                     aps::monitor::CawConfig context_config)
    : accidents_(std::move(accidents)),
      hazards_(std::move(hazards)),
      ucas_(std::move(ucas)),
      hms_(std::move(hms)),
      context_config_(std::move(context_config)) {}

aps::stl::FormulaPtr SafetyContextSpec::ucas_formula(std::size_t index) const {
  if (index >= ucas_.size()) {
    throw std::out_of_range("SCS: UCAS index out of range");
  }
  return aps::monitor::rule_to_stl(ucas_[index].rule, context_config_);
}

aps::stl::FormulaPtr SafetyContextSpec::hms_formula(std::size_t index) const {
  using namespace aps::stl;
  if (index >= hms_.size()) {
    throw std::out_of_range("SCS: HMS index out of range");
  }
  const HmsEntry& entry = hms_[index];
  // Context atom: the monitor has flagged the corresponding hazard class.
  const std::string hazard_var =
      entry.trigger == aps::HazardType::kH1TooMuchInsulin ? "hazard_h1"
                                                          : "hazard_h2";
  // Corrective-action atom (boolean signal, e.g. "mitigate_h1").
  const std::string action_var =
      entry.trigger == aps::HazardType::kH1TooMuchInsulin ? "mitigate_h1"
                                                          : "mitigate_h2";
  // Eq. 2: G[t0,te]((F[0,ts] u_c) S context).
  return globally(
      Interval{0, Interval::kUnbounded},
      since(Interval{0, Interval::kUnbounded},
            eventually(Interval{0, entry.deadline_steps},
                       bool_atom(action_var)),
            bool_atom(hazard_var)));
}

std::vector<std::string> SafetyContextSpec::free_parameters() const {
  std::set<std::string> params;
  for (std::size_t i = 0; i < ucas_.size(); ++i) {
    ucas_formula(i)->collect_params(params);
  }
  return {params.begin(), params.end()};
}

SafetyContextSpec aps_scs(double target_bg) {
  std::vector<Accident> accidents = {
      {"A1",
       "Complications from hypoglycemia: seizure, loss of consciousness, "
       "death"},
      {"A2",
       "Complications from hyperglycemia: tissue damage, retinopathy, "
       "death"},
  };
  std::vector<Hazard> hazards = {
      {"H1", aps::HazardType::kH1TooMuchInsulin,
       "Too much insulin is infused; BG falls", "A1"},
      {"H2", aps::HazardType::kH2TooLittleInsulin,
       "Too little insulin is infused; BG rises", "A2"},
  };

  std::vector<UcasEntry> ucas;
  for (const auto& rule : aps::monitor::caw_rules()) {
    UcasEntry entry;
    entry.rule = rule;
    entry.hazard_id =
        rule.hazard == aps::HazardType::kH1TooMuchInsulin ? "H1" : "H2";
    switch (rule.id) {
      case 9:
        entry.rationale =
            "Stopping insulin while hyperglycemic with little on board "
            "starves the correction";
        break;
      case 10:
        entry.rationale =
            "Below the hypo threshold the pump must suspend";
        break;
      case 11:
      case 12:
        entry.rationale =
            "Keeping the current rate is unsafe when the trend and the "
            "insulin depot both point the wrong way";
        break;
      default:
        entry.rationale = rule.hazard == aps::HazardType::kH1TooMuchInsulin
                              ? "Adding insulin while low and falling with a "
                                "full depot drives hypoglycemia"
                              : "Cutting insulin while high with an empty "
                                "depot drives hyperglycemia";
    }
    ucas.push_back(std::move(entry));
  }

  std::vector<HmsEntry> hms = {
      {aps::HazardType::kH1TooMuchInsulin, "suspend delivery (rate = 0)",
       /*deadline_steps=*/1},
      {aps::HazardType::kH2TooLittleInsulin,
       "deliver corrective insulin (fixed max for baseline comparability)",
       /*deadline_steps=*/1},
  };

  aps::monitor::CawConfig config;
  config.target_bg = target_bg;
  return SafetyContextSpec(std::move(accidents), std::move(hazards),
                           std::move(ucas), std::move(hms), config);
}

}  // namespace aps::core
