// Safety Context Specification framework (paper §III-B): the bridge from
// STAMP-style hazard analysis to machine-checkable STL monitors.
//
// A specification is a set of UCAS tuples (context, control action, hazard)
// plus HMS tuples (context, safe corrective actions). Contexts are
// conjunctions of predicates over transformations mu(x_t) of the observable
// state; thresholds may be left free ("{beta_i}") for the data-driven
// refinement stage. The framework renders each tuple as the STL template of
// Eq. 1 (UCAS) or Eq. 2 (HMS).
//
// The APS instantiation (`aps_scs()`) reproduces Table I over the context
// variables mu = (BG, BG', IOB, IOB').
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "monitor/caw.h"
#include "stl/formula.h"

namespace aps::core {

/// Accidents the analysis protects against (step 1 of §III-B1).
struct Accident {
  std::string id;           ///< e.g. "A1"
  std::string description;
};

/// System-level hazards linked to accidents (step 1).
struct Hazard {
  std::string id;  ///< "H1" / "H2"
  aps::HazardType type = aps::HazardType::kNone;
  std::string description;
  std::string accident_id;  ///< which accident it can lead to
};

/// One UCAS tuple: (rho(mu(x_t)), u_t) -> H_i, carried in the executable
/// rule form shared with the monitor plus its provenance.
struct UcasEntry {
  aps::monitor::CawRule rule;
  std::string hazard_id;
  std::string rationale;  ///< analyst note, mirrors Table I row semantics
};

/// One HMS tuple: safe corrective action for a context (Eq. 2).
struct HmsEntry {
  aps::HazardType trigger = aps::HazardType::kNone;
  std::string action;      ///< human-readable corrective action
  int deadline_steps = 1;  ///< t_s: latest start of mitigation (cycles)
};

class SafetyContextSpec {
 public:
  SafetyContextSpec(std::vector<Accident> accidents,
                    std::vector<Hazard> hazards,
                    std::vector<UcasEntry> ucas, std::vector<HmsEntry> hms,
                    aps::monitor::CawConfig context_config);

  [[nodiscard]] const std::vector<Accident>& accidents() const {
    return accidents_;
  }
  [[nodiscard]] const std::vector<Hazard>& hazards() const {
    return hazards_;
  }
  [[nodiscard]] const std::vector<UcasEntry>& ucas() const { return ucas_; }
  [[nodiscard]] const std::vector<HmsEntry>& hms() const { return hms_; }
  [[nodiscard]] const aps::monitor::CawConfig& context_config() const {
    return context_config_;
  }

  /// STL template (Eq. 1) of UCAS entry `index`, thresholds left free.
  [[nodiscard]] aps::stl::FormulaPtr ucas_formula(std::size_t index) const;

  /// STL template (Eq. 2) of HMS entry `index`:
  /// G[t0,te]((F[0,ts] u_c) S context).
  [[nodiscard]] aps::stl::FormulaPtr hms_formula(std::size_t index) const;

  /// Names of all free threshold parameters across the UCAS set.
  [[nodiscard]] std::vector<std::string> free_parameters() const;

 private:
  std::vector<Accident> accidents_;
  std::vector<Hazard> hazards_;
  std::vector<UcasEntry> ucas_;
  std::vector<HmsEntry> hms_;
  aps::monitor::CawConfig context_config_;
};

/// The APS specification of §IV-B: accidents A1/A2, hazards H1/H2, the 12
/// UCAS rows of Table I, and the stop/correct HMS entries.
[[nodiscard]] SafetyContextSpec aps_scs(double target_bg = 120.0);

}  // namespace aps::core
