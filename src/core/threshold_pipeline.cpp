#include "core/threshold_pipeline.h"

#include <algorithm>

#include "risk/risk_index.h"

namespace aps::core {

aps::monitor::Observation observation_at(const aps::sim::SimResult& run,
                                         std::size_t k, double basal_rate,
                                         double isf) {
  return aps::sim::observation_from_record(run, k, basal_rate, isf);
}

RuleDatasets extract_rule_datasets(
    const std::vector<const aps::sim::SimResult*>& runs,
    const aps::monitor::CawConfig& context_config, double basal_rate,
    double isf, const ThresholdLearningOptions& options) {
  RuleDatasets datasets;
  // A probe monitor gives access to context_active(); thresholds are not
  // consulted during extraction, only sign conditions and actions.
  aps::monitor::CawMonitor probe(context_config);

  for (const auto* run : runs) {
    if (!run->label.hazardous) continue;
    const int onset = run->label.onset_step;
    const int lo = std::max(0, onset - options.lookback_steps);
    for (int k = lo; k <= onset && k < static_cast<int>(run->steps.size());
         ++k) {
      const auto obs =
          observation_at(*run, static_cast<std::size_t>(k), basal_rate, isf);
      for (const auto& rule : aps::monitor::caw_rules()) {
        if (rule.hazard != run->label.type) continue;
        if (!probe.context_active(rule, obs)) continue;
        const bool action_matches = rule.action_required
                                        ? obs.action != rule.action
                                        : obs.action == rule.action;
        if (!action_matches) continue;
        if (rule.subject == aps::monitor::RuleSubject::kBg &&
            obs.bg >= aps::risk::risk_zero_bg()) {
          continue;  // only hypo-branch readings witness rule 10
        }
        const double subject =
            rule.subject == aps::monitor::RuleSubject::kIob ? obs.iob
                                                            : obs.bg;
        datasets[rule.param].push_back(subject);
      }
    }
  }
  return datasets;
}

LearnedThresholds learn_thresholds(
    const RuleDatasets& datasets,
    const std::map<std::string, double>& defaults,
    const ThresholdLearningOptions& options) {
  LearnedThresholds out;
  out.values = defaults;

  for (const auto& rule : aps::monitor::caw_rules()) {
    const auto it = datasets.find(rule.param);
    if (it == datasets.end() || it->second.empty()) {
      out.defaulted.push_back(rule.param);
      if (options.disable_unevidenced_rules) {
        // No hazard ever followed this context/action for this patient:
        // park the threshold beyond the firing side so the rule is silent.
        out.values[rule.param] =
            rule.upper_bound ? -1.0e18 : 1.0e18;
      }
      continue;
    }
    aps::learn::ThresholdProblem problem;
    problem.violation_values = it->second;
    problem.side = rule.upper_bound ? aps::learn::BoundSide::kUpperBound
                                    : aps::learn::BoundSide::kLowerBound;
    problem.loss = options.loss;
    problem.enforce_coverage = options.enforce_coverage;
    if (rule.subject == aps::monitor::RuleSubject::kBg) {
      problem.lower_limit = options.bg_lower;
      problem.upper_limit = options.bg_upper;
    } else {
      problem.lower_limit = options.iob_lower;
      problem.upper_limit = options.iob_upper;
    }
    const auto result = aps::learn::learn_threshold(problem);
    if (result.has_value()) {
      out.values[rule.param] = result->beta;
      out.diagnostics[rule.param] = *result;
    } else {
      out.defaulted.push_back(rule.param);
    }
  }
  return out;
}

}  // namespace aps::core
