// Data-driven threshold refinement pipeline (paper §III-C2 / §V-B):
// extracts per-rule violation datasets from fault-injection campaign
// traces and learns tight thresholds with L-BFGS-B + TMEE.
//
// Violation examples for a rule are the samples of hazardous traces where
// (a) the rule's context sign-conditions held, (b) the guarded action was
// issued (or the required action withheld, rule 10), (c) the trace's
// hazard class matches the rule's, and (d) the sample lies inside the
// pre-onset window — the instants where the UCA was actually driving the
// system toward the hazard.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "learn/loss.h"
#include "learn/stl_learning.h"
#include "monitor/caw.h"
#include "sim/runner.h"

namespace aps::core {

struct ThresholdLearningOptions {
  aps::learn::LossKind loss = aps::learn::LossKind::kTmee;
  /// Samples considered before the hazard onset (2 h default).
  int lookback_steps = 24;
  /// Box bounds on IOB thresholds (U).
  double iob_lower = 0.0;
  double iob_upper = 20.0;
  /// Box bounds on the BG threshold of rule 10 (mg/dL). Samples above the
  /// hypoglycemic risk branch (~112.5, risk_zero_bg()) are excluded from
  /// the rule's violation set: only readings already on the hypo side
  /// witness a missing pump suspension.
  double bg_lower = 40.0;
  double bg_upper = 90.0;
  /// Weak supervision: a rule with no violation evidence for this patient
  /// never contributed to a hazard, so CAWT leaves it silent (thresholds
  /// pushed past the firing side). Set false to keep the CAWOT-style
  /// profile defaults for unevidenced rules instead.
  bool disable_unevidenced_rules = true;
  /// Forwarded to ThresholdProblem::enforce_coverage (Eq. 3's hard
  /// constraint). Disabled only by the loss-shape ablation.
  bool enforce_coverage = true;
};

/// Per-rule violation values (keyed by threshold parameter name).
using RuleDatasets = std::map<std::string, std::vector<double>>;

/// Reconstruct the monitor observation of step k of a run (same values the
/// monitor saw during simulation).
[[nodiscard]] aps::monitor::Observation observation_at(
    const aps::sim::SimResult& run, std::size_t k, double basal_rate,
    double isf);

/// Extract violation datasets for all Table I rules from the campaign runs
/// of one or more patients.
[[nodiscard]] RuleDatasets extract_rule_datasets(
    const std::vector<const aps::sim::SimResult*>& runs,
    const aps::monitor::CawConfig& context_config, double basal_rate,
    double isf, const ThresholdLearningOptions& options = {});

struct LearnedThresholds {
  std::map<std::string, double> values;
  /// Per-parameter diagnostics (iterations, convergence, margins).
  std::map<std::string, aps::learn::ThresholdResult> diagnostics;
  /// Parameters that kept their defaults for lack of violation examples.
  std::vector<std::string> defaulted;
};

/// Learn every threshold that has data; parameters without violation
/// examples fall back to `defaults`.
[[nodiscard]] LearnedThresholds learn_thresholds(
    const RuleDatasets& datasets,
    const std::map<std::string, double>& defaults,
    const ThresholdLearningOptions& options = {});

}  // namespace aps::core
