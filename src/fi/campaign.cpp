#include "fi/campaign.h"

namespace aps::fi {

CampaignGrid CampaignGrid::full() { return CampaignGrid{}; }

CampaignGrid CampaignGrid::quick() {
  CampaignGrid grid;
  grid.start_steps = {20, 60};
  grid.duration_steps = {30};
  grid.initial_bgs = {90.0, 130.0, 180.0};
  return grid;
}

CampaignGrid CampaignGrid::extended() {
  CampaignGrid grid;
  grid.targets = {FaultTarget::kSensorGlucose, FaultTarget::kControllerIob,
                  FaultTarget::kCommandRate};
  return grid;
}

double CampaignGrid::magnitude_for(FaultTarget target) const {
  switch (target) {
    case FaultTarget::kSensorGlucose: return glucose_magnitude;
    case FaultTarget::kControllerIob: return iob_magnitude;
    case FaultTarget::kCommandRate: return rate_magnitude;
    case FaultTarget::kNone: break;
  }
  return 0.0;
}

std::vector<Scenario> enumerate_scenarios(const CampaignGrid& grid) {
  std::vector<Scenario> scenarios;
  scenarios.reserve(grid.types.size() * grid.targets.size() *
                    grid.start_steps.size() * grid.duration_steps.size() *
                    grid.initial_bgs.size());
  for (const FaultType type : grid.types) {
    for (const FaultTarget target : grid.targets) {
      const double magnitude = grid.magnitude_for(target);
      for (const int start : grid.start_steps) {
        for (const int duration : grid.duration_steps) {
          for (const double bg0 : grid.initial_bgs) {
            FaultSpec spec;
            spec.type = type;
            spec.target = target;
            spec.magnitude = magnitude;
            spec.start_step = start;
            spec.duration_steps = duration;
            scenarios.push_back({spec, bg0});
          }
        }
      }
    }
  }
  return scenarios;
}

std::vector<Scenario> fault_free_scenarios(const CampaignGrid& grid) {
  std::vector<Scenario> scenarios;
  scenarios.reserve(grid.initial_bgs.size());
  for (const double bg0 : grid.initial_bgs) {
    scenarios.push_back({FaultSpec{}, bg0});
  }
  return scenarios;
}

}  // namespace aps::fi
