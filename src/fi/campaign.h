// Deterministic enumeration of the fault-injection campaign (paper §V-B):
// 14 fault kinds (7 types x {glucose, rate} targets) x 9 (start, duration)
// pairs x 7 initial BG values = 882 scenarios per patient, 8,820 per
// simulator cohort. A scaled grid (subset of starts/durations) is provided
// so benches finish quickly; both grids are pure functions of their
// configuration — no hidden randomness.
#pragma once

#include <vector>

#include "fi/fault.h"

namespace aps::fi {

/// One closed-loop run: which fault (possibly none) and the starting BG.
struct Scenario {
  FaultSpec fault;
  double initial_bg = 120.0;
};

struct CampaignGrid {
  std::vector<FaultType> types = {
      FaultType::kTruncate, FaultType::kHold,       FaultType::kMax,
      FaultType::kMin,      FaultType::kAdd,        FaultType::kSub,
      FaultType::kBitflipDec};
  std::vector<FaultTarget> targets = {FaultTarget::kSensorGlucose,
                                      FaultTarget::kCommandRate};
  std::vector<int> start_steps = {20, 50, 80};
  std::vector<int> duration_steps = {12, 30, 60};
  std::vector<double> initial_bgs = {80.0,  100.0, 120.0, 140.0,
                                     160.0, 180.0, 200.0};
  /// add/sub offset for glucose faults (mg/dL).
  double glucose_magnitude = 75.0;
  /// add/sub offset for rate faults (U/h).
  double rate_magnitude = 2.0;
  /// add/sub offset for controller-IOB faults (U).
  double iob_magnitude = 2.0;

  /// Paper-sized grid: 14 x 9 x 7 = 882 scenarios per patient.
  static CampaignGrid full();
  /// Scaled grid for quick benches: 14 x 2 x 3 = 84 scenarios per patient.
  static CampaignGrid quick();
  /// Paper grid widened to all three fault targets (adds kControllerIob):
  /// 21 x 9 x 7 = 1,323 scenarios per patient.
  static CampaignGrid extended();

  /// add/sub offset appropriate for `target`.
  [[nodiscard]] double magnitude_for(FaultTarget target) const;
};

/// All faulty scenarios of the grid, in a fixed deterministic order.
[[nodiscard]] std::vector<Scenario> enumerate_scenarios(
    const CampaignGrid& grid);

/// Fault-free scenarios (one per initial BG), used for labeling baselines
/// and the fault-free generalization ablation.
[[nodiscard]] std::vector<Scenario> fault_free_scenarios(
    const CampaignGrid& grid);

}  // namespace aps::fi
