#include "fi/fault.h"

#include <algorithm>

namespace aps::fi {

const char* to_string(FaultType t) {
  switch (t) {
    case FaultType::kNone: return "none";
    case FaultType::kTruncate: return "truncate";
    case FaultType::kHold: return "hold";
    case FaultType::kMax: return "max";
    case FaultType::kMin: return "min";
    case FaultType::kAdd: return "add";
    case FaultType::kSub: return "sub";
    case FaultType::kBitflipDec: return "bitflip_dec";
  }
  return "?";
}

const char* to_string(FaultTarget t) {
  switch (t) {
    case FaultTarget::kNone: return "none";
    case FaultTarget::kSensorGlucose: return "glucose";
    case FaultTarget::kControllerIob: return "iob";
    case FaultTarget::kCommandRate: return "rate";
  }
  return "?";
}

std::string FaultSpec::name() const {
  return std::string(to_string(type)) + "_" + to_string(target);
}

double FaultInjector::apply(FaultTarget target, double clean, int step,
                            ValueRange range) {
  if (spec_.target != target) return clean;
  if (!spec_.active_at(step)) {
    // Remember the last clean value so kHold freezes at the pre-fault
    // reading when the window opens.
    held_ = clean;
    return clean;
  }
  double corrupted = clean;
  switch (spec_.type) {
    case FaultType::kNone:
      return clean;
    case FaultType::kTruncate:
      corrupted = 0.0;
      break;
    case FaultType::kHold:
      corrupted = held_.value_or(clean);
      return corrupted;  // hold is exempt from range clamping: it replays a
                         // previously valid value
    case FaultType::kMax:
      corrupted = range.max;
      break;
    case FaultType::kMin:
      corrupted = range.min;
      break;
    case FaultType::kAdd:
      corrupted = clean + spec_.magnitude;
      break;
    case FaultType::kSub:
      corrupted = clean - spec_.magnitude;
      break;
    case FaultType::kBitflipDec:
      corrupted = clean * 0.125;
      break;
  }
  return std::clamp(corrupted, range.min, range.max);
}

ValueRange glucose_range() {
  // CGM devices report 40..400 mg/dL.
  return {40.0, 400.0};
}

ValueRange rate_range(double max_basal_u_per_h) {
  return {0.0, max_basal_u_per_h};
}

ValueRange iob_range() { return {0.0, 20.0}; }

}  // namespace aps::fi
