// Software fault-injection engine (paper §IV-C1, Table II).
//
// Faults/attacks target the controller itself: they corrupt the values the
// control algorithm reads (its glucose input, its IOB state) or emits (the
// commanded rate) during an activation window. Errors are transient and
// occur once per simulation for a bounded duration. The safety monitor is
// outside the fault boundary: it observes the clean sensor stream and the
// (possibly corrupted) actuator command, per the paper's threat model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace aps::fi {

/// Corruption applied to the targeted value (Table II).
enum class FaultType : std::uint8_t {
  kNone = 0,
  kTruncate,    ///< force to zero (availability attack)
  kHold,        ///< stop refreshing: freeze at pre-fault value (DoS)
  kMax,         ///< force to the variable's maximum (integrity attack)
  kMin,         ///< force to the variable's minimum
  kAdd,         ///< add a constant offset (memory fault)
  kSub,         ///< subtract a constant offset
  kBitflipDec,  ///< decaying corruption: value * 1/8, models a high-order
                ///< bit clear in the exponent ("bitflip_dec*" in Fig. 8)
};

/// Which controller-boundary variable the fault perturbs.
enum class FaultTarget : std::uint8_t {
  kNone = 0,
  kSensorGlucose,  ///< glucose reading consumed by the control algorithm
  kControllerIob,  ///< controller's internal IOB estimate
  kCommandRate,    ///< commanded infusion rate emitted to the pump
};

[[nodiscard]] const char* to_string(FaultType t);
[[nodiscard]] const char* to_string(FaultTarget t);

/// Admissible range of a target variable; forced values are clamped here so
/// injected errors stay "within the acceptable range" (§IV-C1).
struct ValueRange {
  double min = 0.0;
  double max = 0.0;
};

struct FaultSpec {
  FaultType type = FaultType::kNone;
  FaultTarget target = FaultTarget::kNone;
  double magnitude = 0.0;  ///< offset for kAdd/kSub; unused otherwise
  int start_step = 0;      ///< first control step of the activation window
  int duration_steps = 0;  ///< number of corrupted control steps

  [[nodiscard]] bool enabled() const {
    return type != FaultType::kNone && target != FaultTarget::kNone &&
           duration_steps > 0;
  }
  [[nodiscard]] bool active_at(int step) const {
    return enabled() && step >= start_step &&
           step < start_step + duration_steps;
  }
  [[nodiscard]] std::string name() const;  ///< e.g. "max_rate", "hold_glucose"
};

/// Stateful injector for one simulation run (kHold needs memory of the
/// pre-fault value).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultSpec spec) : spec_(spec) {}

  void reset() { held_.reset(); }

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// Corrupt `clean` if this injector targets `target` and is active at
  /// `step`; otherwise return it unchanged.
  [[nodiscard]] double apply(FaultTarget target, double clean, int step,
                             ValueRange range);

 private:
  FaultSpec spec_;
  std::optional<double> held_;
};

/// Default admissible ranges used across the campaign.
[[nodiscard]] ValueRange glucose_range();          ///< CGM output range
[[nodiscard]] ValueRange rate_range(double max_basal_u_per_h);
[[nodiscard]] ValueRange iob_range();

}  // namespace aps::fi
