#include "io/artifact_io.h"

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace aps::io {

namespace {

void write_matrix(BinaryWriter& out, const aps::ml::Matrix& m) {
  out.u64(m.rows());
  out.u64(m.cols());
  out.vec_f64(m.raw());
}

aps::ml::Matrix read_matrix(BinaryReader& in) {
  const std::uint64_t rows = in.u64();
  const std::uint64_t cols = in.u64();
  // Cap the dimensions before multiplying so a hostile header cannot
  // overflow rows*cols into a small value that passes the size check.
  if (rows > (1u << 26) || cols > (1u << 26)) {
    throw IoError("corrupt artifact: implausible matrix dimensions in '" +
                  in.path() + "'");
  }
  if (rows * cols * sizeof(double) > in.remaining() + sizeof(std::uint64_t)) {
    throw IoError("corrupt artifact: matrix larger than file in '" +
                  in.path() + "'");
  }
  std::vector<double> data = in.vec_f64();
  if (data.size() != rows * cols) {
    throw IoError("corrupt artifact: matrix payload size mismatch in '" +
                  in.path() + "'");
  }
  aps::ml::Matrix m(rows, cols);
  m.raw() = std::move(data);
  return m;
}

void write_size_vec(BinaryWriter& out, const std::vector<std::size_t>& v) {
  out.u64(v.size());
  for (const std::size_t s : v) out.u64(s);
}

std::vector<std::size_t> read_size_vec(BinaryReader& in) {
  const std::uint64_t n =
      in.count(1u << 20, "size-vector length", sizeof(std::uint64_t));
  std::vector<std::size_t> v(n);
  for (auto& s : v) s = in.u64();
  return v;
}

void write_adam(BinaryWriter& out, const aps::ml::AdamConfig& adam) {
  out.f64(adam.learning_rate);
  out.f64(adam.beta1);
  out.f64(adam.beta2);
  out.f64(adam.epsilon);
}

aps::ml::AdamConfig read_adam(BinaryReader& in) {
  aps::ml::AdamConfig adam;
  adam.learning_rate = in.f64();
  adam.beta1 = in.f64();
  adam.beta2 = in.f64();
  adam.epsilon = in.f64();
  return adam;
}

void write_guideline_config(BinaryWriter& out,
                            const aps::monitor::GuidelineConfig& config) {
  out.f64(config.bg_low);
  out.f64(config.bg_high);
  out.f64(config.delta_low);
  out.f64(config.delta_high);
  out.f64(config.lambda10);
  out.f64(config.lambda90);
  out.i32(config.alpha_steps);
}

aps::monitor::GuidelineConfig read_guideline_config(BinaryReader& in) {
  aps::monitor::GuidelineConfig config;
  config.bg_low = in.f64();
  config.bg_high = in.f64();
  config.delta_low = in.f64();
  config.delta_high = in.f64();
  config.lambda10 = in.f64();
  config.lambda90 = in.f64();
  config.alpha_steps = in.i32();
  return config;
}

// Optional trailing bundle section carrying training-time feature
// statistics (obs::TrainingStats). Written ONLY when the bundle has
// stats, so stat-less bundles stay byte-identical to the pre-section
// format and old files (nothing after the LSTM block) still load.
constexpr std::uint32_t kTrainingStatsMarker = 0x53544154u;  // "STAT"
constexpr std::uint32_t kTrainingStatsVersion = 1;

void write_training_stats(BinaryWriter& out,
                          const aps::obs::TrainingStats& stats) {
  out.u32(kTrainingStatsMarker);
  out.u32(kTrainingStatsVersion);
  out.u64(stats.features.size());
  for (const auto& feature : stats.features) {
    out.u64(feature.count);
    out.f64(feature.sum);
    out.f64(feature.sum_sq);
    out.f64(feature.min);
    out.f64(feature.max);
  }
}

aps::obs::TrainingStats read_training_stats(BinaryReader& in) {
  if (in.u32() != kTrainingStatsMarker) {
    throw IoError("corrupt artifact: unknown trailing section in '" +
                  in.path() + "'");
  }
  if (in.u32() != kTrainingStatsVersion) {
    throw IoError(
        "corrupt artifact: unsupported training-stats version in '" +
        in.path() + "'");
  }
  // Each feature summary is a u64 count plus four f64 moments/extremes.
  const std::uint64_t features =
      in.count(1u << 12, "training-stat feature", 40);
  aps::obs::TrainingStats stats;
  stats.features.resize(features);
  for (auto& feature : stats.features) {
    feature.count = in.u64();
    feature.sum = in.f64();
    feature.sum_sq = in.f64();
    feature.min = in.f64();
    feature.max = in.f64();
  }
  return stats;
}

}  // namespace

// Friend of DecisionTree / Mlp / Lstm / Standardizer: the single place
// allowed to touch trained-model internals for persistence.
struct ModelSerde {
  // -- Standardizer --
  static void write(BinaryWriter& out, const aps::ml::Standardizer& s) {
    out.vec_f64(s.mean_);
    out.vec_f64(s.std_);
  }
  static void read(BinaryReader& in, aps::ml::Standardizer& s) {
    s.mean_ = in.vec_f64();
    s.std_ = in.vec_f64();
    if (s.mean_.size() != s.std_.size()) {
      throw IoError("corrupt artifact: standardizer size mismatch in '" +
                    in.path() + "'");
    }
  }

  // -- DecisionTree --
  static void write(BinaryWriter& out, const aps::ml::DecisionTree& tree) {
    out.i32(tree.config_.max_depth);
    out.u64(tree.config_.min_samples_split);
    out.u64(tree.config_.min_samples_leaf);
    out.u8(tree.config_.use_class_weights ? 1 : 0);
    out.i32(tree.classes_);
    out.i32(tree.depth_);
    out.u64(tree.nodes_.size());
    for (const auto& node : tree.nodes_) {
      out.u8(node.is_leaf ? 1 : 0);
      out.u64(node.feature);
      out.f64(node.threshold);
      out.i32(node.left);
      out.i32(node.right);
      out.vec_f64(node.class_probs);
    }
  }
  static aps::ml::DecisionTree read_tree(BinaryReader& in) {
    aps::ml::DecisionTreeConfig config;
    config.max_depth = in.i32();
    config.min_samples_split = in.u64();
    config.min_samples_leaf = in.u64();
    config.use_class_weights = in.u8() != 0;
    aps::ml::DecisionTree tree(config);
    tree.classes_ = in.i32();
    tree.depth_ = in.i32();
    // Minimum serialized node: flag + feature + threshold + children +
    // empty class-prob vector = 1 + 8 + 8 + 4 + 4 + 8 bytes.
    const std::uint64_t node_count = in.count(1u << 26, "tree node", 33);
    tree.nodes_.resize(node_count);
    for (auto& node : tree.nodes_) {
      node.is_leaf = in.u8() != 0;
      node.feature = in.u64();
      node.threshold = in.f64();
      node.left = in.i32();
      node.right = in.i32();
      node.class_probs = in.vec_f64();
      // A corrupt child index would walk predict() out of bounds.
      const auto nodes = static_cast<std::int64_t>(node_count);
      if (node.left < -1 || node.left >= nodes || node.right < -1 ||
          node.right >= nodes || node.feature > (1u << 16)) {
        throw IoError("corrupt artifact: tree node out of range in '" +
                      in.path() + "'");
      }
    }
    return tree;
  }

  // -- Mlp --
  static void write(BinaryWriter& out, const aps::ml::Mlp& mlp) {
    const auto& config = mlp.config_;
    write_size_vec(out, config.hidden_units);
    out.i32(config.classes);
    write_adam(out, config.adam);
    out.i32(config.max_epochs);
    out.u64(config.batch_size);
    out.f64(config.dropout);
    out.f64(config.validation_fraction);
    out.i32(config.early_stopping_patience);
    out.u8(config.use_class_weights ? 1 : 0);
    out.u8(config.standardize ? 1 : 0);
    out.u64(config.seed);

    write_size_vec(out, mlp.layer_sizes_);
    out.u64(mlp.weights_.size());
    for (std::size_t l = 0; l < mlp.weights_.size(); ++l) {
      write_matrix(out, mlp.weights_[l]);
      write_matrix(out, mlp.biases_[l]);
    }
    write(out, mlp.standardizer_);
  }
  static aps::ml::Mlp read_mlp(BinaryReader& in) {
    aps::ml::MlpConfig config;
    config.hidden_units = read_size_vec(in);
    config.classes = in.i32();
    config.adam = read_adam(in);
    config.max_epochs = in.i32();
    config.batch_size = in.u64();
    config.dropout = in.f64();
    config.validation_fraction = in.f64();
    config.early_stopping_patience = in.i32();
    config.use_class_weights = in.u8() != 0;
    config.standardize = in.u8() != 0;
    config.seed = in.u64();

    aps::ml::Mlp mlp(config);
    mlp.layer_sizes_ = read_size_vec(in);
    // Minimum serialized layer: weight + bias matrix headers and lengths.
    const std::uint64_t layers = in.count(1u << 10, "MLP layer", 48);
    for (std::uint64_t l = 0; l < layers; ++l) {
      mlp.weights_.push_back(read_matrix(in));
      mlp.biases_.push_back(read_matrix(in));
      const auto& w = mlp.weights_.back();
      const auto& b = mlp.biases_.back();
      const bool chains =
          l == 0 || mlp.weights_[l - 1].cols() == w.rows();
      if (!chains || b.rows() != 1 || b.cols() != w.cols()) {
        throw IoError("corrupt artifact: MLP layer shape mismatch in '" +
                      in.path() + "'");
      }
    }
    if (!mlp.weights_.empty() &&
        mlp.layer_sizes_.size() != mlp.weights_.size() + 1) {
      throw IoError("corrupt artifact: MLP layer count mismatch in '" +
                    in.path() + "'");
    }
    read(in, mlp.standardizer_);
    return mlp;
  }

  // -- Lstm --
  static void write(BinaryWriter& out, const aps::ml::Lstm& lstm) {
    const auto& config = lstm.config_;
    write_size_vec(out, config.hidden_units);
    out.i32(config.classes);
    write_adam(out, config.adam);
    out.i32(config.max_epochs);
    out.u64(config.batch_size);
    out.f64(config.validation_fraction);
    out.i32(config.early_stopping_patience);
    out.u8(config.use_class_weights ? 1 : 0);
    out.u8(config.standardize ? 1 : 0);
    out.u64(config.seed);

    out.u64(lstm.layers_.size());
    for (const auto& layer : lstm.layers_) {
      out.u64(layer.hidden);
      write_matrix(out, layer.w);
      write_matrix(out, layer.u);
      write_matrix(out, layer.b);
    }
    write_matrix(out, lstm.head_w);
    write_matrix(out, lstm.head_b);
    write(out, lstm.standardizer_);
  }
  static aps::ml::Lstm read_lstm(BinaryReader& in) {
    aps::ml::LstmConfig config;
    config.hidden_units = read_size_vec(in);
    config.classes = in.i32();
    config.adam = read_adam(in);
    config.max_epochs = in.i32();
    config.batch_size = in.u64();
    config.validation_fraction = in.f64();
    config.early_stopping_patience = in.i32();
    config.use_class_weights = in.u8() != 0;
    config.standardize = in.u8() != 0;
    config.seed = in.u64();

    aps::ml::Lstm lstm(config);
    // Minimum serialized layer: hidden size + three matrix headers/lengths.
    const std::uint64_t layers = in.count(1u << 10, "LSTM layer", 80);
    for (std::uint64_t l = 0; l < layers; ++l) {
      aps::ml::Lstm::Layer layer;
      layer.hidden = in.u64();
      layer.w = read_matrix(in);
      layer.u = read_matrix(in);
      layer.b = read_matrix(in);
      const std::size_t gates = 4 * layer.hidden;
      if (layer.w.cols() != gates || layer.u.rows() != layer.hidden ||
          layer.u.cols() != gates || layer.b.rows() != 1 ||
          layer.b.cols() != gates) {
        throw IoError("corrupt artifact: LSTM layer shape mismatch in '" +
                      in.path() + "'");
      }
      lstm.layers_.push_back(std::move(layer));
    }
    lstm.head_w = read_matrix(in);
    lstm.head_b = read_matrix(in);
    read(in, lstm.standardizer_);
    return lstm;
  }
};

// ---- Stream-level encoders -------------------------------------------------

void write_decision_tree(BinaryWriter& out,
                         const aps::ml::DecisionTree& tree) {
  ModelSerde::write(out, tree);
}

aps::ml::DecisionTree read_decision_tree(BinaryReader& in) {
  return ModelSerde::read_tree(in);
}

void write_mlp(BinaryWriter& out, const aps::ml::Mlp& mlp) {
  ModelSerde::write(out, mlp);
}

aps::ml::Mlp read_mlp(BinaryReader& in) { return ModelSerde::read_mlp(in); }

void write_lstm(BinaryWriter& out, const aps::ml::Lstm& lstm) {
  ModelSerde::write(out, lstm);
}

aps::ml::Lstm read_lstm(BinaryReader& in) {
  return ModelSerde::read_lstm(in);
}

void write_training_artifacts(
    BinaryWriter& out, const aps::core::TrainingArtifacts& artifacts) {
  out.u64(artifacts.profiles.size());
  for (const auto& profile : artifacts.profiles) {
    out.f64(profile.basal_rate);
    out.f64(profile.isf);
    out.f64(profile.steady_state_iob);
  }
  out.u64(artifacts.patient_thresholds.size());
  for (const auto& thresholds : artifacts.patient_thresholds) {
    out.map_f64(thresholds);
  }
  out.map_f64(artifacts.population_thresholds);
  out.u64(artifacts.guideline_configs.size());
  for (const auto& config : artifacts.guideline_configs) {
    write_guideline_config(out, config);
  }
  out.f64(artifacts.target_bg);
}

aps::core::TrainingArtifacts read_training_artifacts(BinaryReader& in) {
  aps::core::TrainingArtifacts artifacts;
  // Each profile is three raw doubles.
  const std::uint64_t profiles = in.count(1u << 24, "profile", 24);
  artifacts.profiles.resize(profiles);
  for (auto& profile : artifacts.profiles) {
    profile.basal_rate = in.f64();
    profile.isf = in.f64();
    profile.steady_state_iob = in.f64();
  }
  // Each threshold set is at least an empty map (8-byte count).
  const std::uint64_t thresholds = in.count(1u << 24, "threshold-set", 8);
  artifacts.patient_thresholds.reserve(thresholds);
  for (std::uint64_t i = 0; i < thresholds; ++i) {
    artifacts.patient_thresholds.push_back(in.map_f64());
  }
  artifacts.population_thresholds = in.map_f64();
  // Each guideline config is six doubles plus an i32.
  const std::uint64_t guidelines = in.count(1u << 24, "guideline", 52);
  artifacts.guideline_configs.reserve(guidelines);
  for (std::uint64_t i = 0; i < guidelines; ++i) {
    artifacts.guideline_configs.push_back(read_guideline_config(in));
  }
  artifacts.target_bg = in.f64();
  return artifacts;
}

// ---- File-level save/load --------------------------------------------------

namespace {

template <typename WriteFn>
void save_with_header(const std::string& path, ArtifactKind kind,
                      WriteFn&& write_fn) {
  BinaryWriter out(path);
  write_header(out, kind);
  write_fn(out);
  out.finish();
}

}  // namespace

void save_decision_tree(const aps::ml::DecisionTree& tree,
                        const std::string& path) {
  save_with_header(path, ArtifactKind::kDecisionTree,
                   [&](BinaryWriter& out) { write_decision_tree(out, tree); });
}

aps::ml::DecisionTree load_decision_tree(const std::string& path) {
  BinaryReader in(path);
  read_header(in, ArtifactKind::kDecisionTree);
  return read_decision_tree(in);
}

void save_mlp(const aps::ml::Mlp& mlp, const std::string& path) {
  save_with_header(path, ArtifactKind::kMlp,
                   [&](BinaryWriter& out) { write_mlp(out, mlp); });
}

aps::ml::Mlp load_mlp(const std::string& path) {
  BinaryReader in(path);
  read_header(in, ArtifactKind::kMlp);
  return read_mlp(in);
}

void save_lstm(const aps::ml::Lstm& lstm, const std::string& path) {
  save_with_header(path, ArtifactKind::kLstm,
                   [&](BinaryWriter& out) { write_lstm(out, lstm); });
}

aps::ml::Lstm load_lstm(const std::string& path) {
  BinaryReader in(path);
  read_header(in, ArtifactKind::kLstm);
  return read_lstm(in);
}

void save_training_artifacts(const aps::core::TrainingArtifacts& artifacts,
                             const std::string& path) {
  save_with_header(path, ArtifactKind::kTrainingArtifacts,
                   [&](BinaryWriter& out) {
                     write_training_artifacts(out, artifacts);
                   });
}

aps::core::TrainingArtifacts load_training_artifacts(
    const std::string& path) {
  BinaryReader in(path);
  read_header(in, ArtifactKind::kTrainingArtifacts);
  return read_training_artifacts(in);
}

void save_bundle(const aps::core::ArtifactBundle& bundle,
                 const std::string& path) {
  save_with_header(path, ArtifactKind::kBundle, [&](BinaryWriter& out) {
    out.i32(bundle.ml_classes);
    out.i32(bundle.lstm_classes);
    write_training_artifacts(out, bundle.artifacts);
    out.u8(bundle.dt != nullptr ? 1 : 0);
    if (bundle.dt != nullptr) write_decision_tree(out, *bundle.dt);
    out.u8(bundle.mlp != nullptr ? 1 : 0);
    if (bundle.mlp != nullptr) write_mlp(out, *bundle.mlp);
    out.u8(bundle.lstm != nullptr ? 1 : 0);
    if (bundle.lstm != nullptr) write_lstm(out, *bundle.lstm);
    if (bundle.training_stats != nullptr &&
        !bundle.training_stats->features.empty()) {
      write_training_stats(out, *bundle.training_stats);
    }
  });
}

aps::core::ArtifactBundle load_bundle(const std::string& path) {
  BinaryReader in(path);
  read_header(in, ArtifactKind::kBundle);
  aps::core::ArtifactBundle bundle;
  bundle.ml_classes = in.i32();
  bundle.lstm_classes = in.i32();
  bundle.artifacts = read_training_artifacts(in);
  if (in.u8() != 0) {
    bundle.dt = std::make_shared<const aps::ml::DecisionTree>(
        read_decision_tree(in));
  }
  if (in.u8() != 0) {
    bundle.mlp = std::make_shared<const aps::ml::Mlp>(read_mlp(in));
    // Cast the float32 weight mirror once per model generation, at load
    // time, so float32 serving lanes never pay it on a tick.
    bundle.mlp->warm_f32_cache();
  }
  if (in.u8() != 0) {
    bundle.lstm = std::make_shared<const aps::ml::Lstm>(read_lstm(in));
    bundle.lstm->warm_f32_cache();
  }
  // Trailing training-stats section: absent in legacy/stat-less bundles
  // (the models consumed the file exactly), present otherwise. Bytes
  // after the section — or a section with the wrong marker — are corrupt.
  if (in.remaining() > 0) {
    bundle.training_stats = std::make_shared<const aps::obs::TrainingStats>(
        read_training_stats(in));
    if (in.remaining() > 0) {
      throw IoError("corrupt artifact: trailing bytes after training "
                    "stats in '" + in.path() + "'");
    }
  }
  return bundle;
}

}  // namespace aps::io
