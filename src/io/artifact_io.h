// Save/load round-trips for every trained monitor artifact: the CART tree,
// MLP and LSTM weights, the learned STL/CAWT thresholds + guideline
// percentiles (core::TrainingArtifacts), and the all-in-one ArtifactBundle
// a serving process loads instead of retraining. Loaded models reproduce
// the in-memory originals bit-for-bit: weights are written as raw IEEE
// doubles, so a monitor built from a loaded model emits an identical
// Decision stream.
#pragma once

#include <string>

#include "core/monitor_factory.h"
#include "io/serial.h"
#include "ml/decision_tree.h"
#include "ml/lstm.h"
#include "ml/mlp.h"

namespace aps::io {

// Stream-level encoders (no header) — used to embed artifacts in a bundle.
void write_decision_tree(BinaryWriter& out, const aps::ml::DecisionTree& tree);
[[nodiscard]] aps::ml::DecisionTree read_decision_tree(BinaryReader& in);

void write_mlp(BinaryWriter& out, const aps::ml::Mlp& mlp);
[[nodiscard]] aps::ml::Mlp read_mlp(BinaryReader& in);

void write_lstm(BinaryWriter& out, const aps::ml::Lstm& lstm);
[[nodiscard]] aps::ml::Lstm read_lstm(BinaryReader& in);

void write_training_artifacts(BinaryWriter& out,
                              const aps::core::TrainingArtifacts& artifacts);
[[nodiscard]] aps::core::TrainingArtifacts read_training_artifacts(
    BinaryReader& in);

// File-level save/load with the versioned header; all throw IoError on
// open/format/truncation problems.
void save_decision_tree(const aps::ml::DecisionTree& tree,
                        const std::string& path);
[[nodiscard]] aps::ml::DecisionTree load_decision_tree(
    const std::string& path);

void save_mlp(const aps::ml::Mlp& mlp, const std::string& path);
[[nodiscard]] aps::ml::Mlp load_mlp(const std::string& path);

void save_lstm(const aps::ml::Lstm& lstm, const std::string& path);
[[nodiscard]] aps::ml::Lstm load_lstm(const std::string& path);

void save_training_artifacts(const aps::core::TrainingArtifacts& artifacts,
                             const std::string& path);
[[nodiscard]] aps::core::TrainingArtifacts load_training_artifacts(
    const std::string& path);

/// One self-contained file holding the thresholds plus whichever models
/// the bundle carries (absent models load back as null pointers).
void save_bundle(const aps::core::ArtifactBundle& bundle,
                 const std::string& path);
[[nodiscard]] aps::core::ArtifactBundle load_bundle(const std::string& path);

}  // namespace aps::io
