#include "io/serial.h"

#include <algorithm>
#include <array>
#include <cstring>

namespace aps::io {

namespace {

// Hard ceilings for length fields; anything above these in a header is a
// corrupt or hostile input, not a real artifact or frame.
constexpr std::uint64_t kMaxStringLen = 1u << 20;       // 1 MiB
constexpr std::uint64_t kMaxElementCount = 1u << 28;    // 256M doubles

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320) lookup table, built once.
const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) {
  const auto& table = crc32_table();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string artifact_kind_name(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kDecisionTree: return "decision-tree";
    case ArtifactKind::kMlp: return "mlp";
    case ArtifactKind::kLstm: return "lstm";
    case ArtifactKind::kTrainingArtifacts: return "training-artifacts";
    case ArtifactKind::kBundle: return "bundle";
  }
  return "unknown(" + std::to_string(static_cast<std::uint32_t>(kind)) + ")";
}

// ---- BinaryWriter ----------------------------------------------------------

BinaryWriter::BinaryWriter() : path_("<memory>") {}

BinaryWriter::BinaryWriter(const std::string& path)
    : path_(path), to_file_(true),
      out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw IoError("cannot open '" + path + "' for writing");
  }
}

void BinaryWriter::raw(const void* data, std::size_t n) {
  if (to_file_) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(n));
    if (!out_) {
      throw IoError("write failure on '" + path_ + "'");
    }
    return;
  }
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  buf_.insert(buf_.end(), bytes, bytes + n);
}

void BinaryWriter::u8(std::uint8_t v) { raw(&v, sizeof v); }
void BinaryWriter::u16(std::uint16_t v) { raw(&v, sizeof v); }
void BinaryWriter::u32(std::uint32_t v) { raw(&v, sizeof v); }
void BinaryWriter::u64(std::uint64_t v) { raw(&v, sizeof v); }
void BinaryWriter::i32(std::int32_t v) { raw(&v, sizeof v); }
void BinaryWriter::f64(double v) { raw(&v, sizeof v); }

void BinaryWriter::str(const std::string& s) {
  u64(s.size());
  if (!s.empty()) raw(s.data(), s.size());
}

void BinaryWriter::vec_f64(const std::vector<double>& v) {
  u64(v.size());
  if (!v.empty()) raw(v.data(), v.size() * sizeof(double));
}

void BinaryWriter::map_f64(const std::map<std::string, double>& m) {
  u64(m.size());
  for (const auto& [key, value] : m) {
    str(key);
    f64(value);
  }
}

void BinaryWriter::finish() {
  if (!to_file_) return;
  out_.flush();
  if (!out_) {
    throw IoError("flush failure on '" + path_ + "'");
  }
}

// ---- BinaryReader ----------------------------------------------------------

BinaryReader::BinaryReader(const std::string& path)
    : path_(path), from_file_(true), in_(path, std::ios::binary) {
  if (!in_) {
    throw IoError("cannot open '" + path + "' for reading");
  }
  in_.seekg(0, std::ios::end);
  const auto end = in_.tellg();
  in_.seekg(0, std::ios::beg);
  if (end < 0 || !in_) {
    throw IoError("cannot determine size of '" + path + "'");
  }
  size_ = static_cast<std::uint64_t>(end);
}

BinaryReader::BinaryReader(std::span<const std::uint8_t> data,
                           std::string name)
    : path_(std::move(name)), view_(data), size_(data.size()) {}

void BinaryReader::raw(void* data, std::size_t n) {
  if (from_file_) {
    in_.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (in_.gcount() != static_cast<std::streamsize>(n)) {
      throw IoError("truncated artifact: unexpected end of file in '" +
                    path_ + "'");
    }
  } else {
    if (n > remaining()) {
      throw IoError("truncated artifact: unexpected end of input in '" +
                    path_ + "'");
    }
    std::memcpy(data, view_.data() + consumed_, n);
  }
  consumed_ += n;
}

std::uint64_t BinaryReader::remaining() const {
  return size_ > consumed_ ? size_ - consumed_ : 0;
}

std::uint64_t BinaryReader::count(std::uint64_t limit, const char* what,
                                  std::uint64_t min_bytes_per_element) {
  const std::uint64_t n = u64();
  if (n > limit) {
    throw IoError("corrupt artifact: implausible " + std::string(what) +
                  " count " + std::to_string(n) + " in '" + path_ + "'");
  }
  // min_bytes_per_element >= 1 and n <= limit << 2^64, so no overflow.
  const std::uint64_t min_bytes = n * std::max<std::uint64_t>(
                                          min_bytes_per_element, 1);
  if (min_bytes > remaining()) {
    throw IoError("truncated artifact: " + std::string(what) + " count " +
                  std::to_string(n) + " needs " + std::to_string(min_bytes) +
                  " bytes but only " + std::to_string(remaining()) +
                  " remain in '" + path_ + "'");
  }
  return n;
}

std::uint8_t BinaryReader::u8() {
  std::uint8_t v = 0;
  raw(&v, sizeof v);
  return v;
}

std::uint16_t BinaryReader::u16() {
  std::uint16_t v = 0;
  raw(&v, sizeof v);
  return v;
}

std::uint32_t BinaryReader::u32() {
  std::uint32_t v = 0;
  raw(&v, sizeof v);
  return v;
}

std::uint64_t BinaryReader::u64() {
  std::uint64_t v = 0;
  raw(&v, sizeof v);
  return v;
}

std::int32_t BinaryReader::i32() {
  std::int32_t v = 0;
  raw(&v, sizeof v);
  return v;
}

double BinaryReader::f64() {
  double v = 0.0;
  raw(&v, sizeof v);
  return v;
}

std::string BinaryReader::str() {
  const std::uint64_t n = count(kMaxStringLen, "string length");
  std::string s(n, '\0');
  if (n > 0) raw(s.data(), n);
  return s;
}

std::vector<double> BinaryReader::vec_f64() {
  const std::uint64_t n = count(kMaxElementCount, "element", sizeof(double));
  std::vector<double> v(n);
  if (n > 0) raw(v.data(), n * sizeof(double));
  return v;
}

std::map<std::string, double> BinaryReader::map_f64() {
  // Minimum entry: 8-byte key length (empty key) + 8-byte value.
  const std::uint64_t n = count(kMaxElementCount, "map entry", 16);
  std::map<std::string, double> m;
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = str();
    const double value = f64();
    m.emplace(std::move(key), value);
  }
  return m;
}

// ---- Header ----------------------------------------------------------------

void write_header(BinaryWriter& out, ArtifactKind kind) {
  out.u32(kMagic);
  out.u32(kFormatVersion);
  out.u32(static_cast<std::uint32_t>(kind));
}

void read_header(BinaryReader& in, ArtifactKind expected) {
  const std::uint32_t magic = in.u32();
  if (magic != kMagic) {
    throw IoError("'" + in.path() +
                  "' is not an APS artifact (bad magic number)");
  }
  const std::uint32_t version = in.u32();
  if (version != kFormatVersion) {
    throw IoError("unsupported artifact format version " +
                  std::to_string(version) + " in '" + in.path() +
                  "' (this build reads version " +
                  std::to_string(kFormatVersion) + ")");
  }
  const auto kind = static_cast<ArtifactKind>(in.u32());
  if (kind != expected) {
    throw IoError("artifact kind mismatch in '" + in.path() + "': found " +
                  artifact_kind_name(kind) + ", expected " +
                  artifact_kind_name(expected));
  }
}

}  // namespace aps::io
