// Versioned binary serialization primitives for persisted monitor
// artifacts. Fixed-width little-endian (native x86-64) encoding behind a
// small writer/reader pair; every artifact file starts with a common
// header (magic, format version, artifact kind) so loads fail fast with a
// clear error instead of misinterpreting bytes.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace aps::io {

/// Thrown on any open/read/write/format failure, with the offending path
/// and a human-readable reason in what().
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kMagic = 0x4150534Du;  // "APSM"
inline constexpr std::uint32_t kFormatVersion = 1;

enum class ArtifactKind : std::uint32_t {
  kDecisionTree = 1,
  kMlp = 2,
  kLstm = 3,
  kTrainingArtifacts = 4,
  kBundle = 5,
};

[[nodiscard]] std::string artifact_kind_name(ArtifactKind kind);

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path);

  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void f64(double v);
  void str(const std::string& s);
  void vec_f64(const std::vector<double>& v);
  void map_f64(const std::map<std::string, double>& m);

  /// Flush and verify the stream; throws IoError on write failure.
  void finish();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void raw(const void* data, std::size_t n);

  std::string path_;
  std::ofstream out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<double> vec_f64();
  [[nodiscard]] std::map<std::string, double> map_f64();

  /// Read an element count that must satisfy both a semantic ceiling and
  /// the bytes actually left in the file (count * min_bytes_per_element),
  /// so a corrupt or hostile length field can never trigger a huge
  /// allocation or a long decode loop — it throws IoError up front.
  [[nodiscard]] std::uint64_t count(std::uint64_t limit, const char* what,
                                    std::uint64_t min_bytes_per_element = 1);

  /// Bytes left between the read cursor and end of file.
  [[nodiscard]] std::uint64_t remaining() const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void raw(void* data, std::size_t n);

  std::string path_;
  std::ifstream in_;
  std::uint64_t size_ = 0;        ///< total file size in bytes
  std::uint64_t consumed_ = 0;    ///< bytes read so far
};

/// Write the common artifact header.
void write_header(BinaryWriter& out, ArtifactKind kind);

/// Validate magic / version / kind; throws IoError with a specific message
/// for each mismatch.
void read_header(BinaryReader& in, ArtifactKind expected);

}  // namespace aps::io
