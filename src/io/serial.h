// Versioned binary serialization primitives shared by every length-
// prefixed format in the tree: persisted monitor artifacts, the network
// wire protocol (src/net/protocol.h), and session listfiles
// (src/net/listfile.h). Fixed-width little-endian (native x86-64)
// encoding behind a writer/reader pair that runs over either a file or an
// in-memory buffer — the bounds-checked read helpers (count(), str(),
// vec_f64()) are ONE hardened implementation, so a hostile length field
// is rejected identically whether it arrives in an artifact file or in a
// socket frame. Every artifact file starts with a common header (magic,
// format version, artifact kind) so loads fail fast with a clear error
// instead of misinterpreting bytes.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace aps::io {

/// Thrown on any open/read/write/format failure, with the offending path
/// and a human-readable reason in what().
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

inline constexpr std::uint32_t kMagic = 0x4150534Du;  // "APSM"
inline constexpr std::uint32_t kFormatVersion = 1;

enum class ArtifactKind : std::uint32_t {
  kDecisionTree = 1,
  kMlp = 2,
  kLstm = 3,
  kTrainingArtifacts = 4,
  kBundle = 5,
};

[[nodiscard]] std::string artifact_kind_name(ArtifactKind kind);

/// CRC-32 (IEEE 802.3, reflected) over `n` bytes. Chain blocks by passing
/// the previous call's return value as `seed`. Frame and listfile-record
/// headers carry this so corruption is caught before a payload is decoded.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n,
                                  std::uint32_t seed = 0);
[[nodiscard]] inline std::uint32_t crc32(
    std::span<const std::uint8_t> bytes, std::uint32_t seed = 0) {
  return crc32(bytes.data(), bytes.size(), seed);
}

class BinaryWriter {
 public:
  /// Memory-backed writer: bytes accumulate in an internal buffer
  /// retrievable via bytes()/take() — used for wire-frame payloads and
  /// listfile records.
  BinaryWriter();
  /// File-backed writer streaming straight to `path`.
  explicit BinaryWriter(const std::string& path);

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void f64(double v);
  void str(const std::string& s);
  void vec_f64(const std::vector<double>& v);
  void map_f64(const std::map<std::string, double>& m);

  /// Flush and verify the stream; throws IoError on write failure.
  /// No-op for memory-backed writers.
  void finish();

  /// Bytes written so far (memory-backed writers only).
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return buf_;
  }
  /// Move the accumulated buffer out (memory-backed writers only).
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void raw(const void* data, std::size_t n);

  std::string path_;
  bool to_file_ = false;
  std::ofstream out_;               ///< file mode
  std::vector<std::uint8_t> buf_;  ///< memory mode
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path);
  /// View over an in-memory buffer (a wire-frame payload, a listfile
  /// record); `name` stands in for the path in error messages, e.g. a
  /// peer address. The buffer must outlive the reader.
  BinaryReader(std::span<const std::uint8_t> data, std::string name);

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<double> vec_f64();
  [[nodiscard]] std::map<std::string, double> map_f64();

  /// Bulk read of exactly `n` bytes; IoError if fewer remain. The caller
  /// has already validated `n` (e.g. against a CRC'd header field).
  void bytes(void* data, std::size_t n) { raw(data, n); }

  /// Read an element count that must satisfy both a semantic ceiling and
  /// the bytes actually left in the input (count * min_bytes_per_element),
  /// so a corrupt or hostile length field can never trigger a huge
  /// allocation or a long decode loop — it throws IoError up front.
  [[nodiscard]] std::uint64_t count(std::uint64_t limit, const char* what,
                                    std::uint64_t min_bytes_per_element = 1);

  /// Bytes left between the read cursor and the end of the input.
  [[nodiscard]] std::uint64_t remaining() const;
  /// Bytes consumed so far (the read cursor).
  [[nodiscard]] std::uint64_t consumed() const { return consumed_; }

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void raw(void* data, std::size_t n);

  std::string path_;
  bool from_file_ = false;
  std::ifstream in_;                      ///< file mode
  std::span<const std::uint8_t> view_;    ///< memory mode
  std::uint64_t size_ = 0;        ///< total input size in bytes
  std::uint64_t consumed_ = 0;    ///< bytes read so far
};

/// Write the common artifact header.
void write_header(BinaryWriter& out, ArtifactKind kind);

/// Validate magic / version / kind; throws IoError with a specific message
/// for each mismatch.
void read_header(BinaryReader& in, ArtifactKind expected);

}  // namespace aps::io
