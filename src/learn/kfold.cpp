#include "learn/kfold.h"

#include <algorithm>
#include <numeric>

#include "common/rng.h"

namespace aps::learn {

namespace {
std::vector<std::size_t> shuffled_indices(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  Rng rng(seed);
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  return idx;
}
}  // namespace

std::vector<FoldSplit> kfold_splits(std::size_t n, int k, std::uint64_t seed) {
  k = std::clamp<int>(k, 2, static_cast<int>(std::max<std::size_t>(n, 2)));
  const auto idx = shuffled_indices(n, seed);
  std::vector<FoldSplit> folds(static_cast<std::size_t>(k));
  for (std::size_t i = 0; i < n; ++i) {
    const auto fold = i % static_cast<std::size_t>(k);
    for (std::size_t f = 0; f < folds.size(); ++f) {
      auto& split = folds[f];
      if (f == fold) {
        split.test_indices.push_back(idx[i]);
      } else {
        split.train_indices.push_back(idx[i]);
      }
    }
  }
  return folds;
}

std::vector<double> cross_validate(
    std::size_t n, int k, std::uint64_t seed,
    const std::function<double(std::size_t fold, const FoldSplit&)>& evaluate,
    aps::ThreadPool* pool) {
  const auto folds = kfold_splits(n, k, seed);
  std::vector<double> scores(folds.size(), 0.0);
  const auto run_fold = [&](std::size_t f) {
    scores[f] = evaluate(f, folds[f]);
  };
  if (pool != nullptr && folds.size() > 1) {
    pool->parallel_for(folds.size(), run_fold);
  } else {
    for (std::size_t f = 0; f < folds.size(); ++f) run_fold(f);
  }
  return scores;
}

FoldSplit train_test_split(std::size_t n, double test_fraction,
                           std::uint64_t seed) {
  const auto idx = shuffled_indices(n, seed);
  const auto test_count = static_cast<std::size_t>(
      std::clamp(test_fraction, 0.0, 1.0) * static_cast<double>(n));
  FoldSplit split;
  for (std::size_t i = 0; i < n; ++i) {
    if (i < test_count) {
      split.test_indices.push_back(idx[i]);
    } else {
      split.train_indices.push_back(idx[i]);
    }
  }
  return split;
}

}  // namespace aps::learn
