// Deterministic k-fold cross-validation index splits (paper §V-B uses
// 4-fold CV for threshold learning and ML training), plus a parallel fold
// evaluator so cross-validated model selection uses every core.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_pool.h"

namespace aps::learn {

struct FoldSplit {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Split [0, n) into k folds after a seeded shuffle; fold f's test set is
/// the f-th stripe. k is clamped to [2, n].
[[nodiscard]] std::vector<FoldSplit> kfold_splits(std::size_t n, int k,
                                                  std::uint64_t seed);

/// Deterministic train/test split with the given test fraction.
[[nodiscard]] FoldSplit train_test_split(std::size_t n, double test_fraction,
                                         std::uint64_t seed);

/// Score every fold of kfold_splits(n, k, seed) with `evaluate`, running
/// folds concurrently over the pool (sequentially without one). Results
/// are placed by fold index, so the returned vector never depends on
/// scheduling. `evaluate` must be pure with respect to shared state — it
/// is invoked from worker threads.
[[nodiscard]] std::vector<double> cross_validate(
    std::size_t n, int k, std::uint64_t seed,
    const std::function<double(std::size_t fold, const FoldSplit&)>& evaluate,
    aps::ThreadPool* pool = nullptr);

}  // namespace aps::learn
