// Deterministic k-fold cross-validation index splits (paper §V-B uses
// 4-fold CV for threshold learning and ML training).
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace aps::learn {

struct FoldSplit {
  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
};

/// Split [0, n) into k folds after a seeded shuffle; fold f's test set is
/// the f-th stripe. k is clamped to [2, n].
[[nodiscard]] std::vector<FoldSplit> kfold_splits(std::size_t n, int k,
                                                  std::uint64_t seed);

/// Deterministic train/test split with the given test fraction.
[[nodiscard]] FoldSplit train_test_split(std::size_t n, double test_fraction,
                                         std::uint64_t seed);

}  // namespace aps::learn
