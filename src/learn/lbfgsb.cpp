#include "learn/lbfgsb.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>

namespace aps::learn {

namespace {

using Vec = std::vector<double>;

void project(Vec& x, std::span<const double> lower,
             std::span<const double> upper) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  }
}

double dot(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Infinity norm of the projected gradient: the first-order optimality
/// measure for box-constrained problems.
double projected_grad_norm(const Vec& x, const Vec& g,
                           std::span<const double> lower,
                           std::span<const double> upper) {
  double norm = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    double step = x[i] - g[i];
    step = std::clamp(step, lower[i], upper[i]);
    norm = std::max(norm, std::abs(step - x[i]));
  }
  return norm;
}

struct CurvaturePair {
  Vec s;  ///< x_{k+1} - x_k
  Vec y;  ///< g_{k+1} - g_k
  double rho;
};

/// Two-loop recursion (ref [53]): returns d = -H_k * g without forming H_k.
Vec two_loop_direction(const Vec& g, const std::deque<CurvaturePair>& pairs) {
  Vec q = g;
  std::vector<double> alpha(pairs.size(), 0.0);
  for (std::size_t i = pairs.size(); i-- > 0;) {
    const auto& p = pairs[i];
    alpha[i] = p.rho * dot(p.s, q);
    for (std::size_t j = 0; j < q.size(); ++j) q[j] -= alpha[i] * p.y[j];
  }
  // Initial Hessian scaling gamma = s'y / y'y of the most recent pair.
  double gamma = 1.0;
  if (!pairs.empty()) {
    const auto& last = pairs.back();
    const double yy = dot(last.y, last.y);
    if (yy > 0.0) gamma = dot(last.s, last.y) / yy;
  }
  for (auto& qi : q) qi *= gamma;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& p = pairs[i];
    const double beta = p.rho * dot(p.y, q);
    for (std::size_t j = 0; j < q.size(); ++j) {
      q[j] += (alpha[i] - beta) * p.s[j];
    }
  }
  for (auto& qi : q) qi = -qi;
  return q;
}

}  // namespace

LbfgsbResult lbfgsb_minimize(const Objective& f, std::vector<double> x0,
                             std::span<const double> lower,
                             std::span<const double> upper,
                             const LbfgsbOptions& options) {
  const std::size_t n = x0.size();
  assert(lower.size() == n && upper.size() == n);
  project(x0, lower, upper);

  LbfgsbResult result;
  Vec x = std::move(x0);
  Vec g(n, 0.0);
  double fx = f(x, g);

  std::deque<CurvaturePair> pairs;

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    if (projected_grad_norm(x, g, lower, upper) <
        options.gradient_tolerance) {
      result.converged = true;
      break;
    }

    Vec d = two_loop_direction(g, pairs);
    // Fall back to steepest descent when the direction fails to descend
    // (can happen right after projections corrupt curvature info).
    if (dot(d, g) >= 0.0) {
      for (std::size_t i = 0; i < n; ++i) d[i] = -g[i];
    }

    // Projected backtracking Armijo search along d.
    double step = 1.0;
    Vec x_new(n);
    Vec g_new(n, 0.0);
    double fx_new = fx;
    bool accepted = false;
    for (int ls = 0; ls < options.max_line_search_steps; ++ls) {
      for (std::size_t i = 0; i < n; ++i) x_new[i] = x[i] + step * d[i];
      project(x_new, lower, upper);
      // Actual displacement after projection (may differ from step*d).
      Vec dx(n);
      for (std::size_t i = 0; i < n; ++i) dx[i] = x_new[i] - x[i];
      const double dir_deriv = dot(g, dx);
      fx_new = f(x_new, g_new);
      if (fx_new <= fx + options.armijo_c1 * dir_deriv ||
          fx_new < fx - options.step_tolerance) {
        accepted = true;
        break;
      }
      step *= options.backtrack_factor;
      if (step < options.step_tolerance) break;
    }
    if (!accepted) {
      result.converged =
          projected_grad_norm(x, g, lower, upper) <
          std::sqrt(options.gradient_tolerance);
      break;
    }

    // Update curvature memory with damping: skip pairs with non-positive
    // curvature so the two-loop recursion stays positive definite.
    CurvaturePair pair;
    pair.s.resize(n);
    pair.y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      pair.s[i] = x_new[i] - x[i];
      pair.y[i] = g_new[i] - g[i];
    }
    const double sy = dot(pair.s, pair.y);
    if (sy > 1e-12) {
      pair.rho = 1.0 / sy;
      pairs.push_back(std::move(pair));
      if (static_cast<int>(pairs.size()) > options.history) {
        pairs.pop_front();
      }
    }

    x = std::move(x_new);
    g = g_new;
    fx = fx_new;
  }

  result.x = std::move(x);
  result.fx = fx;
  return result;
}

LbfgsbResult lbfgs_minimize(const Objective& f, std::vector<double> x0,
                            const LbfgsbOptions& options) {
  const std::size_t n = x0.size();
  const Vec lower(n, -std::numeric_limits<double>::infinity());
  const Vec upper(n, std::numeric_limits<double>::infinity());
  return lbfgsb_minimize(f, std::move(x0), lower, upper, options);
}

}  // namespace aps::learn
