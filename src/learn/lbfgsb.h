// Limited-memory BFGS with box constraints (L-BFGS-B, paper ref [22]).
//
// Implementation notes: the inverse Hessian is never formed explicitly —
// search directions come from the standard two-loop recursion over the
// last `history` curvature pairs (paper §III-C2, ref [53]); bounds are
// enforced by gradient projection (projected backtracking Armijo line
// search, with curvature pairs damped to keep the recursion positive
// definite). This is the classical projected-L-BFGS treatment of box
// constraints; it matches the behaviour required here (smooth losses over
// threshold vectors with simple bounds).
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace aps::learn {

struct LbfgsbOptions {
  int max_iterations = 200;
  int history = 8;            ///< number of stored curvature pairs (m)
  double gradient_tolerance = 1e-8;   ///< on the projected gradient inf-norm
  double step_tolerance = 1e-12;      ///< minimum accepted step size
  double armijo_c1 = 1e-4;
  double backtrack_factor = 0.5;
  int max_line_search_steps = 40;
};

struct LbfgsbResult {
  std::vector<double> x;
  double fx = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Objective: fills `grad_out` (same size as x) and returns f(x).
using Objective =
    std::function<double(std::span<const double> x, std::span<double> grad_out)>;

/// Minimize f over the box [lower, upper] starting from x0 (projected into
/// the box). `lower`/`upper` must match x0's size; use +-infinity for
/// unconstrained coordinates.
[[nodiscard]] LbfgsbResult lbfgsb_minimize(const Objective& f,
                                           std::vector<double> x0,
                                           std::span<const double> lower,
                                           std::span<const double> upper,
                                           const LbfgsbOptions& options = {});

/// Convenience overload without bounds.
[[nodiscard]] LbfgsbResult lbfgs_minimize(const Objective& f,
                                          std::vector<double> x0,
                                          const LbfgsbOptions& options = {});

}  // namespace aps::learn
