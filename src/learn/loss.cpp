#include "learn/loss.h"

#include <cmath>

namespace aps::learn {

const char* to_string(LossKind kind) {
  switch (kind) {
    case LossKind::kMse: return "MSE";
    case LossKind::kMae: return "MAE";
    case LossKind::kTelex: return "TeLEx";
    case LossKind::kTmee: return "TMEE";
  }
  return "?";
}

double mse_loss(double r) { return r * r; }
double mse_grad(double r) { return 2.0 * r; }

double mae_loss(double r) { return std::abs(r); }
double mae_grad(double r) { return r >= 0.0 ? 1.0 : -1.0; }

namespace {
/// Slack weight of the TeLEx-style softplus term; small weight pushes the
/// minimum to a large r (the "not tight enough" behaviour in §III-C2).
constexpr double kTelexSlack = 0.1;
}  // namespace

double telex_loss(double r) {
  // softplus computed stably for large |r|
  const double softplus = r > 30.0 ? r : std::log1p(std::exp(r));
  return std::exp(-r) + kTelexSlack * softplus;
}

double telex_grad(double r) {
  const double sigmoid = 1.0 / (1.0 + std::exp(-r));
  return -std::exp(-r) + kTelexSlack * sigmoid;
}

double tmee_loss(double r) {
  const double denom = 1.0 + std::exp(-2.0 * r);
  return std::exp(-r) + (r - 1.0) / denom;
}

double tmee_grad(double r) {
  const double e2 = std::exp(-2.0 * r);
  const double denom = 1.0 + e2;
  return -std::exp(-r) + (denom + 2.0 * (r - 1.0) * e2) / (denom * denom);
}

double loss_value(LossKind kind, double r) {
  switch (kind) {
    case LossKind::kMse: return mse_loss(r);
    case LossKind::kMae: return mae_loss(r);
    case LossKind::kTelex: return telex_loss(r);
    case LossKind::kTmee: return tmee_loss(r);
  }
  return 0.0;
}

double loss_grad(LossKind kind, double r) {
  switch (kind) {
    case LossKind::kMse: return mse_grad(r);
    case LossKind::kMae: return mae_grad(r);
    case LossKind::kTelex: return telex_grad(r);
    case LossKind::kTmee: return tmee_grad(r);
  }
  return 0.0;
}

double loss_argmin(LossKind kind) {
  // Golden-section search over a generous bracket; the per-sample losses
  // are unimodal on [-5, 20] (MSE/MAE minimum at 0).
  double lo = -5.0, hi = 20.0;
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = hi - phi * (hi - lo);
  double b = lo + phi * (hi - lo);
  double fa = loss_value(kind, a);
  double fb = loss_value(kind, b);
  for (int it = 0; it < 200; ++it) {
    if (fa < fb) {
      hi = b;
      b = a;
      fb = fa;
      a = hi - phi * (hi - lo);
      fa = loss_value(kind, a);
    } else {
      lo = a;
      a = b;
      fa = fb;
      b = lo + phi * (hi - lo);
      fb = loss_value(kind, b);
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace aps::learn
