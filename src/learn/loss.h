// Loss functions over the STL robustness margin r = mu(d(t)) - beta
// (paper §III-C2, Fig. 3).
//
// The learning goal is a *tight but satisfied* threshold: r should be
// driven toward a small positive value. Plain MSE/MAE treat r = -eps and
// r = +eps identically, so minimizers happily violate the formula. The
// TeLEx tightness function penalizes violations exponentially but its
// minimum sits far from zero, giving slack thresholds. The paper's Tight
// Mean Exponential Error:
//
//     TMEE(r) = e^{-r} + (r - 1) / (1 + e^{-2r})
//
// blows up exponentially for r < 0, grows ~linearly for large r, and has
// its minimum at a small positive r (~0.56), i.e. thresholds land just on
// the safe side of the data.
#pragma once

namespace aps::learn {

enum class LossKind { kMse, kMae, kTelex, kTmee };

[[nodiscard]] const char* to_string(LossKind kind);

[[nodiscard]] double mse_loss(double r);
[[nodiscard]] double mse_grad(double r);

[[nodiscard]] double mae_loss(double r);
[[nodiscard]] double mae_grad(double r);

/// TeLEx-style tightness function (ref [51]): exponential violation penalty
/// with a softplus slack term whose weight keeps the minimum away from 0.
[[nodiscard]] double telex_loss(double r);
[[nodiscard]] double telex_grad(double r);

/// Paper Eq. 4 (Tight Mean Exponential Error).
[[nodiscard]] double tmee_loss(double r);
[[nodiscard]] double tmee_grad(double r);

[[nodiscard]] double loss_value(LossKind kind, double r);
[[nodiscard]] double loss_grad(LossKind kind, double r);

/// Location of the minimum of the per-sample loss (found numerically);
/// tells how far from the data boundary a learned threshold will sit.
[[nodiscard]] double loss_argmin(LossKind kind);

}  // namespace aps::learn
