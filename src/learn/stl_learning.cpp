#include "learn/stl_learning.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "ml/kernels/kernels.h"

namespace aps::learn {

double threshold_objective(const ThresholdProblem& problem, double beta,
                           double* grad_out) {
  double total = 0.0;
  double grad = 0.0;
  for (const double mu : problem.violation_values) {
    const double r = problem.side == BoundSide::kUpperBound ? beta - mu
                                                            : mu - beta;
    total += loss_value(problem.loss, r);
    const double dr_dbeta =
        problem.side == BoundSide::kUpperBound ? 1.0 : -1.0;
    grad += loss_grad(problem.loss, r) * dr_dbeta;
  }
  const auto n = static_cast<double>(problem.violation_values.size());
  if (n > 0.0) {
    total /= n;
    grad /= n;
  }
  if (grad_out != nullptr) *grad_out = grad;
  return total;
}

std::optional<ThresholdResult> learn_threshold(const ThresholdProblem& problem,
                                               const LbfgsbOptions& options) {
  if (problem.violation_values.empty()) return std::nullopt;

  // Start from the data edge the threshold must cover: the max value for an
  // upper bound, the min for a lower bound.
  const auto [min_it, max_it] = std::minmax_element(
      problem.violation_values.begin(), problem.violation_values.end());
  const double start =
      problem.side == BoundSide::kUpperBound ? *max_it : *min_it;

  const Objective objective = [&](std::span<const double> x,
                                  std::span<double> grad) {
    double g = 0.0;
    const double fx = threshold_objective(problem, x[0], &g);
    grad[0] = g;
    return fx;
  };

  // Eq. 3's constraint r >= 0 for all d in H becomes a box bound on beta:
  // beta >= max(mu) for upper-bound predicates, beta <= min(mu) for
  // lower-bound ones. The configured box wins when they conflict (e.g.
  // rule 10's clinical cap), in which case coverage is best-effort.
  double lower_limit = problem.lower_limit;
  double upper_limit = problem.upper_limit;
  if (problem.enforce_coverage) {
    if (problem.side == BoundSide::kUpperBound) {
      lower_limit = std::clamp(*max_it, lower_limit, upper_limit);
    } else {
      upper_limit = std::clamp(*min_it, lower_limit, upper_limit);
    }
  }
  const std::vector<double> lower = {lower_limit};
  const std::vector<double> upper = {upper_limit};
  const LbfgsbResult res =
      lbfgsb_minimize(objective, {start}, lower, upper, options);

  ThresholdResult out;
  out.beta = res.x[0];
  out.final_loss = res.fx;
  out.iterations = res.iterations;
  out.converged = res.converged;
  // Robustness margins in one fused pass: r = beta - mu is the affine map
  // -1*mu + beta, r = mu - beta is 1*mu + (-beta); both are IEEE-exact
  // rewrites of the subtraction (a single rounded op either way), so the
  // learned margins match the scalar loop bit for bit.
  const bool upper_side = problem.side == BoundSide::kUpperBound;
  std::vector<double> margins(problem.violation_values.size());
  aps::ml::kernels::affine(problem.violation_values.data(),
                           upper_side ? -1.0 : 1.0,
                           upper_side ? out.beta : -out.beta, margins.data(),
                           margins.size());
  double min_margin = std::numeric_limits<double>::infinity();
  for (const double r : margins) min_margin = std::min(min_margin, r);
  out.min_margin = min_margin;
  return out;
}

}  // namespace aps::learn
