// Data-driven refinement of STL threshold parameters (paper §III-C2).
//
// Each SCS rule has one unknown boundary threshold beta over a context
// variable mu (here: IOB or BG). Hazardous traces provide the *violation
// examples*: samples where the rule's sign conditions held, the guarded
// action was issued, and a hazard followed — exactly the situations the
// rule must catch. The robustness margin is
//
//   upper-bound predicates (mu < beta):  r = beta - mu(d(t))
//   lower-bound predicates (mu > beta):  r = mu(d(t)) - beta
//
// and the threshold is learned by minimizing mean loss(r) with L-BFGS-B,
// which lands beta a tight margin on the firing side of the observed
// hazardous samples (weakly supervised: no safe-trace labels needed).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "learn/lbfgsb.h"
#include "learn/loss.h"

namespace aps::learn {

/// Which side of the data the threshold bounds.
enum class BoundSide {
  kUpperBound,  ///< predicate "mu < beta": rule fires below the threshold
  kLowerBound,  ///< predicate "mu > beta": rule fires above the threshold
};

struct ThresholdProblem {
  /// mu values extracted from hazardous traces at violation instants.
  std::vector<double> violation_values;
  BoundSide side = BoundSide::kUpperBound;
  double lower_limit = 0.0;   ///< box constraint on beta
  double upper_limit = 50.0;
  LossKind loss = LossKind::kTmee;
  /// Enforce Eq. 3's hard constraint r >= 0 for every violation example by
  /// tightening the box to the data edge (as far as the box allows). With
  /// this off, coverage depends entirely on the loss shape — the situation
  /// Fig. 3 illustrates (MSE/MAE then park the threshold inside the data).
  bool enforce_coverage = true;
};

struct ThresholdResult {
  double beta = 0.0;
  double final_loss = 0.0;
  int iterations = 0;
  bool converged = false;
  /// Minimum robustness margin of the violation set at the learned beta;
  /// >= 0 means every hazardous example is caught by the rule.
  double min_margin = 0.0;
};

/// Learn one threshold. Returns nullopt when there are no violation
/// examples (the rule keeps its default threshold in that case).
[[nodiscard]] std::optional<ThresholdResult> learn_threshold(
    const ThresholdProblem& problem, const LbfgsbOptions& options = {});

/// Mean loss over the violation set at a given beta (exposed for the Fig. 3
/// bench and convergence tests).
[[nodiscard]] double threshold_objective(const ThresholdProblem& problem,
                                         double beta, double* grad_out);

}  // namespace aps::learn
