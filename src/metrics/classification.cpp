#include "metrics/classification.h"

#include <algorithm>
#include <cassert>

namespace aps::metrics {

void ConfusionMatrix::add(const ConfusionMatrix& other) {
  tp += other.tp;
  fp += other.fp;
  fn += other.fn;
  tn += other.tn;
}

double ConfusionMatrix::fpr() const {
  const auto denom = fp + tn;
  return denom > 0 ? static_cast<double>(fp) / static_cast<double>(denom)
                   : 0.0;
}

double ConfusionMatrix::fnr() const {
  const auto denom = fn + tp;
  return denom > 0 ? static_cast<double>(fn) / static_cast<double>(denom)
                   : 0.0;
}

double ConfusionMatrix::accuracy() const {
  const auto t = total();
  return t > 0 ? static_cast<double>(tp + tn) / static_cast<double>(t) : 0.0;
}

double ConfusionMatrix::precision() const {
  const auto denom = tp + fp;
  return denom > 0 ? static_cast<double>(tp) / static_cast<double>(denom)
                   : 0.0;
}

double ConfusionMatrix::recall() const {
  const auto denom = tp + fn;
  return denom > 0 ? static_cast<double>(tp) / static_cast<double>(denom)
                   : 0.0;
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

ConfusionMatrix tolerance_window_confusion(const std::vector<bool>& predictions,
                                           const std::vector<bool>& ground_truth,
                                           int delta) {
  assert(predictions.size() == ground_truth.size());
  const auto n = static_cast<int>(predictions.size());
  ConfusionMatrix cm;

  // Segment the ground truth into contiguous hazard windows. Per Table IV
  // (PN row: the lookback window "ends with a positive ground truth that
  // includes t"), a hazard window counts as covered when an alert fired
  // anywhere from delta steps before its onset through its end — hazard
  // *prediction* wants the alert ahead of the window, and one early alert
  // covers the episode.
  std::vector<bool> covered(static_cast<std::size_t>(n), false);
  auto close_segment = [&](int start, int end) {  // inclusive bounds
    const int lo = std::max(0, start - delta);
    bool any_alert = false;
    for (int i = lo; i <= end && !any_alert; ++i) {
      any_alert = predictions[static_cast<std::size_t>(i)];
    }
    if (any_alert) {
      for (int i = start; i <= end; ++i) {
        covered[static_cast<std::size_t>(i)] = true;
      }
    }
  };
  int seg_start = -1;
  for (int t = 0; t < n; ++t) {
    const bool g = ground_truth[static_cast<std::size_t>(t)];
    if (g && seg_start < 0) seg_start = t;
    if (!g && seg_start >= 0) {
      close_segment(seg_start, t - 1);
      seg_start = -1;
    }
  }
  if (seg_start >= 0) close_segment(seg_start, n - 1);

  auto truth_ahead = [&](int t) {
    const int hi = std::min(n - 1, t + delta);
    for (int i = t; i <= hi; ++i) {
      if (ground_truth[static_cast<std::size_t>(i)]) return true;
    }
    return false;
  };

  for (int t = 0; t < n; ++t) {
    const bool p = predictions[static_cast<std::size_t>(t)];
    const bool g = ground_truth[static_cast<std::size_t>(t)];
    if (g) {
      covered[static_cast<std::size_t>(t)] ? ++cm.tp : ++cm.fn;
    } else if (p) {
      // Alert on a quiet sample: predictive (hazard within delta ahead) or
      // false.
      truth_ahead(t) ? ++cm.tp : ++cm.fp;
    } else {
      ++cm.tn;
    }
  }
  return cm;
}

ConfusionMatrix two_region_confusion(const std::vector<bool>& predictions,
                                     const std::vector<bool>& ground_truth,
                                     int fault_step) {
  assert(predictions.size() == ground_truth.size());
  const auto n = static_cast<int>(predictions.size());
  ConfusionMatrix cm;

  auto score_region = [&](int lo, int hi) {  // inclusive bounds
    if (lo > hi) return;
    bool has_truth = false;
    bool has_pred = false;
    for (int i = lo; i <= hi; ++i) {
      has_truth |= ground_truth[static_cast<std::size_t>(i)];
      has_pred |= predictions[static_cast<std::size_t>(i)];
    }
    if (has_truth) {
      has_pred ? ++cm.tp : ++cm.fn;
    } else {
      has_pred ? ++cm.fp : ++cm.tn;
    }
  };

  if (fault_step < 0 || fault_step >= n) {
    score_region(0, n - 1);
  } else {
    score_region(0, fault_step - 1);
    score_region(fault_step, n - 1);
  }
  return cm;
}

}  // namespace aps::metrics
