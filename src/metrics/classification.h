// Classification metrics for hazard *prediction* (paper §V-D).
//
// Point-wise metrics punish early warnings, so the sample-level evaluation
// uses a tolerance window delta (Table IV / Fig. 6): an alert is a true
// positive when a hazard follows within delta; a hazardous sample is not a
// false negative when an alert preceded it within delta. The
// simulation-level evaluation splits each trace at the fault-activation
// time t_f into two regions and scores each region as one case.
#pragma once

#include <cstddef>
#include <vector>

namespace aps::metrics {

struct ConfusionMatrix {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t fn = 0;
  std::size_t tn = 0;

  void add(const ConfusionMatrix& other);

  [[nodiscard]] double fpr() const;       ///< fp / (fp + tn)
  [[nodiscard]] double fnr() const;       ///< fn / (fn + tp)
  [[nodiscard]] double accuracy() const;  ///< (tp + tn) / total
  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] double f1() const;
  [[nodiscard]] std::size_t total() const { return tp + fp + fn + tn; }
};

/// Sample-level confusion with tolerance window `delta` steps (Table IV).
/// `predictions[t]` = alarm at step t; `ground_truth[t]` = hazardous step.
[[nodiscard]] ConfusionMatrix tolerance_window_confusion(
    const std::vector<bool>& predictions, const std::vector<bool>& ground_truth,
    int delta);

/// Simulation-level two-region scoring: the trace is split at `fault_step`
/// (< 0 when fault-free: the whole trace is one region). Each region is
/// positive when it contains a hazardous ground-truth sample and predicted
/// positive when it contains an alarm.
[[nodiscard]] ConfusionMatrix two_region_confusion(
    const std::vector<bool>& predictions, const std::vector<bool>& ground_truth,
    int fault_step);

}  // namespace aps::metrics
