#include "metrics/evaluation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/units.h"
#include "risk/risk_index.h"

namespace aps::metrics {

namespace {

/// Fault-activation step of a run, or -1 when fault-free.
int fault_step_of(const aps::sim::SimResult& run) {
  return run.config.fault.enabled() ? run.config.fault.start_step : -1;
}

}  // namespace

std::vector<bool> alarms_of(const aps::sim::SimResult& run) {
  std::vector<bool> out;
  out.reserve(run.steps.size());
  for (const auto& s : run.steps) out.push_back(s.alarm);
  return out;
}

// ---- Resilience ------------------------------------------------------------

double ResilienceStats::hazard_coverage() const {
  return total_runs > 0 ? static_cast<double>(hazardous_runs) /
                              static_cast<double>(total_runs)
                        : 0.0;
}

double ResilienceStats::mean_tth_min() const {
  return aps::mean(tth_min);
}

double ResilienceStats::negative_tth_fraction() const {
  if (tth_min.empty()) return 0.0;
  const auto negatives = static_cast<double>(
      std::count_if(tth_min.begin(), tth_min.end(),
                    [](double v) { return v < 0.0; }));
  return negatives / static_cast<double>(tth_min.size());
}

ResilienceStats resilience(const aps::sim::CampaignResult& campaign) {
  ResilienceStats stats;
  for (const auto* run : campaign.flat()) {
    ++stats.total_runs;
    if (!run->label.hazardous) continue;
    ++stats.hazardous_runs;
    const int tf = fault_step_of(*run);
    const int th = run->label.onset_step;
    stats.tth_min.push_back(static_cast<double>(th - std::max(tf, 0)) *
                            aps::kControlPeriodMin);
  }
  return stats;
}

// ---- Accuracy ----------------------------------------------------------------

AccuracyReport evaluate_accuracy(const aps::sim::CampaignResult& campaign,
                                 int tolerance_steps) {
  AccuracyReport report;
  std::size_t hazardous = 0;
  for (const auto* run : campaign.flat()) {
    const auto preds = alarms_of(*run);
    const std::vector<bool>& truth = run->label.sample_hazard;
    assert(preds.size() == truth.size());
    report.sample.add(
        tolerance_window_confusion(preds, truth, tolerance_steps));
    report.simulation.add(
        two_region_confusion(preds, truth, fault_step_of(*run)));
    ++report.runs;
    if (run->label.hazardous) ++hazardous;
  }
  report.hazard_fraction =
      report.runs > 0
          ? static_cast<double>(hazardous) / static_cast<double>(report.runs)
          : 0.0;
  return report;
}

// ---- Timeliness ----------------------------------------------------------------

double TimelinessStats::mean_reaction_min() const {
  return aps::mean(reaction_min);
}

double TimelinessStats::stddev_reaction_min() const {
  return aps::stddev(reaction_min);
}

double TimelinessStats::early_detection_rate() const {
  return hazardous_runs > 0 ? static_cast<double>(early_detections) /
                                  static_cast<double>(hazardous_runs)
                            : 0.0;
}

TimelinessStats evaluate_timeliness(const aps::sim::CampaignResult& campaign) {
  TimelinessStats stats;
  for (const auto* run : campaign.flat()) {
    if (!run->label.hazardous) continue;
    ++stats.hazardous_runs;
    // Reaction to the *fault*: the first alarm at or after activation.
    // Alarms on pre-fault initial transients are not detections of the
    // injected failure.
    const int tf = std::max(0, fault_step_of(*run));
    int td = -1;
    for (std::size_t k = static_cast<std::size_t>(tf);
         k < run->steps.size(); ++k) {
      if (run->steps[k].alarm) {
        td = static_cast<int>(k);
        break;
      }
    }
    if (td < 0) continue;
    const int th = run->label.onset_step;
    const double reaction =
        static_cast<double>(th - td) * aps::kControlPeriodMin;
    stats.reaction_min.push_back(reaction);
    if (reaction >= 0.0) ++stats.early_detections;
  }
  return stats;
}

// ---- Mitigation ----------------------------------------------------------------

double MitigationReport::recovery_rate() const {
  return baseline_hazards > 0 ? static_cast<double>(prevented) /
                                    static_cast<double>(baseline_hazards)
                              : 0.0;
}

MitigationReport evaluate_mitigation(
    const aps::sim::CampaignResult& baseline,
    const aps::sim::CampaignResult& mitigated) {
  assert(baseline.by_patient.size() == mitigated.by_patient.size());
  MitigationReport report;
  double risk_sum = 0.0;
  std::size_t total_runs = 0;

  for (std::size_t p = 0; p < baseline.by_patient.size(); ++p) {
    const auto& base_runs = baseline.by_patient[p];
    const auto& mit_runs = mitigated.by_patient[p];
    assert(base_runs.size() == mit_runs.size());
    for (std::size_t s = 0; s < base_runs.size(); ++s) {
      const auto& base = base_runs[s];
      const auto& mit = mit_runs[s];
      ++total_runs;
      const bool was_hazard = base.label.hazardous;
      const bool is_hazard = mit.label.hazardous;
      if (was_hazard) {
        ++report.baseline_hazards;
        if (!is_hazard) ++report.prevented;
        if (is_hazard && !mit.any_alarm()) {
          // FN under mitigation: the patient faces the hazard unwarned
          // (Eq. 9 first term).
          risk_sum += aps::risk::mean_risk(mit.bg_trace());
        }
      } else if (is_hazard) {
        // New hazard introduced by mitigating false alarms (Eq. 9 second
        // term).
        ++report.new_hazards;
        risk_sum += aps::risk::mean_risk(mit.bg_trace());
      }
    }
  }
  report.average_risk =
      total_runs > 0 ? risk_sum / static_cast<double>(total_runs) : 0.0;
  return report;
}

}  // namespace aps::metrics
