#include "metrics/evaluation.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/units.h"
#include "risk/risk_index.h"

namespace aps::metrics {

int fault_step_of(const aps::sim::SimResult& run) {
  return run.config.fault.enabled() ? run.config.fault.start_step : -1;
}

std::vector<bool> alarms_of(const aps::sim::SimResult& run) {
  std::vector<bool> out;
  out.reserve(run.steps.size());
  for (const auto& s : run.steps) out.push_back(s.alarm);
  return out;
}

std::vector<bool> alarms_of(std::span<const aps::monitor::Decision> decisions) {
  std::vector<bool> out;
  out.reserve(decisions.size());
  for (const auto& d : decisions) out.push_back(d.alarm);
  return out;
}

// ---- Resilience ------------------------------------------------------------

void ResilienceStats::add_run(const aps::sim::SimResult& run) {
  ++total_runs;
  if (!run.label.hazardous) return;
  ++hazardous_runs;
  const int tf = fault_step_of(run);
  const int th = run.label.onset_step;
  tth_min.push_back(static_cast<double>(th - std::max(tf, 0)) *
                    aps::kControlPeriodMin);
}

void ResilienceStats::merge(const ResilienceStats& other) {
  total_runs += other.total_runs;
  hazardous_runs += other.hazardous_runs;
  tth_min.insert(tth_min.end(), other.tth_min.begin(), other.tth_min.end());
}

double ResilienceStats::hazard_coverage() const {
  return total_runs > 0 ? static_cast<double>(hazardous_runs) /
                              static_cast<double>(total_runs)
                        : 0.0;
}

double ResilienceStats::mean_tth_min() const {
  return aps::mean(tth_min);
}

double ResilienceStats::negative_tth_fraction() const {
  if (tth_min.empty()) return 0.0;
  const auto negatives = static_cast<double>(
      std::count_if(tth_min.begin(), tth_min.end(),
                    [](double v) { return v < 0.0; }));
  return negatives / static_cast<double>(tth_min.size());
}

ResilienceStats resilience(const aps::sim::CampaignResult& campaign) {
  ResilienceStats stats;
  for (const auto* run : campaign.flat()) stats.add_run(*run);
  return stats;
}

// ---- Accuracy ----------------------------------------------------------------

void AccuracyReport::add_run(const std::vector<bool>& alarms,
                             const aps::risk::TraceLabel& label,
                             int fault_step, int tolerance_steps) {
  const std::vector<bool>& truth = label.sample_hazard;
  assert(alarms.size() == truth.size());
  sample.add(tolerance_window_confusion(alarms, truth, tolerance_steps));
  simulation.add(two_region_confusion(alarms, truth, fault_step));
  ++runs;
  if (label.hazardous) ++hazardous_runs;
}

void AccuracyReport::merge(const AccuracyReport& other) {
  sample.add(other.sample);
  simulation.add(other.simulation);
  runs += other.runs;
  hazardous_runs += other.hazardous_runs;
}

double AccuracyReport::hazard_fraction() const {
  return runs > 0
             ? static_cast<double>(hazardous_runs) / static_cast<double>(runs)
             : 0.0;
}

AccuracyReport evaluate_accuracy(const aps::sim::CampaignResult& campaign,
                                 int tolerance_steps) {
  AccuracyReport report;
  for (const auto* run : campaign.flat()) {
    report.add_run(alarms_of(*run), run->label, fault_step_of(*run),
                   tolerance_steps);
  }
  return report;
}

// ---- Timeliness ----------------------------------------------------------------

void TimelinessStats::add_run(const std::vector<bool>& alarms,
                              const aps::risk::TraceLabel& label,
                              int fault_step) {
  if (!label.hazardous) return;
  ++hazardous_runs;
  // Reaction to the *fault*: the first alarm at or after activation.
  // Alarms on pre-fault initial transients are not detections of the
  // injected failure.
  const int tf = std::max(0, fault_step);
  int td = -1;
  for (std::size_t k = static_cast<std::size_t>(tf); k < alarms.size(); ++k) {
    if (alarms[k]) {
      td = static_cast<int>(k);
      break;
    }
  }
  if (td < 0) return;
  const int th = label.onset_step;
  const double reaction = static_cast<double>(th - td) * aps::kControlPeriodMin;
  reaction_min.push_back(reaction);
  if (reaction >= 0.0) ++early_detections;
}

void TimelinessStats::merge(const TimelinessStats& other) {
  reaction_min.insert(reaction_min.end(), other.reaction_min.begin(),
                      other.reaction_min.end());
  hazardous_runs += other.hazardous_runs;
  early_detections += other.early_detections;
}

double TimelinessStats::mean_reaction_min() const {
  return aps::mean(reaction_min);
}

double TimelinessStats::stddev_reaction_min() const {
  return aps::stddev(reaction_min);
}

double TimelinessStats::early_detection_rate() const {
  return hazardous_runs > 0 ? static_cast<double>(early_detections) /
                                  static_cast<double>(hazardous_runs)
                            : 0.0;
}

TimelinessStats evaluate_timeliness(const aps::sim::CampaignResult& campaign) {
  TimelinessStats stats;
  for (const auto* run : campaign.flat()) {
    stats.add_run(alarms_of(*run), run->label, fault_step_of(*run));
  }
  return stats;
}

// ---- Mitigation ----------------------------------------------------------------

void MitigationReport::add_run(bool baseline_hazardous,
                               const aps::sim::SimResult& mitigated) {
  ++total_runs;
  const bool is_hazard = mitigated.label.hazardous;
  if (baseline_hazardous) {
    ++baseline_hazards;
    if (!is_hazard) ++prevented;
    if (is_hazard && !mitigated.any_alarm()) {
      // FN under mitigation: the patient faces the hazard unwarned
      // (Eq. 9 first term).
      risk_sum += aps::risk::mean_risk(mitigated.bg_trace());
    }
  } else if (is_hazard) {
    // New hazard introduced by mitigating false alarms (Eq. 9 second
    // term).
    ++new_hazards;
    risk_sum += aps::risk::mean_risk(mitigated.bg_trace());
  }
}

void MitigationReport::merge(const MitigationReport& other) {
  total_runs += other.total_runs;
  baseline_hazards += other.baseline_hazards;
  prevented += other.prevented;
  new_hazards += other.new_hazards;
  risk_sum += other.risk_sum;
}

double MitigationReport::recovery_rate() const {
  return baseline_hazards > 0 ? static_cast<double>(prevented) /
                                    static_cast<double>(baseline_hazards)
                              : 0.0;
}

double MitigationReport::average_risk() const {
  return total_runs > 0 ? risk_sum / static_cast<double>(total_runs) : 0.0;
}

MitigationReport evaluate_mitigation(
    const aps::sim::CampaignResult& baseline,
    const aps::sim::CampaignResult& mitigated) {
  assert(baseline.by_patient.size() == mitigated.by_patient.size());
  MitigationReport report;
  for (std::size_t p = 0; p < baseline.by_patient.size(); ++p) {
    const auto& base_runs = baseline.by_patient[p];
    const auto& mit_runs = mitigated.by_patient[p];
    assert(base_runs.size() == mit_runs.size());
    for (std::size_t s = 0; s < base_runs.size(); ++s) {
      report.add_run(base_runs[s].label.hazardous, mit_runs[s]);
    }
  }
  return report;
}

}  // namespace aps::metrics
