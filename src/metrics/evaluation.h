// Campaign-level evaluation (paper §V-D): hazard coverage, time-to-hazard,
// monitor prediction accuracy at both levels, reaction time / early
// detection rate, and the mitigation metrics (recovery rate, new hazards,
// average risk, Eq. 9).
//
// Every report here is a mergeable accumulator: per-run `add_run` plus
// `merge` of per-shard instances equals one sequential accumulation, so
// the streaming experiment pipeline scores campaigns without retaining a
// single trace. Vector-valued fields (reaction times, TTH) concatenate in
// merge order; merging shards in index order reproduces the sequential
// vectors byte-for-byte.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/stats.h"
#include "metrics/classification.h"
#include "sim/runner.h"

namespace aps::metrics {

/// Default tolerance window for hazard *prediction*: 36 steps = 3 hours,
/// calibrated to the mean time-to-hazard of the unmonitored system
/// (Fig. 7b) so that alerts raised over the monitor's prediction horizon
/// count as early detections rather than false positives.
inline constexpr int kDefaultToleranceSteps = 36;

/// Fault-activation step of a run, or -1 when fault-free.
[[nodiscard]] int fault_step_of(const aps::sim::SimResult& run);

// ---- Resilience of the unmonitored system (Fig. 7 / Fig. 8) -------------

struct ResilienceStats {
  std::size_t total_runs = 0;
  std::size_t hazardous_runs = 0;
  /// TTH in minutes for every hazardous run (may be negative when the
  /// hazard pre-dates the fault; Fig. 7b).
  std::vector<double> tth_min;

  void add_run(const aps::sim::SimResult& run);
  void merge(const ResilienceStats& other);

  [[nodiscard]] double hazard_coverage() const;
  [[nodiscard]] double mean_tth_min() const;
  [[nodiscard]] double negative_tth_fraction() const;
};

[[nodiscard]] ResilienceStats resilience(
    const aps::sim::CampaignResult& campaign);

// ---- Monitor prediction accuracy (Tables V / VI) --------------------------

struct AccuracyReport {
  ConfusionMatrix sample;      ///< tolerance-window, per sample
  ConfusionMatrix simulation;  ///< two-region, per region
  std::size_t runs = 0;
  std::size_t hazardous_runs = 0;

  /// Score one run from its alarm stream (`alarms[k]` = alert at step k)
  /// and ground-truth labeling.
  void add_run(const std::vector<bool>& alarms,
               const aps::risk::TraceLabel& label, int fault_step,
               int tolerance_steps = kDefaultToleranceSteps);
  void merge(const AccuracyReport& other);

  /// Fraction of hazardous runs.
  [[nodiscard]] double hazard_fraction() const;
};

[[nodiscard]] AccuracyReport evaluate_accuracy(
    const aps::sim::CampaignResult& campaign,
    int tolerance_steps = kDefaultToleranceSteps);

// ---- Timeliness (Fig. 9) ---------------------------------------------------

struct TimelinessStats {
  /// Reaction time (minutes) per hazardous run with at least one alarm:
  /// positive = alert preceded the hazard.
  std::vector<double> reaction_min;
  std::size_t hazardous_runs = 0;
  std::size_t early_detections = 0;  ///< alert no later than hazard onset

  void add_run(const std::vector<bool>& alarms,
               const aps::risk::TraceLabel& label, int fault_step);
  void merge(const TimelinessStats& other);

  [[nodiscard]] double mean_reaction_min() const;
  [[nodiscard]] double stddev_reaction_min() const;
  [[nodiscard]] double early_detection_rate() const;
};

[[nodiscard]] TimelinessStats evaluate_timeliness(
    const aps::sim::CampaignResult& campaign);

// ---- Mitigation (Table VII) -------------------------------------------------

struct MitigationReport {
  std::size_t total_runs = 0;
  std::size_t baseline_hazards = 0;   ///< hazards without mitigation
  std::size_t prevented = 0;          ///< hazardous -> safe
  std::size_t new_hazards = 0;        ///< safe -> hazardous (FP side effects)
  double risk_sum = 0.0;              ///< Eq. 9 numerator

  /// Score one mitigated run against whether its unmitigated twin (same
  /// scenario/patient) was hazardous.
  void add_run(bool baseline_hazardous, const aps::sim::SimResult& mitigated);
  void merge(const MitigationReport& other);

  [[nodiscard]] double recovery_rate() const;
  [[nodiscard]] double average_risk() const;  ///< Eq. 9
};

/// Compare a mitigated campaign against the unmitigated baseline run with
/// identical scenarios/patients (matched by index).
[[nodiscard]] MitigationReport evaluate_mitigation(
    const aps::sim::CampaignResult& baseline,
    const aps::sim::CampaignResult& mitigated);

// ---- Per-run helpers (exposed for tests) -------------------------------------

/// Alarm vector of a run.
[[nodiscard]] std::vector<bool> alarms_of(const aps::sim::SimResult& run);

/// Alarm vector of a passive observer's decision trace.
[[nodiscard]] std::vector<bool> alarms_of(
    std::span<const aps::monitor::Decision> decisions);

}  // namespace aps::metrics
