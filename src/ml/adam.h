// Adam optimizer state (Kingma & Ba, paper ref [70]) for one parameter
// matrix. Shared by the MLP and LSTM trainers.
#pragma once

#include <cmath>

#include "ml/matrix.h"

namespace aps::ml {

struct AdamConfig {
  double learning_rate = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

class AdamState {
 public:
  AdamState() = default;
  AdamState(std::size_t rows, std::size_t cols)
      : m_(rows, cols), v_(rows, cols) {}

  /// Apply one Adam update of `param` given `grad`; `t` is the 1-based
  /// global step used for bias correction.
  void update(Matrix& param, const Matrix& grad, const AdamConfig& cfg,
              long t) {
    const double bc1 = 1.0 - std::pow(cfg.beta1, static_cast<double>(t));
    const double bc2 = 1.0 - std::pow(cfg.beta2, static_cast<double>(t));
    auto& m = m_.raw();
    auto& v = v_.raw();
    auto& p = param.raw();
    const auto& g = grad.raw();
    for (std::size_t i = 0; i < p.size(); ++i) {
      m[i] = cfg.beta1 * m[i] + (1.0 - cfg.beta1) * g[i];
      v[i] = cfg.beta2 * v[i] + (1.0 - cfg.beta2) * g[i] * g[i];
      const double mhat = m[i] / bc1;
      const double vhat = v[i] / bc2;
      p[i] -= cfg.learning_rate * mhat / (std::sqrt(vhat) + cfg.epsilon);
    }
  }

 private:
  Matrix m_;
  Matrix v_;
};

}  // namespace aps::ml
