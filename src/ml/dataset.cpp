#include "ml/dataset.h"

#include <algorithm>
#include <cmath>

namespace aps::ml {

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.classes = classes;
  out.x = Matrix(indices.size(), x.cols());
  out.y.reserve(indices.size());
  for (std::size_t r = 0; r < indices.size(); ++r) {
    const std::size_t src = indices[r];
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out.x.at(r, c) = x.at(src, c);
    }
    out.y.push_back(y[src]);
  }
  return out;
}

double Dataset::positive_fraction() const {
  if (y.empty()) return 0.0;
  std::size_t pos = 0;
  for (const int label : y) {
    if (label == 1) ++pos;
  }
  return static_cast<double>(pos) / static_cast<double>(y.size());
}

void Standardizer::fit(const Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  mean_.assign(d, 0.0);
  std_.assign(d, 1.0);
  if (n == 0) return;
  for (std::size_t c = 0; c < d; ++c) {
    double m = 0.0;
    for (std::size_t r = 0; r < n; ++r) m += x.at(r, c);
    m /= static_cast<double>(n);
    double v = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      const double delta = x.at(r, c) - m;
      v += delta * delta;
    }
    v /= static_cast<double>(n);
    mean_[c] = m;
    std_[c] = v > 1e-12 ? std::sqrt(v) : 1.0;
  }
}

Matrix Standardizer::transform(const Matrix& x) const {
  Matrix out = x;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out.at(r, c) = (out.at(r, c) - mean_[c]) / std_[c];
    }
  }
  return out;
}

void Standardizer::transform_row(std::span<double> row) const {
  for (std::size_t c = 0; c < row.size() && c < mean_.size(); ++c) {
    row[c] = (row[c] - mean_[c]) / std_[c];
  }
}

DatasetBuilder::DatasetBuilder(std::size_t features, int classes,
                               std::size_t max_samples, std::uint64_t seed)
    : features_(features), classes_(classes), reservoir_(max_samples, seed) {}

void DatasetBuilder::add(std::uint64_t run, std::uint64_t step,
                         std::span<const double> row, int label) {
  Sample sample;
  sample.row.assign(row.begin(), row.end());
  sample.label = label;
  reservoir_.add(run, step, std::move(sample));
}

void DatasetBuilder::merge(DatasetBuilder&& other) {
  reservoir_.merge(std::move(other.reservoir_));
}

Dataset DatasetBuilder::build() {
  const auto entries = reservoir_.take_sorted();
  Dataset data;
  data.classes = classes_;
  data.x = Matrix(entries.size(), features_);
  data.y.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& sample = entries[i].payload;
    for (std::size_t c = 0; c < features_ && c < sample.row.size(); ++c) {
      data.x.at(i, c) = sample.row[c];
    }
    data.y.push_back(sample.label);
  }
  return data;
}

SequenceDatasetBuilder::SequenceDatasetBuilder(int classes,
                                               std::size_t max_samples,
                                               std::uint64_t seed)
    : classes_(classes), reservoir_(max_samples, seed) {}

void SequenceDatasetBuilder::add(std::uint64_t run, std::uint64_t step,
                                 Matrix window, int label) {
  reservoir_.add(run, step, Sample{std::move(window), label});
}

void SequenceDatasetBuilder::merge(SequenceDatasetBuilder&& other) {
  reservoir_.merge(std::move(other.reservoir_));
}

SequenceDataset SequenceDatasetBuilder::build() {
  auto entries = reservoir_.take_sorted();
  SequenceDataset data;
  data.classes = classes_;
  data.sequences.reserve(entries.size());
  data.labels.reserve(entries.size());
  for (auto& entry : entries) {
    data.sequences.push_back(std::move(entry.payload.window));
    data.labels.push_back(entry.payload.label);
  }
  return data;
}

std::vector<double> class_weights(const Dataset& data) {
  std::vector<double> counts(static_cast<std::size_t>(data.classes), 0.0);
  for (const int label : data.y) {
    counts[static_cast<std::size_t>(label)] += 1.0;
  }
  std::vector<double> weights(counts.size(), 1.0);
  const auto n = static_cast<double>(data.size());
  const auto k = static_cast<double>(data.classes);
  for (std::size_t c = 0; c < counts.size(); ++c) {
    weights[c] = counts[c] > 0.0 ? n / (k * counts[c]) : 0.0;
  }
  return weights;
}

}  // namespace aps::ml
