// Tabular dataset container and feature standardization for the ML
// baseline monitors.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "ml/matrix.h"

namespace aps::io {
struct ModelSerde;  // binary save/load (src/io/artifact_io.cpp)
}

namespace aps::ml {

/// Classification dataset: features x[i] (row) with integer label y[i].
struct Dataset {
  Matrix x;              ///< n x d
  std::vector<int> y;    ///< n labels in [0, classes)
  int classes = 2;

  [[nodiscard]] std::size_t size() const { return y.size(); }
  [[nodiscard]] std::size_t features() const { return x.cols(); }

  /// Select a row subset (copy).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Fraction of samples with label 1 (binary convenience).
  [[nodiscard]] double positive_fraction() const;
};

/// Per-column z-score standardizer (fit on train, apply everywhere).
class Standardizer {
 public:
  void fit(const Matrix& x);
  [[nodiscard]] Matrix transform(const Matrix& x) const;
  void transform_row(std::span<double> row) const;
  [[nodiscard]] bool fitted() const { return !mean_.empty(); }

  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }
  [[nodiscard]] const std::vector<double>& std() const { return std_; }

 private:
  friend struct aps::io::ModelSerde;

  std::vector<double> mean_;
  std::vector<double> std_;
};

/// Deterministic stratified class weights: inverse class frequency,
/// normalized to mean 1. Used to counter the heavy class imbalance of
/// hazard data.
[[nodiscard]] std::vector<double> class_weights(const Dataset& data);

}  // namespace aps::ml
