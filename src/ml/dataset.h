// Tabular / sequence dataset containers, feature standardization, and the
// deterministic streaming subsampler feeding the ML baseline monitors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstddef>
#include <span>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "ml/matrix.h"

namespace aps::io {
struct ModelSerde;  // binary save/load (src/io/artifact_io.cpp)
}

namespace aps::ml {

/// Classification dataset: features x[i] (row) with integer label y[i].
struct Dataset {
  Matrix x;              ///< n x d
  std::vector<int> y;    ///< n labels in [0, classes)
  int classes = 2;

  [[nodiscard]] std::size_t size() const { return y.size(); }
  [[nodiscard]] std::size_t features() const { return x.cols(); }

  /// Select a row subset (copy).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Fraction of samples with label 1 (binary convenience).
  [[nodiscard]] double positive_fraction() const;
};

/// Window dataset: each sample is a (steps x features) matrix plus a label.
struct SequenceDataset {
  std::vector<Matrix> sequences;
  std::vector<int> labels;
  int classes = 2;

  [[nodiscard]] std::size_t size() const { return labels.size(); }
  [[nodiscard]] std::size_t steps() const {
    return sequences.empty() ? 0 : sequences.front().rows();
  }
  [[nodiscard]] std::size_t features() const {
    return sequences.empty() ? 0 : sequences.front().cols();
  }
};

/// Per-column z-score standardizer (fit on train, apply everywhere).
class Standardizer {
 public:
  void fit(const Matrix& x);
  [[nodiscard]] Matrix transform(const Matrix& x) const;
  void transform_row(std::span<double> row) const;
  [[nodiscard]] bool fitted() const { return !mean_.empty(); }

  [[nodiscard]] const std::vector<double>& mean() const { return mean_; }
  [[nodiscard]] const std::vector<double>& std() const { return std_; }

 private:
  friend struct aps::io::ModelSerde;

  std::vector<double> mean_;
  std::vector<double> std_;
};

/// Deterministic stratified class weights: inverse class frequency,
/// normalized to mean 1. Used to counter the heavy class imbalance of
/// hazard data.
[[nodiscard]] std::vector<double> class_weights(const Dataset& data);

// ---- Streaming reservoir subsampling ----------------------------------------

/// Deterministic bottom-k reservoir over (run, step)-addressed samples:
/// every candidate receives a 64-bit priority key derived from
/// (seed, run, step), and the k smallest keys win. Selection is a pure
/// function of the candidate *set* — invariant to insertion order, shard
/// layout, and thread count — and merging per-shard reservoirs equals one
/// global reservoir, which is what makes training sets reproducible under
/// any parallel campaign execution. capacity == 0 keeps every sample.
template <typename Payload>
class ReservoirSampler {
 public:
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t run = 0;
    std::uint64_t step = 0;
    Payload payload;
  };

  ReservoirSampler(std::size_t capacity, std::uint64_t seed)
      : capacity_(capacity), seed_(seed) {}

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Priority of sample (run, step); ties broken by (run, step) so the
  /// ordering is total and collision-proof.
  [[nodiscard]] std::uint64_t key_of(std::uint64_t run,
                                     std::uint64_t step) const {
    return derive_seed(derive_seed(seed_, run), step);
  }

  void add(std::uint64_t run, std::uint64_t step, Payload payload) {
    Entry entry{key_of(run, step), run, step, std::move(payload)};
    if (capacity_ == 0 || entries_.size() < capacity_) {
      entries_.push_back(std::move(entry));
      if (capacity_ != 0) {
        std::push_heap(entries_.begin(), entries_.end(), before);
      }
      return;
    }
    if (!before(entry, entries_.front())) return;  // not among the k smallest
    std::pop_heap(entries_.begin(), entries_.end(), before);
    entries_.back() = std::move(entry);
    std::push_heap(entries_.begin(), entries_.end(), before);
  }

  /// Fold `other` in; the result equals a single reservoir fed both
  /// candidate streams in any order.
  void merge(ReservoirSampler&& other) {
    for (Entry& entry : other.entries_) {
      add(entry.run, entry.step, std::move(entry.payload));
    }
    other.entries_.clear();
  }

  /// Surviving samples in (run, step) order — a stable, layout-independent
  /// presentation for downstream training.
  [[nodiscard]] std::vector<Entry> take_sorted() {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) {
                return std::tie(a.run, a.step) < std::tie(b.run, b.step);
              });
    return std::move(entries_);
  }

 private:
  /// Strict ordering by (key, run, step); max-heap over it keeps the
  /// largest removable element at the front.
  static bool before(const Entry& a, const Entry& b) {
    return std::tie(a.key, a.run, a.step) < std::tie(b.key, b.run, b.step);
  }

  std::size_t capacity_;
  std::uint64_t seed_;
  std::vector<Entry> entries_;  ///< max-heap when at capacity
};

/// Streaming builder for the tabular (DT / MLP) training set: feed feature
/// rows as campaign runs finish, merge per-shard builders, build once.
class DatasetBuilder {
 public:
  struct Sample {
    std::vector<double> row;
    int label = 0;
  };

  DatasetBuilder(std::size_t features, int classes, std::size_t max_samples,
                 std::uint64_t seed);

  void add(std::uint64_t run, std::uint64_t step, std::span<const double> row,
           int label);
  void merge(DatasetBuilder&& other);
  [[nodiscard]] std::size_t size() const { return reservoir_.size(); }
  /// Consumes the builder.
  [[nodiscard]] Dataset build();

 private:
  std::size_t features_;
  int classes_;
  ReservoirSampler<Sample> reservoir_;
};

/// Streaming builder for the LSTM window training set.
class SequenceDatasetBuilder {
 public:
  struct Sample {
    Matrix window;
    int label = 0;
  };

  SequenceDatasetBuilder(int classes, std::size_t max_samples,
                         std::uint64_t seed);

  void add(std::uint64_t run, std::uint64_t step, Matrix window, int label);
  void merge(SequenceDatasetBuilder&& other);
  [[nodiscard]] std::size_t size() const { return reservoir_.size(); }
  /// Consumes the builder.
  [[nodiscard]] SequenceDataset build();

 private:
  int classes_;
  ReservoirSampler<Sample> reservoir_;
};

}  // namespace aps::ml
