#include "ml/decision_tree.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace aps::ml {

namespace {

/// Weighted Gini impurity of class mass vector.
double gini(std::span<const double> class_mass, double total) {
  if (total <= 0.0) return 0.0;
  double sum_sq = 0.0;
  for (const double m : class_mass) {
    const double p = m / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeConfig config) : config_(config) {}

void DecisionTree::fit(const Dataset& data) {
  nodes_.clear();
  depth_ = 0;
  classes_ = data.classes;
  if (data.size() == 0) return;

  std::vector<double> sample_weights(data.size(), 1.0);
  if (config_.use_class_weights) {
    const auto cw = class_weights(data);
    for (std::size_t i = 0; i < data.size(); ++i) {
      sample_weights[i] = cw[static_cast<std::size_t>(data.y[i])];
    }
  }
  std::vector<std::size_t> indices(data.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  build(data, indices, sample_weights, 0);
}

int DecisionTree::build(const Dataset& data,
                        std::span<const std::size_t> indices,
                        std::span<const double> weights, int depth) {
  depth_ = std::max(depth_, depth);
  const auto node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  // Class mass at this node.
  std::vector<double> mass(static_cast<std::size_t>(classes_), 0.0);
  double total = 0.0;
  for (const std::size_t i : indices) {
    mass[static_cast<std::size_t>(data.y[i])] += weights[i];
    total += weights[i];
  }
  {
    auto& node = nodes_[static_cast<std::size_t>(node_index)];
    node.class_probs.resize(mass.size());
    for (std::size_t c = 0; c < mass.size(); ++c) {
      node.class_probs[c] = total > 0.0 ? mass[c] / total : 0.0;
    }
  }

  const double parent_impurity = gini(mass, total);
  const bool can_split = depth < config_.max_depth &&
                         indices.size() >= config_.min_samples_split &&
                         parent_impurity > 1e-12;
  if (!can_split) return node_index;

  // Exhaustive best-split search: sort per feature, scan thresholds.
  double best_gain = 1e-9;
  std::size_t best_feature = 0;
  double best_threshold = 0.0;

  std::vector<std::size_t> sorted(indices.begin(), indices.end());
  for (std::size_t f = 0; f < data.features(); ++f) {
    std::sort(sorted.begin(), sorted.end(),
              [&](std::size_t a, std::size_t b) {
                return data.x.at(a, f) < data.x.at(b, f);
              });
    std::vector<double> left_mass(static_cast<std::size_t>(classes_), 0.0);
    double left_total = 0.0;
    for (std::size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
      const std::size_t i = sorted[pos];
      left_mass[static_cast<std::size_t>(data.y[i])] += weights[i];
      left_total += weights[i];
      const double v = data.x.at(i, f);
      const double v_next = data.x.at(sorted[pos + 1], f);
      if (v_next <= v + 1e-12) continue;  // no threshold between ties
      if (pos + 1 < config_.min_samples_leaf ||
          sorted.size() - pos - 1 < config_.min_samples_leaf) {
        continue;
      }
      std::vector<double> right_mass(mass.size());
      for (std::size_t c = 0; c < mass.size(); ++c) {
        right_mass[c] = mass[c] - left_mass[c];
      }
      const double right_total = total - left_total;
      const double child_impurity =
          (left_total * gini(left_mass, left_total) +
           right_total * gini(right_mass, right_total)) /
          total;
      const double gain = parent_impurity - child_impurity;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (v + v_next);
      }
    }
  }

  if (best_gain <= 1e-9) return node_index;

  std::vector<std::size_t> left_idx;
  std::vector<std::size_t> right_idx;
  for (const std::size_t i : indices) {
    if (data.x.at(i, best_feature) <= best_threshold) {
      left_idx.push_back(i);
    } else {
      right_idx.push_back(i);
    }
  }
  if (left_idx.empty() || right_idx.empty()) return node_index;

  const int left = build(data, left_idx, weights, depth + 1);
  const int right = build(data, right_idx, weights, depth + 1);
  auto& node = nodes_[static_cast<std::size_t>(node_index)];
  node.is_leaf = false;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  return node_index;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> features) const {
  assert(trained());
  std::size_t node = 0;
  while (!nodes_[node].is_leaf) {
    const auto& n = nodes_[node];
    node = static_cast<std::size_t>(
        features[n.feature] <= n.threshold ? n.left : n.right);
  }
  return nodes_[node].class_probs;
}

int DecisionTree::predict(std::span<const double> features) const {
  const auto probs = predict_proba(features);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<int> DecisionTree::predict_batch(const Matrix& features) const {
  assert(trained());
  std::vector<int> out(features.rows());
  for (std::size_t r = 0; r < features.rows(); ++r) {
    const std::span<const double> row(features.data() + r * features.cols(),
                                      features.cols());
    out[r] = predict(row);
  }
  return out;
}

}  // namespace aps::ml
