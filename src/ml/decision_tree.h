// CART decision-tree classifier (Gini impurity, axis-aligned splits), the
// "DT" baseline monitor of paper §V-C4. Supports class weighting for the
// imbalanced hazard data and depth/leaf-size regularization.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "ml/dataset.h"

namespace aps::io {
struct ModelSerde;  // binary save/load (src/io/artifact_io.cpp)
}

namespace aps::ml {

struct DecisionTreeConfig {
  int max_depth = 8;
  std::size_t min_samples_split = 10;
  std::size_t min_samples_leaf = 5;
  bool use_class_weights = true;
};

class DecisionTree {
 public:
  explicit DecisionTree(DecisionTreeConfig config = {});

  void fit(const Dataset& data);

  [[nodiscard]] int predict(std::span<const double> features) const;
  /// Per-class probability estimate at the reached leaf.
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> features) const;
  /// Predicted class per row of `features`; out[r] is bit-identical to
  /// predict(row r) — the tree walk is row-independent, batching keeps the
  /// node array hot across rows.
  [[nodiscard]] std::vector<int> predict_batch(const Matrix& features) const;

  [[nodiscard]] bool trained() const { return !nodes_.empty(); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] int depth() const { return depth_; }

 private:
  friend struct aps::io::ModelSerde;

  struct Node {
    bool is_leaf = true;
    std::size_t feature = 0;
    double threshold = 0.0;
    int left = -1;
    int right = -1;
    std::vector<double> class_probs;
  };

  int build(const Dataset& data, std::span<const std::size_t> indices,
            std::span<const double> weights, int depth);

  DecisionTreeConfig config_;
  std::vector<Node> nodes_;
  int classes_ = 2;
  int depth_ = 0;
};

}  // namespace aps::ml
