// Shared holder for a model's lazily built float32 weight mirror (the
// serving-lane inference precision). Models stay copyable/movable: a copy
// must not carry the mirror, since its weights may diverge afterwards, so
// copies and assignments start with an empty slot and the next get()
// rebuilds. Thread-safe — serving shards race to the first get() when a
// bundle generation was loaded without warming.
#pragma once

#include <memory>
#include <mutex>

namespace aps::ml {

template <typename CacheT>
class F32Slot {
 public:
  F32Slot() = default;
  F32Slot(const F32Slot&) noexcept {}
  F32Slot(F32Slot&&) noexcept {}
  F32Slot& operator=(const F32Slot&) noexcept {
    reset();
    return *this;
  }
  F32Slot& operator=(F32Slot&&) noexcept {
    reset();
    return *this;
  }

  /// Returns the cached mirror, building it with `build` on first use.
  template <typename Build>
  [[nodiscard]] std::shared_ptr<const CacheT> get(Build&& build) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!cache_) cache_ = build();
    return cache_;
  }

  /// Drops the mirror (weights changed; next get() rebuilds).
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.reset();
  }

 private:
  mutable std::mutex mu_;
  mutable std::shared_ptr<const CacheT> cache_;
};

}  // namespace aps::ml
