// Dispatch plus the scalar backend. The scalar kernels below mirror the
// pre-kernel ml::Matrix loops statement for statement — they ARE the
// reference the SIMD backends are pinned against, and tests/kernels_test.cpp
// pins them bit-identical to hand-written naive loops.
#include "ml/kernels/kernels.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "ml/kernels/kernels_detail.h"

namespace aps::ml::kernels {

namespace {

bool runnable(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(APS_HAVE_AVX2)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Backend best_available() {
  if (runnable(Backend::kAvx2)) return Backend::kAvx2;
  if (runnable(Backend::kNeon)) return Backend::kNeon;
  return Backend::kScalar;
}

Backend initial_backend() {
  if (const char* env = std::getenv("APS_KERNELS")) {
    const std::string v(env);
    if (v == "scalar") return Backend::kScalar;
    if (v == "avx2") return runnable(Backend::kAvx2) ? Backend::kAvx2
                                                     : Backend::kScalar;
    if (v == "neon") return runnable(Backend::kNeon) ? Backend::kNeon
                                                     : Backend::kScalar;
    // Unknown value: fall through to auto-detection.
  }
  return best_available();
}

std::atomic<Backend>& backend_slot() {
  static std::atomic<Backend> slot{initial_backend()};
  return slot;
}

// ---- scalar backend --------------------------------------------------------

namespace scalar {

// Mirrors ml::matmul / ml::vec_matmul_add (m == 1): i-outer, ascending k
// with the zero skip, j innermost.
void gemm_accum(const double* a, const double* b, double* c, std::size_t m,
                std::size_t kd, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * kd;
    double* crow = c + i * n;
    for (std::size_t k = 0; k < kd; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b + k * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

// Mirrors ml::matmul_tn: r-outer (rows of a/b), i middle with the zero
// skip on a(r, i), j innermost.
void gemm_tn_accum(const double* a, const double* b, double* c,
                   std::size_t rows, std::size_t m, std::size_t n) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* arow = a + r * m;
    const double* brow = b + r * n;
    for (std::size_t i = 0; i < m; ++i) {
      const double ari = arow[i];
      if (ari == 0.0) continue;
      double* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += ari * brow[j];
    }
  }
}

// Mirrors ml::matmul_nt: per-element dot product in ascending k, local
// accumulator, no zero skip.
void gemm_nt(const double* a, const double* b, double* c, std::size_t m,
             std::size_t kd, std::size_t bn) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * kd;
    double* crow = c + i * bn;
    for (std::size_t j = 0; j < bn; ++j) {
      const double* brow = b + j * kd;
      double s = 0.0;
      for (std::size_t k = 0; k < kd; ++k) s += arow[k] * brow[k];
      crow[j] = s;
    }
  }
}

void gemm_accum_f32(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t kd, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * kd;
    float* crow = c + i * n;
    for (std::size_t k = 0; k < kd; ++k) {
      const float aik = arow[k];
      const float* brow = b + k * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace scalar

}  // namespace

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

std::vector<Backend> compiled_backends() {
  std::vector<Backend> backends{Backend::kScalar};
  if (runnable(Backend::kAvx2)) backends.push_back(Backend::kAvx2);
  if (runnable(Backend::kNeon)) backends.push_back(Backend::kNeon);
  return backends;
}

Backend active_backend() {
  return backend_slot().load(std::memory_order_relaxed);
}

const char* backend_name() { return to_string(active_backend()); }

Backend set_backend(Backend backend) {
  const Backend chosen = runnable(backend) ? backend : Backend::kScalar;
  backend_slot().store(chosen, std::memory_order_relaxed);
  return chosen;
}

// ---- dispatched entry points -----------------------------------------------

void gemm_accum(const double* a, const double* b, double* c, std::size_t m,
                std::size_t k, std::size_t n) {
  switch (active_backend()) {
#if defined(APS_HAVE_AVX2)
    case Backend::kAvx2:
      avx2::gemm_accum(a, b, c, m, k, n);
      return;
#endif
#if defined(__aarch64__)
    case Backend::kNeon:
      neon::gemm_accum(a, b, c, m, k, n);
      return;
#endif
    default:
      scalar::gemm_accum(a, b, c, m, k, n);
      return;
  }
}

void gemm_tn_accum(const double* a, const double* b, double* c,
                   std::size_t rows, std::size_t m, std::size_t n) {
  switch (active_backend()) {
#if defined(APS_HAVE_AVX2)
    case Backend::kAvx2:
      avx2::gemm_tn_accum(a, b, c, rows, m, n);
      return;
#endif
#if defined(__aarch64__)
    case Backend::kNeon:
      neon::gemm_tn_accum(a, b, c, rows, m, n);
      return;
#endif
    default:
      scalar::gemm_tn_accum(a, b, c, rows, m, n);
      return;
  }
}

void gemm_nt(const double* a, const double* b, double* c, std::size_t m,
             std::size_t k, std::size_t bn) {
  switch (active_backend()) {
#if defined(APS_HAVE_AVX2)
    case Backend::kAvx2:
      avx2::gemm_nt(a, b, c, m, k, bn);
      return;
#endif
#if defined(__aarch64__)
    case Backend::kNeon:
      neon::gemm_nt(a, b, c, m, k, bn);
      return;
#endif
    default:
      scalar::gemm_nt(a, b, c, m, k, bn);
      return;
  }
}

void gemm_accum_f32(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n) {
  switch (active_backend()) {
#if defined(APS_HAVE_AVX2)
    case Backend::kAvx2:
      avx2::gemm_accum_f32(a, b, c, m, k, n);
      return;
#endif
#if defined(__aarch64__)
    case Backend::kNeon:
      neon::gemm_accum_f32(a, b, c, m, k, n);
      return;
#endif
    default:
      scalar::gemm_accum_f32(a, b, c, m, k, n);
      return;
  }
}

void lstm_gates_f32(const float* z, float* c, float* h, float* out,
                    std::size_t lanes, std::size_t hidden) {
  switch (active_backend()) {
#if defined(APS_HAVE_AVX2)
    case Backend::kAvx2:
      avx2::lstm_gates_f32(z, c, h, out, lanes, hidden);
      return;
#endif
#if defined(__aarch64__)
    case Backend::kNeon:
      neon::lstm_gates_f32(z, c, h, out, lanes, hidden);
      return;
#endif
    default:
      lstm_gates_f32_portable(z, c, h, out, lanes, hidden);
      return;
  }
}

// ---- single-implementation passes ------------------------------------------
// Element-independent loops whose arithmetic has no accumulation order to
// preserve; the autovectorizer handles them, and results are width-invariant.

void transpose(const double* src, double* dst, std::size_t rows,
               std::size_t cols) {
  constexpr std::size_t kBlock = 32;
  for (std::size_t rb = 0; rb < rows; rb += kBlock) {
    const std::size_t rend = std::min(rows, rb + kBlock);
    for (std::size_t cb = 0; cb < cols; cb += kBlock) {
      const std::size_t cend = std::min(cols, cb + kBlock);
      for (std::size_t r = rb; r < rend; ++r) {
        for (std::size_t c = cb; c < cend; ++c) {
          dst[c * rows + r] = src[r * cols + c];
        }
      }
    }
  }
}

void add_bias_rows(double* z, const double* bias, std::size_t rows,
                   std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* zrow = z + r * cols;
    for (std::size_t c = 0; c < cols; ++c) zrow[c] += bias[c];
  }
}

void fill_bias_rows(double* z, const double* bias, std::size_t rows,
                    std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    double* zrow = z + r * cols;
    for (std::size_t c = 0; c < cols; ++c) zrow[c] = bias[c];
  }
}

void relu(double* x, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    if (x[i] < 0.0) x[i] = 0.0;
  }
}

void affine(const double* x, double a, double b, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = a * x[i] + b;
}

void lstm_gates(const double* z, double* c, double* h, double* out,
                std::size_t lanes, std::size_t hidden) {
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const double* zr = z + lane * 4 * hidden;
    double* cr = c + lane * hidden;
    double* hr = h + lane * hidden;
    double* outr = out + lane * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      const double gi = 1.0 / (1.0 + std::exp(-zr[j]));
      const double gf = 1.0 / (1.0 + std::exp(-zr[hidden + j]));
      const double gg = std::tanh(zr[2 * hidden + j]);
      const double go = 1.0 / (1.0 + std::exp(-zr[3 * hidden + j]));
      cr[j] = gf * cr[j] + gi * gg;
      const double tanh_c = std::tanh(cr[j]);
      hr[j] = go * tanh_c;
      outr[j] = hr[j];
    }
  }
}

void fill_bias_rows_f32(float* z, const float* bias, std::size_t rows,
                        std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* zrow = z + r * cols;
    for (std::size_t c = 0; c < cols; ++c) zrow[c] = bias[c];
  }
}

void add_bias_rows_f32(float* z, const float* bias, std::size_t rows,
                       std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    float* zrow = z + r * cols;
    for (std::size_t c = 0; c < cols; ++c) zrow[c] += bias[c];
  }
}

void relu_f32(float* x, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    if (x[i] < 0.0f) x[i] = 0.0f;
  }
}

float fast_expf(float x) { return fast_expf_impl(x); }
float fast_tanhf(float x) { return fast_tanhf_impl(x); }

}  // namespace aps::ml::kernels
