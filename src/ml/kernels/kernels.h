// Portable SIMD kernel layer for the from-scratch ML stack: blocked/batched
// GEMM, row-major transpose/pack, fused bias/activation passes, and the
// fused LSTM gate update, in float64 (training + reference inference) and
// float32 (serving inference) flavors.
//
// Backends: AVX2 (x86-64, compiled only when the toolchain supports -mavx2
// and guarded by a runtime CPUID check), NEON (aarch64 baseline), and a
// scalar fallback that is always compiled. Dispatch is resolved once at
// startup — best available backend, overridable with APS_KERNELS=scalar|
// avx2|neon — and can be re-pointed at runtime (set_backend) so tests and
// benches A/B the backends inside one process.
//
// Bit-identity contract (float64): every backend performs the exact same
// IEEE operation sequence per output element as the legacy ml::Matrix
// loops — accumulation in ascending k, separate multiply and add (no FMA;
// the build pins -ffp-contract=off), and the legacy skip of zero left-hand
// multipliers. SIMD vectorizes across OUTPUT COLUMNS only, which reorders
// nothing, so float64 results are bit-identical across scalar/AVX2/NEON
// and to the pre-kernel code. The float32 kernels share the ordering (so
// they too are backend-invariant bitwise) but are only tolerance-pinned
// (<= 1e-4 on probabilities) against the float64 reference; they never
// skip zeros and use a polynomial expf/tanhf in the gate update.
#pragma once

#include <cstddef>
#include <vector>

namespace aps::ml::kernels {

enum class Backend { kScalar = 0, kAvx2 = 1, kNeon = 2 };

[[nodiscard]] const char* to_string(Backend backend);
/// Backends compiled into this binary AND runnable on this CPU (always
/// contains kScalar). What the equivalence tests iterate.
[[nodiscard]] std::vector<Backend> compiled_backends();
[[nodiscard]] Backend active_backend();
/// to_string(active_backend()) — what obs reports as `kernels_backend`.
[[nodiscard]] const char* backend_name();
/// Re-point dispatch (tests / bench A/B). Requests for a backend that is
/// not compiled or not runnable fall back to scalar; returns what was set.
Backend set_backend(Backend backend);

// ---- float64 kernels (bit-identity contract) -------------------------------

/// c(m x n) += a(m x k) * b(k x n), all row-major. Ascending-k
/// accumulation with the legacy a[i][k] == 0 skip: bit-identical to the
/// pre-kernel ml::matmul / vec_matmul_add loops on every backend.
void gemm_accum(const double* a, const double* b, double* c, std::size_t m,
                std::size_t k, std::size_t n);

/// c(m x n) += a^T * b where a is (rows x m) and b is (rows x n):
/// the fused-transpose product of the MLP weight gradient. Ascending-row
/// accumulation with the legacy zero skip (matches ml::matmul_tn).
void gemm_tn_accum(const double* a, const double* b, double* c,
                   std::size_t rows, std::size_t m, std::size_t n);

/// c(m x bn) = a(m x k) * b(bn x k)^T — row-by-row dot products, each
/// accumulated in ascending k exactly like ml::matmul_nt (no zero skip).
void gemm_nt(const double* a, const double* b, double* c, std::size_t m,
             std::size_t k, std::size_t bn);

/// dst(cols x rows) = src(rows x cols)^T, row-major pack.
void transpose(const double* src, double* dst, std::size_t rows,
               std::size_t cols);

/// z[r][c] += bias[c] for every row.
void add_bias_rows(double* z, const double* bias, std::size_t rows,
                   std::size_t cols);
/// z[r][c] = bias[c] for every row (batched bias broadcast).
void fill_bias_rows(double* z, const double* bias, std::size_t rows,
                    std::size_t cols);

/// In-place ReLU with the legacy `v < 0 ? 0 : v` semantics (-0.0 passes
/// through untouched, exactly like the pre-kernel loop).
void relu(double* x, std::size_t size);

/// out[i] = a * x[i] + b — the fused axpy used for batched robustness
/// margins in src/learn (r = mu - beta / beta - mu as a = +-1, b = -+beta;
/// IEEE-exact vs the scalar subtraction it replaces).
void affine(const double* x, double a, double b, double* out, std::size_t n);

/// Fused LSTM gate update over a lane-major batch: z is (lanes x 4*hidden)
/// pre-activations in gate order [i f g o]; c and h are (lanes x hidden)
/// cell/hidden state, updated in place; out (lanes x hidden) receives the
/// new hidden state (the layer output for this step). Transcendentals are
/// std::exp / std::tanh — scalar per element on every backend, so the pass
/// is bit-identical to the legacy per-lane gate loop.
void lstm_gates(const double* z, double* c, double* h, double* out,
                std::size_t lanes, std::size_t hidden);

// ---- float32 kernels (serving inference; tolerance-pinned) -----------------

/// c(m x n) += a(m x k) * b(k x n), ascending-k mul+add (no FMA, no zero
/// skip) — bitwise backend-invariant, tolerance-pinned against float64.
void gemm_accum_f32(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n);

void fill_bias_rows_f32(float* z, const float* bias, std::size_t rows,
                        std::size_t cols);
void add_bias_rows_f32(float* z, const float* bias, std::size_t rows,
                       std::size_t cols);
void relu_f32(float* x, std::size_t size);

/// float32 fused gate update. Uses the kernel layer's polynomial
/// expf/tanhf (fast_expf/fast_tanhf below) so the whole pass vectorizes;
/// identical arithmetic on every backend.
void lstm_gates_f32(const float* z, float* c, float* h, float* out,
                    std::size_t lanes, std::size_t hidden);

/// Polynomial exp/tanh used by the float32 gate kernels (Cephes-style
/// degree-5 polynomial on the reduced argument; relative error ~2e-7,
/// far inside the 1e-4 serving tolerance). Exposed for the accuracy pin
/// in tests/kernels_test.cpp.
[[nodiscard]] float fast_expf(float x);
[[nodiscard]] float fast_tanhf(float x);

}  // namespace aps::ml::kernels
