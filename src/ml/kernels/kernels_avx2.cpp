// AVX2 backend. This TU is the only one compiled with -mavx2 (set per-source
// in CMakeLists.txt) and its entry points are only reached after the runtime
// CPUID check in the dispatcher, so the rest of the binary stays runnable on
// baseline x86-64.
//
// Every float64 kernel vectorizes across OUTPUT COLUMNS only and keeps the
// scalar backend's per-element operation sequence: ascending-k accumulation,
// separate _mm256_mul_pd / _mm256_add_pd (never FMA), and the legacy zero
// skip on the left-hand multiplier. That makes the results bit-identical to
// the scalar backend — the j-tiling (4 ymm accumulators, 16 columns per
// tile) only changes how many elements advance together, not any element's
// arithmetic.
#if defined(APS_HAVE_AVX2)

#include <immintrin.h>

#include <vector>

#include "ml/kernels/kernels_detail.h"

namespace aps::ml::kernels::avx2 {

void gemm_accum(const double* a, const double* b, double* c, std::size_t m,
                std::size_t kd, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * kd;
    double* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256d acc0 = _mm256_loadu_pd(crow + j);
      __m256d acc1 = _mm256_loadu_pd(crow + j + 4);
      __m256d acc2 = _mm256_loadu_pd(crow + j + 8);
      __m256d acc3 = _mm256_loadu_pd(crow + j + 12);
      for (std::size_t k = 0; k < kd; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        const __m256d va = _mm256_set1_pd(aik);
        const double* brow = b + k * n + j;
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(brow)));
        acc1 =
            _mm256_add_pd(acc1, _mm256_mul_pd(va, _mm256_loadu_pd(brow + 4)));
        acc2 =
            _mm256_add_pd(acc2, _mm256_mul_pd(va, _mm256_loadu_pd(brow + 8)));
        acc3 =
            _mm256_add_pd(acc3, _mm256_mul_pd(va, _mm256_loadu_pd(brow + 12)));
      }
      _mm256_storeu_pd(crow + j, acc0);
      _mm256_storeu_pd(crow + j + 4, acc1);
      _mm256_storeu_pd(crow + j + 8, acc2);
      _mm256_storeu_pd(crow + j + 12, acc3);
    }
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_loadu_pd(crow + j);
      for (std::size_t k = 0; k < kd; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(_mm256_set1_pd(aik),
                               _mm256_loadu_pd(b + k * n + j)));
      }
      _mm256_storeu_pd(crow + j, acc);
    }
    for (; j < n; ++j) {
      double s = crow[j];
      for (std::size_t k = 0; k < kd; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        s += aik * b[k * n + j];
      }
      crow[j] = s;
    }
  }
}

void gemm_tn_accum(const double* a, const double* b, double* c,
                   std::size_t rows, std::size_t m, std::size_t n) {
  // Restructured to i-outer / j-tile / r-inner; element (i, j) still
  // receives its terms in ascending r with the a(r, i) == 0 skip, exactly
  // like the scalar backend's r-outer form.
  for (std::size_t i = 0; i < m; ++i) {
    const double* acol = a + i;
    double* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m256d acc0 = _mm256_loadu_pd(crow + j);
      __m256d acc1 = _mm256_loadu_pd(crow + j + 4);
      __m256d acc2 = _mm256_loadu_pd(crow + j + 8);
      __m256d acc3 = _mm256_loadu_pd(crow + j + 12);
      for (std::size_t r = 0; r < rows; ++r) {
        const double ari = acol[r * m];
        if (ari == 0.0) continue;
        const __m256d va = _mm256_set1_pd(ari);
        const double* brow = b + r * n + j;
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(brow)));
        acc1 =
            _mm256_add_pd(acc1, _mm256_mul_pd(va, _mm256_loadu_pd(brow + 4)));
        acc2 =
            _mm256_add_pd(acc2, _mm256_mul_pd(va, _mm256_loadu_pd(brow + 8)));
        acc3 =
            _mm256_add_pd(acc3, _mm256_mul_pd(va, _mm256_loadu_pd(brow + 12)));
      }
      _mm256_storeu_pd(crow + j, acc0);
      _mm256_storeu_pd(crow + j + 4, acc1);
      _mm256_storeu_pd(crow + j + 8, acc2);
      _mm256_storeu_pd(crow + j + 12, acc3);
    }
    for (; j + 4 <= n; j += 4) {
      __m256d acc = _mm256_loadu_pd(crow + j);
      for (std::size_t r = 0; r < rows; ++r) {
        const double ari = acol[r * m];
        if (ari == 0.0) continue;
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(_mm256_set1_pd(ari),
                               _mm256_loadu_pd(b + r * n + j)));
      }
      _mm256_storeu_pd(crow + j, acc);
    }
    for (; j < n; ++j) {
      double s = crow[j];
      for (std::size_t r = 0; r < rows; ++r) {
        const double ari = acol[r * m];
        if (ari == 0.0) continue;
        s += ari * b[r * n + j];
      }
      crow[j] = s;
    }
  }
}

void gemm_nt(const double* a, const double* b, double* c, std::size_t m,
             std::size_t kd, std::size_t bn) {
  // b is (bn x kd); pack its transpose once so the inner loop streams
  // rows. Each c element is still a fresh ascending-k accumulation
  // (initialized to zero, no skip), matching the scalar dot product's add
  // sequence bit for bit.
  thread_local std::vector<double> bt;
  bt.resize(kd * bn);
  transpose(b, bt.data(), bn, kd);
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * kd;
    double* crow = c + i * bn;
    std::size_t j = 0;
    for (; j + 16 <= bn; j += 16) {
      __m256d acc0 = _mm256_setzero_pd();
      __m256d acc1 = _mm256_setzero_pd();
      __m256d acc2 = _mm256_setzero_pd();
      __m256d acc3 = _mm256_setzero_pd();
      for (std::size_t k = 0; k < kd; ++k) {
        const __m256d va = _mm256_set1_pd(arow[k]);
        const double* btrow = bt.data() + k * bn + j;
        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(va, _mm256_loadu_pd(btrow)));
        acc1 = _mm256_add_pd(acc1,
                             _mm256_mul_pd(va, _mm256_loadu_pd(btrow + 4)));
        acc2 = _mm256_add_pd(acc2,
                             _mm256_mul_pd(va, _mm256_loadu_pd(btrow + 8)));
        acc3 = _mm256_add_pd(acc3,
                             _mm256_mul_pd(va, _mm256_loadu_pd(btrow + 12)));
      }
      _mm256_storeu_pd(crow + j, acc0);
      _mm256_storeu_pd(crow + j + 4, acc1);
      _mm256_storeu_pd(crow + j + 8, acc2);
      _mm256_storeu_pd(crow + j + 12, acc3);
    }
    for (; j + 4 <= bn; j += 4) {
      __m256d acc = _mm256_setzero_pd();
      for (std::size_t k = 0; k < kd; ++k) {
        acc = _mm256_add_pd(
            acc, _mm256_mul_pd(_mm256_set1_pd(arow[k]),
                               _mm256_loadu_pd(bt.data() + k * bn + j)));
      }
      _mm256_storeu_pd(crow + j, acc);
    }
    for (; j < bn; ++j) {
      const double* brow = b + j * kd;
      double s = 0.0;
      for (std::size_t k = 0; k < kd; ++k) s += arow[k] * brow[k];
      crow[j] = s;
    }
  }
}

void gemm_accum_f32(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t kd, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * kd;
    float* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 32 <= n; j += 32) {
      __m256 acc0 = _mm256_loadu_ps(crow + j);
      __m256 acc1 = _mm256_loadu_ps(crow + j + 8);
      __m256 acc2 = _mm256_loadu_ps(crow + j + 16);
      __m256 acc3 = _mm256_loadu_ps(crow + j + 24);
      for (std::size_t k = 0; k < kd; ++k) {
        const __m256 va = _mm256_set1_ps(arow[k]);
        const float* brow = b + k * n + j;
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, _mm256_loadu_ps(brow)));
        acc1 =
            _mm256_add_ps(acc1, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 8)));
        acc2 =
            _mm256_add_ps(acc2, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 16)));
        acc3 =
            _mm256_add_ps(acc3, _mm256_mul_ps(va, _mm256_loadu_ps(brow + 24)));
      }
      _mm256_storeu_ps(crow + j, acc0);
      _mm256_storeu_ps(crow + j + 8, acc1);
      _mm256_storeu_ps(crow + j + 16, acc2);
      _mm256_storeu_ps(crow + j + 24, acc3);
    }
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      for (std::size_t k = 0; k < kd; ++k) {
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_set1_ps(arow[k]),
                               _mm256_loadu_ps(b + k * n + j)));
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    for (; j < n; ++j) {
      float s = crow[j];
      for (std::size_t k = 0; k < kd; ++k) s += arow[k] * b[k * n + j];
      crow[j] = s;
    }
  }
}

void lstm_gates_f32(const float* z, float* c, float* h, float* out,
                    std::size_t lanes, std::size_t hidden) {
  // Same portable body as the scalar backend, compiled in this TU so the
  // autovectorizer emits the 8-wide AVX2 form of the identical arithmetic.
  lstm_gates_f32_portable(z, c, h, out, lanes, hidden);
}

}  // namespace aps::ml::kernels::avx2

#endif  // APS_HAVE_AVX2
