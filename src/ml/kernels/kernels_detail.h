// Internal header for the kernel backend TUs (kernels.cpp, kernels_avx2.cpp,
// kernels_neon.cpp). Not part of the public API.
//
// Two things live here:
//  1. extern declarations of the per-backend entry points the dispatcher in
//     kernels.cpp routes to;
//  2. the shared portable bodies (polynomial expf/tanhf and the float32
//     fused gate pass) in an ANONYMOUS namespace, so every backend TU
//     compiles its own copy with its own codegen flags (the AVX2 TU gets
//     8-wide float vectorization of the very same arithmetic). The math is
//     element-independent mul/add with no FP contraction, so the results
//     are bitwise identical regardless of vector width.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>

#include "ml/kernels/kernels.h"

namespace aps::ml::kernels {

#if defined(APS_HAVE_AVX2)
namespace avx2 {
void gemm_accum(const double* a, const double* b, double* c, std::size_t m,
                std::size_t k, std::size_t n);
void gemm_tn_accum(const double* a, const double* b, double* c,
                   std::size_t rows, std::size_t m, std::size_t n);
void gemm_nt(const double* a, const double* b, double* c, std::size_t m,
             std::size_t k, std::size_t bn);
void gemm_accum_f32(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n);
void lstm_gates_f32(const float* z, float* c, float* h, float* out,
                    std::size_t lanes, std::size_t hidden);
}  // namespace avx2
#endif

#if defined(__aarch64__)
namespace neon {
void gemm_accum(const double* a, const double* b, double* c, std::size_t m,
                std::size_t k, std::size_t n);
void gemm_tn_accum(const double* a, const double* b, double* c,
                   std::size_t rows, std::size_t m, std::size_t n);
void gemm_nt(const double* a, const double* b, double* c, std::size_t m,
             std::size_t k, std::size_t bn);
void gemm_accum_f32(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n);
void lstm_gates_f32(const float* z, float* c, float* h, float* out,
                    std::size_t lanes, std::size_t hidden);
}  // namespace neon
#endif

namespace {

/// Cephes-style expf: range-reduce x = n*ln2 + r, evaluate a degree-5
/// polynomial on r, scale by 2^n through the exponent bits. Relative error
/// ~2e-7 over the clamped domain. Pure per-element mul/add (the build pins
/// -ffp-contract=off), so scalar and vector compilations agree bitwise.
inline float fast_expf_impl(float x) {
  constexpr float kExpHi = 88.3762626647949f;
  constexpr float kExpLo = -87.3365478515625f;
  constexpr float kLog2e = 1.44269504088896341f;
  constexpr float kC1 = 0.693359375f;           // ln2 split, high part
  constexpr float kC2 = -2.12194440e-4f;        // ln2 split, low part
  // Clamp via ternaries, not std::min/std::max: the reference-returning
  // std versions compile to compare+branch here, which blocks
  // if-conversion (and with it vectorization) of the calling loop.
  x = x > kExpHi ? kExpHi : x;
  x = x < kExpLo ? kExpLo : x;
  // Nearest integer via the magic-number trick (adding 1.5*2^23 snaps the
  // mantissa to integer under round-to-nearest): std::floor would be a
  // libm CALL on x86, which blocks inlining and keeps the whole gate pass
  // scalar. Exact over the clamped domain; branch-free, so the loop
  // vectorizes. (Ties round to even instead of up — that only swaps which
  // (n, r) pair represents x, never the accuracy.)
  constexpr float kMagic = 12582912.0f;  // 1.5 * 2^23
  const float fx = (x * kLog2e + kMagic) - kMagic;
  float r = x - fx * kC1;
  r = r - fx * kC2;
  const float z = r * r;
  float p = 1.9875691500e-4f;
  p = p * r + 1.3981999507e-3f;
  p = p * r + 8.3334519073e-3f;
  p = p * r + 4.1665795894e-2f;
  p = p * r + 1.6666665459e-1f;
  p = p * r + 5.0000001201e-1f;
  p = p * z + r + 1.0f;
  const auto n = static_cast<std::int32_t>(fx);
  const std::int32_t bits = (n + 127) << 23;
  float pow2n;
  std::memcpy(&pow2n, &bits, sizeof(pow2n));
  return p * pow2n;
}

/// tanh via the exact identity tanh(x) = 1 - 2/(e^{2x} + 1); the only
/// error source is fast_expf_impl.
inline float fast_tanhf_impl(float x) {
  return 1.0f - 2.0f / (fast_expf_impl(2.0f * x) + 1.0f);
}

inline float fast_sigmoidf_impl(float x) {
  return 1.0f / (1.0f + fast_expf_impl(-x));
}

/// float32 fused LSTM gate pass, same gate order and update formulas as the
/// float64 reference (lstm_gates in kernels.cpp / Lstm::forward). Plain
/// loops over element-independent arithmetic: each backend TU's compiler
/// vectorizes this at its own width with identical results.
inline void lstm_gates_f32_portable(const float* __restrict z,
                                    float* __restrict c, float* __restrict h,
                                    float* __restrict out, std::size_t lanes,
                                    std::size_t hidden) {
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const float* __restrict zr = z + lane * 4 * hidden;
    float* __restrict cr = c + lane * hidden;
    float* __restrict hr = h + lane * hidden;
    float* __restrict outr = out + lane * hidden;
    for (std::size_t j = 0; j < hidden; ++j) {
      const float gi = fast_sigmoidf_impl(zr[j]);
      const float gf = fast_sigmoidf_impl(zr[hidden + j]);
      const float gg = fast_tanhf_impl(zr[2 * hidden + j]);
      const float go = fast_sigmoidf_impl(zr[3 * hidden + j]);
      const float cv = gf * cr[j] + gi * gg;
      const float hv = go * fast_tanhf_impl(cv);
      cr[j] = cv;
      hr[j] = hv;
      outr[j] = hv;
    }
  }
}

}  // namespace

}  // namespace aps::ml::kernels
