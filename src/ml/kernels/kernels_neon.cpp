// NEON backend (aarch64 baseline — no runtime probe needed). Same contract
// as the AVX2 TU: vectorize across output columns only, separate vmulq /
// vaddq (never vmlaq/vfmaq, which fuse), keep the legacy zero skip — so
// float64 results are bit-identical to the scalar backend.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <vector>

#include "ml/kernels/kernels_detail.h"

namespace aps::ml::kernels::neon {

void gemm_accum(const double* a, const double* b, double* c, std::size_t m,
                std::size_t kd, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * kd;
    double* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      float64x2_t acc0 = vld1q_f64(crow + j);
      float64x2_t acc1 = vld1q_f64(crow + j + 2);
      float64x2_t acc2 = vld1q_f64(crow + j + 4);
      float64x2_t acc3 = vld1q_f64(crow + j + 6);
      for (std::size_t k = 0; k < kd; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        const float64x2_t va = vdupq_n_f64(aik);
        const double* brow = b + k * n + j;
        acc0 = vaddq_f64(acc0, vmulq_f64(va, vld1q_f64(brow)));
        acc1 = vaddq_f64(acc1, vmulq_f64(va, vld1q_f64(brow + 2)));
        acc2 = vaddq_f64(acc2, vmulq_f64(va, vld1q_f64(brow + 4)));
        acc3 = vaddq_f64(acc3, vmulq_f64(va, vld1q_f64(brow + 6)));
      }
      vst1q_f64(crow + j, acc0);
      vst1q_f64(crow + j + 2, acc1);
      vst1q_f64(crow + j + 4, acc2);
      vst1q_f64(crow + j + 6, acc3);
    }
    for (; j + 2 <= n; j += 2) {
      float64x2_t acc = vld1q_f64(crow + j);
      for (std::size_t k = 0; k < kd; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        acc = vaddq_f64(acc,
                        vmulq_f64(vdupq_n_f64(aik), vld1q_f64(b + k * n + j)));
      }
      vst1q_f64(crow + j, acc);
    }
    for (; j < n; ++j) {
      double s = crow[j];
      for (std::size_t k = 0; k < kd; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        s += aik * b[k * n + j];
      }
      crow[j] = s;
    }
  }
}

void gemm_tn_accum(const double* a, const double* b, double* c,
                   std::size_t rows, std::size_t m, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* acol = a + i;
    double* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      float64x2_t acc0 = vld1q_f64(crow + j);
      float64x2_t acc1 = vld1q_f64(crow + j + 2);
      float64x2_t acc2 = vld1q_f64(crow + j + 4);
      float64x2_t acc3 = vld1q_f64(crow + j + 6);
      for (std::size_t r = 0; r < rows; ++r) {
        const double ari = acol[r * m];
        if (ari == 0.0) continue;
        const float64x2_t va = vdupq_n_f64(ari);
        const double* brow = b + r * n + j;
        acc0 = vaddq_f64(acc0, vmulq_f64(va, vld1q_f64(brow)));
        acc1 = vaddq_f64(acc1, vmulq_f64(va, vld1q_f64(brow + 2)));
        acc2 = vaddq_f64(acc2, vmulq_f64(va, vld1q_f64(brow + 4)));
        acc3 = vaddq_f64(acc3, vmulq_f64(va, vld1q_f64(brow + 6)));
      }
      vst1q_f64(crow + j, acc0);
      vst1q_f64(crow + j + 2, acc1);
      vst1q_f64(crow + j + 4, acc2);
      vst1q_f64(crow + j + 6, acc3);
    }
    for (; j + 2 <= n; j += 2) {
      float64x2_t acc = vld1q_f64(crow + j);
      for (std::size_t r = 0; r < rows; ++r) {
        const double ari = acol[r * m];
        if (ari == 0.0) continue;
        acc = vaddq_f64(acc,
                        vmulq_f64(vdupq_n_f64(ari), vld1q_f64(b + r * n + j)));
      }
      vst1q_f64(crow + j, acc);
    }
    for (; j < n; ++j) {
      double s = crow[j];
      for (std::size_t r = 0; r < rows; ++r) {
        const double ari = acol[r * m];
        if (ari == 0.0) continue;
        s += ari * b[r * n + j];
      }
      crow[j] = s;
    }
  }
}

void gemm_nt(const double* a, const double* b, double* c, std::size_t m,
             std::size_t kd, std::size_t bn) {
  thread_local std::vector<double> bt;
  bt.resize(kd * bn);
  transpose(b, bt.data(), bn, kd);
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * kd;
    double* crow = c + i * bn;
    std::size_t j = 0;
    for (; j + 8 <= bn; j += 8) {
      float64x2_t acc0 = vdupq_n_f64(0.0);
      float64x2_t acc1 = vdupq_n_f64(0.0);
      float64x2_t acc2 = vdupq_n_f64(0.0);
      float64x2_t acc3 = vdupq_n_f64(0.0);
      for (std::size_t k = 0; k < kd; ++k) {
        const float64x2_t va = vdupq_n_f64(arow[k]);
        const double* btrow = bt.data() + k * bn + j;
        acc0 = vaddq_f64(acc0, vmulq_f64(va, vld1q_f64(btrow)));
        acc1 = vaddq_f64(acc1, vmulq_f64(va, vld1q_f64(btrow + 2)));
        acc2 = vaddq_f64(acc2, vmulq_f64(va, vld1q_f64(btrow + 4)));
        acc3 = vaddq_f64(acc3, vmulq_f64(va, vld1q_f64(btrow + 6)));
      }
      vst1q_f64(crow + j, acc0);
      vst1q_f64(crow + j + 2, acc1);
      vst1q_f64(crow + j + 4, acc2);
      vst1q_f64(crow + j + 6, acc3);
    }
    for (; j < bn; ++j) {
      const double* brow = b + j * kd;
      double s = 0.0;
      for (std::size_t k = 0; k < kd; ++k) s += arow[k] * brow[k];
      crow[j] = s;
    }
  }
}

void gemm_accum_f32(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t kd, std::size_t n) {
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = a + i * kd;
    float* crow = c + i * n;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      float32x4_t acc0 = vld1q_f32(crow + j);
      float32x4_t acc1 = vld1q_f32(crow + j + 4);
      float32x4_t acc2 = vld1q_f32(crow + j + 8);
      float32x4_t acc3 = vld1q_f32(crow + j + 12);
      for (std::size_t k = 0; k < kd; ++k) {
        const float32x4_t va = vdupq_n_f32(arow[k]);
        const float* brow = b + k * n + j;
        acc0 = vaddq_f32(acc0, vmulq_f32(va, vld1q_f32(brow)));
        acc1 = vaddq_f32(acc1, vmulq_f32(va, vld1q_f32(brow + 4)));
        acc2 = vaddq_f32(acc2, vmulq_f32(va, vld1q_f32(brow + 8)));
        acc3 = vaddq_f32(acc3, vmulq_f32(va, vld1q_f32(brow + 12)));
      }
      vst1q_f32(crow + j, acc0);
      vst1q_f32(crow + j + 4, acc1);
      vst1q_f32(crow + j + 8, acc2);
      vst1q_f32(crow + j + 12, acc3);
    }
    for (; j + 4 <= n; j += 4) {
      float32x4_t acc = vld1q_f32(crow + j);
      for (std::size_t k = 0; k < kd; ++k) {
        acc = vaddq_f32(
            acc, vmulq_f32(vdupq_n_f32(arow[k]), vld1q_f32(b + k * n + j)));
      }
      vst1q_f32(crow + j, acc);
    }
    for (; j < n; ++j) {
      float s = crow[j];
      for (std::size_t k = 0; k < kd; ++k) s += arow[k] * b[k * n + j];
      crow[j] = s;
    }
  }
}

void lstm_gates_f32(const float* z, float* c, float* h, float* out,
                    std::size_t lanes, std::size_t hidden) {
  lstm_gates_f32_portable(z, c, h, out, lanes, hidden);
}

}  // namespace aps::ml::kernels::neon

#endif  // __aarch64__
