#include "ml/lstm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/kernels/kernels.h"

namespace aps::ml {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double gate_tanh(double x) { return std::tanh(x); }

std::vector<double> softmax(std::vector<double> logits) {
  const double max_logit =
      *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (auto& v : logits) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  for (auto& v : logits) v /= sum;
  return logits;
}

}  // namespace

Lstm::Lstm(LstmConfig config) : config_(std::move(config)) {}

std::size_t Lstm::parameter_count() const {
  std::size_t total = head_w.size() + head_b.size();
  for (const auto& layer : layers_) {
    total += layer.w.size() + layer.u.size() + layer.b.size();
  }
  return total;
}

void Lstm::init_layers(std::size_t input_features) {
  layers_.clear();
  std::size_t in = input_features;
  std::size_t tag = 0;
  for (const std::size_t h : config_.hidden_units) {
    Layer layer;
    layer.hidden = h;
    layer.w = Matrix::xavier(in, 4 * h, derive_seed(config_.seed, tag++));
    layer.u = Matrix::xavier(h, 4 * h, derive_seed(config_.seed, tag++));
    layer.b = Matrix(1, 4 * h);
    // Forget-gate bias init to 1 (standard stabilization).
    for (std::size_t j = h; j < 2 * h; ++j) layer.b.at(0, j) = 1.0;
    layer.w_adam = AdamState(in, 4 * h);
    layer.u_adam = AdamState(h, 4 * h);
    layer.b_adam = AdamState(1, 4 * h);
    layers_.push_back(std::move(layer));
    in = h;
  }
  const auto classes = static_cast<std::size_t>(config_.classes);
  head_w = Matrix::xavier(in, classes, derive_seed(config_.seed, tag++));
  head_b = Matrix(1, classes);
  head_w_adam_ = AdamState(in, classes);
  head_b_adam_ = AdamState(1, classes);
}

Matrix Lstm::standardize_window(const Matrix& window) const {
  if (!config_.standardize || !standardizer_.fitted()) return window;
  Matrix out = window;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    std::span<double> row(out.raw().data() + r * out.cols(), out.cols());
    standardizer_.transform_row(row);
  }
  return out;
}

// The forward/backward cores work over flat, step-major scratch buffers
// (one allocation per field, reused across steps) instead of
// vector-of-vector caches: for 6-step windows the arithmetic is identical
// but the hot loops stop churning the allocator, which is worth ~2x on
// both training and streaming inference.

std::vector<double> Lstm::forward(const Matrix& window,
                                  std::vector<LayerCache>* cache) const {
  const std::size_t steps = window.rows();

  if (cache != nullptr) cache->assign(layers_.size(), LayerCache{});

  // current: layer input, flat step-major [t * width + j].
  std::size_t width = window.cols();
  std::vector<double> current(window.raw().begin(), window.raw().end());
  std::vector<double> next;
  std::vector<double> h, c, z;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& layer = layers_[l];
    const std::size_t h_size = layer.hidden;
    h.assign(h_size, 0.0);
    c.assign(h_size, 0.0);
    z.resize(4 * h_size);
    next.assign(steps * h_size, 0.0);

    LayerCache* lc = cache != nullptr ? &(*cache)[l] : nullptr;
    if (lc != nullptr) {
      lc->width = width;
      lc->hidden = h_size;
      lc->inputs = current;
      lc->i.resize(steps * h_size);
      lc->f.resize(steps * h_size);
      lc->g.resize(steps * h_size);
      lc->o.resize(steps * h_size);
      lc->c.resize(steps * h_size);
      lc->h.resize(steps * h_size);
      lc->tanh_c.resize(steps * h_size);
    }

    for (std::size_t t = 0; t < steps; ++t) {
      for (std::size_t j = 0; j < 4 * h_size; ++j) z[j] = layer.b.at(0, j);
      const std::span<const double> x_t(current.data() + t * width, width);
      vec_matmul_add(x_t, layer.w, z);
      vec_matmul_add(std::span<const double>(h), layer.u, z);

      double* out_t = next.data() + t * h_size;
      for (std::size_t j = 0; j < h_size; ++j) {
        const double gi = sigmoid(z[j]);
        const double gf = sigmoid(z[h_size + j]);
        const double gg = gate_tanh(z[2 * h_size + j]);
        const double go = sigmoid(z[3 * h_size + j]);
        c[j] = gf * c[j] + gi * gg;
        const double tanh_c = gate_tanh(c[j]);
        h[j] = go * tanh_c;
        out_t[j] = h[j];
        if (lc != nullptr) {
          const std::size_t at = t * h_size + j;
          lc->i[at] = gi;
          lc->f[at] = gf;
          lc->g[at] = gg;
          lc->o[at] = go;
          lc->c[at] = c[j];
          lc->h[at] = h[j];
          lc->tanh_c[at] = tanh_c;
        }
      }
    }
    width = h_size;
    current.swap(next);
  }

  // Dense head on the final hidden state.
  const std::span<const double> last(current.data() + (steps - 1) * width,
                                     width);
  std::vector<double> logits(static_cast<std::size_t>(config_.classes));
  for (std::size_t cidx = 0; cidx < logits.size(); ++cidx) {
    logits[cidx] = head_b.at(0, cidx);
  }
  vec_matmul_add(last, head_w, logits);
  return softmax(std::move(logits));
}

double Lstm::backward(const Matrix& window, int label, double weight,
                      std::vector<Gradients>& layer_grads,
                      Matrix& head_w_grad, Matrix& head_b_grad) const {
  std::vector<LayerCache> cache;
  const std::vector<double> probs = forward(window, &cache);
  const std::size_t steps = window.rows();

  const auto lbl = static_cast<std::size_t>(label);
  const double loss =
      -weight * std::log(std::max(probs[lbl], 1e-12));

  // dLoss/dlogits.
  std::vector<double> dlogits(probs.size());
  for (std::size_t cidx = 0; cidx < probs.size(); ++cidx) {
    dlogits[cidx] = weight * (probs[cidx] - (cidx == lbl ? 1.0 : 0.0));
  }

  const double* last_h =
      cache.back().h.data() + (steps - 1) * cache.back().hidden;
  for (std::size_t j = 0; j < head_w.rows(); ++j) {
    for (std::size_t cidx = 0; cidx < head_w.cols(); ++cidx) {
      head_w_grad.at(j, cidx) += last_h[j] * dlogits[cidx];
    }
  }
  for (std::size_t cidx = 0; cidx < head_b.cols(); ++cidx) {
    head_b_grad.at(0, cidx) += dlogits[cidx];
  }

  // Gradient of the loss wrt the top layer's hidden output at each step
  // (flat step-major): only the last step receives signal from the head.
  std::vector<double> dh_out(steps * layers_.back().hidden, 0.0);
  for (std::size_t j = 0; j < layers_.back().hidden; ++j) {
    double s = 0.0;
    for (std::size_t cidx = 0; cidx < head_w.cols(); ++cidx) {
      s += head_w.at(j, cidx) * dlogits[cidx];
    }
    dh_out[(steps - 1) * layers_.back().hidden + j] = s;
  }

  // BPTT layer by layer, top to bottom.
  std::vector<double> dx, dh, dz, dc, dh_next, dc_next;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const auto& layer = layers_[l];
    const auto& lc = cache[l];
    const std::size_t h_size = layer.hidden;
    const std::size_t in_size = layer.w.rows();
    auto& grads = layer_grads[l];

    dx.assign(steps * in_size, 0.0);
    dh.resize(h_size);
    dz.resize(4 * h_size);
    dc.resize(h_size);
    dh_next.assign(h_size, 0.0);
    dc_next.assign(h_size, 0.0);

    for (std::size_t t = steps; t-- > 0;) {
      const std::size_t base = t * h_size;
      for (std::size_t j = 0; j < h_size; ++j) {
        dh[j] = dh_out[base + j] + dh_next[j];
      }
      for (std::size_t j = 0; j < h_size; ++j) {
        const double tanh_c = lc.tanh_c[base + j];
        const double go = lc.o[base + j];
        dc[j] = dh[j] * go * (1.0 - tanh_c * tanh_c) + dc_next[j];
        const double gi = lc.i[base + j];
        const double gf = lc.f[base + j];
        const double gg = lc.g[base + j];
        const double c_prev = t > 0 ? lc.c[base - h_size + j] : 0.0;
        // Gate pre-activation gradients.
        dz[j] = dc[j] * gg * gi * (1.0 - gi);                    // input gate
        dz[h_size + j] = dc[j] * c_prev * gf * (1.0 - gf);       // forget
        dz[2 * h_size + j] = dc[j] * gi * (1.0 - gg * gg);       // candidate
        dz[3 * h_size + j] = dh[j] * tanh_c * go * (1.0 - go);   // output
        dc_next[j] = dc[j] * gf;
      }
      // Parameter gradients.
      const double* x_t = lc.inputs.data() + t * in_size;
      for (std::size_t r = 0; r < in_size; ++r) {
        const double xr = x_t[r];
        if (xr == 0.0) continue;
        double* grad_row = grads.w.raw().data() + r * 4 * h_size;
        for (std::size_t jj = 0; jj < 4 * h_size; ++jj) {
          grad_row[jj] += xr * dz[jj];
        }
      }
      if (t > 0) {
        const double* h_prev = lc.h.data() + base - h_size;
        for (std::size_t r = 0; r < h_size; ++r) {
          const double hr = h_prev[r];
          if (hr == 0.0) continue;
          double* grad_row = grads.u.raw().data() + r * 4 * h_size;
          for (std::size_t jj = 0; jj < 4 * h_size; ++jj) {
            grad_row[jj] += hr * dz[jj];
          }
        }
      }
      for (std::size_t jj = 0; jj < 4 * h_size; ++jj) {
        grads.b.raw()[jj] += dz[jj];
      }
      // Propagate to previous step's hidden and this step's input.
      for (std::size_t r = 0; r < h_size; ++r) {
        double s = 0.0;
        const double* u_row = layer.u.data() + r * 4 * h_size;
        for (std::size_t jj = 0; jj < 4 * h_size; ++jj) {
          s += u_row[jj] * dz[jj];
        }
        dh_next[r] = s;
      }
      double* dx_t = dx.data() + t * in_size;
      for (std::size_t r = 0; r < in_size; ++r) {
        double s = 0.0;
        const double* w_row = layer.w.data() + r * 4 * h_size;
        for (std::size_t jj = 0; jj < 4 * h_size; ++jj) {
          s += w_row[jj] * dz[jj];
        }
        dx_t[r] = s;
      }
    }
    dh_out.swap(dx);  // becomes the output-gradient of the layer below
  }
  return loss;
}

namespace {

/// Samples per gradient/loss chunk. Fixed (never derived from the thread
/// count) so the chunk partition and reduction order are identical no
/// matter how many workers execute them.
constexpr std::size_t kLstmChunkSamples = 8;

}  // namespace

double Lstm::evaluate_loss(const SequenceDataset& data,
                           std::span<const std::size_t> indices,
                           std::span<const double> cw,
                           aps::ThreadPool* pool) const {
  if (indices.empty()) return 0.0;
  const std::size_t chunks =
      (indices.size() + kLstmChunkSamples - 1) / kLstmChunkSamples;
  std::vector<double> loss_sum(chunks, 0.0);
  std::vector<double> weight_sum(chunks, 0.0);
  const auto run_chunk = [&](std::size_t chunk) {
    const std::size_t begin = chunk * kLstmChunkSamples;
    const std::size_t end =
        std::min(indices.size(), begin + kLstmChunkSamples);
    for (std::size_t pos = begin; pos < end; ++pos) {
      const std::size_t i = indices[pos];
      const Matrix window = standardize_window(data.sequences[i]);
      const auto probs = forward(window, nullptr);
      const auto label = static_cast<std::size_t>(data.labels[i]);
      const double w = cw.empty() ? 1.0 : cw[label];
      weight_sum[chunk] += w;
      loss_sum[chunk] -= w * std::log(std::max(probs[label], 1e-12));
    }
  };
  if (pool != nullptr && chunks > 1) {
    pool->parallel_for(chunks, run_chunk);
  } else {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
  }
  double loss = 0.0;
  double weights = 0.0;
  for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
    loss += loss_sum[chunk];
    weights += weight_sum[chunk];
  }
  return weights > 0.0 ? loss / weights : 0.0;
}

double Lstm::fit(const SequenceDataset& data, aps::ThreadPool* pool) {
  assert(data.size() > 0);
  config_.classes = data.classes;

  if (config_.standardize) {
    // Fit the standardizer over all rows of all windows.
    Matrix stacked(data.size() * data.steps(), data.features());
    std::size_t row = 0;
    for (const auto& seq : data.sequences) {
      for (std::size_t r = 0; r < seq.rows(); ++r, ++row) {
        for (std::size_t c = 0; c < seq.cols(); ++c) {
          stacked.at(row, c) = seq.at(r, c);
        }
      }
    }
    standardizer_.fit(stacked);
  }

  init_layers(data.features());

  // Class weights for imbalance.
  std::vector<double> cw;
  if (config_.use_class_weights) {
    Dataset flat;
    flat.classes = data.classes;
    flat.y = data.labels;
    flat.x = Matrix(data.size(), 1);
    cw = class_weights(flat);
  }

  aps::Rng rng = aps::Rng(config_.seed).split(0xB0B);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::shuffle(order.begin(), order.end(), rng.engine());
  const auto val_count = static_cast<std::size_t>(
      config_.validation_fraction * static_cast<double>(data.size()));
  const std::vector<std::size_t> val_idx(
      order.begin(), order.begin() + static_cast<long>(val_count));
  std::vector<std::size_t> train_idx(
      order.begin() + static_cast<long>(val_count), order.end());
  if (train_idx.empty()) {
    train_idx = order;
  }

  double best_val = std::numeric_limits<double>::infinity();
  std::vector<Layer> best_layers;
  Matrix best_head_w, best_head_b;
  int patience_left = config_.early_stopping_patience;
  long step = 0;
  epoch_losses_.clear();

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    std::shuffle(train_idx.begin(), train_idx.end(), rng.engine());
    for (std::size_t start = 0; start < train_idx.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(train_idx.size(), start + config_.batch_size);

      const auto make_grads = [&] {
        std::vector<Gradients> grads;
        grads.reserve(layers_.size());
        for (const auto& layer : layers_) {
          Gradients g;
          g.w = Matrix(layer.w.rows(), layer.w.cols());
          g.u = Matrix(layer.u.rows(), layer.u.cols());
          g.b = Matrix(1, layer.b.cols());
          grads.push_back(std::move(g));
        }
        return grads;
      };

      // Chunk-parallel BPTT: samples are independent, so each fixed-size
      // chunk accumulates its own gradients; reduction in chunk order
      // keeps the update thread-count invariant.
      const std::size_t batch_n = end - start;
      const std::size_t chunks =
          (batch_n + kLstmChunkSamples - 1) / kLstmChunkSamples;
      struct ChunkGrads {
        std::vector<Gradients> layers;
        Matrix head_w, head_b;
      };
      std::vector<ChunkGrads> partial(chunks);
      const auto run_chunk = [&](std::size_t chunk) {
        ChunkGrads& grads = partial[chunk];
        grads.layers = make_grads();
        grads.head_w = Matrix(head_w.rows(), head_w.cols());
        grads.head_b = Matrix(1, head_b.cols());
        const std::size_t chunk_begin = start + chunk * kLstmChunkSamples;
        const std::size_t chunk_end =
            std::min(end, chunk_begin + kLstmChunkSamples);
        for (std::size_t pos = chunk_begin; pos < chunk_end; ++pos) {
          const std::size_t i = train_idx[pos];
          const Matrix window = standardize_window(data.sequences[i]);
          const auto label = static_cast<std::size_t>(data.labels[i]);
          const double w = cw.empty() ? 1.0 : cw[label];
          backward(window, data.labels[i], w, grads.layers, grads.head_w,
                   grads.head_b);
        }
      };
      if (pool != nullptr && chunks > 1) {
        pool->parallel_for(chunks, run_chunk);
      } else {
        for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
          run_chunk(chunk);
        }
      }

      std::vector<Gradients> layer_grads = make_grads();
      Matrix head_w_grad(head_w.rows(), head_w.cols());
      Matrix head_b_grad(1, head_b.cols());
      for (const ChunkGrads& grads : partial) {
        for (std::size_t l = 0; l < layers_.size(); ++l) {
          for (std::size_t i = 0; i < layer_grads[l].w.raw().size(); ++i) {
            layer_grads[l].w.raw()[i] += grads.layers[l].w.raw()[i];
          }
          for (std::size_t i = 0; i < layer_grads[l].u.raw().size(); ++i) {
            layer_grads[l].u.raw()[i] += grads.layers[l].u.raw()[i];
          }
          for (std::size_t i = 0; i < layer_grads[l].b.raw().size(); ++i) {
            layer_grads[l].b.raw()[i] += grads.layers[l].b.raw()[i];
          }
        }
        for (std::size_t i = 0; i < head_w_grad.raw().size(); ++i) {
          head_w_grad.raw()[i] += grads.head_w.raw()[i];
        }
        for (std::size_t i = 0; i < head_b_grad.raw().size(); ++i) {
          head_b_grad.raw()[i] += grads.head_b.raw()[i];
        }
      }
      const double inv_batch = 1.0 / static_cast<double>(batch_n);
      for (auto& g : layer_grads) {
        for (auto& v : g.w.raw()) v *= inv_batch;
        for (auto& v : g.u.raw()) v *= inv_batch;
        for (auto& v : g.b.raw()) v *= inv_batch;
      }
      for (auto& v : head_w_grad.raw()) v *= inv_batch;
      for (auto& v : head_b_grad.raw()) v *= inv_batch;

      ++step;
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        layers_[l].w_adam.update(layers_[l].w, layer_grads[l].w,
                                 config_.adam, step);
        layers_[l].u_adam.update(layers_[l].u, layer_grads[l].u,
                                 config_.adam, step);
        layers_[l].b_adam.update(layers_[l].b, layer_grads[l].b,
                                 config_.adam, step);
      }
      head_w_adam_.update(head_w, head_w_grad, config_.adam, step);
      head_b_adam_.update(head_b, head_b_grad, config_.adam, step);
    }

    const double val_loss = val_idx.empty()
                                ? evaluate_loss(data, train_idx, cw, pool)
                                : evaluate_loss(data, val_idx, cw, pool);
    epoch_losses_.push_back(val_loss);
    if (val_loss < best_val - 1e-5) {
      best_val = val_loss;
      best_layers = layers_;
      best_head_w = head_w;
      best_head_b = head_b;
      patience_left = config_.early_stopping_patience;
    } else if (--patience_left <= 0) {
      break;
    }
  }
  if (!best_layers.empty()) {
    layers_ = std::move(best_layers);
    head_w = std::move(best_head_w);
    head_b = std::move(best_head_b);
  }
  f32_slot_.reset();  // weights changed; the float32 mirror is stale
  return best_val;
}

std::vector<double> Lstm::predict_proba(const Matrix& window) const {
  assert(trained());
  return forward(standardize_window(window), nullptr);
}

int Lstm::predict(const Matrix& window) const {
  const auto probs = predict_proba(window);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

void Lstm::standardize_row(std::span<double> row) const {
  if (!config_.standardize || !standardizer_.fitted()) return;
  standardizer_.transform_row(row);
}

std::vector<int> Lstm::predict_batch_standardized(std::span<const double> x,
                                                  std::size_t n,
                                                  std::size_t steps) const {
  std::vector<int> out;
  predict_batch_standardized(x, n, steps, out);
  return out;
}

void Lstm::predict_batch_standardized(std::span<const double> x,
                                      std::size_t n, std::size_t steps,
                                      std::vector<int>& out) const {
  assert(trained());
  out.assign(n, 0);
  if (n == 0) return;

  // Hidden/cell state for every lane advances together in SoA buffers.
  // For a fixed step t the lane-major buffer current[(t * n + lane) *
  // width ..] is an (n x width) row-major matrix, so each step is ONE
  // batched GEMM against the gate weights (streamed once per step instead
  // of once per lane) plus a fused gate pass. Row `lane` of the GEMM
  // performs exactly the per-lane vec_matmul_add sequence forward() runs,
  // and kernels::lstm_gates matches its gate loop, so the pass stays
  // bit-identical to predicting each window alone.
  std::size_t width = x.size() / (n * steps);
  std::vector<double> current(x.begin(), x.end());
  std::vector<double> next;
  std::vector<double> h, c, z;
  for (const auto& layer : layers_) {
    const std::size_t h_size = layer.hidden;
    h.assign(n * h_size, 0.0);
    c.assign(n * h_size, 0.0);
    next.assign(steps * n * h_size, 0.0);
    z.resize(n * 4 * h_size);
    for (std::size_t t = 0; t < steps; ++t) {
      kernels::fill_bias_rows(z.data(), layer.b.data(), n, 4 * h_size);
      kernels::gemm_accum(current.data() + t * n * width, layer.w.data(),
                          z.data(), n, width, 4 * h_size);
      kernels::gemm_accum(h.data(), layer.u.data(), z.data(), n, h_size,
                          4 * h_size);
      kernels::lstm_gates(z.data(), c.data(), h.data(),
                          next.data() + t * n * h_size, n, h_size);
    }
    width = h_size;
    current.swap(next);
  }

  // Dense head on each lane's final hidden state.
  const std::size_t classes = head_b.cols();
  std::vector<double> logits(classes);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t cidx = 0; cidx < classes; ++cidx) {
      logits[cidx] = head_b.at(0, cidx);
    }
    const std::span<const double> last(
        current.data() + ((steps - 1) * n + i) * width, width);
    vec_matmul_add(last, head_w, logits);
    // Same softmax + first-maximum argmax as predict() for bit-identity.
    const auto probs = softmax(logits);
    out[i] = static_cast<int>(
        std::max_element(probs.begin(), probs.end()) - probs.begin());
  }
}

std::shared_ptr<const Lstm::F32Weights> Lstm::f32_weights() const {
  return f32_slot_.get([this] {
    auto cache = std::make_shared<F32Weights>();
    cache->layers.reserve(layers_.size());
    for (const auto& layer : layers_) {
      F32Weights::Layer fl;
      fl.hidden = layer.hidden;
      fl.w.resize(layer.w.raw().size());
      for (std::size_t i = 0; i < fl.w.size(); ++i) {
        fl.w[i] = static_cast<float>(layer.w.raw()[i]);
      }
      fl.u.resize(layer.u.raw().size());
      for (std::size_t i = 0; i < fl.u.size(); ++i) {
        fl.u[i] = static_cast<float>(layer.u.raw()[i]);
      }
      fl.b.resize(layer.b.raw().size());
      for (std::size_t i = 0; i < fl.b.size(); ++i) {
        fl.b[i] = static_cast<float>(layer.b.raw()[i]);
      }
      cache->layers.push_back(std::move(fl));
    }
    cache->head_w.resize(head_w.raw().size());
    for (std::size_t i = 0; i < cache->head_w.size(); ++i) {
      cache->head_w[i] = static_cast<float>(head_w.raw()[i]);
    }
    cache->head_b.resize(head_b.raw().size());
    for (std::size_t i = 0; i < cache->head_b.size(); ++i) {
      cache->head_b[i] = static_cast<float>(head_b.raw()[i]);
    }
    return cache;
  });
}

void Lstm::warm_f32_cache() const { (void)f32_weights(); }

void Lstm::forward_batch_f32(std::span<const float> x, std::size_t n,
                             std::size_t steps,
                             std::vector<double>& probs) const {
  const auto wts = f32_weights();
  std::size_t width = x.size() / (n * steps);
  std::vector<float> current(x.begin(), x.end());
  std::vector<float> next;
  std::vector<float> h, c, z;
  for (const auto& layer : wts->layers) {
    const std::size_t h_size = layer.hidden;
    h.assign(n * h_size, 0.0f);
    c.assign(n * h_size, 0.0f);
    next.assign(steps * n * h_size, 0.0f);
    z.resize(n * 4 * h_size);
    for (std::size_t t = 0; t < steps; ++t) {
      kernels::fill_bias_rows_f32(z.data(), layer.b.data(), n, 4 * h_size);
      kernels::gemm_accum_f32(current.data() + t * n * width, layer.w.data(),
                              z.data(), n, width, 4 * h_size);
      kernels::gemm_accum_f32(h.data(), layer.u.data(), z.data(), n, h_size,
                              4 * h_size);
      kernels::lstm_gates_f32(z.data(), c.data(), h.data(),
                              next.data() + t * n * h_size, n, h_size);
    }
    width = h_size;
    current.swap(next);
  }

  // Dense head per lane; softmax in double over the float32 logits, same
  // shift-by-max form as the float64 path.
  const std::size_t classes = head_b.cols();
  probs.resize(n * classes);
  std::vector<double> logits(classes);
  for (std::size_t i = 0; i < n; ++i) {
    const float* last = current.data() + ((steps - 1) * n + i) * width;
    for (std::size_t cidx = 0; cidx < classes; ++cidx) {
      float s = wts->head_b[cidx];
      for (std::size_t r = 0; r < width; ++r) {
        s += last[r] * wts->head_w[r * classes + cidx];
      }
      logits[cidx] = static_cast<double>(s);
    }
    const auto lane_probs = softmax(logits);
    std::copy(lane_probs.begin(), lane_probs.end(),
              probs.begin() + static_cast<long>(i * classes));
  }
}

void Lstm::predict_batch_standardized_f32(std::span<const float> x,
                                          std::size_t n, std::size_t steps,
                                          std::vector<int>& out) const {
  assert(trained());
  out.assign(n, 0);
  if (n == 0) return;
  std::vector<double> probs;
  forward_batch_f32(x, n, steps, probs);
  const std::size_t classes = head_b.cols();
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = probs.data() + i * classes;
    std::size_t best = 0;
    for (std::size_t cidx = 1; cidx < classes; ++cidx) {
      if (row[cidx] > row[best]) best = cidx;
    }
    out[i] = static_cast<int>(best);
  }
}

std::vector<double> Lstm::predict_proba_f32(const Matrix& window) const {
  assert(trained());
  const Matrix std_window = standardize_window(window);
  std::vector<float> flat(std_window.raw().size());
  for (std::size_t i = 0; i < flat.size(); ++i) {
    flat[i] = static_cast<float>(std_window.raw()[i]);
  }
  std::vector<double> probs;
  forward_batch_f32(flat, 1, std_window.rows(), probs);
  return probs;
}

std::vector<int> Lstm::predict_batch(std::span<const Matrix> windows) const {
  assert(trained());
  const std::size_t n = windows.size();
  if (n == 0) return {};
  const std::size_t steps = windows.front().rows();
  const std::size_t width = windows.front().cols();

  // Standardized inputs in lane-major SoA layout:
  // flat[(t * n + lane) * width + j].
  std::vector<double> flat(steps * n * width);
  for (std::size_t i = 0; i < n; ++i) {
    assert(windows[i].rows() == steps && windows[i].cols() == width);
    const Matrix w = standardize_window(windows[i]);
    for (std::size_t t = 0; t < steps; ++t) {
      std::copy(w.raw().begin() + static_cast<long>(t * width),
                w.raw().begin() + static_cast<long>((t + 1) * width),
                flat.begin() + static_cast<long>((t * n + i) * width));
    }
  }
  return predict_batch_standardized(flat, n, steps);
}

}  // namespace aps::ml
