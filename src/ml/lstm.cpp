#include "ml/lstm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace aps::ml {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

std::vector<double> softmax(std::vector<double> logits) {
  const double max_logit =
      *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (auto& v : logits) {
    v = std::exp(v - max_logit);
    sum += v;
  }
  for (auto& v : logits) v /= sum;
  return logits;
}

}  // namespace

Lstm::Lstm(LstmConfig config) : config_(std::move(config)) {}

std::size_t Lstm::parameter_count() const {
  std::size_t total = head_w.size() + head_b.size();
  for (const auto& layer : layers_) {
    total += layer.w.size() + layer.u.size() + layer.b.size();
  }
  return total;
}

void Lstm::init_layers(std::size_t input_features) {
  layers_.clear();
  std::size_t in = input_features;
  std::size_t tag = 0;
  for (const std::size_t h : config_.hidden_units) {
    Layer layer;
    layer.hidden = h;
    layer.w = Matrix::xavier(in, 4 * h, derive_seed(config_.seed, tag++));
    layer.u = Matrix::xavier(h, 4 * h, derive_seed(config_.seed, tag++));
    layer.b = Matrix(1, 4 * h);
    // Forget-gate bias init to 1 (standard stabilization).
    for (std::size_t j = h; j < 2 * h; ++j) layer.b.at(0, j) = 1.0;
    layer.w_adam = AdamState(in, 4 * h);
    layer.u_adam = AdamState(h, 4 * h);
    layer.b_adam = AdamState(1, 4 * h);
    layers_.push_back(std::move(layer));
    in = h;
  }
  const auto classes = static_cast<std::size_t>(config_.classes);
  head_w = Matrix::xavier(in, classes, derive_seed(config_.seed, tag++));
  head_b = Matrix(1, classes);
  head_w_adam_ = AdamState(in, classes);
  head_b_adam_ = AdamState(1, classes);
}

Matrix Lstm::standardize_window(const Matrix& window) const {
  if (!config_.standardize || !standardizer_.fitted()) return window;
  Matrix out = window;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    std::span<double> row(out.raw().data() + r * out.cols(), out.cols());
    standardizer_.transform_row(row);
  }
  return out;
}

std::vector<double> Lstm::forward(const Matrix& window,
                                  std::vector<LayerCache>* cache) const {
  const std::size_t steps = window.rows();
  std::vector<double> layer_input;
  std::vector<std::vector<double>> inputs(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    inputs[t].assign(window.raw().begin() + static_cast<long>(t * window.cols()),
                     window.raw().begin() +
                         static_cast<long>((t + 1) * window.cols()));
  }

  if (cache != nullptr) cache->assign(layers_.size(), LayerCache{});

  std::vector<std::vector<double>> current = inputs;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& layer = layers_[l];
    const std::size_t h_size = layer.hidden;
    std::vector<double> h(h_size, 0.0);
    std::vector<double> c(h_size, 0.0);
    std::vector<std::vector<double>> outputs(steps);

    LayerCache* lc = cache != nullptr ? &(*cache)[l] : nullptr;
    if (lc != nullptr) {
      lc->inputs = current;
      lc->gates.resize(steps);
      lc->i.resize(steps);
      lc->f.resize(steps);
      lc->g.resize(steps);
      lc->o.resize(steps);
      lc->c.resize(steps);
      lc->h.resize(steps);
      lc->tanh_c.resize(steps);
    }

    for (std::size_t t = 0; t < steps; ++t) {
      std::vector<double> z(4 * h_size, 0.0);
      for (std::size_t j = 0; j < 4 * h_size; ++j) z[j] = layer.b.at(0, j);
      vec_matmul_add(current[t], layer.w, z);
      vec_matmul_add(h, layer.u, z);

      std::vector<double> gi(h_size), gf(h_size), gg(h_size), go(h_size),
          tanh_c(h_size);
      for (std::size_t j = 0; j < h_size; ++j) {
        gi[j] = sigmoid(z[j]);
        gf[j] = sigmoid(z[h_size + j]);
        gg[j] = std::tanh(z[2 * h_size + j]);
        go[j] = sigmoid(z[3 * h_size + j]);
        c[j] = gf[j] * c[j] + gi[j] * gg[j];
        tanh_c[j] = std::tanh(c[j]);
        h[j] = go[j] * tanh_c[j];
      }
      outputs[t] = h;
      if (lc != nullptr) {
        lc->gates[t] = std::move(z);
        lc->i[t] = std::move(gi);
        lc->f[t] = std::move(gf);
        lc->g[t] = std::move(gg);
        lc->o[t] = std::move(go);
        lc->c[t] = c;
        lc->h[t] = h;
        lc->tanh_c[t] = std::move(tanh_c);
      }
    }
    current = std::move(outputs);
  }

  // Dense head on the final hidden state.
  const std::vector<double>& last = current.back();
  std::vector<double> logits(static_cast<std::size_t>(config_.classes));
  for (std::size_t cidx = 0; cidx < logits.size(); ++cidx) {
    logits[cidx] = head_b.at(0, cidx);
  }
  vec_matmul_add(last, head_w, logits);
  return softmax(std::move(logits));
}

double Lstm::backward(const Matrix& window, int label, double weight,
                      std::vector<Gradients>& layer_grads,
                      Matrix& head_w_grad, Matrix& head_b_grad) {
  std::vector<LayerCache> cache;
  const std::vector<double> probs = forward(window, &cache);
  const std::size_t steps = window.rows();

  const auto lbl = static_cast<std::size_t>(label);
  const double loss =
      -weight * std::log(std::max(probs[lbl], 1e-12));

  // dLoss/dlogits.
  std::vector<double> dlogits(probs.size());
  for (std::size_t cidx = 0; cidx < probs.size(); ++cidx) {
    dlogits[cidx] = weight * (probs[cidx] - (cidx == lbl ? 1.0 : 0.0));
  }

  const std::vector<double>& last_h = cache.back().h[steps - 1];
  for (std::size_t j = 0; j < head_w.rows(); ++j) {
    for (std::size_t cidx = 0; cidx < head_w.cols(); ++cidx) {
      head_w_grad.at(j, cidx) += last_h[j] * dlogits[cidx];
    }
  }
  for (std::size_t cidx = 0; cidx < head_b.cols(); ++cidx) {
    head_b_grad.at(0, cidx) += dlogits[cidx];
  }

  // Gradient of the loss wrt the top layer's hidden output at each step:
  // only the last step receives signal from the head.
  std::vector<std::vector<double>> dh_top(
      steps, std::vector<double>(layers_.back().hidden, 0.0));
  for (std::size_t j = 0; j < layers_.back().hidden; ++j) {
    double s = 0.0;
    for (std::size_t cidx = 0; cidx < head_w.cols(); ++cidx) {
      s += head_w.at(j, cidx) * dlogits[cidx];
    }
    dh_top[steps - 1][j] = s;
  }

  // BPTT layer by layer, top to bottom.
  std::vector<std::vector<double>> dh_out = std::move(dh_top);
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const auto& layer = layers_[l];
    const auto& lc = cache[l];
    const std::size_t h_size = layer.hidden;
    auto& grads = layer_grads[l];

    std::vector<std::vector<double>> dx(
        steps, std::vector<double>(layer.w.rows(), 0.0));
    std::vector<double> dh_next(h_size, 0.0);
    std::vector<double> dc_next(h_size, 0.0);

    for (std::size_t t = steps; t-- > 0;) {
      std::vector<double> dh(h_size);
      for (std::size_t j = 0; j < h_size; ++j) {
        dh[j] = dh_out[t][j] + dh_next[j];
      }
      std::vector<double> dz(4 * h_size);
      std::vector<double> dc(h_size);
      for (std::size_t j = 0; j < h_size; ++j) {
        const double tanh_c = lc.tanh_c[t][j];
        const double go = lc.o[t][j];
        dc[j] = dh[j] * go * (1.0 - tanh_c * tanh_c) + dc_next[j];
        const double gi = lc.i[t][j];
        const double gf = lc.f[t][j];
        const double gg = lc.g[t][j];
        const double c_prev = t > 0 ? lc.c[t - 1][j] : 0.0;
        // Gate pre-activation gradients.
        dz[j] = dc[j] * gg * gi * (1.0 - gi);                    // input gate
        dz[h_size + j] = dc[j] * c_prev * gf * (1.0 - gf);       // forget
        dz[2 * h_size + j] = dc[j] * gi * (1.0 - gg * gg);       // candidate
        dz[3 * h_size + j] = dh[j] * tanh_c * go * (1.0 - go);   // output
        dc_next[j] = dc[j] * gf;
      }
      // Parameter gradients.
      const std::vector<double>& x_t = lc.inputs[t];
      for (std::size_t r = 0; r < layer.w.rows(); ++r) {
        const double xr = x_t[r];
        if (xr == 0.0) continue;
        for (std::size_t jj = 0; jj < 4 * h_size; ++jj) {
          grads.w.at(r, jj) += xr * dz[jj];
        }
      }
      if (t > 0) {
        const std::vector<double>& h_prev = lc.h[t - 1];
        for (std::size_t r = 0; r < h_size; ++r) {
          const double hr = h_prev[r];
          if (hr == 0.0) continue;
          for (std::size_t jj = 0; jj < 4 * h_size; ++jj) {
            grads.u.at(r, jj) += hr * dz[jj];
          }
        }
      }
      for (std::size_t jj = 0; jj < 4 * h_size; ++jj) {
        grads.b.at(0, jj) += dz[jj];
      }
      // Propagate to previous step's hidden and this step's input.
      for (std::size_t r = 0; r < h_size; ++r) {
        double s = 0.0;
        for (std::size_t jj = 0; jj < 4 * h_size; ++jj) {
          s += layer.u.at(r, jj) * dz[jj];
        }
        dh_next[r] = s;
      }
      for (std::size_t r = 0; r < layer.w.rows(); ++r) {
        double s = 0.0;
        for (std::size_t jj = 0; jj < 4 * h_size; ++jj) {
          s += layer.w.at(r, jj) * dz[jj];
        }
        dx[t][r] = s;
      }
    }
    dh_out = std::move(dx);  // becomes the output-gradient of the layer below
  }
  return loss;
}

double Lstm::evaluate_loss(const SequenceDataset& data,
                           std::span<const std::size_t> indices,
                           std::span<const double> cw) const {
  if (indices.empty()) return 0.0;
  double loss = 0.0;
  double weight_sum = 0.0;
  for (const std::size_t i : indices) {
    const Matrix window = standardize_window(data.sequences[i]);
    const auto probs = forward(window, nullptr);
    const auto label = static_cast<std::size_t>(data.labels[i]);
    const double w = cw.empty() ? 1.0 : cw[label];
    weight_sum += w;
    loss -= w * std::log(std::max(probs[label], 1e-12));
  }
  return weight_sum > 0.0 ? loss / weight_sum : 0.0;
}

double Lstm::fit(const SequenceDataset& data) {
  assert(data.size() > 0);
  config_.classes = data.classes;

  if (config_.standardize) {
    // Fit the standardizer over all rows of all windows.
    Matrix stacked(data.size() * data.steps(), data.features());
    std::size_t row = 0;
    for (const auto& seq : data.sequences) {
      for (std::size_t r = 0; r < seq.rows(); ++r, ++row) {
        for (std::size_t c = 0; c < seq.cols(); ++c) {
          stacked.at(row, c) = seq.at(r, c);
        }
      }
    }
    standardizer_.fit(stacked);
  }

  init_layers(data.features());

  // Class weights for imbalance.
  std::vector<double> cw;
  if (config_.use_class_weights) {
    Dataset flat;
    flat.classes = data.classes;
    flat.y = data.labels;
    flat.x = Matrix(data.size(), 1);
    cw = class_weights(flat);
  }

  aps::Rng rng = aps::Rng(config_.seed).split(0xB0B);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::shuffle(order.begin(), order.end(), rng.engine());
  const auto val_count = static_cast<std::size_t>(
      config_.validation_fraction * static_cast<double>(data.size()));
  const std::vector<std::size_t> val_idx(
      order.begin(), order.begin() + static_cast<long>(val_count));
  std::vector<std::size_t> train_idx(
      order.begin() + static_cast<long>(val_count), order.end());
  if (train_idx.empty()) {
    train_idx = order;
  }

  double best_val = std::numeric_limits<double>::infinity();
  std::vector<Layer> best_layers;
  Matrix best_head_w, best_head_b;
  int patience_left = config_.early_stopping_patience;
  long step = 0;

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    std::shuffle(train_idx.begin(), train_idx.end(), rng.engine());
    for (std::size_t start = 0; start < train_idx.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(train_idx.size(), start + config_.batch_size);

      std::vector<Gradients> layer_grads;
      layer_grads.reserve(layers_.size());
      for (const auto& layer : layers_) {
        Gradients g;
        g.w = Matrix(layer.w.rows(), layer.w.cols());
        g.u = Matrix(layer.u.rows(), layer.u.cols());
        g.b = Matrix(1, layer.b.cols());
        layer_grads.push_back(std::move(g));
      }
      Matrix head_w_grad(head_w.rows(), head_w.cols());
      Matrix head_b_grad(1, head_b.cols());

      for (std::size_t pos = start; pos < end; ++pos) {
        const std::size_t i = train_idx[pos];
        const Matrix window = standardize_window(data.sequences[i]);
        const auto label = static_cast<std::size_t>(data.labels[i]);
        const double w = cw.empty() ? 1.0 : cw[label];
        backward(window, data.labels[i], w, layer_grads, head_w_grad,
                 head_b_grad);
      }
      const double inv_batch = 1.0 / static_cast<double>(end - start);
      for (auto& g : layer_grads) {
        for (auto& v : g.w.raw()) v *= inv_batch;
        for (auto& v : g.u.raw()) v *= inv_batch;
        for (auto& v : g.b.raw()) v *= inv_batch;
      }
      for (auto& v : head_w_grad.raw()) v *= inv_batch;
      for (auto& v : head_b_grad.raw()) v *= inv_batch;

      ++step;
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        layers_[l].w_adam.update(layers_[l].w, layer_grads[l].w,
                                 config_.adam, step);
        layers_[l].u_adam.update(layers_[l].u, layer_grads[l].u,
                                 config_.adam, step);
        layers_[l].b_adam.update(layers_[l].b, layer_grads[l].b,
                                 config_.adam, step);
      }
      head_w_adam_.update(head_w, head_w_grad, config_.adam, step);
      head_b_adam_.update(head_b, head_b_grad, config_.adam, step);
    }

    const double val_loss = val_idx.empty()
                                ? evaluate_loss(data, train_idx, cw)
                                : evaluate_loss(data, val_idx, cw);
    if (val_loss < best_val - 1e-5) {
      best_val = val_loss;
      best_layers = layers_;
      best_head_w = head_w;
      best_head_b = head_b;
      patience_left = config_.early_stopping_patience;
    } else if (--patience_left <= 0) {
      break;
    }
  }
  if (!best_layers.empty()) {
    layers_ = std::move(best_layers);
    head_w = std::move(best_head_w);
    head_b = std::move(best_head_b);
  }
  return best_val;
}

std::vector<double> Lstm::predict_proba(const Matrix& window) const {
  assert(trained());
  return forward(standardize_window(window), nullptr);
}

int Lstm::predict(const Matrix& window) const {
  const auto probs = predict_proba(window);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

}  // namespace aps::ml
