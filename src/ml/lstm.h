// Stacked LSTM classifier over sliding windows of system state, the "LSTM"
// baseline monitor of paper §V-C4: two stacked LSTM layers (default 128 and
// 64 units) over a 6-step (30-minute) input window, followed by a dense
// softmax head; trained with Adam on sparse categorical cross-entropy with
// early stopping. Backpropagation-through-time runs over the full window.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/adam.h"
#include "ml/dataset.h"
#include "ml/f32_cache.h"
#include "ml/matrix.h"

namespace aps::io {
struct ModelSerde;  // binary save/load (src/io/artifact_io.cpp)
}

namespace aps::ml {

struct LstmConfig {
  std::vector<std::size_t> hidden_units = {128, 64};
  int classes = 2;
  AdamConfig adam;
  int max_epochs = 20;
  std::size_t batch_size = 32;
  double validation_fraction = 0.15;
  int early_stopping_patience = 3;
  bool use_class_weights = true;
  bool standardize = true;
  std::uint64_t seed = 7;
};

class Lstm {
 public:
  explicit Lstm(LstmConfig config = {});

  /// Train; returns best validation loss. With a pool, each minibatch's
  /// per-sample BPTT runs chunk-parallel with a deterministic reduction
  /// order, so the trained weights are bit-identical for every thread
  /// count.
  double fit(const SequenceDataset& data, aps::ThreadPool* pool = nullptr);

  /// Probability per class for one (steps x features) window.
  [[nodiscard]] std::vector<double> predict_proba(const Matrix& window) const;
  [[nodiscard]] int predict(const Matrix& window) const;
  /// Predicted class per window from one shared pass that steps every
  /// window's hidden/cell state together over structure-of-arrays buffers
  /// (lane-major), keeping the gate weights hot across lanes. Per-lane
  /// arithmetic order matches forward(), so out[i] is bit-identical to
  /// predict(windows[i]).
  [[nodiscard]] std::vector<int> predict_batch(
      std::span<const Matrix> windows) const;
  /// predict_batch core for callers that keep their own standardized,
  /// lane-major flat window buffer x[(t * n + lane) * features + j] (the
  /// streaming monitor batch standardizes each feature row once on entry
  /// instead of re-standardizing whole windows every cycle).
  [[nodiscard]] std::vector<int> predict_batch_standardized(
      std::span<const double> x, std::size_t n, std::size_t steps) const;
  /// Allocation-reusing variant for per-tick callers (the serving shards):
  /// `out` is resized to n and overwritten.
  void predict_batch_standardized(std::span<const double> x, std::size_t n,
                                  std::size_t steps,
                                  std::vector<int>& out) const;
  /// Float32 counterpart of predict_batch_standardized for serving lanes:
  /// same lane-major layout (already standardized, cast by the caller),
  /// run through the float32 kernels with polynomial gate activations.
  /// Weights are cast once per model generation and cached. Tolerance-
  /// pinned against the float64 path (<= 1e-4 on probabilities, no
  /// decision flips on the golden cohort) — not bit-identical to it.
  void predict_batch_standardized_f32(std::span<const float> x, std::size_t n,
                                      std::size_t steps,
                                      std::vector<int>& out) const;
  /// Float32-path per-class probabilities for one raw window.
  [[nodiscard]] std::vector<double> predict_proba_f32(
      const Matrix& window) const;
  /// Build the float32 weight mirror now. Bundle loading calls this once
  /// per generation so serving lanes never pay the cast.
  void warm_f32_cache() const;
  /// Apply the fitted feature standardizer to one raw feature row.
  void standardize_row(std::span<double> row) const;

  [[nodiscard]] bool trained() const { return !layers_.empty(); }
  [[nodiscard]] std::size_t parameter_count() const;
  [[nodiscard]] const LstmConfig& config() const { return config_; }
  /// Validation loss after each completed epoch of the last fit() call
  /// (training loss when the validation split is empty). Pinned against
  /// recorded golden trajectories by the training determinism suite.
  [[nodiscard]] const std::vector<double>& epoch_losses() const {
    return epoch_losses_;
  }

 private:
  friend struct aps::io::ModelSerde;

  struct Layer {
    Matrix w;  ///< input -> gates (in x 4H), gate order [i f g o]
    Matrix u;  ///< hidden -> gates (H x 4H)
    Matrix b;  ///< 1 x 4H
    AdamState w_adam, u_adam, b_adam;
    std::size_t hidden = 0;
  };

  /// Per-layer cached values for BPTT, flat step-major ([t * dim + j]) so
  /// one backward pass costs a handful of allocations instead of hundreds.
  struct LayerCache {
    std::size_t width = 0;   ///< input features of this layer
    std::size_t hidden = 0;
    std::vector<double> inputs;  ///< steps x width
    std::vector<double> i, f, g, o, c, h, tanh_c;  ///< steps x hidden
  };

  struct Gradients {
    Matrix w, u, b;
  };

  /// Float32 mirror of the stack, flat row-major per matrix.
  struct F32Weights {
    struct Layer {
      std::vector<float> w;  ///< in x 4H
      std::vector<float> u;  ///< H x 4H
      std::vector<float> b;  ///< 4H
      std::size_t hidden = 0;
    };
    std::vector<Layer> layers;
    std::vector<float> head_w;  ///< in x classes
    std::vector<float> head_b;  ///< classes
  };

  void init_layers(std::size_t input_features);
  /// Run the stack over one window; fills caches when `cache != nullptr`.
  [[nodiscard]] std::vector<double> forward(const Matrix& window,
                                            std::vector<LayerCache>* cache) const;
  /// BPTT for one sample; accumulates into grads; returns sample loss.
  /// Const (touches no member state), so chunks backpropagate in parallel.
  double backward(const Matrix& window, int label, double weight,
                  std::vector<Gradients>& layer_grads, Matrix& head_w_grad,
                  Matrix& head_b_grad) const;

  [[nodiscard]] double evaluate_loss(const SequenceDataset& data,
                                     std::span<const std::size_t> indices,
                                     std::span<const double> cw,
                                     aps::ThreadPool* pool = nullptr) const;
  [[nodiscard]] Matrix standardize_window(const Matrix& window) const;
  [[nodiscard]] std::shared_ptr<const F32Weights> f32_weights() const;
  /// Float32 batched forward over a standardized lane-major buffer; fills
  /// `probs` row-major (n x classes), softmax computed in double.
  void forward_batch_f32(std::span<const float> x, std::size_t n,
                         std::size_t steps, std::vector<double>& probs) const;

  LstmConfig config_;
  std::vector<double> epoch_losses_;  ///< per-epoch val loss of last fit()
  std::vector<Layer> layers_;
  Matrix head_w;  ///< last hidden -> classes
  Matrix head_b;
  AdamState head_w_adam_, head_b_adam_;
  Standardizer standardizer_;
  F32Slot<F32Weights> f32_slot_;  ///< lazy float32 mirror of the weights
};

}  // namespace aps::ml
