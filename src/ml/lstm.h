// Stacked LSTM classifier over sliding windows of system state, the "LSTM"
// baseline monitor of paper §V-C4: two stacked LSTM layers (default 128 and
// 64 units) over a 6-step (30-minute) input window, followed by a dense
// softmax head; trained with Adam on sparse categorical cross-entropy with
// early stopping. Backpropagation-through-time runs over the full window.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/adam.h"
#include "ml/dataset.h"
#include "ml/matrix.h"

namespace aps::io {
struct ModelSerde;  // binary save/load (src/io/artifact_io.cpp)
}

namespace aps::ml {

/// Window dataset: each sample is a (steps x features) matrix plus a label.
struct SequenceDataset {
  std::vector<Matrix> sequences;
  std::vector<int> labels;
  int classes = 2;

  [[nodiscard]] std::size_t size() const { return labels.size(); }
  [[nodiscard]] std::size_t steps() const {
    return sequences.empty() ? 0 : sequences.front().rows();
  }
  [[nodiscard]] std::size_t features() const {
    return sequences.empty() ? 0 : sequences.front().cols();
  }
};

struct LstmConfig {
  std::vector<std::size_t> hidden_units = {128, 64};
  int classes = 2;
  AdamConfig adam;
  int max_epochs = 20;
  std::size_t batch_size = 32;
  double validation_fraction = 0.15;
  int early_stopping_patience = 3;
  bool use_class_weights = true;
  bool standardize = true;
  std::uint64_t seed = 7;
};

class Lstm {
 public:
  explicit Lstm(LstmConfig config = {});

  /// Train; returns best validation loss.
  double fit(const SequenceDataset& data);

  /// Probability per class for one (steps x features) window.
  [[nodiscard]] std::vector<double> predict_proba(const Matrix& window) const;
  [[nodiscard]] int predict(const Matrix& window) const;

  [[nodiscard]] bool trained() const { return !layers_.empty(); }
  [[nodiscard]] std::size_t parameter_count() const;
  [[nodiscard]] const LstmConfig& config() const { return config_; }

 private:
  friend struct aps::io::ModelSerde;

  struct Layer {
    Matrix w;  ///< input -> gates (in x 4H), gate order [i f g o]
    Matrix u;  ///< hidden -> gates (H x 4H)
    Matrix b;  ///< 1 x 4H
    AdamState w_adam, u_adam, b_adam;
    std::size_t hidden = 0;
  };

  /// Per-layer, per-step cached values for BPTT.
  struct LayerCache {
    std::vector<std::vector<double>> inputs;  ///< x_t per step
    std::vector<std::vector<double>> gates;   ///< pre-activation z (4H)
    std::vector<std::vector<double>> i, f, g, o, c, h, tanh_c;
  };

  struct Gradients {
    Matrix w, u, b;
  };

  void init_layers(std::size_t input_features);
  /// Run the stack over one window; fills caches when `cache != nullptr`.
  [[nodiscard]] std::vector<double> forward(const Matrix& window,
                                            std::vector<LayerCache>* cache) const;
  /// BPTT for one sample; accumulates into grads; returns sample loss.
  double backward(const Matrix& window, int label, double weight,
                  std::vector<Gradients>& layer_grads, Matrix& head_w_grad,
                  Matrix& head_b_grad);

  [[nodiscard]] double evaluate_loss(const SequenceDataset& data,
                                     std::span<const std::size_t> indices,
                                     std::span<const double> cw) const;
  [[nodiscard]] Matrix standardize_window(const Matrix& window) const;

  LstmConfig config_;
  std::vector<Layer> layers_;
  Matrix head_w;  ///< last hidden -> classes
  Matrix head_b;
  AdamState head_w_adam_, head_b_adam_;
  Standardizer standardizer_;
};

}  // namespace aps::ml
