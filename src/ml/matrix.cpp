#include "ml/matrix.h"

#include <cmath>

#include "common/rng.h"
#include "ml/kernels/kernels.h"

namespace aps::ml {

Matrix Matrix::xavier(std::size_t rows, std::size_t cols,
                      std::uint64_t seed) {
  Matrix m(rows, cols);
  aps::Rng rng(seed);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : m.raw()) v = rng.uniform(-limit, limit);
  return m;
}

// The matrix products route through the SIMD kernel layer
// (src/ml/kernels/). Each kernel preserves this file's historical
// per-element operation sequence — ascending-k mul-then-add with the
// zero-multiplier skip — on every backend, so results here are
// bit-identical to the original hand-written loops regardless of which
// backend dispatch selects.

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  kernels::gemm_accum(a.data(), b.data(), c.raw().data(), a.rows(), a.cols(),
                      b.cols());
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  kernels::gemm_tn_accum(a.data(), b.data(), c.raw().data(), a.rows(),
                         a.cols(), b.cols());
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  kernels::gemm_nt(a.data(), b.data(), c.raw().data(), a.rows(), a.cols(),
                   b.rows());
  return c;
}

void vec_matmul_add(std::span<const double> x, const Matrix& w,
                    std::span<double> out) {
  assert(x.size() == w.rows());
  assert(out.size() == w.cols());
  kernels::gemm_accum(x.data(), w.data(), out.data(), 1, w.rows(), w.cols());
}

void vec_matmul_add(const std::vector<double>& x, const Matrix& w,
                    std::vector<double>& out) {
  vec_matmul_add(std::span<const double>(x), w, std::span<double>(out));
}

}  // namespace aps::ml
