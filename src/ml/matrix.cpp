#include "ml/matrix.h"

#include <cmath>

#include "common/rng.h"

namespace aps::ml {

Matrix Matrix::xavier(std::size_t rows, std::size_t cols,
                      std::uint64_t seed) {
  Matrix m(rows, cols);
  aps::Rng rng(seed);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& v : m.raw()) v = rng.uniform(-limit, limit);
  return m;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aik * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (std::size_t k = 0; k < a.rows(); ++k) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double aki = a.at(k, i);
      if (aki == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c.at(i, j) += aki * b.at(k, j);
      }
    }
  }
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) {
        s += a.at(i, k) * b.at(j, k);
      }
      c.at(i, j) = s;
    }
  }
  return c;
}

void vec_matmul_add(std::span<const double> x, const Matrix& w,
                    std::span<double> out) {
  assert(x.size() == w.rows());
  assert(out.size() == w.cols());
  for (std::size_t i = 0; i < w.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < w.cols(); ++j) {
      out[j] += xi * w.at(i, j);
    }
  }
}

void vec_matmul_add(const std::vector<double>& x, const Matrix& w,
                    std::vector<double>& out) {
  vec_matmul_add(std::span<const double>(x), w, std::span<double>(out));
}

}  // namespace aps::ml
