// Minimal dense row-major matrix used by the from-scratch ML baselines.
// Not a general linear-algebra library: just the kernels the MLP/LSTM need.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace aps::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  [[nodiscard]] std::vector<double>& raw() { return data_; }
  [[nodiscard]] const std::vector<double>& raw() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Xavier/Glorot uniform initialization, deterministic per seed.
  static Matrix xavier(std::size_t rows, std::size_t cols,
                       std::uint64_t seed);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// c = a * b.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);
/// c = a^T * b.
[[nodiscard]] Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// c = a * b^T.
[[nodiscard]] Matrix matmul_nt(const Matrix& a, const Matrix& b);

/// y = row-vector x (1 x n) times matrix W (n x m) -> (1 x m), in-place add
/// into out (must be 1 x m).
void vec_matmul_add(std::span<const double> x, const Matrix& w,
                    std::span<double> out);
void vec_matmul_add(const std::vector<double>& x, const Matrix& w,
                    std::vector<double>& out);

}  // namespace aps::ml
