#include "ml/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

namespace aps::ml {

namespace {

void softmax_rows(Matrix& logits) {
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    double max_logit = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      max_logit = std::max(max_logit, logits.at(r, c));
    }
    double sum = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      logits.at(r, c) = std::exp(logits.at(r, c) - max_logit);
      sum += logits.at(r, c);
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      logits.at(r, c) /= sum;
    }
  }
}

Matrix rows_subset(const Matrix& x, std::span<const std::size_t> idx) {
  Matrix out(idx.size(), x.cols());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out.at(r, c) = x.at(idx[r], c);
    }
  }
  return out;
}

}  // namespace

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {}

std::size_t Mlp::parameter_count() const {
  std::size_t total = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    total += weights_[l].size() + biases_[l].size();
  }
  return total;
}

Mlp::ForwardCache Mlp::forward(const Matrix& batch, bool training,
                               aps::Rng* rng) const {
  ForwardCache cache;
  cache.activations.push_back(batch);
  Matrix h = batch;
  const std::size_t hidden_layers = weights_.size() - 1;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Matrix z = matmul(h, weights_[l]);
    for (std::size_t r = 0; r < z.rows(); ++r) {
      for (std::size_t c = 0; c < z.cols(); ++c) {
        z.at(r, c) += biases_[l].at(0, c);
      }
    }
    if (l < hidden_layers) {
      // ReLU + inverted dropout.
      Matrix mask(z.rows(), z.cols(), 1.0);
      const double keep = 1.0 - config_.dropout;
      for (std::size_t r = 0; r < z.rows(); ++r) {
        for (std::size_t c = 0; c < z.cols(); ++c) {
          if (z.at(r, c) < 0.0) z.at(r, c) = 0.0;
          if (training && config_.dropout > 0.0 && rng != nullptr) {
            if (rng->bernoulli(config_.dropout)) {
              mask.at(r, c) = 0.0;
              z.at(r, c) = 0.0;
            } else {
              mask.at(r, c) = 1.0 / keep;
              z.at(r, c) *= 1.0 / keep;
            }
          }
        }
      }
      cache.masks.push_back(std::move(mask));
      cache.activations.push_back(z);
      h = std::move(z);
    } else {
      softmax_rows(z);
      cache.probs = std::move(z);
    }
  }
  return cache;
}

double Mlp::train_batch(const Matrix& batch, std::span<const int> labels,
                        std::span<const double> cw, long step,
                        aps::Rng& rng) {
  ForwardCache cache = forward(batch, /*training=*/true, &rng);
  const std::size_t n = batch.rows();

  // Weighted cross-entropy and dLoss/dLogits = probs - onehot (scaled).
  double loss = 0.0;
  Matrix delta = cache.probs;
  double weight_sum = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const auto label = static_cast<std::size_t>(labels[r]);
    const double w = cw.empty() ? 1.0 : cw[label];
    weight_sum += w;
    loss -= w * std::log(std::max(cache.probs.at(r, label), 1e-12));
    for (std::size_t c = 0; c < delta.cols(); ++c) {
      delta.at(r, c) = w * (cache.probs.at(r, c) -
                            (c == label ? 1.0 : 0.0));
    }
  }
  const double norm = weight_sum > 0.0 ? weight_sum : 1.0;
  loss /= norm;
  for (auto& v : delta.raw()) v /= norm;

  // Backward pass through the dense stack.
  for (std::size_t l = weights_.size(); l-- > 0;) {
    const Matrix& input = cache.activations[l];
    Matrix grad_w = matmul_tn(input, delta);
    Matrix grad_b(1, delta.cols());
    for (std::size_t r = 0; r < delta.rows(); ++r) {
      for (std::size_t c = 0; c < delta.cols(); ++c) {
        grad_b.at(0, c) += delta.at(r, c);
      }
    }
    Matrix delta_prev;
    if (l > 0) {
      delta_prev = matmul_nt(delta, weights_[l]);
      // Through ReLU + dropout of layer l-1.
      const Matrix& act = cache.activations[l];
      const Matrix& mask = cache.masks[l - 1];
      for (std::size_t r = 0; r < delta_prev.rows(); ++r) {
        for (std::size_t c = 0; c < delta_prev.cols(); ++c) {
          const bool active = act.at(r, c) > 0.0;
          delta_prev.at(r, c) *= active ? mask.at(r, c) : 0.0;
        }
      }
    }
    w_adam_[l].update(weights_[l], grad_w, config_.adam, step);
    b_adam_[l].update(biases_[l], grad_b, config_.adam, step);
    if (l > 0) delta = std::move(delta_prev);
  }
  return loss;
}

double Mlp::evaluate_loss(const Matrix& x, std::span<const int> labels,
                          std::span<const double> cw) const {
  if (x.rows() == 0) return 0.0;
  const ForwardCache cache = forward(x, /*training=*/false, nullptr);
  double loss = 0.0;
  double weight_sum = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto label = static_cast<std::size_t>(labels[r]);
    const double w = cw.empty() ? 1.0 : cw[label];
    weight_sum += w;
    loss -= w * std::log(std::max(cache.probs.at(r, label), 1e-12));
  }
  return weight_sum > 0.0 ? loss / weight_sum : 0.0;
}

double Mlp::fit(const Dataset& data) {
  assert(data.size() > 0);
  config_.classes = data.classes;

  if (config_.standardize) standardizer_.fit(data.x);
  const Matrix x_all =
      config_.standardize ? standardizer_.transform(data.x) : data.x;

  // Architecture: input -> hidden... -> classes.
  layer_sizes_.clear();
  layer_sizes_.push_back(data.features());
  for (const std::size_t h : config_.hidden_units) {
    layer_sizes_.push_back(h);
  }
  layer_sizes_.push_back(static_cast<std::size_t>(config_.classes));

  weights_.clear();
  biases_.clear();
  w_adam_.clear();
  b_adam_.clear();
  for (std::size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    weights_.push_back(Matrix::xavier(layer_sizes_[l], layer_sizes_[l + 1],
                                      derive_seed(config_.seed, l)));
    biases_.emplace_back(1, layer_sizes_[l + 1]);
    w_adam_.emplace_back(layer_sizes_[l], layer_sizes_[l + 1]);
    b_adam_.emplace_back(std::size_t{1}, layer_sizes_[l + 1]);
  }

  // Deterministic train/validation split for early stopping.
  aps::Rng rng = aps::Rng(config_.seed).split(0xA11CE);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::shuffle(order.begin(), order.end(), rng.engine());
  const auto val_count = static_cast<std::size_t>(
      config_.validation_fraction * static_cast<double>(data.size()));
  std::vector<std::size_t> val_idx(order.begin(),
                                   order.begin() + static_cast<long>(val_count));
  std::vector<std::size_t> train_idx(order.begin() + static_cast<long>(val_count),
                                     order.end());
  if (train_idx.empty()) {
    train_idx = order;
    val_idx.clear();
  }

  const Matrix x_val = rows_subset(x_all, val_idx);
  std::vector<int> y_val;
  y_val.reserve(val_idx.size());
  for (const std::size_t i : val_idx) y_val.push_back(data.y[i]);

  std::vector<double> cw;
  if (config_.use_class_weights) cw = class_weights(data);

  double best_val = std::numeric_limits<double>::infinity();
  std::vector<Matrix> best_weights;
  std::vector<Matrix> best_biases;
  int patience_left = config_.early_stopping_patience;
  long step = 0;

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    std::shuffle(train_idx.begin(), train_idx.end(), rng.engine());
    for (std::size_t start = 0; start < train_idx.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(train_idx.size(), start + config_.batch_size);
      const std::span<const std::size_t> batch_idx(train_idx.data() + start,
                                                   end - start);
      const Matrix batch = rows_subset(x_all, batch_idx);
      std::vector<int> labels;
      labels.reserve(batch_idx.size());
      for (const std::size_t i : batch_idx) labels.push_back(data.y[i]);
      ++step;
      train_batch(batch, labels, cw, step, rng);
    }
    const double val_loss =
        val_idx.empty()
            ? evaluate_loss(x_all, data.y, cw)
            : evaluate_loss(x_val, y_val, cw);
    if (val_loss < best_val - 1e-5) {
      best_val = val_loss;
      best_weights = weights_;
      best_biases = biases_;
      patience_left = config_.early_stopping_patience;
    } else if (--patience_left <= 0) {
      break;
    }
  }
  if (!best_weights.empty()) {
    weights_ = std::move(best_weights);
    biases_ = std::move(best_biases);
  }
  return best_val;
}

std::vector<double> Mlp::predict_proba(
    std::span<const double> features) const {
  assert(trained());
  Matrix x(1, features.size());
  for (std::size_t c = 0; c < features.size(); ++c) {
    x.at(0, c) = features[c];
  }
  if (config_.standardize && standardizer_.fitted()) {
    std::span<double> row(x.raw().data(), x.cols());
    standardizer_.transform_row(row);
  }
  const ForwardCache cache = forward(x, /*training=*/false, nullptr);
  std::vector<double> out(cache.probs.cols());
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c] = cache.probs.at(0, c);
  }
  return out;
}

int Mlp::predict(std::span<const double> features) const {
  const auto probs = predict_proba(features);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<int> Mlp::predict_batch(const Matrix& features) const {
  assert(trained());
  Matrix x = features;
  if (config_.standardize && standardizer_.fitted()) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      std::span<double> row(x.raw().data() + r * x.cols(), x.cols());
      standardizer_.transform_row(row);
    }
  }
  const ForwardCache cache = forward(x, /*training=*/false, nullptr);
  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    // First-maximum argmax, matching predict()'s std::max_element.
    std::size_t best = 0;
    for (std::size_t c = 1; c < cache.probs.cols(); ++c) {
      if (cache.probs.at(r, c) > cache.probs.at(r, best)) best = c;
    }
    out[r] = static_cast<int>(best);
  }
  return out;
}

}  // namespace aps::ml
