#include "ml/mlp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "ml/kernels/kernels.h"

namespace aps::ml {

namespace {

void softmax_rows(Matrix& logits) {
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    double max_logit = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      max_logit = std::max(max_logit, logits.at(r, c));
    }
    double sum = 0.0;
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      logits.at(r, c) = std::exp(logits.at(r, c) - max_logit);
      sum += logits.at(r, c);
    }
    for (std::size_t c = 0; c < logits.cols(); ++c) {
      logits.at(r, c) /= sum;
    }
  }
}

Matrix rows_subset(const Matrix& x, std::span<const std::size_t> idx) {
  Matrix out(idx.size(), x.cols());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out.at(r, c) = x.at(idx[r], c);
    }
  }
  return out;
}

}  // namespace

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) {}

std::size_t Mlp::parameter_count() const {
  std::size_t total = 0;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    total += weights_[l].size() + biases_[l].size();
  }
  return total;
}

Mlp::ForwardCache Mlp::forward(const Matrix& batch, bool training,
                               DropoutStream* dropout) const {
  ForwardCache cache;
  cache.activations.reserve(weights_.size());
  cache.activations.push_back(batch);
  const std::size_t hidden_layers = weights_.size() - 1;
  const bool drop = training && config_.dropout > 0.0 && dropout != nullptr;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    Matrix z = matmul(cache.activations.back(), weights_[l]);
    kernels::add_bias_rows(z.raw().data(), biases_[l].data(), z.rows(),
                           z.cols());
    if (l < hidden_layers) {
      // ReLU + inverted dropout.
      kernels::relu(z.raw().data(), z.raw().size());
      if (drop) {
        Matrix mask(z.rows(), z.cols(), 1.0);
        const double inv_keep = 1.0 / (1.0 - config_.dropout);
        for (std::size_t i = 0; i < z.raw().size(); ++i) {
          if (dropout->next() < config_.dropout) {
            mask.raw()[i] = 0.0;
            z.raw()[i] = 0.0;
          } else {
            mask.raw()[i] = inv_keep;
            z.raw()[i] *= inv_keep;
          }
        }
        cache.masks.push_back(std::move(mask));
      }
      cache.activations.push_back(std::move(z));
    } else {
      softmax_rows(z);
      cache.probs = std::move(z);
    }
  }
  return cache;
}

void Mlp::batch_gradients(const Matrix& batch, std::span<const int> labels,
                          std::span<const double> cw, DropoutStream* dropout,
                          std::vector<Matrix>& grad_w,
                          std::vector<Matrix>& grad_b, double& loss_sum,
                          double& weight_sum) const {
  ForwardCache cache = forward(batch, /*training=*/true, dropout);
  const std::size_t n = batch.rows();

  // Weighted cross-entropy and dLoss/dLogits = probs - onehot (scaled);
  // normalization by the total batch weight happens after reduction.
  Matrix delta = cache.probs;
  for (std::size_t r = 0; r < n; ++r) {
    const auto label = static_cast<std::size_t>(labels[r]);
    const double w = cw.empty() ? 1.0 : cw[label];
    weight_sum += w;
    loss_sum -= w * std::log(std::max(cache.probs.at(r, label), 1e-12));
    for (std::size_t c = 0; c < delta.cols(); ++c) {
      delta.at(r, c) = w * (cache.probs.at(r, c) -
                            (c == label ? 1.0 : 0.0));
    }
  }

  // Backward pass through the dense stack.
  for (std::size_t l = weights_.size(); l-- > 0;) {
    const Matrix& input = cache.activations[l];
    const Matrix gw = matmul_tn(input, delta);
    for (std::size_t i = 0; i < gw.raw().size(); ++i) {
      grad_w[l].raw()[i] += gw.raw()[i];
    }
    for (std::size_t r = 0; r < delta.rows(); ++r) {
      for (std::size_t c = 0; c < delta.cols(); ++c) {
        grad_b[l].at(0, c) += delta.at(r, c);
      }
    }
    if (l > 0) {
      Matrix delta_prev = matmul_nt(delta, weights_[l]);
      // Through ReLU + dropout of layer l-1 (no mask stored when the
      // forward ran without dropout).
      const Matrix& act = cache.activations[l];
      const Matrix* mask =
          cache.masks.empty() ? nullptr : &cache.masks[l - 1];
      for (std::size_t r = 0; r < delta_prev.rows(); ++r) {
        for (std::size_t c = 0; c < delta_prev.cols(); ++c) {
          const bool active = act.at(r, c) > 0.0;
          const double m = mask != nullptr ? mask->at(r, c) : 1.0;
          delta_prev.at(r, c) *= active ? m : 0.0;
        }
      }
      delta = std::move(delta_prev);
    }
  }
}

namespace {

/// Rows per gradient chunk. Fixed (never derived from the thread count) so
/// the chunk partition — and with it every dropout stream and reduction
/// order — is identical no matter how many workers execute it.
constexpr std::size_t kGradChunkRows = 16;

}  // namespace

double Mlp::train_batch(const Matrix& batch, std::span<const int> labels,
                        std::span<const double> cw, long step,
                        aps::ThreadPool* pool) {
  const std::size_t n = batch.rows();
  const std::size_t chunks = (n + kGradChunkRows - 1) / kGradChunkRows;

  struct ChunkGrads {
    std::vector<Matrix> w, b;
    double loss_sum = 0.0;
    double weight_sum = 0.0;
  };
  std::vector<ChunkGrads> partial(chunks);
  const auto run_chunk = [&](std::size_t chunk) {
    const std::size_t begin = chunk * kGradChunkRows;
    const std::size_t end = std::min(n, begin + kGradChunkRows);
    Matrix rows(end - begin, batch.cols());
    std::copy(batch.raw().begin() + static_cast<long>(begin * batch.cols()),
              batch.raw().begin() + static_cast<long>(end * batch.cols()),
              rows.raw().begin());
    ChunkGrads& grads = partial[chunk];
    grads.w.reserve(weights_.size());
    grads.b.reserve(weights_.size());
    for (std::size_t l = 0; l < weights_.size(); ++l) {
      grads.w.emplace_back(weights_[l].rows(), weights_[l].cols());
      grads.b.emplace_back(std::size_t{1}, biases_[l].cols());
    }
    // Per-(step, chunk) dropout stream: independent of both the shuffle
    // RNG and the executing thread.
    DropoutStream dropout{derive_seed(
        derive_seed(dropout_seed_, static_cast<std::uint64_t>(step)), chunk)};
    batch_gradients(rows, labels.subspan(begin, end - begin), cw, &dropout,
                    grads.w, grads.b, grads.loss_sum, grads.weight_sum);
  };
  if (pool != nullptr && chunks > 1) {
    pool->parallel_for(chunks, run_chunk);
  } else {
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
  }

  // Deterministic reduction: chunk order, then normalize by the batch
  // weight and apply one Adam step.
  double loss = 0.0;
  double weight_sum = 0.0;
  std::vector<Matrix> grad_w;
  std::vector<Matrix> grad_b;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    grad_w.emplace_back(weights_[l].rows(), weights_[l].cols());
    grad_b.emplace_back(std::size_t{1}, biases_[l].cols());
  }
  for (const ChunkGrads& grads : partial) {
    loss += grads.loss_sum;
    weight_sum += grads.weight_sum;
    for (std::size_t l = 0; l < weights_.size(); ++l) {
      for (std::size_t i = 0; i < grad_w[l].raw().size(); ++i) {
        grad_w[l].raw()[i] += grads.w[l].raw()[i];
      }
      for (std::size_t i = 0; i < grad_b[l].raw().size(); ++i) {
        grad_b[l].raw()[i] += grads.b[l].raw()[i];
      }
    }
  }
  const double norm = weight_sum > 0.0 ? weight_sum : 1.0;
  loss /= norm;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    for (auto& v : grad_w[l].raw()) v /= norm;
    for (auto& v : grad_b[l].raw()) v /= norm;
    w_adam_[l].update(weights_[l], grad_w[l], config_.adam, step);
    b_adam_[l].update(biases_[l], grad_b[l], config_.adam, step);
  }
  return loss;
}

double Mlp::evaluate_loss(const Matrix& x, std::span<const int> labels,
                          std::span<const double> cw) const {
  if (x.rows() == 0) return 0.0;
  const ForwardCache cache = forward(x, /*training=*/false, nullptr);
  double loss = 0.0;
  double weight_sum = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto label = static_cast<std::size_t>(labels[r]);
    const double w = cw.empty() ? 1.0 : cw[label];
    weight_sum += w;
    loss -= w * std::log(std::max(cache.probs.at(r, label), 1e-12));
  }
  return weight_sum > 0.0 ? loss / weight_sum : 0.0;
}

double Mlp::fit(const Dataset& data, aps::ThreadPool* pool) {
  assert(data.size() > 0);
  config_.classes = data.classes;
  dropout_seed_ = derive_seed(config_.seed, 0xD120u);

  if (config_.standardize) standardizer_.fit(data.x);
  const Matrix x_all =
      config_.standardize ? standardizer_.transform(data.x) : data.x;

  // Architecture: input -> hidden... -> classes.
  layer_sizes_.clear();
  layer_sizes_.push_back(data.features());
  for (const std::size_t h : config_.hidden_units) {
    layer_sizes_.push_back(h);
  }
  layer_sizes_.push_back(static_cast<std::size_t>(config_.classes));

  weights_.clear();
  biases_.clear();
  w_adam_.clear();
  b_adam_.clear();
  for (std::size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    weights_.push_back(Matrix::xavier(layer_sizes_[l], layer_sizes_[l + 1],
                                      derive_seed(config_.seed, l)));
    biases_.emplace_back(1, layer_sizes_[l + 1]);
    w_adam_.emplace_back(layer_sizes_[l], layer_sizes_[l + 1]);
    b_adam_.emplace_back(std::size_t{1}, layer_sizes_[l + 1]);
  }

  // Deterministic train/validation split for early stopping.
  aps::Rng rng = aps::Rng(config_.seed).split(0xA11CE);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::shuffle(order.begin(), order.end(), rng.engine());
  const auto val_count = static_cast<std::size_t>(
      config_.validation_fraction * static_cast<double>(data.size()));
  std::vector<std::size_t> val_idx(order.begin(),
                                   order.begin() + static_cast<long>(val_count));
  std::vector<std::size_t> train_idx(order.begin() + static_cast<long>(val_count),
                                     order.end());
  if (train_idx.empty()) {
    train_idx = order;
    val_idx.clear();
  }

  const Matrix x_val = rows_subset(x_all, val_idx);
  std::vector<int> y_val;
  y_val.reserve(val_idx.size());
  for (const std::size_t i : val_idx) y_val.push_back(data.y[i]);

  std::vector<double> cw;
  if (config_.use_class_weights) cw = class_weights(data);

  double best_val = std::numeric_limits<double>::infinity();
  std::vector<Matrix> best_weights;
  std::vector<Matrix> best_biases;
  int patience_left = config_.early_stopping_patience;
  long step = 0;
  epoch_losses_.clear();

  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    std::shuffle(train_idx.begin(), train_idx.end(), rng.engine());
    for (std::size_t start = 0; start < train_idx.size();
         start += config_.batch_size) {
      const std::size_t end =
          std::min(train_idx.size(), start + config_.batch_size);
      const std::span<const std::size_t> batch_idx(train_idx.data() + start,
                                                   end - start);
      const Matrix batch = rows_subset(x_all, batch_idx);
      std::vector<int> labels;
      labels.reserve(batch_idx.size());
      for (const std::size_t i : batch_idx) labels.push_back(data.y[i]);
      ++step;
      train_batch(batch, labels, cw, step, pool);
    }
    const double val_loss =
        val_idx.empty()
            ? evaluate_loss(x_all, data.y, cw)
            : evaluate_loss(x_val, y_val, cw);
    epoch_losses_.push_back(val_loss);
    if (val_loss < best_val - 1e-5) {
      best_val = val_loss;
      best_weights = weights_;
      best_biases = biases_;
      patience_left = config_.early_stopping_patience;
    } else if (--patience_left <= 0) {
      break;
    }
  }
  if (!best_weights.empty()) {
    weights_ = std::move(best_weights);
    biases_ = std::move(best_biases);
  }
  f32_slot_.reset();  // weights changed; the float32 mirror is stale
  return best_val;
}

std::vector<double> Mlp::predict_proba(
    std::span<const double> features) const {
  assert(trained());
  Matrix x(1, features.size());
  for (std::size_t c = 0; c < features.size(); ++c) {
    x.at(0, c) = features[c];
  }
  if (config_.standardize && standardizer_.fitted()) {
    std::span<double> row(x.raw().data(), x.cols());
    standardizer_.transform_row(row);
  }
  const ForwardCache cache = forward(x, /*training=*/false, nullptr);
  std::vector<double> out(cache.probs.cols());
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c] = cache.probs.at(0, c);
  }
  return out;
}

int Mlp::predict(std::span<const double> features) const {
  const auto probs = predict_proba(features);
  return static_cast<int>(
      std::max_element(probs.begin(), probs.end()) - probs.begin());
}

std::vector<int> Mlp::predict_batch(const Matrix& features) const {
  assert(trained());
  Matrix x = features;
  if (config_.standardize && standardizer_.fitted()) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      std::span<double> row(x.raw().data() + r * x.cols(), x.cols());
      standardizer_.transform_row(row);
    }
  }
  const ForwardCache cache = forward(x, /*training=*/false, nullptr);
  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    // First-maximum argmax, matching predict()'s std::max_element.
    std::size_t best = 0;
    for (std::size_t c = 1; c < cache.probs.cols(); ++c) {
      if (cache.probs.at(r, c) > cache.probs.at(r, best)) best = c;
    }
    out[r] = static_cast<int>(best);
  }
  return out;
}

std::shared_ptr<const Mlp::F32Weights> Mlp::f32_weights() const {
  return f32_slot_.get([this] {
    auto cache = std::make_shared<F32Weights>();
    cache->w.reserve(weights_.size());
    cache->b.reserve(weights_.size());
    for (std::size_t l = 0; l < weights_.size(); ++l) {
      std::vector<float> w(weights_[l].raw().size());
      for (std::size_t i = 0; i < w.size(); ++i) {
        w[i] = static_cast<float>(weights_[l].raw()[i]);
      }
      std::vector<float> b(biases_[l].raw().size());
      for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] = static_cast<float>(biases_[l].raw()[i]);
      }
      cache->w.push_back(std::move(w));
      cache->b.push_back(std::move(b));
      cache->out_dims.push_back(weights_[l].cols());
    }
    return cache;
  });
}

void Mlp::warm_f32_cache() const { (void)f32_weights(); }

void Mlp::forward_f32(const Matrix& x, std::vector<double>& probs) const {
  const auto wts = f32_weights();
  const std::size_t n = x.rows();
  const std::size_t hidden_layers = wts->w.size() - 1;
  std::vector<float> act(x.raw().size());
  for (std::size_t i = 0; i < act.size(); ++i) {
    act[i] = static_cast<float>(x.raw()[i]);
  }
  std::vector<float> z;
  std::size_t width = x.cols();
  for (std::size_t l = 0; l < wts->w.size(); ++l) {
    const std::size_t out_dim = wts->out_dims[l];
    z.resize(n * out_dim);
    kernels::fill_bias_rows_f32(z.data(), wts->b[l].data(), n, out_dim);
    kernels::gemm_accum_f32(act.data(), wts->w[l].data(), z.data(), n, width,
                            out_dim);
    if (l < hidden_layers) kernels::relu_f32(z.data(), z.size());
    act.swap(z);
    width = out_dim;
  }
  // Softmax in double over the float32 logits, same shift-by-max form as
  // the float64 path.
  probs.resize(n * width);
  for (std::size_t r = 0; r < n; ++r) {
    const float* row = act.data() + r * width;
    double max_logit = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < width; ++c) {
      max_logit = std::max(max_logit, static_cast<double>(row[c]));
    }
    double sum = 0.0;
    for (std::size_t c = 0; c < width; ++c) {
      const double e = std::exp(static_cast<double>(row[c]) - max_logit);
      probs[r * width + c] = e;
      sum += e;
    }
    for (std::size_t c = 0; c < width; ++c) probs[r * width + c] /= sum;
  }
}

std::vector<int> Mlp::predict_batch_f32(const Matrix& features) const {
  assert(trained());
  Matrix x = features;
  if (config_.standardize && standardizer_.fitted()) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      std::span<double> row(x.raw().data() + r * x.cols(), x.cols());
      standardizer_.transform_row(row);
    }
  }
  std::vector<double> probs;
  forward_f32(x, probs);
  const auto classes = static_cast<std::size_t>(config_.classes);
  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double* row = probs.data() + r * classes;
    std::size_t best = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    out[r] = static_cast<int>(best);
  }
  return out;
}

std::vector<double> Mlp::predict_proba_f32(
    std::span<const double> features) const {
  assert(trained());
  Matrix x(1, features.size());
  for (std::size_t c = 0; c < features.size(); ++c) {
    x.at(0, c) = features[c];
  }
  if (config_.standardize && standardizer_.fitted()) {
    std::span<double> row(x.raw().data(), x.cols());
    standardizer_.transform_row(row);
  }
  std::vector<double> probs;
  forward_f32(x, probs);
  return probs;
}

}  // namespace aps::ml
