// Multi-layer perceptron classifier, the "MLP" baseline monitor of paper
// §V-C4: fully connected hidden layers (default 256 and 128 units) with
// ReLU activations and a softmax output, trained with Adam on sparse
// categorical cross-entropy, with inverted dropout and early stopping on a
// held-out validation split.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "ml/adam.h"
#include "ml/dataset.h"
#include "ml/matrix.h"

namespace aps::io {
struct ModelSerde;  // binary save/load (src/io/artifact_io.cpp)
}

namespace aps::ml {

struct MlpConfig {
  std::vector<std::size_t> hidden_units = {256, 128};
  int classes = 2;
  AdamConfig adam;                ///< learning rate 0.001 per the paper
  int max_epochs = 40;
  std::size_t batch_size = 64;
  double dropout = 0.2;
  double validation_fraction = 0.15;
  int early_stopping_patience = 4;
  bool use_class_weights = true;
  bool standardize = true;
  std::uint64_t seed = 42;
};

class Mlp {
 public:
  explicit Mlp(MlpConfig config = {});

  /// Train on the dataset; returns the best validation loss reached.
  double fit(const Dataset& data);

  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> features) const;
  [[nodiscard]] int predict(std::span<const double> features) const;
  /// Predicted class per row of `features` from one shared forward pass.
  /// Every layer of the network is row-independent, so out[r] is
  /// bit-identical to predict(row r).
  [[nodiscard]] std::vector<int> predict_batch(const Matrix& features) const;

  [[nodiscard]] bool trained() const { return !weights_.empty(); }
  [[nodiscard]] const MlpConfig& config() const { return config_; }
  /// Number of scalar parameters (for the overhead bench narrative).
  [[nodiscard]] std::size_t parameter_count() const;

 private:
  friend struct aps::io::ModelSerde;

  struct ForwardCache {
    std::vector<Matrix> activations;  ///< activations[0] = input batch
    std::vector<Matrix> masks;        ///< dropout masks per hidden layer
    Matrix probs;                     ///< softmax output
  };

  [[nodiscard]] ForwardCache forward(const Matrix& batch, bool training,
                                     aps::Rng* rng) const;
  /// One minibatch gradient step; returns the batch loss.
  double train_batch(const Matrix& batch, std::span<const int> labels,
                     std::span<const double> cw, long step, aps::Rng& rng);
  [[nodiscard]] double evaluate_loss(const Matrix& x,
                                     std::span<const int> labels,
                                     std::span<const double> cw) const;

  MlpConfig config_;
  std::vector<std::size_t> layer_sizes_;
  std::vector<Matrix> weights_;
  std::vector<Matrix> biases_;  ///< 1 x out each
  std::vector<AdamState> w_adam_;
  std::vector<AdamState> b_adam_;
  Standardizer standardizer_;
};

}  // namespace aps::ml
