// Multi-layer perceptron classifier, the "MLP" baseline monitor of paper
// §V-C4: fully connected hidden layers (default 256 and 128 units) with
// ReLU activations and a softmax output, trained with Adam on sparse
// categorical cross-entropy, with inverted dropout and early stopping on a
// held-out validation split.
//
// Training is data-parallel: each minibatch is cut into fixed-size row
// chunks whose gradients are computed concurrently (per-chunk dropout
// streams) and reduced in chunk order, so the trained weights are
// bit-identical for every thread count, including none.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include <memory>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "ml/adam.h"
#include "ml/dataset.h"
#include "ml/f32_cache.h"
#include "ml/matrix.h"

namespace aps::io {
struct ModelSerde;  // binary save/load (src/io/artifact_io.cpp)
}

namespace aps::ml {

struct MlpConfig {
  std::vector<std::size_t> hidden_units = {256, 128};
  int classes = 2;
  AdamConfig adam;                ///< learning rate 0.001 per the paper
  int max_epochs = 40;
  std::size_t batch_size = 64;
  double dropout = 0.2;
  double validation_fraction = 0.15;
  int early_stopping_patience = 4;
  bool use_class_weights = true;
  bool standardize = true;
  std::uint64_t seed = 42;
};

class Mlp {
 public:
  explicit Mlp(MlpConfig config = {});

  /// Train on the dataset; returns the best validation loss reached.
  /// With a pool, minibatch gradients are computed chunk-parallel across
  /// its workers; the result is bit-identical to the sequential path.
  double fit(const Dataset& data, aps::ThreadPool* pool = nullptr);

  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> features) const;
  [[nodiscard]] int predict(std::span<const double> features) const;
  /// Predicted class per row of `features` from one shared forward pass.
  /// Every layer of the network is row-independent, so out[r] is
  /// bit-identical to predict(row r).
  [[nodiscard]] std::vector<int> predict_batch(const Matrix& features) const;
  /// predict_batch through the float32 kernel path (serving-lane inference
  /// precision). Weights are cast once per model generation and cached;
  /// probabilities are softmaxed in double over the float32 logits.
  /// Tolerance-pinned against the float64 path (<= 1e-4 on probabilities,
  /// no decision flips on the golden cohort) — not bit-identical to it.
  [[nodiscard]] std::vector<int> predict_batch_f32(
      const Matrix& features) const;
  /// Float32-path per-class probabilities for one raw feature row.
  [[nodiscard]] std::vector<double> predict_proba_f32(
      std::span<const double> features) const;
  /// Build the float32 weight mirror now. Bundle loading calls this once
  /// per generation so serving lanes never pay the cast.
  void warm_f32_cache() const;

  [[nodiscard]] bool trained() const { return !weights_.empty(); }
  [[nodiscard]] const MlpConfig& config() const { return config_; }
  /// Validation loss after each completed epoch of the last fit() call
  /// (training loss when the validation split is empty). The training
  /// determinism suite pins this trajectory against recorded golden
  /// values, so any numerical change to the minibatch path is caught.
  [[nodiscard]] const std::vector<double>& epoch_losses() const {
    return epoch_losses_;
  }
  /// Number of scalar parameters (for the overhead bench narrative).
  [[nodiscard]] std::size_t parameter_count() const;

 private:
  friend struct aps::io::ModelSerde;

  struct ForwardCache {
    std::vector<Matrix> activations;  ///< activations[0] = input batch
    std::vector<Matrix> masks;        ///< dropout masks (training+dropout only)
    Matrix probs;                     ///< softmax output
  };

  /// Counter-based dropout stream: cell k of a chunk draws
  /// splitmix64(seed + k), so masks are a pure function of
  /// (step, chunk, cell) — independent of threads and of the shuffle RNG.
  struct DropoutStream {
    std::uint64_t seed = 0;
    std::uint64_t counter = 0;

    [[nodiscard]] double next() {
      return static_cast<double>(splitmix64(seed + counter++) >> 11) *
             0x1.0p-53;
    }
  };

  /// Float32 mirror of weights_/biases_, flat row-major per layer.
  struct F32Weights {
    std::vector<std::vector<float>> w;  ///< (in x out) each
    std::vector<std::vector<float>> b;  ///< out each
    std::vector<std::size_t> out_dims;
  };

  [[nodiscard]] ForwardCache forward(const Matrix& batch, bool training,
                                     DropoutStream* dropout) const;
  [[nodiscard]] std::shared_ptr<const F32Weights> f32_weights() const;
  /// Forward through the float32 kernels over a standardized batch;
  /// fills `probs` row-major (n x classes), softmax computed in double.
  void forward_f32(const Matrix& x_standardized,
                   std::vector<double>& probs) const;
  /// Unnormalized gradient of the weighted CE loss over `batch`, added
  /// into grad_w / grad_b; returns (loss sum, weight sum) via the out
  /// params. Pure w.r.t. the network, so chunks run concurrently.
  void batch_gradients(const Matrix& batch, std::span<const int> labels,
                       std::span<const double> cw, DropoutStream* dropout,
                       std::vector<Matrix>& grad_w,
                       std::vector<Matrix>& grad_b, double& loss_sum,
                       double& weight_sum) const;
  /// One minibatch gradient step (chunk-parallel); returns the batch loss.
  double train_batch(const Matrix& batch, std::span<const int> labels,
                     std::span<const double> cw, long step,
                     aps::ThreadPool* pool);
  [[nodiscard]] double evaluate_loss(const Matrix& x,
                                     std::span<const int> labels,
                                     std::span<const double> cw) const;

  MlpConfig config_;
  std::uint64_t dropout_seed_ = 0;  ///< derived from config seed in fit()
  std::vector<double> epoch_losses_;  ///< per-epoch val loss of last fit()
  std::vector<std::size_t> layer_sizes_;
  std::vector<Matrix> weights_;
  std::vector<Matrix> biases_;  ///< 1 x out each
  std::vector<AdamState> w_adam_;
  std::vector<AdamState> b_adam_;
  Standardizer standardizer_;
  F32Slot<F32Weights> f32_slot_;  ///< lazy float32 mirror of the weights
};

}  // namespace aps::ml
