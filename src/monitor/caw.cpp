#include "monitor/caw.h"

#include <cassert>

namespace aps::monitor {

namespace {

using aps::ControlAction;
using aps::HazardType;

bool sign_holds(SignCond cond, double value, double eps) {
  switch (cond) {
    case SignCond::kAny: return true;
    case SignCond::kPositive: return value > eps;
    case SignCond::kNegative: return value < -eps;
    case SignCond::kZero: return value >= -eps && value <= eps;
    case SignCond::kNonPositive: return value <= eps;
    case SignCond::kNonNegative: return value >= -eps;
  }
  return false;
}

std::vector<CawRule> build_rules() {
  std::vector<CawRule> rules;
  auto add = [&](int id, SignCond bg_side, SignCond bg_rate,
                 SignCond iob_rate, RuleSubject subject, bool upper,
                 const char* param, ControlAction action, bool required,
                 HazardType hazard) {
    CawRule r;
    r.id = id;
    r.bg_side = bg_side;
    r.bg_rate = bg_rate;
    r.iob_rate = iob_rate;
    r.subject = subject;
    r.upper_bound = upper;
    r.param = param;
    r.action = action;
    r.action_required = required;
    r.hazard = hazard;
    rules.push_back(std::move(r));
  };

  const auto kPos = SignCond::kPositive;
  const auto kNeg = SignCond::kNegative;
  const auto kZero = SignCond::kZero;
  const auto kAny = SignCond::kAny;
  const auto kIob = RuleSubject::kIob;
  const auto kBg = RuleSubject::kBg;
  const auto u1 = ControlAction::kDecreaseInsulin;
  const auto u2 = ControlAction::kIncreaseInsulin;
  const auto u3 = ControlAction::kStopInsulin;
  const auto u4 = ControlAction::kKeepInsulin;
  const auto H1 = HazardType::kH1TooMuchInsulin;
  const auto H2 = HazardType::kH2TooLittleInsulin;

  // Table I rows 1..12.
  add(1, kPos, kPos, kNeg, kIob, true, "beta1", u1, false, H2);
  add(2, kPos, kPos, kZero, kIob, true, "beta2", u1, false, H2);
  add(3, kPos, kNeg, kPos, kIob, true, "beta3", u1, false, H2);
  add(4, kPos, kNeg, kNeg, kIob, true, "beta4", u1, false, H2);
  add(5, kPos, kNeg, kZero, kIob, true, "beta5", u1, false, H2);
  add(6, kNeg, kNeg, kPos, kIob, false, "beta6", u2, false, H1);
  add(7, kNeg, kNeg, kNeg, kIob, false, "beta7", u2, false, H1);
  add(8, kNeg, kNeg, kZero, kIob, false, "beta8", u2, false, H1);
  add(9, kPos, kAny, kAny, kIob, true, "beta9", u3, false, H2);
  add(10, kAny, kAny, kAny, kBg, true, "beta21", u3, true, H1);
  add(11, kPos, kPos, SignCond::kNonPositive, kIob, true, "beta10", u4,
      false, H2);
  add(12, kNeg, kNeg, SignCond::kNonNegative, kIob, false, "beta11", u4,
      false, H1);
  return rules;
}

}  // namespace

const std::vector<CawRule>& caw_rules() {
  static const std::vector<CawRule> rules = build_rules();
  return rules;
}

std::map<std::string, double> default_thresholds(
    double steady_state_basal_iob_u) {
  const double ss = steady_state_basal_iob_u;
  // Without data, a clinician can only anchor the IOB bounds to the basal
  // operating point: H2-side rules (insulin too low) fire when IOB sits
  // below the basal norm; H1-side rules (insulin piling up) when above it.
  return {
      {"beta1", 0.8 * ss},  {"beta2", 0.8 * ss},  {"beta3", 0.8 * ss},
      {"beta4", 0.8 * ss},  {"beta5", 0.8 * ss},  {"beta6", 1.2 * ss},
      {"beta7", 1.2 * ss},  {"beta8", 1.2 * ss},  {"beta9", 0.8 * ss},
      {"beta10", 0.8 * ss}, {"beta11", 1.2 * ss}, {"beta21", 70.0},
  };
}

CawMonitor::CawMonitor(CawConfig config) : config_(std::move(config)) {}

bool CawMonitor::context_active(const CawRule& rule,
                                const Observation& obs) const {
  const double bg_offset = obs.bg - config_.target_bg;
  // BG-vs-target uses a zero dead-band: Table I splits strictly at BGT.
  if (!sign_holds(rule.bg_side, bg_offset, 0.0)) return false;
  if (!sign_holds(rule.bg_rate, obs.bg_rate, config_.sign_epsilon_bg)) {
    return false;
  }
  if (!sign_holds(rule.iob_rate, obs.iob_rate, config_.sign_epsilon_iob)) {
    return false;
  }
  return true;
}

bool CawMonitor::rule_violated(const CawRule& rule,
                               const Observation& obs) const {
  if (!context_active(rule, obs)) return false;

  const auto it = config_.thresholds.find(rule.param);
  assert(it != config_.thresholds.end() && "unbound CAW threshold");
  const double beta = it->second;
  const double subject =
      rule.subject == RuleSubject::kIob ? obs.iob : obs.bg;
  const bool in_band = rule.upper_bound ? subject < beta : subject > beta;
  if (!in_band) return false;

  if (rule.action_required) {
    return obs.action != rule.action;  // required action not taken
  }
  return obs.action == rule.action;  // forbidden action taken
}

Decision CawMonitor::observe(const Observation& obs) {
  Decision d;
  for (const CawRule& rule : caw_rules()) {
    if (rule_violated(rule, obs)) {
      d.alarm = true;
      d.predicted = rule.hazard;
      d.rule_id = rule.id;
      return d;
    }
  }
  return d;
}

std::unique_ptr<Monitor> CawMonitor::clone() const {
  return std::make_unique<CawMonitor>(*this);
}

aps::stl::FormulaPtr rule_to_stl(const CawRule& rule,
                                 const CawConfig& config) {
  using namespace aps::stl;
  std::vector<FormulaPtr> context;

  auto sign_pred = [&](const std::string& var, SignCond cond, double eps)
      -> FormulaPtr {
    switch (cond) {
      case SignCond::kAny:
        return nullptr;
      case SignCond::kPositive:
        return pred(var, CmpOp::kGt, eps);
      case SignCond::kNegative:
        return pred(var, CmpOp::kLt, -eps);
      case SignCond::kZero:
        return conj(pred(var, CmpOp::kGe, -eps), pred(var, CmpOp::kLe, eps));
      case SignCond::kNonPositive:
        return pred(var, CmpOp::kLe, eps);
      case SignCond::kNonNegative:
        return pred(var, CmpOp::kGe, -eps);
    }
    return nullptr;
  };

  if (auto p = sign_pred("BG", rule.bg_side, 0.0); p != nullptr) {
    // BG side is relative to BGT: express as BG > BGT / BG < BGT.
    context.push_back(rule.bg_side == SignCond::kPositive
                          ? pred("BG", CmpOp::kGt, config.target_bg)
                          : pred("BG", CmpOp::kLt, config.target_bg));
  }
  if (auto p = sign_pred("BG_rate", rule.bg_rate, config.sign_epsilon_bg);
      p != nullptr) {
    context.push_back(std::move(p));
  }
  if (auto p = sign_pred("IOB_rate", rule.iob_rate, config.sign_epsilon_iob);
      p != nullptr) {
    context.push_back(std::move(p));
  }

  const std::string subject_var =
      rule.subject == RuleSubject::kIob ? "IOB" : "BG";
  context.push_back(pred_param(subject_var,
                               rule.upper_bound ? CmpOp::kLt : CmpOp::kGt,
                               rule.param));

  const std::string action_var =
      std::string("u") +
      std::to_string(static_cast<int>(rule.action) + 1);
  FormulaPtr consequent = rule.action_required
                              ? bool_atom(action_var)
                              : negate(bool_atom(action_var));

  // G[t0, te] (context => consequent), Eq. 1.
  return globally(Interval{0, Interval::kUnbounded},
                  implies(conj(std::move(context)), std::move(consequent)));
}

}  // namespace aps::monitor
