// Context-aware safety monitor (the paper's contribution, §III & Table I).
//
// The monitor logic is the synthesized form of twelve STL safety-context
// rules. Each rule guards one control action within one region of the
// (BG, BG', IOB, IOB') context space and carries an unknown boundary
// threshold beta learned from data:
//
//   rule  context                                  guarded    hazard
//   1     BG>BGT, BG'>0, IOB'<0, IOB<b1            !u1        H2
//   2     BG>BGT, BG'>0, IOB'=0, IOB<b2            !u1        H2
//   3     BG>BGT, BG'<0, IOB'>0, IOB<b3            !u1        H2
//   4     BG>BGT, BG'<0, IOB'<0, IOB<b4            !u1        H2
//   5     BG>BGT, BG'<0, IOB'=0, IOB<b5            !u1        H2
//   6     BG<BGT, BG'<0, IOB'>0, IOB>b6            !u2        H1
//   7     BG<BGT, BG'<0, IOB'<0, IOB>b7            !u2        H1
//   8     BG<BGT, BG'<0, IOB'=0, IOB>b8            !u2        H1
//   9     BG>BGT, IOB<b9                           !u3        H2
//   10    BG<b21                                   u3 req.    H1
//   11    BG>BGT, BG'>0, IOB'<=0, IOB<b10          !u4        H2
//   12    BG<BGT, BG'<0, IOB'>=0, IOB>b11          !u4        H1
//
// CAWT = thresholds refined per patient by the learning pipeline;
// CAWOT = the same logic with profile-derived default thresholds only
// (paper §V-C3). Each rule can also be exported as an STL formula (Eq. 1)
// for documentation, tests, and offline trace checking.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "monitor/monitor.h"
#include "stl/formula.h"

namespace aps::monitor {

/// Tri-state sign constraint on a context derivative/offset.
enum class SignCond {
  kAny,
  kPositive,     ///< > +eps
  kNegative,     ///< < -eps
  kZero,         ///< within +-eps
  kNonPositive,  ///< <= +eps
  kNonNegative,  ///< >= -eps
};

/// What the learned threshold compares against.
enum class RuleSubject { kIob, kBg };

struct CawRule {
  int id = 0;
  SignCond bg_side = SignCond::kAny;   ///< BG relative to BGT
  SignCond bg_rate = SignCond::kAny;
  SignCond iob_rate = SignCond::kAny;
  RuleSubject subject = RuleSubject::kIob;
  /// true: predicate is subject < beta; false: subject > beta.
  bool upper_bound = true;
  std::string param;  ///< threshold name, e.g. "beta1"
  aps::ControlAction action = aps::ControlAction::kKeepInsulin;
  /// false: `action` must NOT be issued in context (rules 1-9, 11, 12);
  /// true: `action` is REQUIRED in context (rule 10).
  bool action_required = false;
  aps::HazardType hazard = aps::HazardType::kNone;
};

struct CawConfig {
  double target_bg = 120.0;   ///< BGT
  double sign_epsilon_bg = 0.5;   ///< dead-band for BG' sign tests (mg/dL per cycle)
  double sign_epsilon_iob = 0.01; ///< dead-band for IOB' sign tests (U per cycle)
  std::map<std::string, double> thresholds;  ///< beta values
  std::string name = "cawt";
};

/// The Table I rule set.
[[nodiscard]] const std::vector<CawRule>& caw_rules();

/// Profile-derived default thresholds (no data-driven learning), used by
/// the CAWOT baseline: IOB bounds scaled from the steady-state basal IOB,
/// BG threshold at the clinical hypo limit.
[[nodiscard]] std::map<std::string, double> default_thresholds(
    double steady_state_basal_iob_u);

class CawMonitor final : public Monitor {
 public:
  explicit CawMonitor(CawConfig config);

  void reset() override {}
  [[nodiscard]] Decision observe(const Observation& obs) override;
  [[nodiscard]] const std::string& name() const override {
    return config_.name;
  }
  [[nodiscard]] std::unique_ptr<Monitor> clone() const override;

  [[nodiscard]] const CawConfig& config() const { return config_; }
  void set_threshold(const std::string& param, double value) {
    config_.thresholds[param] = value;
  }

  /// Does `rule` fire (violation) under `obs` with the current thresholds?
  [[nodiscard]] bool rule_violated(const CawRule& rule,
                                   const Observation& obs) const;
  /// Is the rule's context (sign conditions, ignoring threshold and
  /// action) active under `obs`? Exposed for the learning pipeline.
  [[nodiscard]] bool context_active(const CawRule& rule,
                                    const Observation& obs) const;

 private:
  CawConfig config_;
};

/// Export rule `r` as the STL formula of Eq. 1 over the trace variables
/// {BG, BG_rate, IOB, IOB_rate, u1..u4}, with the threshold left as the
/// free parameter `{r.param}`.
[[nodiscard]] aps::stl::FormulaPtr rule_to_stl(const CawRule& rule,
                                               const CawConfig& config);

}  // namespace aps::monitor
