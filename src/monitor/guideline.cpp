#include "monitor/guideline.h"

namespace aps::monitor {

GuidelineMonitor::GuidelineMonitor(GuidelineConfig config)
    : config_(config) {}

void GuidelineMonitor::reset() {
  below_lambda10_steps_ = 0;
  above_lambda90_steps_ = 0;
}

Decision GuidelineMonitor::observe(const Observation& obs) {
  const auto& c = config_;
  Decision d;

  // phi1: hard range violation.
  if (obs.bg <= c.bg_low) {
    d.alarm = true;
    d.predicted = aps::HazardType::kH1TooMuchInsulin;
    d.rule_id = 1;
    return d;
  }
  if (obs.bg >= c.bg_high) {
    d.alarm = true;
    d.predicted = aps::HazardType::kH2TooLittleInsulin;
    d.rule_id = 1;
    return d;
  }

  // phi2: rate-of-change violation; the sign of the excursion picks the
  // hazard class.
  if (obs.bg_rate <= c.delta_low) {
    d.alarm = true;
    d.predicted = aps::HazardType::kH1TooMuchInsulin;
    d.rule_id = 2;
    return d;
  }
  if (obs.bg_rate >= c.delta_high) {
    d.alarm = true;
    d.predicted = aps::HazardType::kH2TooLittleInsulin;
    d.rule_id = 2;
    return d;
  }

  // phi3/phi4: percentile excursions must recover within alpha.
  below_lambda10_steps_ = obs.bg < c.lambda10 ? below_lambda10_steps_ + 1 : 0;
  above_lambda90_steps_ = obs.bg > c.lambda90 ? above_lambda90_steps_ + 1 : 0;
  if (below_lambda10_steps_ > c.alpha_steps) {
    d.alarm = true;
    d.predicted = aps::HazardType::kH1TooMuchInsulin;
    d.rule_id = 3;
    return d;
  }
  if (above_lambda90_steps_ > c.alpha_steps) {
    d.alarm = true;
    d.predicted = aps::HazardType::kH2TooLittleInsulin;
    d.rule_id = 4;
    return d;
  }
  return d;
}

std::unique_ptr<Monitor> GuidelineMonitor::clone() const {
  return std::make_unique<GuidelineMonitor>(*this);
}

}  // namespace aps::monitor
