// Medical-guidelines baseline monitor (paper §V-C1, Table III; ref [16]):
// generic safety rules with no knowledge of the controller or patient:
//
//   phi1: BG stays within [70, 180] mg/dL
//   phi2: -5 < deltaBG < 3 mg/dL per 5-minute cycle
//   phi3: BG < lambda10  =>  BG recovers above lambda10 within alpha minutes
//   phi4: BG > lambda90  =>  BG recovers below lambda90 within alpha minutes
//
// lambda10/lambda90 are the patient's 10th/90th BG percentiles estimated
// from fault-free operation; alpha defaults to 25 minutes.
#pragma once

#include <memory>
#include <string>

#include "monitor/monitor.h"

namespace aps::monitor {

struct GuidelineConfig {
  double bg_low = 70.0;
  double bg_high = 180.0;
  double delta_low = -5.0;   ///< per control cycle
  double delta_high = 3.0;
  double lambda10 = 90.0;    ///< patient 10th percentile
  double lambda90 = 180.0;   ///< patient 90th percentile
  int alpha_steps = 5;       ///< 25 minutes at 5-minute cycles
};

class GuidelineMonitor final : public Monitor {
 public:
  explicit GuidelineMonitor(GuidelineConfig config = {});

  void reset() override;
  [[nodiscard]] Decision observe(const Observation& obs) override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Monitor> clone() const override;

  [[nodiscard]] const GuidelineConfig& config() const { return config_; }

 private:
  GuidelineConfig config_;
  std::string name_ = "guideline";
  int below_lambda10_steps_ = 0;
  int above_lambda90_steps_ = 0;
};

}  // namespace aps::monitor
