#include "monitor/mitigation.h"

#include <algorithm>

namespace aps::monitor {

double mitigate_rate(const Decision& decision, const Observation& obs,
                     const MitigationConfig& config) {
  if (!decision.alarm) return obs.commanded_rate;
  const double max_rate = config.max_basal_factor * obs.basal_rate;
  switch (decision.predicted) {
    case aps::HazardType::kH1TooMuchInsulin:
      // Too much insulin on the way: cut delivery entirely.
      return 0.0;
    case aps::HazardType::kH2TooLittleInsulin: {
      if (config.policy == MitigationPolicy::kFixedMax) return max_rate;
      // Context-scaled: dose the projected excess over target through the
      // profile sensitivity, delivered across one hour.
      const double excess = std::max(0.0, obs.bg - 120.0);
      const double needed_u = obs.isf > 0.0 ? excess / obs.isf : 0.0;
      return std::clamp(obs.basal_rate + needed_u, obs.basal_rate, max_rate);
    }
    case aps::HazardType::kNone:
      break;
  }
  return obs.commanded_rate;
}

}  // namespace aps::monitor
