// Hazard-mitigation policy (paper Algorithm 1): when the monitor raises an
// alarm, the unsafe command is replaced before it reaches the pump —
// zero insulin for a predicted H1 (over-infusion), and a corrective dose
// for a predicted H2. Mitigation continues as long as the monitor keeps
// alarming; when the system re-enters the safe region the controller's
// command passes through unchanged.
//
// The paper's experiments use a *fixed maximum* corrective insulin value
// for H2 so non-context-aware monitors can be compared fairly; the
// context-dependent policy f(rho(mu(x_t)), u_t) from the HMS is available
// as an option (ablation in bench/ablation_training).
#pragma once

#include "monitor/monitor.h"

namespace aps::monitor {

enum class MitigationPolicy {
  kFixedMax,        ///< H2 -> max_basal (the paper's default)
  kContextScaled,   ///< H2 -> dose scaled by the projected BG excess
};

struct MitigationConfig {
  MitigationPolicy policy = MitigationPolicy::kFixedMax;
  double max_basal_factor = 4.0;  ///< corrective cap = factor * basal
};

/// Rate (U/h) to deliver given the monitor's decision; returns the
/// commanded rate unchanged when there is no alarm.
[[nodiscard]] double mitigate_rate(const Decision& decision,
                                   const Observation& obs,
                                   const MitigationConfig& config = {});

}  // namespace aps::monitor
