#include "monitor/ml_monitor.h"

#include <cassert>

namespace aps::monitor {

std::vector<double> ml_features(const Observation& obs) {
  return {obs.bg,
          obs.bg_rate,
          obs.iob,
          obs.iob_rate,
          obs.commanded_rate,
          static_cast<double>(static_cast<int>(obs.action))};
}

Decision decision_from_class(int predicted_class, int classes,
                             const Observation& obs) {
  Decision d;
  if (predicted_class == 0) return d;
  d.alarm = true;
  if (classes >= 3) {
    d.predicted = predicted_class == 1
                      ? aps::HazardType::kH1TooMuchInsulin
                      : aps::HazardType::kH2TooLittleInsulin;
  } else {
    // Binary model: recover the hazard side from the glucose context.
    d.predicted = obs.bg < 120.0 ? aps::HazardType::kH1TooMuchInsulin
                                 : aps::HazardType::kH2TooLittleInsulin;
  }
  return d;
}

DtMonitor::DtMonitor(std::shared_ptr<const aps::ml::DecisionTree> model,
                     int classes)
    : model_(std::move(model)), classes_(classes) {
  assert(model_ != nullptr && model_->trained());
}

Decision DtMonitor::observe(const Observation& obs) {
  const auto features = ml_features(obs);
  return decision_from_class(model_->predict(features), classes_, obs);
}

std::unique_ptr<Monitor> DtMonitor::clone() const {
  return std::make_unique<DtMonitor>(*this);
}

MlpMonitor::MlpMonitor(std::shared_ptr<const aps::ml::Mlp> model, int classes)
    : model_(std::move(model)), classes_(classes) {
  assert(model_ != nullptr && model_->trained());
}

Decision MlpMonitor::observe(const Observation& obs) {
  const auto features = ml_features(obs);
  return decision_from_class(model_->predict(features), classes_, obs);
}

void MlpMonitor::observe_batch(std::span<const Observation> obs,
                               std::span<Decision> out) {
  aps::ml::Matrix x(obs.size(), kMlFeatureCount);
  for (std::size_t r = 0; r < obs.size(); ++r) {
    const auto features = ml_features(obs[r]);
    for (std::size_t c = 0; c < features.size(); ++c) x.at(r, c) = features[c];
  }
  const std::vector<int> classes = model_->predict_batch(x);
  for (std::size_t r = 0; r < obs.size(); ++r) {
    out[r] = decision_from_class(classes[r], classes_, obs[r]);
  }
}

std::unique_ptr<Monitor> MlpMonitor::clone() const {
  return std::make_unique<MlpMonitor>(*this);
}

LstmMonitor::LstmMonitor(std::shared_ptr<const aps::ml::Lstm> model,
                         int classes)
    : model_(std::move(model)), classes_(classes), window_(kLstmWindow) {
  assert(model_ != nullptr && model_->trained());
}

void LstmMonitor::reset() { window_.clear(); }

Decision LstmMonitor::observe(const Observation& obs) {
  window_.push(ml_features(obs));
  if (!window_.full()) return {};  // not enough history yet
  aps::ml::Matrix input(window_.size(), kMlFeatureCount);
  for (std::size_t t = 0; t < window_.size(); ++t) {
    const auto& row = window_[t];
    for (std::size_t c = 0; c < row.size(); ++c) {
      input.at(t, c) = row[c];
    }
  }
  return decision_from_class(model_->predict(input), classes_, obs);
}

std::unique_ptr<Monitor> LstmMonitor::clone() const {
  return std::make_unique<LstmMonitor>(*this);
}

}  // namespace aps::monitor
