#include "monitor/ml_monitor.h"

#include <cassert>

namespace aps::monitor {

void ml_features_into(const Observation& obs, std::span<double> out) {
  out[0] = obs.bg;
  out[1] = obs.bg_rate;
  out[2] = obs.iob;
  out[3] = obs.iob_rate;
  out[4] = obs.commanded_rate;
  out[5] = static_cast<double>(static_cast<int>(obs.action));
}

std::vector<double> ml_features(const Observation& obs) {
  std::vector<double> features(kMlFeatureCount);
  ml_features_into(obs, features);
  return features;
}

Decision decision_from_class(int predicted_class, int classes,
                             const Observation& obs) {
  Decision d;
  if (predicted_class == 0) return d;
  d.alarm = true;
  if (classes >= 3) {
    d.predicted = predicted_class == 1
                      ? aps::HazardType::kH1TooMuchInsulin
                      : aps::HazardType::kH2TooLittleInsulin;
  } else {
    // Binary model: recover the hazard side from the glucose context.
    d.predicted = obs.bg < 120.0 ? aps::HazardType::kH1TooMuchInsulin
                                 : aps::HazardType::kH2TooLittleInsulin;
  }
  return d;
}

namespace {

/// One gather -> predict -> decision cycle, shared by the DT and MLP
/// batches (and the serving path): fills `scratch` with each lane's
/// features, runs one model call via `predict` (a callable mapping the
/// feature matrix to predicted classes, so callers choose the precision
/// path), maps classes to decisions. `scratch` is caller-owned so hot
/// loops reuse it across cycles.
template <typename Predict>
void predict_step(Predict&& predict, int classes, aps::ml::Matrix& scratch,
                  std::span<const Observation> obs, std::span<Decision> out) {
  if (scratch.rows() != obs.size() || scratch.cols() != kMlFeatureCount) {
    scratch = aps::ml::Matrix(obs.size(), kMlFeatureCount);
  }
  for (std::size_t r = 0; r < obs.size(); ++r) {
    ml_features_into(
        obs[r], std::span<double>(scratch.raw().data() + r * kMlFeatureCount,
                                  kMlFeatureCount));
  }
  const std::vector<int> predicted = predict(scratch);
  for (std::size_t r = 0; r < obs.size(); ++r) {
    out[r] = decision_from_class(predicted[r], classes, obs[r]);
  }
}

/// predict_step callable for a model's float64 reference path.
template <typename Model>
auto predict_f64(const Model& model) {
  return [&model](const aps::ml::Matrix& features) {
    return model.predict_batch(features);
  };
}

}  // namespace

DtMonitor::DtMonitor(std::shared_ptr<const aps::ml::DecisionTree> model,
                     int classes)
    : model_(std::move(model)), classes_(classes) {
  assert(model_ != nullptr && model_->trained());
}

Decision DtMonitor::observe(const Observation& obs) {
  const auto features = ml_features(obs);
  return decision_from_class(model_->predict(features), classes_, obs);
}

std::unique_ptr<Monitor> DtMonitor::clone() const {
  return std::make_unique<DtMonitor>(*this);
}

std::unique_ptr<MonitorBatch> DtMonitor::make_batch() const {
  return std::make_unique<DtMonitorBatch>();
}

MlpMonitor::MlpMonitor(std::shared_ptr<const aps::ml::Mlp> model, int classes)
    : model_(std::move(model)), classes_(classes) {
  assert(model_ != nullptr && model_->trained());
}

Decision MlpMonitor::observe(const Observation& obs) {
  const auto features = ml_features(obs);
  return decision_from_class(model_->predict(features), classes_, obs);
}

void MlpMonitor::observe_batch(std::span<const Observation> obs,
                               std::span<Decision> out) {
  aps::ml::Matrix scratch;
  predict_step(predict_f64(*model_), classes_, scratch, obs, out);
}

std::unique_ptr<Monitor> MlpMonitor::clone() const {
  return std::make_unique<MlpMonitor>(*this);
}

std::unique_ptr<MonitorBatch> MlpMonitor::make_batch() const {
  return std::make_unique<MlpMonitorBatch>();
}

LstmMonitor::LstmMonitor(std::shared_ptr<const aps::ml::Lstm> model,
                         int classes)
    : model_(std::move(model)), classes_(classes), window_(kLstmWindow) {
  assert(model_ != nullptr && model_->trained());
}

void LstmMonitor::reset() { window_.clear(); }

Decision LstmMonitor::observe(const Observation& obs) {
  window_.push(ml_features(obs));
  if (!window_.full()) return {};  // not enough history yet
  aps::ml::Matrix input(window_.size(), kMlFeatureCount);
  for (std::size_t t = 0; t < window_.size(); ++t) {
    const auto& row = window_[t];
    for (std::size_t c = 0; c < row.size(); ++c) {
      input.at(t, c) = row[c];
    }
  }
  return decision_from_class(model_->predict(input), classes_, obs);
}

std::unique_ptr<Monitor> LstmMonitor::clone() const {
  return std::make_unique<LstmMonitor>(*this);
}

std::unique_ptr<MonitorBatch> LstmMonitor::make_batch() const {
  return std::make_unique<LstmMonitorBatch>();
}

// ---- Lockstep batches -------------------------------------------------------

namespace {

/// Shared add_lane logic: adopt the first lane's model/classes, then only
/// accept lanes backed by the very same model instance and label space.
template <typename MonitorT, typename ModelPtr>
bool adopt_or_match(const Monitor& prototype, ModelPtr& model, int& classes,
                    std::size_t lane_count) {
  const auto* typed = dynamic_cast<const MonitorT*>(&prototype);
  if (typed == nullptr) return false;
  if (lane_count == 0) {
    model = typed->model();
    classes = typed->classes();
    return true;
  }
  return typed->model() == model && typed->classes() == classes;
}


}  // namespace

bool DtMonitorBatch::add_lane(const Monitor& prototype) {
  if (!adopt_or_match<DtMonitor>(prototype, model_, classes_, lanes_)) {
    return false;
  }
  ++lanes_;
  return true;
}

void DtMonitorBatch::remove_lane(std::size_t lane) {
  (void)lane;  // lanes are stateless and interchangeable
  --lanes_;
}

std::unique_ptr<Monitor> DtMonitorBatch::extract_lane(std::size_t) const {
  return std::make_unique<DtMonitor>(model_, classes_);
}

void DtMonitorBatch::observe_step(std::span<const Observation> obs,
                                  std::span<Decision> out) {
  predict_step(predict_f64(*model_), classes_, scratch_, obs, out);
}

void DtMonitorBatch::observe_lanes(std::span<const std::size_t>,
                                   std::span<const Observation> obs,
                                   std::span<Decision> out) {
  // Lanes carry no state, so the subset step is just a prediction over the
  // given rows; thread-local scratch keeps concurrent disjoint-subset
  // calls safe without reallocating on every serving tick.
  thread_local aps::ml::Matrix scratch;
  predict_step(predict_f64(*model_), classes_, scratch, obs, out);
}

bool MlpMonitorBatch::add_lane(const Monitor& prototype) {
  if (!adopt_or_match<MlpMonitor>(prototype, model_, classes_, lanes_)) {
    return false;
  }
  ++lanes_;
  return true;
}

void MlpMonitorBatch::remove_lane(std::size_t lane) {
  (void)lane;  // lanes are stateless and interchangeable
  --lanes_;
}

std::unique_ptr<Monitor> MlpMonitorBatch::extract_lane(std::size_t) const {
  return std::make_unique<MlpMonitor>(model_, classes_);
}

void MlpMonitorBatch::observe_step(std::span<const Observation> obs,
                                   std::span<Decision> out) {
  if (precision_ == Precision::kF32) {
    predict_step([this](const aps::ml::Matrix& f) {
      return model_->predict_batch_f32(f);
    }, classes_, scratch_, obs, out);
  } else {
    predict_step(predict_f64(*model_), classes_, scratch_, obs, out);
  }
}

void MlpMonitorBatch::observe_lanes(std::span<const std::size_t>,
                                    std::span<const Observation> obs,
                                    std::span<Decision> out) {
  thread_local aps::ml::Matrix scratch;
  if (precision_ == Precision::kF32) {
    predict_step([this](const aps::ml::Matrix& f) {
      return model_->predict_batch_f32(f);
    }, classes_, scratch, obs, out);
  } else {
    predict_step(predict_f64(*model_), classes_, scratch, obs, out);
  }
}

bool LstmMonitorBatch::add_lane(const Monitor& prototype) {
  if (!adopt_or_match<LstmMonitor>(prototype, model_, classes_,
                                   windows_.size())) {
    return false;
  }
  // Adopt the prototype's streaming state: raw rows verbatim, standardized
  // copies for the inference buffer (the same per-row transform the scalar
  // monitor applies at predict time, so decisions stay bit-identical).
  const auto& proto = static_cast<const LstmMonitor&>(prototype);
  windows_.emplace_back(kLstmWindow);
  raw_windows_.emplace_back(kLstmWindow);
  for (std::size_t t = 0; t < proto.window().size(); ++t) {
    std::vector<double> row = proto.window()[t];
    raw_windows_.back().push(row);
    model_->standardize_row(row);
    windows_.back().push(std::move(row));
  }
  return true;
}

void LstmMonitorBatch::reset_lane(std::size_t lane) {
  windows_[lane].clear();
  raw_windows_[lane].clear();
}

void LstmMonitorBatch::remove_lane(std::size_t lane) {
  windows_[lane] = std::move(windows_.back());
  windows_.pop_back();
  raw_windows_[lane] = std::move(raw_windows_.back());
  raw_windows_.pop_back();
}

std::unique_ptr<Monitor> LstmMonitorBatch::extract_lane(
    std::size_t lane) const {
  auto monitor = std::make_unique<LstmMonitor>(model_, classes_);
  monitor->set_window(raw_windows_[lane]);
  return monitor;
}

void LstmMonitorBatch::observe_step(std::span<const Observation> obs,
                                    std::span<Decision> out) {
  if (identity_.size() != windows_.size()) {
    identity_.resize(windows_.size());
    for (std::size_t l = 0; l < identity_.size(); ++l) identity_[l] = l;
  }
  observe_subset(identity_, obs, out, step_scratch_);
}

void LstmMonitorBatch::observe_lanes(std::span<const std::size_t> lanes,
                                     std::span<const Observation> obs,
                                     std::span<Decision> out) {
  // Per-thread scratch: concurrent disjoint-lane calls never share it,
  // and per-tick callers (the serving shards) reuse its buffers instead
  // of reallocating the flat window batch every cycle.
  thread_local Scratch scratch;
  observe_subset(lanes, obs, out, scratch);
}

void LstmMonitorBatch::ingest_lanes(std::span<const std::size_t> lanes,
                                    std::span<const Observation> obs) {
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const std::size_t lane = lanes[i];
    auto features = ml_features(obs[i]);
    raw_windows_[lane].push(features);
    model_->standardize_row(features);
    windows_[lane].push(std::move(features));
  }
}

void LstmMonitorBatch::observe_subset(std::span<const std::size_t> lanes,
                                      std::span<const Observation> obs,
                                      std::span<Decision> out,
                                      Scratch& scratch) {
  // Push this cycle's features (standardized once, on entry — the scalar
  // monitor re-standardizes the whole window every cycle, which is the
  // same per-row transform applied later), then run every full window
  // through one SoA forward pass; lanes still filling their window stay
  // silent.
  scratch.ready.clear();
  scratch.ready.reserve(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const std::size_t lane = lanes[i];
    auto features = ml_features(obs[i]);
    raw_windows_[lane].push(features);
    model_->standardize_row(features);
    windows_[lane].push(std::move(features));
    if (windows_[lane].full()) {
      scratch.ready.push_back(i);
    } else {
      out[i] = {};
    }
  }
  if (scratch.ready.empty()) return;

  // Lane-major flat batch: flat[(t * n + i) * features + j]. kF32 lanes
  // gather straight into the float32 buffer (standardization stays f64 in
  // the ring rows; only the inference-time cast differs).
  const std::size_t n = scratch.ready.size();
  const std::size_t steps = kLstmWindow;
  if (precision_ == Precision::kF32) {
    scratch.flat32.resize(steps * n * kMlFeatureCount);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& window = windows_[lanes[scratch.ready[i]]];
      for (std::size_t t = 0; t < steps; ++t) {
        const auto& row = window[t];
        float* dst =
            scratch.flat32.data() + (t * n + i) * kMlFeatureCount;
        for (std::size_t j = 0; j < row.size(); ++j) {
          dst[j] = static_cast<float>(row[j]);
        }
      }
    }
    model_->predict_batch_standardized_f32(scratch.flat32, n, steps,
                                           scratch.classes);
  } else {
    scratch.flat.resize(steps * n * kMlFeatureCount);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& window = windows_[lanes[scratch.ready[i]]];
      for (std::size_t t = 0; t < steps; ++t) {
        const auto& row = window[t];
        std::copy(row.begin(), row.end(),
                  scratch.flat.begin() +
                      static_cast<long>((t * n + i) * kMlFeatureCount));
      }
    }
    model_->predict_batch_standardized(scratch.flat, n, steps,
                                       scratch.classes);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t pos = scratch.ready[i];
    out[pos] = decision_from_class(scratch.classes[i], classes_, obs[pos]);
  }
}

}  // namespace aps::monitor
