#include "monitor/ml_monitor.h"

#include <cassert>

namespace aps::monitor {

void ml_features_into(const Observation& obs, std::span<double> out) {
  out[0] = obs.bg;
  out[1] = obs.bg_rate;
  out[2] = obs.iob;
  out[3] = obs.iob_rate;
  out[4] = obs.commanded_rate;
  out[5] = static_cast<double>(static_cast<int>(obs.action));
}

std::vector<double> ml_features(const Observation& obs) {
  std::vector<double> features(kMlFeatureCount);
  ml_features_into(obs, features);
  return features;
}

Decision decision_from_class(int predicted_class, int classes,
                             const Observation& obs) {
  Decision d;
  if (predicted_class == 0) return d;
  d.alarm = true;
  if (classes >= 3) {
    d.predicted = predicted_class == 1
                      ? aps::HazardType::kH1TooMuchInsulin
                      : aps::HazardType::kH2TooLittleInsulin;
  } else {
    // Binary model: recover the hazard side from the glucose context.
    d.predicted = obs.bg < 120.0 ? aps::HazardType::kH1TooMuchInsulin
                                 : aps::HazardType::kH2TooLittleInsulin;
  }
  return d;
}

namespace {

/// One gather -> predict_batch -> decision cycle, shared by the DT and MLP
/// batches (and the serving path): fills `scratch` with each lane's
/// features, runs one model call, maps classes to decisions. `scratch` is
/// caller-owned so hot loops reuse it across cycles.
template <typename Model>
void predict_step(const Model& model, int classes, aps::ml::Matrix& scratch,
                  std::span<const Observation> obs, std::span<Decision> out) {
  if (scratch.rows() != obs.size() || scratch.cols() != kMlFeatureCount) {
    scratch = aps::ml::Matrix(obs.size(), kMlFeatureCount);
  }
  for (std::size_t r = 0; r < obs.size(); ++r) {
    ml_features_into(
        obs[r], std::span<double>(scratch.raw().data() + r * kMlFeatureCount,
                                  kMlFeatureCount));
  }
  const std::vector<int> predicted = model.predict_batch(scratch);
  for (std::size_t r = 0; r < obs.size(); ++r) {
    out[r] = decision_from_class(predicted[r], classes, obs[r]);
  }
}

}  // namespace

DtMonitor::DtMonitor(std::shared_ptr<const aps::ml::DecisionTree> model,
                     int classes)
    : model_(std::move(model)), classes_(classes) {
  assert(model_ != nullptr && model_->trained());
}

Decision DtMonitor::observe(const Observation& obs) {
  const auto features = ml_features(obs);
  return decision_from_class(model_->predict(features), classes_, obs);
}

std::unique_ptr<Monitor> DtMonitor::clone() const {
  return std::make_unique<DtMonitor>(*this);
}

std::unique_ptr<MonitorBatch> DtMonitor::make_batch() const {
  return std::make_unique<DtMonitorBatch>();
}

MlpMonitor::MlpMonitor(std::shared_ptr<const aps::ml::Mlp> model, int classes)
    : model_(std::move(model)), classes_(classes) {
  assert(model_ != nullptr && model_->trained());
}

Decision MlpMonitor::observe(const Observation& obs) {
  const auto features = ml_features(obs);
  return decision_from_class(model_->predict(features), classes_, obs);
}

void MlpMonitor::observe_batch(std::span<const Observation> obs,
                               std::span<Decision> out) {
  aps::ml::Matrix scratch;
  predict_step(*model_, classes_, scratch, obs, out);
}

std::unique_ptr<Monitor> MlpMonitor::clone() const {
  return std::make_unique<MlpMonitor>(*this);
}

std::unique_ptr<MonitorBatch> MlpMonitor::make_batch() const {
  return std::make_unique<MlpMonitorBatch>();
}

LstmMonitor::LstmMonitor(std::shared_ptr<const aps::ml::Lstm> model,
                         int classes)
    : model_(std::move(model)), classes_(classes), window_(kLstmWindow) {
  assert(model_ != nullptr && model_->trained());
}

void LstmMonitor::reset() { window_.clear(); }

Decision LstmMonitor::observe(const Observation& obs) {
  window_.push(ml_features(obs));
  if (!window_.full()) return {};  // not enough history yet
  aps::ml::Matrix input(window_.size(), kMlFeatureCount);
  for (std::size_t t = 0; t < window_.size(); ++t) {
    const auto& row = window_[t];
    for (std::size_t c = 0; c < row.size(); ++c) {
      input.at(t, c) = row[c];
    }
  }
  return decision_from_class(model_->predict(input), classes_, obs);
}

std::unique_ptr<Monitor> LstmMonitor::clone() const {
  return std::make_unique<LstmMonitor>(*this);
}

std::unique_ptr<MonitorBatch> LstmMonitor::make_batch() const {
  return std::make_unique<LstmMonitorBatch>();
}

// ---- Lockstep batches -------------------------------------------------------

namespace {

/// Shared add_lane logic: adopt the first lane's model/classes, then only
/// accept lanes backed by the very same model instance and label space.
template <typename MonitorT, typename ModelPtr>
bool adopt_or_match(const Monitor& prototype, ModelPtr& model, int& classes,
                    std::size_t lane_count) {
  const auto* typed = dynamic_cast<const MonitorT*>(&prototype);
  if (typed == nullptr) return false;
  if (lane_count == 0) {
    model = typed->model();
    classes = typed->classes();
    return true;
  }
  return typed->model() == model && typed->classes() == classes;
}


}  // namespace

bool DtMonitorBatch::add_lane(const Monitor& prototype) {
  if (!adopt_or_match<DtMonitor>(prototype, model_, classes_, lanes_)) {
    return false;
  }
  ++lanes_;
  return true;
}

void DtMonitorBatch::observe_step(std::span<const Observation> obs,
                                  std::span<Decision> out) {
  predict_step(*model_, classes_, scratch_, obs, out);
}

bool MlpMonitorBatch::add_lane(const Monitor& prototype) {
  if (!adopt_or_match<MlpMonitor>(prototype, model_, classes_, lanes_)) {
    return false;
  }
  ++lanes_;
  return true;
}

void MlpMonitorBatch::observe_step(std::span<const Observation> obs,
                                   std::span<Decision> out) {
  predict_step(*model_, classes_, scratch_, obs, out);
}

bool LstmMonitorBatch::add_lane(const Monitor& prototype) {
  if (!adopt_or_match<LstmMonitor>(prototype, model_, classes_,
                                   windows_.size())) {
    return false;
  }
  windows_.emplace_back(kLstmWindow);
  return true;
}

void LstmMonitorBatch::reset_lane(std::size_t lane) {
  windows_[lane].clear();
}

void LstmMonitorBatch::observe_step(std::span<const Observation> obs,
                                    std::span<Decision> out) {
  // Push this cycle's features (standardized once, on entry — the scalar
  // monitor re-standardizes the whole window every cycle, which is the
  // same per-row transform applied later), then run every full window
  // through one SoA forward pass; lanes still filling their window stay
  // silent.
  std::vector<std::size_t> ready_lanes;
  ready_lanes.reserve(windows_.size());
  for (std::size_t lane = 0; lane < windows_.size(); ++lane) {
    auto& window = windows_[lane];
    auto features = ml_features(obs[lane]);
    model_->standardize_row(features);
    window.push(std::move(features));
    if (window.full()) {
      ready_lanes.push_back(lane);
    } else {
      out[lane] = {};
    }
  }
  if (ready_lanes.empty()) return;

  // Lane-major flat batch: flat[(t * n + i) * features + j].
  const std::size_t n = ready_lanes.size();
  const std::size_t steps = kLstmWindow;
  std::vector<double> flat(steps * n * kMlFeatureCount);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& window = windows_[ready_lanes[i]];
    for (std::size_t t = 0; t < steps; ++t) {
      const auto& row = window[t];
      std::copy(row.begin(), row.end(),
                flat.begin() +
                    static_cast<long>((t * n + i) * kMlFeatureCount));
    }
  }
  const std::vector<int> classes =
      model_->predict_batch_standardized(flat, n, steps);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lane = ready_lanes[i];
    out[lane] = decision_from_class(classes[i], classes_, obs[lane]);
  }
}

}  // namespace aps::monitor
