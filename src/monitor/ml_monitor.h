// ML-based baseline monitors (paper §V-C4): wrappers that turn a trained
// DecisionTree / Mlp / Lstm classifier into a Monitor. The feature vector
// is the current system state plus the issued control action (Eq. 7); the
// LSTM consumes a sliding window of the last k feature vectors (Eq. 8).
//
// Binary classifiers predict safe/unsafe only; the hazard *type* needed by
// the mitigation policy is recovered heuristically from the BG side
// (paper §VI-1 discusses this limitation). Multi-class models (classes=3:
// none/H1/H2) are supported for the retraining ablation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/ring_buffer.h"
#include "ml/decision_tree.h"
#include "ml/lstm.h"
#include "ml/mlp.h"
#include "monitor/monitor.h"

namespace aps::monitor {

/// Feature layout shared by training harness and runtime monitors.
inline constexpr std::size_t kMlFeatureCount = 6;
[[nodiscard]] std::vector<double> ml_features(const Observation& obs);

/// Input window length for the LSTM monitor (6 steps = 30 minutes, §V-C4).
inline constexpr std::size_t kLstmWindow = 6;

/// Map a (possibly multi-class) prediction to a monitor decision.
[[nodiscard]] Decision decision_from_class(int predicted_class, int classes,
                                           const Observation& obs);

class DtMonitor final : public Monitor {
 public:
  DtMonitor(std::shared_ptr<const aps::ml::DecisionTree> model, int classes);

  void reset() override {}
  [[nodiscard]] Decision observe(const Observation& obs) override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Monitor> clone() const override;

 private:
  std::shared_ptr<const aps::ml::DecisionTree> model_;
  int classes_;
  std::string name_ = "dt";
};

class MlpMonitor final : public Monitor {
 public:
  MlpMonitor(std::shared_ptr<const aps::ml::Mlp> model, int classes);

  void reset() override {}
  [[nodiscard]] Decision observe(const Observation& obs) override;
  /// One forward pass for the whole batch (bit-identical to the loop: the
  /// MLP is row-independent end to end).
  void observe_batch(std::span<const Observation> obs,
                     std::span<Decision> out) override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Monitor> clone() const override;

 private:
  std::shared_ptr<const aps::ml::Mlp> model_;
  int classes_;
  std::string name_ = "mlp";
};

class LstmMonitor final : public Monitor {
 public:
  LstmMonitor(std::shared_ptr<const aps::ml::Lstm> model, int classes);

  void reset() override;
  [[nodiscard]] Decision observe(const Observation& obs) override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Monitor> clone() const override;

 private:
  std::shared_ptr<const aps::ml::Lstm> model_;
  int classes_;
  aps::RingBuffer<std::vector<double>> window_;
  std::string name_ = "lstm";
};

}  // namespace aps::monitor
