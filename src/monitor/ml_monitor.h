// ML-based baseline monitors (paper §V-C4): wrappers that turn a trained
// DecisionTree / Mlp / Lstm classifier into a Monitor. The feature vector
// is the current system state plus the issued control action (Eq. 7); the
// LSTM consumes a sliding window of the last k feature vectors (Eq. 8).
//
// Binary classifiers predict safe/unsafe only; the hazard *type* needed by
// the mitigation policy is recovered heuristically from the BG side
// (paper §VI-1 discusses this limitation). Multi-class models (classes=3:
// none/H1/H2) are supported for the retraining ablation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/ring_buffer.h"
#include "ml/decision_tree.h"
#include "ml/lstm.h"
#include "ml/mlp.h"
#include "monitor/monitor.h"

namespace aps::monitor {

/// Feature layout shared by training harness and runtime monitors.
inline constexpr std::size_t kMlFeatureCount = 6;
[[nodiscard]] std::vector<double> ml_features(const Observation& obs);
/// Allocation-free variant: writes the kMlFeatureCount features into `out`.
void ml_features_into(const Observation& obs, std::span<double> out);

/// Input window length for the LSTM monitor (6 steps = 30 minutes, §V-C4).
inline constexpr std::size_t kLstmWindow = 6;

/// Map a (possibly multi-class) prediction to a monitor decision.
[[nodiscard]] Decision decision_from_class(int predicted_class, int classes,
                                           const Observation& obs);

class DtMonitor final : public Monitor {
 public:
  DtMonitor(std::shared_ptr<const aps::ml::DecisionTree> model, int classes);

  void reset() override {}
  [[nodiscard]] Decision observe(const Observation& obs) override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Monitor> clone() const override;
  [[nodiscard]] std::unique_ptr<MonitorBatch> make_batch() const override;

  [[nodiscard]] const std::shared_ptr<const aps::ml::DecisionTree>& model()
      const {
    return model_;
  }
  [[nodiscard]] int classes() const { return classes_; }

 private:
  std::shared_ptr<const aps::ml::DecisionTree> model_;
  int classes_;
  std::string name_ = "dt";
};

class MlpMonitor final : public Monitor {
 public:
  MlpMonitor(std::shared_ptr<const aps::ml::Mlp> model, int classes);

  void reset() override {}
  [[nodiscard]] Decision observe(const Observation& obs) override;
  /// One forward pass for the whole batch (bit-identical to the loop: the
  /// MLP is row-independent end to end).
  void observe_batch(std::span<const Observation> obs,
                     std::span<Decision> out) override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Monitor> clone() const override;
  [[nodiscard]] std::unique_ptr<MonitorBatch> make_batch() const override;

  [[nodiscard]] const std::shared_ptr<const aps::ml::Mlp>& model() const {
    return model_;
  }
  [[nodiscard]] int classes() const { return classes_; }

 private:
  std::shared_ptr<const aps::ml::Mlp> model_;
  int classes_;
  std::string name_ = "mlp";
};

class LstmMonitor final : public Monitor {
 public:
  LstmMonitor(std::shared_ptr<const aps::ml::Lstm> model, int classes);

  void reset() override;
  [[nodiscard]] Decision observe(const Observation& obs) override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Monitor> clone() const override;
  [[nodiscard]] std::unique_ptr<MonitorBatch> make_batch() const override;

  [[nodiscard]] const std::shared_ptr<const aps::ml::Lstm>& model() const {
    return model_;
  }
  [[nodiscard]] int classes() const { return classes_; }

  /// Raw (unstandardized) sliding window, oldest row first. Exposed so the
  /// lockstep batch can adopt a lane's streaming state (snapshot restore)
  /// and hand it back (snapshot extract).
  [[nodiscard]] const aps::RingBuffer<std::vector<double>>& window() const {
    return window_;
  }
  /// Replace the sliding window contents (lane extract / snapshot restore).
  void set_window(aps::RingBuffer<std::vector<double>> window) {
    window_ = std::move(window);
  }

 private:
  std::shared_ptr<const aps::ml::Lstm> model_;
  int classes_;
  aps::RingBuffer<std::vector<double>> window_;
  std::string name_ = "lstm";
};

// ---- Lockstep batches (sim::BatchSimulator hot path) -----------------------
//
// Each batch accepts only lanes of its own monitor kind that share the same
// model instance and label space; mixed-model campaigns fall into separate
// groups. All three route every lane's inference through one model call per
// control cycle and are bit-identical to the per-lane monitors.

/// One DecisionTree::predict_batch walk per cycle for all lanes.
class DtMonitorBatch final : public MonitorBatch {
 public:
  [[nodiscard]] bool add_lane(const Monitor& prototype) override;
  [[nodiscard]] std::size_t lanes() const override { return lanes_; }
  void reset_lane(std::size_t) override {}
  void remove_lane(std::size_t lane) override;
  [[nodiscard]] std::unique_ptr<Monitor> extract_lane(
      std::size_t lane) const override;
  void observe_step(std::span<const Observation> obs,
                    std::span<Decision> out) override;
  void observe_lanes(std::span<const std::size_t> lanes,
                     std::span<const Observation> obs,
                     std::span<Decision> out) override;

 private:
  std::shared_ptr<const aps::ml::DecisionTree> model_;
  int classes_ = 0;
  std::size_t lanes_ = 0;
  aps::ml::Matrix scratch_;  ///< per-cycle feature rows, reused
};

/// One Mlp::predict_batch forward per cycle for all lanes.
class MlpMonitorBatch final : public MonitorBatch {
 public:
  [[nodiscard]] bool add_lane(const Monitor& prototype) override;
  [[nodiscard]] std::size_t lanes() const override { return lanes_; }
  void reset_lane(std::size_t) override {}
  void remove_lane(std::size_t lane) override;
  [[nodiscard]] std::unique_ptr<Monitor> extract_lane(
      std::size_t lane) const override;
  void observe_step(std::span<const Observation> obs,
                    std::span<Decision> out) override;
  void observe_lanes(std::span<const std::size_t> lanes,
                     std::span<const Observation> obs,
                     std::span<Decision> out) override;
  void set_precision(Precision precision) override { precision_ = precision; }
  [[nodiscard]] Precision precision() const override { return precision_; }

 private:
  std::shared_ptr<const aps::ml::Mlp> model_;
  int classes_ = 0;
  std::size_t lanes_ = 0;
  Precision precision_ = Precision::kF64;
  aps::ml::Matrix scratch_;  ///< per-cycle feature rows, reused
};

/// One Lstm::predict_batch pass per cycle: every ready lane's hidden/cell
/// state advances together in SoA buffers; lanes still filling their input
/// window stay silent, exactly like the scalar monitor. Each lane keeps
/// its window twice: standardized rows feed the flat SoA inference buffer
/// (each row standardized once, on entry), raw rows support lane
/// extraction and state adoption (add_lane from a mid-stream snapshot).
class LstmMonitorBatch final : public MonitorBatch {
 public:
  [[nodiscard]] bool add_lane(const Monitor& prototype) override;
  [[nodiscard]] std::size_t lanes() const override { return windows_.size(); }
  void reset_lane(std::size_t lane) override;
  void remove_lane(std::size_t lane) override;
  [[nodiscard]] std::unique_ptr<Monitor> extract_lane(
      std::size_t lane) const override;
  void observe_step(std::span<const Observation> obs,
                    std::span<Decision> out) override;
  void observe_lanes(std::span<const std::size_t> lanes,
                     std::span<const Observation> obs,
                     std::span<Decision> out) override;
  /// The window-push half of observe_lanes without the forward pass: raw
  /// and standardized rows advance exactly as they would on a normal tick,
  /// so a degraded stretch leaves the lane's subsequent decisions
  /// bit-identical to a never-degraded stream.
  void ingest_lanes(std::span<const std::size_t> lanes,
                    std::span<const Observation> obs) override;
  void set_precision(Precision precision) override { precision_ = precision; }
  [[nodiscard]] Precision precision() const override { return precision_; }

 private:
  /// Core of observe_step/observe_lanes over an explicit lane set, with
  /// caller-owned scratch so subset calls stay safe for concurrent
  /// disjoint-lane use while the full-step sim path reuses member scratch.
  struct Scratch {
    std::vector<std::size_t> ready;  ///< positions into the lane subset
    std::vector<double> flat;        ///< lane-major standardized windows
    std::vector<float> flat32;       ///< float32 gather (kF32 lanes)
    std::vector<int> classes;        ///< predicted class per ready lane
  };
  void observe_subset(std::span<const std::size_t> lanes,
                      std::span<const Observation> obs,
                      std::span<Decision> out, Scratch& scratch);

  std::shared_ptr<const aps::ml::Lstm> model_;
  int classes_ = 0;
  Precision precision_ = Precision::kF64;
  std::vector<aps::RingBuffer<std::vector<double>>> windows_;  ///< standardized
  std::vector<aps::RingBuffer<std::vector<double>>> raw_windows_;
  std::vector<std::size_t> identity_;  ///< 0..lanes-1, for observe_step
  Scratch step_scratch_;               ///< reused by the lockstep sim path
};

}  // namespace aps::monitor
