// Safety-monitor interface (paper Fig. 1a): a wrapper around the controller
// with access only to the input/output interface — the (clean) sensor
// stream, its own IOB ledger from observed deliveries, and the commanded
// rate. Each control cycle the monitor classifies the commanded action in
// the current context and optionally raises an alarm with a predicted
// hazard class; the mitigation policy then decides the corrective command.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "common/units.h"

namespace aps::monitor {

class Monitor;

/// Everything a monitor may observe at one control cycle.
struct Observation {
  double time_min = 0.0;
  double bg = 0.0;          ///< CGM reading (clean; monitors are outside the
                            ///< fault boundary)
  double bg_rate = 0.0;     ///< delta per cycle (mg/dL per 5 min)
  double iob = 0.0;         ///< monitor-side IOB estimate (U)
  double iob_rate = 0.0;    ///< delta per cycle (U per 5 min)
  double commanded_rate = 0.0;  ///< controller output, post-fault (U/h)
  double previous_rate = 0.0;   ///< rate delivered in the previous cycle
  aps::ControlAction action = aps::ControlAction::kKeepInsulin;
  double basal_rate = 0.0;  ///< profile basal (U/h)
  double isf = 0.0;         ///< profile sensitivity (mg/dL per U)
};

struct Decision {
  bool alarm = false;
  aps::HazardType predicted = aps::HazardType::kNone;
  /// Which rule/model produced the alarm (diagnostic; -1 when not an alarm
  /// or not rule-based).
  int rule_id = -1;
};

/// Lockstep batch counterpart of Monitor, mirroring PatientBatch /
/// ControllerBatch: N independent monitor instances observing one control
/// cycle together, so monitors whose inference amortizes across lanes (one
/// Mlp::predict_batch / Lstm::predict_batch forward for the whole shard)
/// stay batched inside the simulation hot loop. Lane semantics are
/// bit-identical to calling Monitor::observe on one clone per lane (the
/// golden-trace suite enforces this); mitigation decisions remain per-lane
/// in the simulator.
class MonitorBatch {
 public:
  virtual ~MonitorBatch() = default;

  /// Append a lane configured like `prototype`; returns false when the
  /// prototype is not this batch's monitor kind (or is backed by a
  /// different model), in which case the caller places the lane in another
  /// batch.
  [[nodiscard]] virtual bool add_lane(const Monitor& prototype) = 0;

  [[nodiscard]] virtual std::size_t lanes() const = 0;

  /// Monitor::reset for one lane.
  virtual void reset_lane(std::size_t lane) = 0;

  /// One lockstep control cycle: out[l] = decision of lane l's monitor for
  /// obs[l], with per-lane state advanced exactly as Monitor::observe
  /// would.
  virtual void observe_step(std::span<const Observation> obs,
                            std::span<Decision> out) = 0;
};

class Monitor {
 public:
  virtual ~Monitor() = default;

  virtual void reset() = 0;

  [[nodiscard]] virtual Decision observe(const Observation& obs) = 0;

  /// Observe a contiguous stretch of one session's stream, writing out[i]
  /// for obs[i] (applied in order — the stateful equivalent of calling
  /// observe() obs.size() times). Monitors whose inference amortizes over
  /// a batch (e.g. one MLP forward pass for all rows) override this; the
  /// override must stay bit-identical to the sequential loop.
  virtual void observe_batch(std::span<const Observation> obs,
                             std::span<Decision> out) {
    for (std::size_t i = 0; i < obs.size(); ++i) out[i] = observe(obs[i]);
  }

  [[nodiscard]] virtual const std::string& name() const = 0;

  [[nodiscard]] virtual std::unique_ptr<Monitor> clone() const = 0;

  /// A fresh, empty lockstep batch backend of this monitor's kind, or
  /// nullptr when the monitor has no specialized implementation (the
  /// simulator then steps per-lane clones instead).
  [[nodiscard]] virtual std::unique_ptr<MonitorBatch> make_batch() const {
    return nullptr;
  }
};

/// The no-op monitor (baseline APS without safety monitoring).
class NullMonitor final : public Monitor {
 public:
  void reset() override {}
  [[nodiscard]] Decision observe(const Observation&) override { return {}; }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Monitor> clone() const override {
    return std::make_unique<NullMonitor>();
  }

 private:
  std::string name_ = "none";
};

}  // namespace aps::monitor
