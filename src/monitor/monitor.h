// Safety-monitor interface (paper Fig. 1a): a wrapper around the controller
// with access only to the input/output interface — the (clean) sensor
// stream, its own IOB ledger from observed deliveries, and the commanded
// rate. Each control cycle the monitor classifies the commanded action in
// the current context and optionally raises an alarm with a predicted
// hazard class; the mitigation policy then decides the corrective command.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/units.h"

namespace aps::monitor {

class Monitor;

/// Everything a monitor may observe at one control cycle.
struct Observation {
  double time_min = 0.0;
  double bg = 0.0;          ///< CGM reading (clean; monitors are outside the
                            ///< fault boundary)
  double bg_rate = 0.0;     ///< delta per cycle (mg/dL per 5 min)
  double iob = 0.0;         ///< monitor-side IOB estimate (U)
  double iob_rate = 0.0;    ///< delta per cycle (U per 5 min)
  double commanded_rate = 0.0;  ///< controller output, post-fault (U/h)
  double previous_rate = 0.0;   ///< rate delivered in the previous cycle
  aps::ControlAction action = aps::ControlAction::kKeepInsulin;
  double basal_rate = 0.0;  ///< profile basal (U/h)
  double isf = 0.0;         ///< profile sensitivity (mg/dL per U)
};

struct Decision {
  bool alarm = false;
  aps::HazardType predicted = aps::HazardType::kNone;
  /// Which rule/model produced the alarm (diagnostic; -1 when not an alarm
  /// or not rule-based).
  int rule_id = -1;
};

/// Numeric precision a serving lane's ML inference runs at. kF64 is the
/// reference path (bit-identical across kernel backends and to training
/// evaluation); kF32 routes monitors with a float32 path through the
/// float32 kernels (weights cast once per model generation) — tolerance-
/// pinned against kF64 (<= 1e-4 on probabilities, no decision flips on
/// the golden cohort). Monitors without a float32 path (decision tree,
/// rule-based) ignore the setting.
enum class Precision { kF64, kF32 };

/// Lockstep batch counterpart of Monitor, mirroring PatientBatch /
/// ControllerBatch: N independent monitor instances observing one control
/// cycle together, so monitors whose inference amortizes across lanes (one
/// Mlp::predict_batch / Lstm::predict_batch forward for the whole shard)
/// stay batched inside the simulation hot loop. Lane semantics are
/// bit-identical to calling Monitor::observe on one clone per lane (the
/// golden-trace suite enforces this); mitigation decisions remain per-lane
/// in the simulator.
class MonitorBatch {
 public:
  virtual ~MonitorBatch() = default;

  /// Append a lane configured like `prototype`, ADOPTING the prototype's
  /// streaming state (e.g. a partially filled LSTM input window), so a lane
  /// restored from a snapshot continues its stream exactly. Returns false
  /// when the prototype is not this batch's monitor kind (or is backed by a
  /// different model), in which case the caller places the lane in another
  /// batch. Freshly constructed monitors have empty streaming state, so
  /// the simulator's use (new lanes from factories) is unchanged.
  [[nodiscard]] virtual bool add_lane(const Monitor& prototype) = 0;

  [[nodiscard]] virtual std::size_t lanes() const = 0;

  /// Monitor::reset for one lane.
  virtual void reset_lane(std::size_t lane) = 0;

  /// Remove one lane in O(1) by moving the LAST lane into `lane`'s slot
  /// and shrinking by one (swap-with-last compaction). The caller owns any
  /// lane-index bookkeeping and must remap the moved lane accordingly.
  virtual void remove_lane(std::size_t lane) = 0;

  /// A scalar Monitor equal to the lane's current state (streaming window,
  /// recovery counters, ...): feeding the extracted monitor continues the
  /// lane's decision stream bit-identically. Used for session snapshots.
  [[nodiscard]] virtual std::unique_ptr<Monitor> extract_lane(
      std::size_t lane) const = 0;

  /// One lockstep control cycle: out[l] = decision of lane l's monitor for
  /// obs[l], with per-lane state advanced exactly as Monitor::observe
  /// would.
  virtual void observe_step(std::span<const Observation> obs,
                            std::span<Decision> out) = 0;

  /// One control cycle for a SUBSET of lanes: out[i] = decision of lane
  /// lanes[i] for obs[i]; unlisted lanes are untouched (their state does
  /// not advance). Lane results must not depend on how the caller
  /// partitions the subset, and implementations must keep all mutable
  /// per-call scratch local or thread-local so concurrent calls over
  /// DISJOINT lane sets are safe — the serving engine splits large ticks
  /// into chunks that run on different threads against the same batch.
  virtual void observe_lanes(std::span<const std::size_t> lanes,
                             std::span<const Observation> obs,
                             std::span<Decision> out) = 0;

  /// Advance the streaming state of a SUBSET of lanes WITHOUT producing
  /// decisions (no inference). The serving engine's overload policy uses
  /// this on degraded ticks: a cheap twin monitor answers the tick while
  /// the expensive primary still ingests the observation, so its stream
  /// (e.g. the LSTM input window) stays bit-identical to a never-degraded
  /// run once pressure subsides. Stateless monitors need nothing here —
  /// the default is a no-op; stateful batches (LSTM) override. Same
  /// disjoint-subset concurrency contract as observe_lanes.
  virtual void ingest_lanes(std::span<const std::size_t> lanes,
                            std::span<const Observation> obs) {
    (void)lanes;
    (void)obs;
  }

  /// Select the inference precision for every lane of this batch. Default
  /// is a no-op (kF64 semantics): only batches with a float32 kernel path
  /// (MLP / LSTM) override it. Call before the first observe; switching
  /// precision mid-stream is allowed (lane streaming state is precision-
  /// neutral) but changes subsequent decisions only within the float32
  /// tolerance.
  virtual void set_precision(Precision precision) { (void)precision; }
  [[nodiscard]] virtual Precision precision() const {
    return Precision::kF64;
  }
};

class Monitor {
 public:
  virtual ~Monitor() = default;

  virtual void reset() = 0;

  [[nodiscard]] virtual Decision observe(const Observation& obs) = 0;

  /// Observe a contiguous stretch of one session's stream, writing out[i]
  /// for obs[i] (applied in order — the stateful equivalent of calling
  /// observe() obs.size() times). Monitors whose inference amortizes over
  /// a batch (e.g. one MLP forward pass for all rows) override this; the
  /// override must stay bit-identical to the sequential loop.
  virtual void observe_batch(std::span<const Observation> obs,
                             std::span<Decision> out) {
    for (std::size_t i = 0; i < obs.size(); ++i) out[i] = observe(obs[i]);
  }

  [[nodiscard]] virtual const std::string& name() const = 0;

  [[nodiscard]] virtual std::unique_ptr<Monitor> clone() const = 0;

  /// A fresh, empty lockstep batch backend of this monitor's kind, or
  /// nullptr when the monitor has no specialized implementation (the
  /// simulator then steps per-lane clones instead).
  [[nodiscard]] virtual std::unique_ptr<MonitorBatch> make_batch() const {
    return nullptr;
  }
};

/// Fallback batch backend: per-lane clones stepped through the virtual
/// scalar interface. Accepts every monitor kind (guideline, MPC, CAW, ...);
/// both the simulator and the serving engine use it for monitors without a
/// specialized SoA implementation. Cloning adopts the prototype's state.
class PerLaneMonitorBatch final : public MonitorBatch {
 public:
  [[nodiscard]] bool add_lane(const Monitor& prototype) override {
    lanes_.push_back(prototype.clone());
    return true;
  }
  [[nodiscard]] std::size_t lanes() const override { return lanes_.size(); }
  void reset_lane(std::size_t lane) override { lanes_[lane]->reset(); }
  void remove_lane(std::size_t lane) override {
    lanes_[lane] = std::move(lanes_.back());
    lanes_.pop_back();
  }
  [[nodiscard]] std::unique_ptr<Monitor> extract_lane(
      std::size_t lane) const override {
    return lanes_[lane]->clone();
  }
  void observe_step(std::span<const Observation> obs,
                    std::span<Decision> out) override {
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      out[l] = lanes_[l]->observe(obs[l]);
    }
  }
  void observe_lanes(std::span<const std::size_t> lanes,
                     std::span<const Observation> obs,
                     std::span<Decision> out) override {
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      out[i] = lanes_[lanes[i]]->observe(obs[i]);
    }
  }
  void ingest_lanes(std::span<const std::size_t> lanes,
                    std::span<const Observation> obs) override {
    // Scalar monitors have no ingest/infer split, so advancing state means
    // observing and discarding the decision (rule monitors carry recovery
    // counters that must keep moving through a degraded stretch).
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      (void)lanes_[lanes[i]]->observe(obs[i]);
    }
  }

 private:
  std::vector<std::unique_ptr<Monitor>> lanes_;
};

/// The no-op monitor (baseline APS without safety monitoring).
class NullMonitor final : public Monitor {
 public:
  void reset() override {}
  [[nodiscard]] Decision observe(const Observation&) override { return {}; }
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Monitor> clone() const override {
    return std::make_unique<NullMonitor>();
  }

 private:
  std::string name_ = "none";
};

}  // namespace aps::monitor
