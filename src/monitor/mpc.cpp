#include "monitor/mpc.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace aps::monitor {

namespace {
constexpr double kUPerHourToMicroUPerMin = 1.0e6 / 60.0;
}

MpcMonitor::MpcMonitor(MpcConfig config) : config_(config) {}

void MpcMonitor::reset() {
  isc_ = 0.0;
  ip_ = 0.0;
  ieff_ = 0.0;
  initialized_ = false;
  last_predicted_ = 0.0;
}

double MpcMonitor::project(double bg, double rate_u_per_h, double dt_min,
                           bool commit) {
  const auto& c = config_;
  const double id = std::max(0.0, rate_u_per_h) * kUPerHourToMicroUPerMin;
  double isc = isc_;
  double ip = ip_;
  double ieff = ieff_;
  double g = bg;
  const int substeps = std::max(1, static_cast<int>(std::lround(dt_min)));
  const double h = dt_min / substeps;
  for (int s = 0; s < substeps; ++s) {
    const double d_isc = -isc / c.tau1 + id / (c.tau1 * c.ci);
    const double d_ip = (isc - ip) / c.tau2;
    const double d_ieff = -c.p2 * ieff + c.p2 * c.si * ip;
    const double d_g = -(c.gezi + ieff) * g + c.egp;
    isc += h * d_isc;
    ip += h * d_ip;
    ieff += h * d_ieff;
    g += h * d_g;
  }
  if (commit) {
    isc_ = isc;
    ip_ = ip;
    ieff_ = ieff;
  }
  return std::clamp(g, kBgMin, kBgMax);
}

Decision MpcMonitor::observe(const Observation& obs) {
  const auto& c = config_;
  if (!initialized_) {
    // Start the insulin compartments at the steady state of the observed
    // basal so early cycles are not biased by an empty depot.
    const double id = obs.basal_rate * kUPerHourToMicroUPerMin;
    isc_ = id / c.ci;
    ip_ = isc_;
    ieff_ = c.si * ip_;
    initialized_ = true;
  }

  // Project over the horizon assuming the commanded rate is held.
  const double predicted =
      project(obs.bg, obs.commanded_rate, c.horizon_min, /*commit=*/false);
  last_predicted_ = predicted;

  // Advance internal state by one control cycle under the commanded rate
  // (the monitor cannot see the final delivered value before acting).
  (void)project(obs.bg, obs.commanded_rate, kControlPeriodMin,
                /*commit=*/true);

  Decision d;
  if (predicted <= c.bg_low) {
    d.alarm = true;
    d.predicted = aps::HazardType::kH1TooMuchInsulin;
    d.rule_id = 0;
  } else if (predicted >= c.bg_high) {
    d.alarm = true;
    d.predicted = aps::HazardType::kH2TooLittleInsulin;
    d.rule_id = 0;
  }
  return d;
}

std::unique_ptr<Monitor> MpcMonitor::clone() const {
  return std::make_unique<MpcMonitor>(*this);
}

}  // namespace aps::monitor
