// Model-predictive baseline monitor (paper §V-C2, Eq. 6; refs [68][69]).
//
// Uses the Bergman-Sherwin one-compartment population model
//
//   dBG/dt = -(GEZI + IEFF) * BG + EGP + RA(t)
//
// with population-average parameters (not patient-specific). The monitor
// integrates its own insulin-effect estimate from the commanded rates and
// projects BG forward over a short horizon after executing the command;
// it alarms when the projection leaves the guideline range [70, 180].
#pragma once

#include <memory>
#include <string>

#include "monitor/monitor.h"

namespace aps::monitor {

struct MpcConfig {
  // Population-average IVP parameters.
  double si = 7.0e-4;    ///< mL/uU/min
  double gezi = 2.0e-3;  ///< 1/min
  double egp = 1.4;      ///< mg/dL/min
  double ci = 1200.0;    ///< mL/min
  double p2 = 0.012;     ///< 1/min
  double tau1 = 60.0;    ///< min
  double tau2 = 50.0;    ///< min
  double horizon_min = 30.0;  ///< prediction lookahead
  double bg_low = 70.0;
  double bg_high = 180.0;
};

class MpcMonitor final : public Monitor {
 public:
  explicit MpcMonitor(MpcConfig config = {});

  void reset() override;
  [[nodiscard]] Decision observe(const Observation& obs) override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::unique_ptr<Monitor> clone() const override;

  /// BG projection from the last observe() call (for tests/examples).
  [[nodiscard]] double last_predicted_bg() const { return last_predicted_; }

 private:
  /// Advance the internal insulin compartments by dt under `rate` and
  /// return the projected BG starting at `bg` (does not mutate state when
  /// `commit` is false).
  [[nodiscard]] double project(double bg, double rate_u_per_h, double dt_min,
                               bool commit);

  MpcConfig config_;
  std::string name_ = "mpc";
  double isc_ = 0.0;
  double ip_ = 0.0;
  double ieff_ = 0.0;
  bool initialized_ = false;
  double last_predicted_ = 0.0;
};

}  // namespace aps::monitor
