#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace aps::net {

namespace {

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

BlockingClient::BlockingClient(const std::string& host, std::uint16_t port,
                               const std::string& client_name)
    : decoder_("server " + host + ":" + std::to_string(port)) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    throw aps::io::IoError(errno_message("socket"));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw aps::io::IoError("bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string msg = errno_message("connect");
    ::close(fd_);
    fd_ = -1;
    throw aps::io::IoError(msg + " to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  send_frame(encode(HelloMsg{.protocol_version = kNetVersion,
                             .client_name = client_name}));
  const HelloAckMsg ack = decode_hello_ack(wait_for(FrameKind::kHelloAck));
  if (ack.protocol_version != kNetVersion) {
    throw ProtocolError("server speaks protocol version " +
                        std::to_string(ack.protocol_version) +
                        ", this client speaks " +
                        std::to_string(kNetVersion));
  }
  generation_ = ack.generation;
}

BlockingClient::~BlockingClient() {
  if (fd_ >= 0) ::close(fd_);
}

void BlockingClient::send_raw(const void* data, std::size_t n) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd_, bytes + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw aps::io::IoError(errno_message("send"));
    }
    sent += static_cast<std::size_t>(w);
  }
  bytes_sent_ += n;
}

void BlockingClient::send_frame(const Frame& frame) {
  const std::vector<std::uint8_t> bytes = encode_frame(frame);
  send_raw(bytes.data(), bytes.size());
}

Frame BlockingClient::recv_frame() {
  for (;;) {
    if (std::optional<Frame> frame = decoder_.next()) {
      return *std::move(frame);
    }
    std::uint8_t buf[16 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n == 0) {
      throw aps::io::IoError("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw aps::io::IoError(errno_message("recv"));
    }
    bytes_received_ += static_cast<std::uint64_t>(n);
    decoder_.feed({buf, static_cast<std::size_t>(n)});
  }
}

Frame BlockingClient::wait_for(FrameKind kind) {
  return wait_for_any(kind, kind);
}

Frame BlockingClient::wait_for_any(FrameKind a, FrameKind b) {
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    if (it->kind == a || it->kind == b) {
      Frame frame = std::move(*it);
      inbox_.erase(it);
      return frame;
    }
  }
  for (;;) {
    Frame frame = recv_frame();
    if (frame.kind == a || frame.kind == b) return frame;
    if (frame.kind == FrameKind::kError) {
      const ErrorMsg err = decode_error(frame);
      throw ProtocolError("server error " + std::to_string(err.code) + ": " +
                          err.message);
    }
    inbox_.push_back(std::move(frame));
  }
}

void BlockingClient::open_session(std::uint64_t token,
                                  const std::string& patient_id,
                                  const std::string& monitor,
                                  std::int32_t patient_index,
                                  std::uint32_t max_retries) {
  for (std::uint32_t attempt = 0;; ++attempt) {
    send_frame(encode(OpenSessionMsg{.token = token,
                                     .patient_id = patient_id,
                                     .monitor = monitor,
                                     .patient_index = patient_index}));
    Frame frame = wait_for_any(FrameKind::kOpenAck, FrameKind::kReject);
    if (frame.kind == FrameKind::kReject) {
      RejectMsg reject = decode_reject(frame);
      if (reject.token != token) {
        throw ProtocolError("reject for token " +
                            std::to_string(reject.token) + ", expected " +
                            std::to_string(token));
      }
      if (attempt < max_retries) {
        // Honor the server's backoff hint (capped so a hostile hint
        // cannot park the client for minutes).
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<std::uint32_t>(reject.retry_after_ms, 1000)));
        continue;
      }
      throw RejectedError(std::move(reject));
    }
    const OpenAckMsg ack = decode_open_ack(frame);
    if (ack.token != token) {
      throw ProtocolError("open ack for token " + std::to_string(ack.token) +
                          ", expected " + std::to_string(token));
    }
    if (!ack.ok) {
      throw ProtocolError("server refused session: " + ack.error);
    }
    return;
  }
}

void BlockingClient::send_tick(std::uint64_t token, std::uint64_t seq,
                               const aps::monitor::Observation& obs) {
  send_frame(encode(TickMsg{.token = token, .seq = seq, .obs = obs}));
}

DecisionMsg BlockingClient::recv_decision() {
  return decode_decision(wait_for(FrameKind::kDecision));
}

TickReply BlockingClient::recv_reply() {
  Frame frame = wait_for_any(FrameKind::kDecision, FrameKind::kReject);
  TickReply reply;
  if (frame.kind == FrameKind::kDecision) {
    reply.served = true;
    reply.decision = decode_decision(frame);
  } else {
    reply.served = false;
    reply.reject = decode_reject(frame);
  }
  return reply;
}

CloseAckMsg BlockingClient::close_session(std::uint64_t token) {
  send_frame(encode(CloseSessionMsg{.token = token}));
  const CloseAckMsg ack = decode_close_ack(wait_for(FrameKind::kCloseAck));
  if (ack.token != token) {
    throw ProtocolError("close ack for token " + std::to_string(ack.token) +
                        ", expected " + std::to_string(token));
  }
  return ack;
}

}  // namespace aps::net
