// Minimal blocking TCP client for the ingest front door: one socket, one
// FrameDecoder, synchronous helpers for the handshake and per-session
// calls. Decisions arrive at the server's tick cadence rather than
// per-request, so recv-side helpers pull from an inbox that tolerates
// frames arriving out of the order the caller asks for them (e.g. a
// CloseAck landing before the last few Decision frames are consumed).
// Used by examples/net_client, the stress test, and bench/net_ingest —
// production clients would speak the protocol directly.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "net/protocol.h"

namespace aps::net {

/// The server answered with a typed kReject frame (admission shed) and
/// the client is out of retries. Carries the full reject so callers can
/// honor retry_after_ms themselves.
class RejectedError : public aps::io::IoError {
 public:
  explicit RejectedError(RejectMsg reject)
      : IoError("server shed request (reason " +
                std::to_string(reject.reason) + "): " + reject.message),
        reject_(std::move(reject)) {}
  [[nodiscard]] const RejectMsg& reject() const { return reject_; }

 private:
  RejectMsg reject_;
};

/// Either a decision or a typed reject for one tick (exactly one of the
/// two messages is meaningful, selected by `served`).
struct TickReply {
  bool served = false;
  DecisionMsg decision;  ///< valid when served
  RejectMsg reject;      ///< valid when !served
};

class BlockingClient {
 public:
  /// Connect + kHello handshake; throws IoError/ProtocolError on failure.
  BlockingClient(const std::string& host, std::uint16_t port,
                 const std::string& client_name = "client");
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Engine model generation reported in the server's HelloAck.
  [[nodiscard]] std::uint64_t server_generation() const {
    return generation_;
  }

  /// kOpenSession -> kOpenAck; throws ProtocolError when the server
  /// refuses (unknown monitor, duplicate patient, ...). A kReject reply
  /// (admission shed) is retried up to max_retries times, backing off by
  /// the server's retry_after_ms hint each time; once retries are
  /// exhausted it throws RejectedError.
  void open_session(std::uint64_t token, const std::string& patient_id,
                    const std::string& monitor, std::int32_t patient_index,
                    std::uint32_t max_retries = 0);

  /// Fire-and-forget: the decision comes back on the server's tick
  /// cadence; collect it with recv_decision().
  void send_tick(std::uint64_t token, std::uint64_t seq,
                 const aps::monitor::Observation& obs);

  /// Next kDecision frame (blocking). Other frame kinds received while
  /// waiting are parked in the inbox for their own helpers. Use
  /// recv_reply() against a shedding server — a kReject would park here
  /// forever.
  [[nodiscard]] DecisionMsg recv_decision();

  /// Next decision OR typed reject, whichever the server sent first —
  /// the receive call for overload-aware clients.
  [[nodiscard]] TickReply recv_reply();

  /// kCloseSession -> kCloseAck with the session's final stats.
  CloseAckMsg close_session(std::uint64_t token);

  /// Raw escape hatches (used by the fuzz/stress tests).
  void send_frame(const Frame& frame);
  void send_raw(const void* data, std::size_t n);
  [[nodiscard]] Frame recv_frame();

  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_;
  }

 private:
  /// Block until a frame of `kind` arrives; parks everything else.
  Frame wait_for(FrameKind kind);
  /// Block until a frame of either kind arrives; parks everything else.
  Frame wait_for_any(FrameKind a, FrameKind b);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::deque<Frame> inbox_;
  std::uint64_t generation_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace aps::net
