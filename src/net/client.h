// Minimal blocking TCP client for the ingest front door: one socket, one
// FrameDecoder, synchronous helpers for the handshake and per-session
// calls. Decisions arrive at the server's tick cadence rather than
// per-request, so recv-side helpers pull from an inbox that tolerates
// frames arriving out of the order the caller asks for them (e.g. a
// CloseAck landing before the last few Decision frames are consumed).
// Used by examples/net_client, the stress test, and bench/net_ingest —
// production clients would speak the protocol directly.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "net/protocol.h"

namespace aps::net {

class BlockingClient {
 public:
  /// Connect + kHello handshake; throws IoError/ProtocolError on failure.
  BlockingClient(const std::string& host, std::uint16_t port,
                 const std::string& client_name = "client");
  ~BlockingClient();

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Engine model generation reported in the server's HelloAck.
  [[nodiscard]] std::uint64_t server_generation() const {
    return generation_;
  }

  /// kOpenSession -> kOpenAck; throws ProtocolError when the server
  /// refuses (unknown monitor, duplicate patient, ...).
  void open_session(std::uint64_t token, const std::string& patient_id,
                    const std::string& monitor, std::int32_t patient_index);

  /// Fire-and-forget: the decision comes back on the server's tick
  /// cadence; collect it with recv_decision().
  void send_tick(std::uint64_t token, std::uint64_t seq,
                 const aps::monitor::Observation& obs);

  /// Next kDecision frame (blocking). Other frame kinds received while
  /// waiting are parked in the inbox for their own helpers.
  [[nodiscard]] DecisionMsg recv_decision();

  /// kCloseSession -> kCloseAck with the session's final stats.
  CloseAckMsg close_session(std::uint64_t token);

  /// Raw escape hatches (used by the fuzz/stress tests).
  void send_frame(const Frame& frame);
  void send_raw(const void* data, std::size_t n);
  [[nodiscard]] Frame recv_frame();

  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t bytes_received() const {
    return bytes_received_;
  }

 private:
  /// Block until a frame of `kind` arrives; parks everything else.
  Frame wait_for(FrameKind kind);

  int fd_ = -1;
  FrameDecoder decoder_;
  std::deque<Frame> inbox_;
  std::uint64_t generation_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace aps::net
