#include "net/listfile.h"

#include <cstring>
#include <deque>
#include <unordered_map>

#include "net/protocol.h"

namespace aps::net {

namespace {

void write_record_header(std::ofstream& out, const std::string& path,
                         RecordKind kind,
                         const std::vector<std::uint8_t>& payload) {
  const auto kind_byte = static_cast<std::uint8_t>(kind);
  std::uint32_t crc = aps::io::crc32(&kind_byte, 1);
  crc = aps::io::crc32(payload.data(), payload.size(), crc);
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.put(static_cast<char>(kind_byte));
  out.write(reinterpret_cast<const char*>(&len), sizeof len);
  out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
  if (!payload.empty()) {
    out.write(reinterpret_cast<const char*>(payload.data()),
              static_cast<std::streamsize>(payload.size()));
  }
  if (!out) {
    throw aps::io::IoError("write failure on listfile '" + path + "'");
  }
}

}  // namespace

// ---- ListfileWriter --------------------------------------------------------

ListfileWriter::ListfileWriter(const std::string& path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) {
    throw aps::io::IoError("cannot open listfile '" + path +
                           "' for writing");
  }
  out_.write(reinterpret_cast<const char*>(&kListfileMagic),
             sizeof kListfileMagic);
  out_.write(reinterpret_cast<const char*>(&kListfileVersion),
             sizeof kListfileVersion);
  if (!out_) {
    throw aps::io::IoError("write failure on listfile '" + path_ + "'");
  }
}

ListfileWriter::~ListfileWriter() {
  try {
    finish();
  } catch (const aps::io::IoError&) {
    // Destructors must not throw; an explicit finish() reports failures.
  }
}

void ListfileWriter::append(RecordKind kind,
                            aps::io::BinaryWriter&& payload) {
  if (finished_) {
    throw aps::io::IoError("listfile '" + path_ +
                           "' already finished, cannot append");
  }
  const std::vector<std::uint8_t> bytes = payload.take();
  write_record_header(out_, path_, kind, bytes);
  if (kind == RecordKind::kSync) return;
  ++records_;
  if (++since_sync_ >= kSyncInterval) {
    write_sync();
  }
}

void ListfileWriter::write_sync() {
  aps::io::BinaryWriter payload;
  payload.u64(records_);
  append(RecordKind::kSync, std::move(payload));
  since_sync_ = 0;
  // Durability point: everything up to this sync reaches the OS now, so
  // a recorder killed mid-record (no destructor, no finish()) still
  // leaves a file replayable through the last sync — not whatever the
  // stdio buffer happened to hold.
  out_.flush();
  if (!out_) {
    throw aps::io::IoError("flush failure on listfile '" + path_ + "'");
  }
}

void ListfileWriter::record_open(const OpenRecord& record) {
  aps::io::BinaryWriter payload;
  payload.u64(record.key);
  payload.str(record.patient_id);
  payload.str(record.monitor);
  payload.i32(record.patient_index);
  append(RecordKind::kOpen, std::move(payload));
}

void ListfileWriter::record_tick(const TickRecord& record) {
  aps::io::BinaryWriter payload;
  payload.u64(record.key);
  payload.u64(record.seq);
  write_observation(payload, record.obs);
  append(RecordKind::kTick, std::move(payload));
}

void ListfileWriter::record_decision(const DecisionRecord& record) {
  aps::io::BinaryWriter payload;
  payload.u64(record.key);
  payload.u64(record.seq);
  write_decision(payload, record.decision);
  append(RecordKind::kDecision, std::move(payload));
}

void ListfileWriter::record_close(const CloseRecord& record) {
  aps::io::BinaryWriter payload;
  payload.u64(record.key);
  append(RecordKind::kClose, std::move(payload));
}

void ListfileWriter::finish() {
  if (finished_) return;
  write_sync();
  finished_ = true;
  out_.flush();
  if (!out_) {
    throw aps::io::IoError("flush failure on listfile '" + path_ + "'");
  }
}

// ---- ListfileReader --------------------------------------------------------

ListfileReader::ListfileReader(const std::string& path,
                               bool tolerate_truncation)
    : in_(path), tolerate_truncation_(tolerate_truncation) {
  const std::uint32_t magic = in_.u32();
  if (magic != kListfileMagic) {
    throw aps::io::IoError("'" + path +
                           "' is not an APS listfile (bad magic number)");
  }
  const std::uint32_t version = in_.u32();
  if (version != kListfileVersion) {
    throw aps::io::IoError(
        "unsupported listfile version " + std::to_string(version) + " in '" +
        path + "' (this build reads version " +
        std::to_string(kListfileVersion) + ")");
  }
}

std::optional<ListfileRecord> ListfileReader::next() {
  if (truncated_ || in_.remaining() == 0) {
    return std::nullopt;  // clean end of log (or tolerated ragged tail)
  }
  // The two truncation shapes a killed writer can leave — EOF inside the
  // 9-byte record header, or a payload shorter than the header promised —
  // are a clean stop in tolerant mode. Everything else (unknown kind,
  // hostile length, CRC mismatch on a COMPLETE record) cannot be produced
  // by truncation and always throws.
  if (in_.remaining() < 1 + sizeof(std::uint32_t) * 2) {
    if (tolerate_truncation_) {
      truncated_ = true;
      return std::nullopt;
    }
    throw aps::io::IoError("truncated listfile '" + in_.path() +
                           "': partial record header at offset " +
                           std::to_string(in_.consumed()));
  }
  const std::uint8_t kind_byte = in_.u8();
  if (kind_byte == 0 || kind_byte > kRecordKindMax) {
    throw aps::io::IoError("corrupt listfile '" + in_.path() +
                           "': unknown record kind " +
                           std::to_string(kind_byte));
  }
  const std::uint32_t len = in_.u32();
  if (len > kMaxRecordPayload) {
    throw aps::io::IoError("corrupt listfile '" + in_.path() +
                           "': implausible record length " +
                           std::to_string(len));
  }
  const std::uint32_t want_crc = in_.u32();
  if (len > in_.remaining()) {
    if (tolerate_truncation_) {
      truncated_ = true;
      return std::nullopt;
    }
    throw aps::io::IoError("truncated listfile '" + in_.path() +
                           "': record needs " + std::to_string(len) +
                           " bytes but only " +
                           std::to_string(in_.remaining()) + " remain");
  }
  std::vector<std::uint8_t> payload(len);
  if (len > 0) in_.bytes(payload.data(), len);
  std::uint32_t crc = aps::io::crc32(&kind_byte, 1);
  crc = aps::io::crc32(payload.data(), payload.size(), crc);
  if (crc != want_crc) {
    throw aps::io::IoError("corrupt listfile '" + in_.path() +
                           "': record CRC mismatch for record " +
                           std::to_string(records_seen_));
  }
  ++records_seen_;

  aps::io::BinaryReader body(payload, in_.path() + ":record");
  ListfileRecord record;
  record.kind = static_cast<RecordKind>(kind_byte);
  switch (record.kind) {
    case RecordKind::kOpen:
      record.open.key = body.u64();
      record.open.patient_id = body.str();
      record.open.monitor = body.str();
      record.open.patient_index = body.i32();
      break;
    case RecordKind::kTick:
      record.tick.key = body.u64();
      record.tick.seq = body.u64();
      record.tick.obs = read_observation(body);
      break;
    case RecordKind::kDecision:
      record.decision.key = body.u64();
      record.decision.seq = body.u64();
      record.decision.decision = read_decision(body);
      break;
    case RecordKind::kClose:
      record.close.key = body.u64();
      break;
    case RecordKind::kSync:
      record.sync.records = body.u64();
      break;
  }
  if (body.remaining() != 0) {
    throw aps::io::IoError("corrupt listfile '" + in_.path() + "': " +
                           std::to_string(body.remaining()) +
                           " trailing bytes in record " +
                           std::to_string(records_seen_ - 1));
  }
  return record;
}

// ---- Replay ----------------------------------------------------------------

namespace {

bool decisions_identical(const aps::monitor::Decision& a,
                         const aps::monitor::Decision& b) {
  return a.alarm == b.alarm && a.predicted == b.predicted &&
         a.rule_id == b.rule_id;
}

struct ReplaySession {
  aps::serve::SessionId session = 0;
  std::deque<aps::monitor::Decision> recorded;  ///< from decision records
  std::deque<aps::monitor::Decision> produced;  ///< from the re-driven engine
};

void drain_matches(ReplaySession& rs, ReplayResult& result) {
  while (!rs.recorded.empty() && !rs.produced.empty()) {
    ++result.compared;
    if (!decisions_identical(rs.recorded.front(), rs.produced.front())) {
      ++result.mismatches;
    }
    rs.recorded.pop_front();
    rs.produced.pop_front();
  }
}

}  // namespace

ReplayResult replay_listfile(const std::string& path,
                             aps::serve::MonitorEngine& engine,
                             const ReplayOptions& options) {
  ListfileReader reader(path, options.tolerate_truncation);
  ReplayResult result;

  std::unordered_map<std::uint64_t, ReplaySession> sessions;
  // Pending ticks in file order; flushed through the engine whenever a
  // session boundary or the batch ceiling requires it. Batch composition
  // need not match the live run — monitors are per-session, so only
  // per-session order matters for bit-identical decisions.
  std::vector<aps::serve::SessionInput> batch;
  std::vector<std::uint64_t> batch_keys;

  const auto flush = [&] {
    if (batch.empty()) return;
    const std::vector<aps::monitor::Decision> decisions = engine.feed(batch);
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      auto it = sessions.find(batch_keys[i]);
      if (it == sessions.end()) continue;
      if (options.verify) {
        it->second.produced.push_back(decisions[i]);
        drain_matches(it->second, result);
      }
    }
    result.ticks += batch.size();
    batch.clear();
    batch_keys.clear();
  };

  while (auto record = reader.next()) {
    switch (record->kind) {
      case RecordKind::kOpen: {
        flush();  // the new session's ticks must not precede its open
        ReplaySession rs;
        rs.session = engine.open_session(record->open.patient_id,
                                         record->open.monitor,
                                         record->open.patient_index);
        if (!sessions.emplace(record->open.key, rs).second) {
          throw aps::io::IoError("corrupt listfile '" + path +
                                 "': duplicate open for session key " +
                                 std::to_string(record->open.key));
        }
        ++result.sessions_opened;
        break;
      }
      case RecordKind::kTick: {
        auto it = sessions.find(record->tick.key);
        if (it == sessions.end()) {
          throw aps::io::IoError(
              "corrupt listfile '" + path + "': tick for unknown session key " +
              std::to_string(record->tick.key));
        }
        batch.push_back({it->second.session, record->tick.obs});
        batch_keys.push_back(record->tick.key);
        if (batch.size() >= options.max_batch) flush();
        break;
      }
      case RecordKind::kDecision: {
        if (!options.verify) break;
        auto it = sessions.find(record->decision.key);
        if (it == sessions.end()) {
          throw aps::io::IoError("corrupt listfile '" + path +
                                 "': decision for unknown session key " +
                                 std::to_string(record->decision.key));
        }
        it->second.recorded.push_back(record->decision.decision);
        drain_matches(it->second, result);
        break;
      }
      case RecordKind::kClose: {
        auto it = sessions.find(record->close.key);
        if (it == sessions.end()) {
          throw aps::io::IoError("corrupt listfile '" + path +
                                 "': close for unknown session key " +
                                 std::to_string(record->close.key));
        }
        flush();  // feed this session's pending ticks before closing it
        engine.close_session(it->second.session);
        result.unmatched +=
            it->second.recorded.size() + it->second.produced.size();
        sessions.erase(it);
        ++result.sessions_closed;
        break;
      }
      case RecordKind::kSync:
        break;  // checkpoints carry no replayable state
    }
  }
  flush();
  result.truncated = reader.truncated();
  // Sessions the recording left open (e.g. the recorder stopped mid-run)
  // stay open here too; count their tail imbalance but leave them live.
  for (auto& [key, rs] : sessions) {
    drain_matches(rs, result);
    result.unmatched += rs.recorded.size() + rs.produced.size();
  }
  return result;
}

}  // namespace aps::net
