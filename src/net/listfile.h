// Append-only session listfile (mvme-style event log): the raw record of
// everything the serving front door consumed — session opens, every tick's
// observation in engine-consumption order, the decision each tick
// produced, and session closes — with versioned CRC'd records and
// periodic sync points. One file is three tools at once:
//
//   * backtesting / bug repro: ListfileReplayer re-drives a MonitorEngine
//     from the file and the decisions come out byte-identical to the live
//     run (monitor state is per-session and lane-independent, so only
//     per-session observation order matters — which the file preserves);
//   * a golden oracle: the recorded decision records let the replayer (or
//     a bench client) verify the re-driven decisions exactly;
//   * a load generator: bench/net_ingest replays a recorded file through
//     a real socket pair.
//
// Layout: u32 magic "APSL", u32 version, then records. Each record is
//   u8 kind | u32 payload_len | u32 crc (CRC-32 of kind byte + payload) |
//   payload
// payloads use the shared io::BinaryWriter/BinaryReader codec (same
// hardened length handling as artifacts and wire frames). A clean EOF at
// a record boundary is a valid end of log (append-only files end when the
// recorder stops); EOF inside a record, a CRC mismatch, or a hostile
// length throws io::IoError — unless the reader was opened with
// tolerate_truncation, in which case EOF *inside the tail record* (the
// normal wreckage of a killed recorder) is a clean stop at the last
// complete record, reported via truncated(). Corruption that truncation
// cannot produce (bad CRC on a complete record, unknown kind, hostile
// length) always throws. Sync records carrying the running record count
// are written every kSyncInterval records and on finish(), and the stream
// is flushed at every sync so a SIGKILLed recorder loses at most the
// records since the last sync point.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "io/serial.h"
#include "monitor/monitor.h"
#include "serve/engine.h"

namespace aps::net {

inline constexpr std::uint32_t kListfileMagic = 0x4150534Cu;  // "APSL"
inline constexpr std::uint32_t kListfileVersion = 1;
inline constexpr std::uint32_t kMaxRecordPayload = 1u << 20;  // 1 MiB
/// A sync record is written every this many payload records.
inline constexpr std::uint64_t kSyncInterval = 256;

enum class RecordKind : std::uint8_t {
  kOpen = 1,      ///< key, patient id, monitor name, patient index
  kTick = 2,      ///< key, seq, observation
  kDecision = 3,  ///< key, seq, decision
  kClose = 4,     ///< key
  kSync = 5,      ///< records-so-far checkpoint
};
inline constexpr std::uint8_t kRecordKindMax = 5;

struct OpenRecord {
  std::uint64_t key = 0;  ///< unique while the session is open
  std::string patient_id;
  std::string monitor;
  std::int32_t patient_index = 0;
};

struct TickRecord {
  std::uint64_t key = 0;
  std::uint64_t seq = 0;
  aps::monitor::Observation obs;
};

struct DecisionRecord {
  std::uint64_t key = 0;
  std::uint64_t seq = 0;
  aps::monitor::Decision decision;
};

struct CloseRecord {
  std::uint64_t key = 0;
};

struct SyncRecord {
  std::uint64_t records = 0;  ///< payload records written before this sync
};

/// Append-only writer. Not internally synchronized: the ingest server
/// records from its single IO thread; other users must serialize access.
class ListfileWriter {
 public:
  /// Opens (truncates) `path` and writes the file header; IoError on
  /// failure.
  explicit ListfileWriter(const std::string& path);
  ~ListfileWriter();

  ListfileWriter(const ListfileWriter&) = delete;
  ListfileWriter& operator=(const ListfileWriter&) = delete;

  void record_open(const OpenRecord& record);
  void record_tick(const TickRecord& record);
  void record_decision(const DecisionRecord& record);
  void record_close(const CloseRecord& record);

  /// Final sync + flush; throws IoError on write failure. Idempotent
  /// (also invoked by the destructor, which swallows errors).
  void finish();

  [[nodiscard]] std::uint64_t records() const { return records_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void append(RecordKind kind, aps::io::BinaryWriter&& payload);
  void write_sync();

  std::string path_;
  std::ofstream out_;
  std::uint64_t records_ = 0;        ///< payload records (syncs excluded)
  std::uint64_t since_sync_ = 0;
  bool finished_ = false;
};

/// One parsed record (tagged union; exactly the field for `kind` is set).
struct ListfileRecord {
  RecordKind kind = RecordKind::kSync;
  OpenRecord open;
  TickRecord tick;
  DecisionRecord decision;
  CloseRecord close;
  SyncRecord sync;
};

/// Sequential reader: validates the header on construction, then next()
/// yields records until a clean EOF (nullopt). Malformed bytes throw
/// io::IoError.
class ListfileReader {
 public:
  /// With tolerate_truncation, a file whose tail record is cut mid-bytes
  /// (killed recorder) ends cleanly at the last complete record instead
  /// of throwing; truncated() reports that it happened.
  explicit ListfileReader(const std::string& path,
                          bool tolerate_truncation = false);

  [[nodiscard]] std::optional<ListfileRecord> next();
  /// Byte offset of the NEXT record (a valid truncation boundary).
  [[nodiscard]] std::uint64_t offset() const { return in_.consumed(); }
  /// True once next() hit a truncated tail record in tolerant mode.
  [[nodiscard]] bool truncated() const { return truncated_; }

 private:
  aps::io::BinaryReader in_;
  std::uint64_t records_seen_ = 0;
  bool tolerate_truncation_ = false;
  bool truncated_ = false;
};

struct ReplayOptions {
  /// Flush the pending tick batch into the engine at this size even
  /// without an open/close boundary forcing it.
  std::size_t max_batch = 4096;
  /// Compare re-driven decisions against the file's decision records.
  bool verify = true;
  /// Accept a truncated tail record (replay everything up to it) instead
  /// of throwing — what you want when replaying a crashed server's file.
  bool tolerate_truncation = false;
};

struct ReplayResult {
  std::size_t sessions_opened = 0;
  std::size_t sessions_closed = 0;
  std::uint64_t ticks = 0;       ///< observations re-driven into the engine
  std::uint64_t compared = 0;    ///< decisions checked against the record
  std::uint64_t mismatches = 0;  ///< decisions that differed (0 = golden)
  /// Recorded decisions with no replayed counterpart or vice versa (a
  /// truncated tail can leave live decisions unrecorded).
  std::uint64_t unmatched = 0;
  /// The file ended inside its tail record (tolerate_truncation only).
  bool truncated = false;
};

/// Re-drive `engine` from a recorded listfile. The engine must have the
/// same monitors registered as the recording run (same bundle); session
/// patient ids must be free. Per-session observation order is preserved
/// exactly, so the decision stream is byte-identical to the live run —
/// replayed sessions are closed again as the file closes them, and the
/// result counts any divergence when options.verify is set.
[[nodiscard]] ReplayResult replay_listfile(const std::string& path,
                                           aps::serve::MonitorEngine& engine,
                                           const ReplayOptions& options = {});

}  // namespace aps::net
