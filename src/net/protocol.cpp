#include "net/protocol.h"

#include <cstring>
#include <utility>

namespace aps::net {

namespace {

using aps::io::BinaryReader;
using aps::io::BinaryWriter;

/// Little-endian scalar helpers for the fixed-layout frame header (the
/// payload goes through the shared BinaryWriter/BinaryReader codec).
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

[[nodiscard]] std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

/// Payload reader for `frame`, validating the expected kind.
[[nodiscard]] BinaryReader payload_reader(const Frame& frame,
                                          FrameKind expected) {
  if (frame.kind != expected) {
    throw ProtocolError(std::string("frame kind mismatch: expected ") +
                        frame_kind_name(expected) + ", got " +
                        frame_kind_name(frame.kind));
  }
  return BinaryReader(frame.payload,
                      std::string(frame_kind_name(expected)) + " payload");
}

/// Every decoder must consume its payload exactly; trailing bytes are
/// hostile or a version skew we must not silently ignore.
void expect_drained(const BinaryReader& in, FrameKind kind) {
  if (in.remaining() > 0) {
    throw ProtocolError(std::string("trailing bytes in ") +
                        frame_kind_name(kind) + " payload");
  }
}

[[nodiscard]] Frame finish_frame(FrameKind kind, BinaryWriter&& payload) {
  return Frame{kind, std::move(payload).take()};
}

}  // namespace

const char* frame_kind_name(FrameKind kind) {
  switch (kind) {
    case FrameKind::kHello: return "hello";
    case FrameKind::kHelloAck: return "hello-ack";
    case FrameKind::kOpenSession: return "open-session";
    case FrameKind::kOpenAck: return "open-ack";
    case FrameKind::kTick: return "tick";
    case FrameKind::kDecision: return "decision";
    case FrameKind::kCloseSession: return "close-session";
    case FrameKind::kCloseAck: return "close-ack";
    case FrameKind::kError: return "error";
    case FrameKind::kReject: return "reject";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  if (frame.payload.size() > kMaxFramePayload) {
    throw ProtocolError("frame payload exceeds the protocol maximum");
  }
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + frame.payload.size());
  put_u32(out, kNetMagic);
  put_u16(out, kNetVersion);
  put_u16(out, static_cast<std::uint16_t>(frame.kind));
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  put_u32(out, aps::io::crc32(out.data(), out.size()));
  put_u32(out, aps::io::crc32(frame.payload.data(), frame.payload.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

// ---- FrameDecoder ----------------------------------------------------------

FrameDecoder::FrameDecoder(std::string peer) : peer_(std::move(peer)) {}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  // Compact the consumed prefix before growing so a long-lived connection
  // never accumulates dead bytes.
  if (pos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<Frame> FrameDecoder::next() {
  if (poisoned_) {
    throw ProtocolError("connection from " + peer_ +
                        " already failed protocol validation");
  }
  if (buffered() < kFrameHeaderSize) return std::nullopt;
  const std::uint8_t* header = buf_.data() + pos_;
  // Validate the entire header — including the length field — via its CRC
  // before trusting a single field of it.
  const std::uint32_t magic = get_u32(header);
  const std::uint16_t version = get_u16(header + 4);
  const std::uint16_t kind = get_u16(header + 6);
  const std::uint32_t payload_len = get_u32(header + 8);
  const std::uint32_t header_crc = get_u32(header + 12);
  const std::uint32_t payload_crc = get_u32(header + 16);
  const auto fail = [&](const std::string& what) -> std::optional<Frame> {
    poisoned_ = true;
    throw ProtocolError("malformed frame from " + peer_ + ": " + what);
  };
  if (magic != kNetMagic) return fail("bad magic number");
  if (aps::io::crc32(header, 12) != header_crc) return fail("header CRC mismatch");
  if (version != kNetVersion) {
    return fail("unsupported protocol version " + std::to_string(version));
  }
  if (kind == 0 || kind > kFrameKindMax) {
    return fail("unknown frame kind " + std::to_string(kind));
  }
  if (payload_len > kMaxFramePayload) {
    return fail("hostile payload length " + std::to_string(payload_len));
  }
  if (buffered() < kFrameHeaderSize + payload_len) return std::nullopt;
  const std::uint8_t* payload = header + kFrameHeaderSize;
  if (aps::io::crc32(payload, payload_len) != payload_crc) {
    return fail("payload CRC mismatch");
  }
  Frame frame;
  frame.kind = static_cast<FrameKind>(kind);
  frame.payload.assign(payload, payload + payload_len);
  pos_ += kFrameHeaderSize + payload_len;
  return frame;
}

// ---- Observation / Decision bodies ----------------------------------------

void write_observation(BinaryWriter& out,
                       const aps::monitor::Observation& obs) {
  out.f64(obs.time_min);
  out.f64(obs.bg);
  out.f64(obs.bg_rate);
  out.f64(obs.iob);
  out.f64(obs.iob_rate);
  out.f64(obs.commanded_rate);
  out.f64(obs.previous_rate);
  out.u8(static_cast<std::uint8_t>(obs.action));
  out.f64(obs.basal_rate);
  out.f64(obs.isf);
}

aps::monitor::Observation read_observation(BinaryReader& in) {
  aps::monitor::Observation obs;
  obs.time_min = in.f64();
  obs.bg = in.f64();
  obs.bg_rate = in.f64();
  obs.iob = in.f64();
  obs.iob_rate = in.f64();
  obs.commanded_rate = in.f64();
  obs.previous_rate = in.f64();
  const std::uint8_t action = in.u8();
  if (action > static_cast<std::uint8_t>(aps::ControlAction::kKeepInsulin)) {
    throw ProtocolError("out-of-range control action " +
                        std::to_string(action));
  }
  obs.action = static_cast<aps::ControlAction>(action);
  obs.basal_rate = in.f64();
  obs.isf = in.f64();
  return obs;
}

void write_decision(BinaryWriter& out,
                    const aps::monitor::Decision& decision) {
  out.u8(decision.alarm ? 1 : 0);
  out.u8(static_cast<std::uint8_t>(decision.predicted));
  out.i32(decision.rule_id);
}

aps::monitor::Decision read_decision(BinaryReader& in) {
  aps::monitor::Decision decision;
  const std::uint8_t alarm = in.u8();
  if (alarm > 1) {
    throw ProtocolError("out-of-range alarm flag " + std::to_string(alarm));
  }
  decision.alarm = alarm != 0;
  const std::uint8_t predicted = in.u8();
  if (predicted >
      static_cast<std::uint8_t>(aps::HazardType::kH2TooLittleInsulin)) {
    throw ProtocolError("out-of-range hazard class " +
                        std::to_string(predicted));
  }
  decision.predicted = static_cast<aps::HazardType>(predicted);
  decision.rule_id = in.i32();
  return decision;
}

// ---- Typed encode / decode -------------------------------------------------

Frame encode(const HelloMsg& msg) {
  BinaryWriter out;
  out.u32(msg.protocol_version);
  out.str(msg.client_name);
  return finish_frame(FrameKind::kHello, std::move(out));
}

HelloMsg decode_hello(const Frame& frame) {
  auto in = payload_reader(frame, FrameKind::kHello);
  HelloMsg msg;
  msg.protocol_version = in.u32();
  msg.client_name = in.str();
  expect_drained(in, frame.kind);
  return msg;
}

Frame encode(const HelloAckMsg& msg) {
  BinaryWriter out;
  out.u32(msg.protocol_version);
  out.u64(msg.generation);
  out.str(msg.server_name);
  return finish_frame(FrameKind::kHelloAck, std::move(out));
}

HelloAckMsg decode_hello_ack(const Frame& frame) {
  auto in = payload_reader(frame, FrameKind::kHelloAck);
  HelloAckMsg msg;
  msg.protocol_version = in.u32();
  msg.generation = in.u64();
  msg.server_name = in.str();
  expect_drained(in, frame.kind);
  return msg;
}

Frame encode(const OpenSessionMsg& msg) {
  BinaryWriter out;
  out.u64(msg.token);
  out.str(msg.patient_id);
  out.str(msg.monitor);
  out.i32(msg.patient_index);
  return finish_frame(FrameKind::kOpenSession, std::move(out));
}

OpenSessionMsg decode_open_session(const Frame& frame) {
  auto in = payload_reader(frame, FrameKind::kOpenSession);
  OpenSessionMsg msg;
  msg.token = in.u64();
  msg.patient_id = in.str();
  msg.monitor = in.str();
  msg.patient_index = in.i32();
  expect_drained(in, frame.kind);
  return msg;
}

Frame encode(const OpenAckMsg& msg) {
  BinaryWriter out;
  out.u64(msg.token);
  out.u8(msg.ok ? 1 : 0);
  out.str(msg.error);
  return finish_frame(FrameKind::kOpenAck, std::move(out));
}

OpenAckMsg decode_open_ack(const Frame& frame) {
  auto in = payload_reader(frame, FrameKind::kOpenAck);
  OpenAckMsg msg;
  msg.token = in.u64();
  msg.ok = in.u8() != 0;
  msg.error = in.str();
  expect_drained(in, frame.kind);
  return msg;
}

Frame encode(const TickMsg& msg) {
  BinaryWriter out;
  out.u64(msg.token);
  out.u64(msg.seq);
  write_observation(out, msg.obs);
  return finish_frame(FrameKind::kTick, std::move(out));
}

TickMsg decode_tick(const Frame& frame) {
  auto in = payload_reader(frame, FrameKind::kTick);
  TickMsg msg;
  msg.token = in.u64();
  msg.seq = in.u64();
  msg.obs = read_observation(in);
  expect_drained(in, frame.kind);
  return msg;
}

Frame encode(const DecisionMsg& msg) {
  BinaryWriter out;
  out.u64(msg.token);
  out.u64(msg.seq);
  write_decision(out, msg.decision);
  return finish_frame(FrameKind::kDecision, std::move(out));
}

DecisionMsg decode_decision(const Frame& frame) {
  auto in = payload_reader(frame, FrameKind::kDecision);
  DecisionMsg msg;
  msg.token = in.u64();
  msg.seq = in.u64();
  msg.decision = read_decision(in);
  expect_drained(in, frame.kind);
  return msg;
}

Frame encode(const CloseSessionMsg& msg) {
  BinaryWriter out;
  out.u64(msg.token);
  return finish_frame(FrameKind::kCloseSession, std::move(out));
}

CloseSessionMsg decode_close_session(const Frame& frame) {
  auto in = payload_reader(frame, FrameKind::kCloseSession);
  CloseSessionMsg msg;
  msg.token = in.u64();
  expect_drained(in, frame.kind);
  return msg;
}

Frame encode(const CloseAckMsg& msg) {
  BinaryWriter out;
  out.u64(msg.token);
  out.u64(msg.cycles);
  out.u64(msg.alarms);
  return finish_frame(FrameKind::kCloseAck, std::move(out));
}

CloseAckMsg decode_close_ack(const Frame& frame) {
  auto in = payload_reader(frame, FrameKind::kCloseAck);
  CloseAckMsg msg;
  msg.token = in.u64();
  msg.cycles = in.u64();
  msg.alarms = in.u64();
  expect_drained(in, frame.kind);
  return msg;
}

Frame encode(const ErrorMsg& msg) {
  BinaryWriter out;
  out.u32(msg.code);
  out.str(msg.message);
  return finish_frame(FrameKind::kError, std::move(out));
}

ErrorMsg decode_error(const Frame& frame) {
  auto in = payload_reader(frame, FrameKind::kError);
  ErrorMsg msg;
  msg.code = in.u32();
  msg.message = in.str();
  expect_drained(in, frame.kind);
  return msg;
}

Frame encode(const RejectMsg& msg) {
  BinaryWriter out;
  out.u64(msg.token);
  out.u64(msg.seq);
  out.u8(msg.reason);
  out.u32(msg.retry_after_ms);
  out.str(msg.message);
  return finish_frame(FrameKind::kReject, std::move(out));
}

RejectMsg decode_reject(const Frame& frame) {
  auto in = payload_reader(frame, FrameKind::kReject);
  RejectMsg msg;
  msg.token = in.u64();
  msg.seq = in.u64();
  msg.reason = in.u8();
  // Reason 0 ("not rejected") makes no sense on the wire; 1..2 are the
  // serve::RejectReason values this version defines.
  if (msg.reason == 0 || msg.reason > 2) {
    throw ProtocolError("out-of-range reject reason " +
                        std::to_string(msg.reason));
  }
  msg.retry_after_ms = in.u32();
  msg.message = in.str();
  expect_drained(in, frame.kind);
  return msg;
}

}  // namespace aps::net
