// Length-prefixed, versioned binary wire protocol for the TCP ingest
// front door (mvme data-server style). Every frame is
//
//   u32 magic "APSN" | u16 version | u16 kind | u32 payload_len |
//   u32 header_crc (CRC-32 of the 12 bytes above) |
//   u32 payload_crc (CRC-32 of the payload) | payload bytes
//
// so a receiver can validate the header — including the length field —
// before trusting it, and the payload before decoding it. Payloads are
// encoded with the same hardened io::BinaryWriter/BinaryReader codec the
// artifact bundles use: hostile string lengths and element counts are
// rejected up front, and every decode must consume its payload exactly.
//
// Conversation shape (client -> server unless noted):
//   kHello        -> kHelloAck       version handshake, engine generation
//   kOpenSession  -> kOpenAck        client token -> serving session
//   kTick          : one observation for one session (server replies with
//   kDecision      : one decision per tick, fanned out at tick cadence)
//   kCloseSession -> kCloseAck       final per-session stats
//   kError         : either side; sender drops the connection after it
//
// Any malformed byte — bad magic/version/CRC, hostile length, trailing
// payload bytes, out-of-range enum — throws ProtocolError (an io::IoError),
// and the connection is dropped. Nothing here ever crashes on hostile
// input; the fuzz suite (tests/net_protocol_test.cpp) runs under ASan.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "io/serial.h"
#include "monitor/monitor.h"

namespace aps::net {

/// Malformed or hostile wire bytes. Derives from io::IoError so transport
/// and artifact corruption surface through one exception family.
class ProtocolError : public aps::io::IoError {
 public:
  explicit ProtocolError(const std::string& what) : IoError(what) {}
};

inline constexpr std::uint32_t kNetMagic = 0x4150534Eu;  // "APSN"
inline constexpr std::uint16_t kNetVersion = 1;
/// Hard ceiling for one frame's payload; anything larger in a header is
/// hostile, not a real frame (ticks are ~100 bytes).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;  // 1 MiB
inline constexpr std::size_t kFrameHeaderSize = 20;

enum class FrameKind : std::uint16_t {
  kHello = 1,
  kHelloAck = 2,
  kOpenSession = 3,
  kOpenAck = 4,
  kTick = 5,
  kDecision = 6,
  kCloseSession = 7,
  kCloseAck = 8,
  kError = 9,
  kReject = 10,  ///< admission refused an open or a tick; back off
};
inline constexpr std::uint16_t kFrameKindMax = 10;

[[nodiscard]] const char* frame_kind_name(FrameKind kind);

struct Frame {
  FrameKind kind = FrameKind::kError;
  std::vector<std::uint8_t> payload;
};

/// Serialize one frame (header + CRCs + payload) ready for the socket.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(const Frame& frame);

/// Incremental frame parser for one connection: feed() whatever the socket
/// delivered, then pop complete frames with next(). Throws ProtocolError
/// on any malformed header or CRC mismatch — the connection is then
/// poisoned and must be dropped (the decoder stays throwing).
class FrameDecoder {
 public:
  /// `peer` names the connection in error messages.
  explicit FrameDecoder(std::string peer = "peer");

  void feed(std::span<const std::uint8_t> bytes);
  /// Next complete, CRC-verified frame; nullopt when more bytes are
  /// needed.
  [[nodiscard]] std::optional<Frame> next();
  /// Bytes buffered but not yet consumed by a complete frame.
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::string peer_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  ///< consumed prefix (compacted on feed)
  bool poisoned_ = false;
};

// ---- Typed payloads --------------------------------------------------------

struct HelloMsg {
  std::uint32_t protocol_version = kNetVersion;
  std::string client_name;
};

struct HelloAckMsg {
  std::uint32_t protocol_version = kNetVersion;
  std::uint64_t generation = 0;  ///< serving engine model generation
  std::string server_name;
};

struct OpenSessionMsg {
  std::uint64_t token = 0;  ///< client-chosen id echoed in every reply
  std::string patient_id;
  std::string monitor;
  std::int32_t patient_index = 0;
};

struct OpenAckMsg {
  std::uint64_t token = 0;
  bool ok = false;
  std::string error;  ///< empty when ok
};

struct TickMsg {
  std::uint64_t token = 0;
  std::uint64_t seq = 0;  ///< client sequence, echoed in the decision
  aps::monitor::Observation obs;
};

struct DecisionMsg {
  std::uint64_t token = 0;
  std::uint64_t seq = 0;
  aps::monitor::Decision decision;
};

struct CloseSessionMsg {
  std::uint64_t token = 0;
};

struct CloseAckMsg {
  std::uint64_t token = 0;
  std::uint64_t cycles = 0;
  std::uint64_t alarms = 0;
};

struct ErrorMsg {
  std::uint32_t code = 0;
  std::string message;
};

/// Typed admission refusal (server -> client), unlike kError a NORMAL
/// overload outcome: the connection stays up and the client should back
/// off for retry_after_ms before retrying. Sent in place of kOpenAck when
/// a session open is shed, and in place of kDecision (seq echoed) when a
/// tick is dropped for an over-quota tenant. `reason` carries
/// serve::RejectReason values (1 = open shed, 2 = over-quota tick).
struct RejectMsg {
  std::uint64_t token = 0;
  std::uint64_t seq = 0;  ///< 0 for open rejections
  std::uint8_t reason = 0;
  std::uint32_t retry_after_ms = 0;
  std::string message;
};

[[nodiscard]] Frame encode(const HelloMsg& msg);
[[nodiscard]] Frame encode(const HelloAckMsg& msg);
[[nodiscard]] Frame encode(const OpenSessionMsg& msg);
[[nodiscard]] Frame encode(const OpenAckMsg& msg);
[[nodiscard]] Frame encode(const TickMsg& msg);
[[nodiscard]] Frame encode(const DecisionMsg& msg);
[[nodiscard]] Frame encode(const CloseSessionMsg& msg);
[[nodiscard]] Frame encode(const CloseAckMsg& msg);
[[nodiscard]] Frame encode(const ErrorMsg& msg);
[[nodiscard]] Frame encode(const RejectMsg& msg);

// Decoders validate the frame kind, every enum, and that the payload is
// consumed exactly; ProtocolError otherwise.
[[nodiscard]] HelloMsg decode_hello(const Frame& frame);
[[nodiscard]] HelloAckMsg decode_hello_ack(const Frame& frame);
[[nodiscard]] OpenSessionMsg decode_open_session(const Frame& frame);
[[nodiscard]] OpenAckMsg decode_open_ack(const Frame& frame);
[[nodiscard]] TickMsg decode_tick(const Frame& frame);
[[nodiscard]] DecisionMsg decode_decision(const Frame& frame);
[[nodiscard]] CloseSessionMsg decode_close_session(const Frame& frame);
[[nodiscard]] CloseAckMsg decode_close_ack(const Frame& frame);
[[nodiscard]] ErrorMsg decode_error(const Frame& frame);
[[nodiscard]] RejectMsg decode_reject(const Frame& frame);

// Observation/Decision body codecs, shared with the listfile record
// format so recorded streams and wire streams are one encoding.
void write_observation(aps::io::BinaryWriter& out,
                       const aps::monitor::Observation& obs);
[[nodiscard]] aps::monitor::Observation read_observation(
    aps::io::BinaryReader& in);
void write_decision(aps::io::BinaryWriter& out,
                    const aps::monitor::Decision& decision);
[[nodiscard]] aps::monitor::Decision read_decision(aps::io::BinaryReader& in);

}  // namespace aps::net
