#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "net/listfile.h"
#include "net/protocol.h"
#include "serve/group.h"

namespace aps::net {

namespace {

/// ServingBackend over one engine (the original single-replica door).
class EngineBackend final : public ServingBackend {
 public:
  explicit EngineBackend(aps::serve::MonitorEngine& engine)
      : engine_(engine) {}
  aps::serve::SessionId open_session(const std::string& patient_id,
                                     const std::string& monitor,
                                     int patient_index) override {
    return engine_.open_session(patient_id, monitor, patient_index);
  }
  void close_session(aps::serve::SessionId id) override {
    engine_.close_session(id);
  }
  void feed(std::span<const aps::serve::SessionInput> inputs,
            std::span<aps::monitor::Decision> decisions) override {
    engine_.feed(inputs, decisions);
  }
  [[nodiscard]] aps::serve::SessionStats stats(
      aps::serve::SessionId id) const override {
    return engine_.stats(id);
  }
  [[nodiscard]] std::uint64_t generation() const override {
    return engine_.generation();
  }
  [[nodiscard]] aps::obs::Registry& registry() const override {
    return engine_.registry();
  }

 private:
  aps::serve::MonitorEngine& engine_;
};

/// ServingBackend over a replica group: session ids carry the owning
/// replica, so open/close/stats route in O(1) and feed fans out through
/// the group's bounded per-replica ingest queues.
class GroupBackend final : public ServingBackend {
 public:
  explicit GroupBackend(aps::serve::EngineGroup& group) : group_(group) {}
  aps::serve::SessionId open_session(const std::string& patient_id,
                                     const std::string& monitor,
                                     int patient_index) override {
    return group_.open_session(patient_id, monitor, patient_index);
  }
  void close_session(aps::serve::SessionId id) override {
    group_.close_session(id);
  }
  void feed(std::span<const aps::serve::SessionInput> inputs,
            std::span<aps::monitor::Decision> decisions) override {
    group_.feed(inputs, decisions);
  }
  void feed(std::span<const aps::serve::SessionInput> inputs,
            std::span<aps::monitor::Decision> decisions,
            std::span<aps::serve::TickOutcome> outcomes) override {
    group_.feed(inputs, decisions, outcomes);
  }
  [[nodiscard]] std::uint32_t admission_retry_ms() const override {
    return group_.admission().enabled()
               ? group_.admission().config().retry_after_ms
               : 0;
  }
  [[nodiscard]] aps::serve::SessionStats stats(
      aps::serve::SessionId id) const override {
    return group_.stats(id);
  }
  [[nodiscard]] std::uint64_t generation() const override {
    return group_.generation();
  }
  [[nodiscard]] aps::obs::Registry& registry() const override {
    return group_.registry();
  }

 private:
  aps::serve::EngineGroup& group_;
};

/// A connection writing slower than this backlog is dead weight; drop it
/// rather than buffer without bound.
constexpr std::size_t kMaxOutbufBytes = 16u << 20;  // 16 MiB

std::string errno_message(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_nonblocking_checks(int fd) {
  const int flag = 1;
  // Best effort; a missing TCP_NODELAY only costs latency.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof flag);
}

}  // namespace

struct IngestServer::Impl {
  struct PendingEvent {
    enum class Kind : std::uint8_t { kTick, kClose };
    Kind kind = Kind::kTick;
    std::uint64_t token = 0;
    std::uint64_t seq = 0;
    aps::monitor::Observation obs;
  };

  struct Connection {
    int fd = -1;
    std::string peer;
    FrameDecoder decoder{"peer"};
    std::vector<std::uint8_t> outbuf;
    std::size_t out_pos = 0;
    std::deque<PendingEvent> events;
    /// Client token -> live engine session.
    std::unordered_map<std::uint64_t, aps::serve::SessionId> sessions;
    /// Admission tenant from the hello's client name (labels only; the
    /// quota tenant is the patient-id prefix, resolved per session).
    std::string tenant = "default";
    bool hello_done = false;
    bool paused = false;      ///< EPOLLIN removed until the next tick drain
    bool want_write = false;  ///< EPOLLOUT armed for a partial outbuf
  };

  std::unique_ptr<ServingBackend> backend;
  ServingBackend& engine;  ///< *backend (engine or replica group)
  ServerConfig config;
  aps::obs::Registry& registry;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;  ///< eventfd poked by stop()
  std::uint16_t bound_port = 0;
  std::thread io_thread;
  std::atomic<bool> running{false};
  std::atomic<bool> stop_requested{false};
  std::atomic<std::size_t> open_count{0};

  std::map<int, Connection> connections;  ///< fd -> state, IO thread only
  std::unique_ptr<ListfileWriter> listfile;

  // Metric handles, resolved once (per-frame-kind counters included).
  aps::obs::Gauge* g_open = nullptr;
  aps::obs::Counter* c_accepted = nullptr;
  aps::obs::Counter* c_closed = nullptr;
  aps::obs::Counter* c_rejected = nullptr;
  aps::obs::Counter* c_bytes_in = nullptr;
  aps::obs::Counter* c_bytes_out = nullptr;
  aps::obs::Counter* c_protocol_errors = nullptr;
  aps::obs::Counter* c_ticks = nullptr;
  aps::obs::Counter* c_batches = nullptr;
  aps::obs::Counter* c_pauses = nullptr;
  aps::obs::Counter* c_drop_disconnect = nullptr;
  aps::obs::Counter* c_drop_closed = nullptr;
  aps::obs::Counter* c_frames_in[kFrameKindMax + 1] = {};
  aps::obs::Counter* c_frames_out[kFrameKindMax + 1] = {};
  aps::obs::Histogram* h_batch = nullptr;
  aps::obs::Histogram* h_frame_in = nullptr;
  aps::obs::Histogram* h_frame_out = nullptr;

  Impl(std::unique_ptr<ServingBackend> serving, ServerConfig cfg)
      : backend(std::move(serving)),
        engine(*backend),
        config(std::move(cfg)),
        registry(config.registry != nullptr ? *config.registry
                                            : engine.registry()) {
    resolve_metrics();
    if (!config.listfile.empty()) {
      listfile = std::make_unique<ListfileWriter>(config.listfile);
    }
    open_sockets();
  }

  ~Impl() { shutdown(); }

  void resolve_metrics() {
    g_open = &registry.gauge("net_connections", {{"state", "open"}},
                             "currently connected ingest clients");
    c_accepted = &registry.counter("net_connections_total",
                                   {{"state", "accepted"}},
                                   "ingest connections by lifecycle state");
    c_closed = &registry.counter("net_connections_total",
                                 {{"state", "closed"}});
    c_rejected = &registry.counter("net_connections_total",
                                   {{"state", "rejected"}});
    c_bytes_in = &registry.counter("net_bytes_in_total", {},
                                   "bytes read from ingest sockets");
    c_bytes_out = &registry.counter("net_bytes_out_total", {},
                                    "bytes written to ingest sockets");
    c_protocol_errors = &registry.counter(
        "net_protocol_errors_total", {},
        "connections dropped for malformed or hostile frames");
    c_ticks = &registry.counter("net_ticks_total", {},
                                "observations fed through the engine");
    c_batches = &registry.counter("net_tick_batches_total", {},
                                  "engine feed() batches");
    c_pauses = &registry.counter(
        "net_backpressure_pauses_total", {},
        "reads paused because a connection's event queue filled");
    c_drop_disconnect =
        &registry.counter("net_frames_dropped_total",
                          {{"reason", "disconnect"}},
                          "queued events dropped before reaching the engine");
    c_drop_closed = &registry.counter("net_frames_dropped_total",
                                      {{"reason", "closed_session"}});
    for (std::uint16_t k = 1; k <= kFrameKindMax; ++k) {
      const char* kind = frame_kind_name(static_cast<FrameKind>(k));
      c_frames_in[k] =
          &registry.counter("net_frames_total", {{"dir", "in"}, {"kind", kind}},
                            "frames by direction and kind");
      c_frames_out[k] = &registry.counter("net_frames_total",
                                          {{"dir", "out"}, {"kind", kind}});
    }
    h_batch = &registry.histogram("net_tick_batch_size",
                                  aps::obs::HistogramSpec::bytes(), {},
                                  "observations per engine feed() batch");
    h_frame_in = &registry.histogram("net_frame_bytes",
                                     aps::obs::HistogramSpec::bytes(),
                                     {{"dir", "in"}},
                                     "wire frame size including header");
    h_frame_out = &registry.histogram("net_frame_bytes",
                                      aps::obs::HistogramSpec::bytes(),
                                      {{"dir", "out"}});
  }

  void open_sockets() {
    listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                         0);
    if (listen_fd < 0) {
      throw aps::io::IoError(errno_message("socket"));
    }
    const int one = 1;
    (void)setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config.port);
    if (inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) !=
        1) {
      close_fds();
      throw aps::io::IoError("bad bind address '" + config.bind_address +
                             "'");
    }
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
        0) {
      const std::string msg = errno_message("bind");
      close_fds();
      throw aps::io::IoError(msg + " on " + config.bind_address + ":" +
                             std::to_string(config.port));
    }
    if (::listen(listen_fd, config.backlog) < 0) {
      const std::string msg = errno_message("listen");
      close_fds();
      throw aps::io::IoError(msg);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) <
        0) {
      const std::string msg = errno_message("getsockname");
      close_fds();
      throw aps::io::IoError(msg);
    }
    bound_port = ntohs(bound.sin_port);

    wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (wake_fd < 0 || epoll_fd < 0) {
      const std::string msg = errno_message("epoll/eventfd");
      close_fds();
      throw aps::io::IoError(msg);
    }
    epoll_add(listen_fd, EPOLLIN);
    epoll_add(wake_fd, EPOLLIN);
  }

  void close_fds() {
    if (listen_fd >= 0) ::close(listen_fd);
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
    listen_fd = epoll_fd = wake_fd = -1;
  }

  void epoll_add(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      throw aps::io::IoError(errno_message("epoll_ctl add"));
    }
  }

  void epoll_mod(int fd, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.fd = fd;
    (void)epoll_ctl(epoll_fd, EPOLL_CTL_MOD, fd, &ev);
  }

  void update_interest(Connection& conn) {
    std::uint32_t events = 0;
    if (!conn.paused) events |= EPOLLIN;
    if (conn.want_write) events |= EPOLLOUT;
    epoll_mod(conn.fd, events);
  }

  // ---- Lifecycle -----------------------------------------------------------

  void start() {
    if (running.exchange(true)) return;
    stop_requested.store(false);
    io_thread = std::thread([this] { io_loop(); });
  }

  void shutdown() {
    if (running.load()) {
      stop_requested.store(true);
      const std::uint64_t one = 1;
      // A full eventfd already wakes the loop; ignore short writes.
      (void)!::write(wake_fd, &one, sizeof one);
      if (io_thread.joinable()) io_thread.join();
      running.store(false);
    }
    // Close straggler connections (their sessions too) from this thread;
    // the IO thread is gone.
    while (!connections.empty()) {
      drop_connection(connections.begin()->first, "server stopped");
    }
    if (listfile) {
      listfile->finish();
      listfile.reset();
    }
    close_fds();
  }

  // ---- IO loop -------------------------------------------------------------

  void io_loop() {
    using clock = std::chrono::steady_clock;
    const auto interval = std::chrono::milliseconds(config.tick_interval_ms);
    auto next_tick = clock::now() + interval;
    std::vector<epoll_event> events(256);
    while (!stop_requested.load(std::memory_order_relaxed)) {
      int timeout = -1;
      if (pending_events() > 0) {
        if (config.tick_interval_ms == 0) {
          timeout = 0;  // drain immediately once the sockets are quiet
        } else {
          const auto left = std::chrono::duration_cast<
              std::chrono::milliseconds>(next_tick - clock::now());
          timeout = static_cast<int>(std::max<std::int64_t>(0, left.count()));
        }
      }
      const int n = epoll_wait(epoll_fd, events.data(),
                               static_cast<int>(events.size()), timeout);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // unrecoverable; stop() will clean up
      }
      for (int i = 0; i < n; ++i) {
        const int fd = events[i].data.fd;
        if (fd == wake_fd) {
          std::uint64_t drained = 0;
          (void)!::read(wake_fd, &drained, sizeof drained);
          continue;
        }
        if (fd == listen_fd) {
          accept_clients();
          continue;
        }
        auto it = connections.find(fd);
        if (it == connections.end()) continue;  // dropped earlier this wave
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
          drop_connection(fd, "peer hung up");
          continue;
        }
        if ((events[i].events & EPOLLOUT) != 0) flush_outbuf(it->second);
        if ((events[i].events & EPOLLIN) != 0) handle_readable(fd);
      }
      const bool due = config.tick_interval_ms == 0 ||
                       clock::now() >= next_tick;
      if (pending_events() > 0 && due) {
        run_tick();
        next_tick = clock::now() + interval;
      } else if (due) {
        next_tick = clock::now() + interval;
      }
    }
  }

  [[nodiscard]] std::size_t pending_events() const {
    std::size_t total = 0;
    for (const auto& [fd, conn] : connections) total += conn.events.size();
    return total;
  }

  void accept_clients() {
    for (;;) {
      sockaddr_in peer{};
      socklen_t len = sizeof peer;
      const int fd =
          ::accept4(listen_fd, reinterpret_cast<sockaddr*>(&peer), &len,
                    SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        return;  // transient accept failure; keep serving
      }
      if (connections.size() >= config.max_connections) {
        c_rejected->add(1);
        ::close(fd);
        continue;
      }
      set_nonblocking_checks(fd);
      char ip[INET_ADDRSTRLEN] = "?";
      (void)inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof ip);
      Connection conn;
      conn.fd = fd;
      conn.peer = std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port));
      conn.decoder = FrameDecoder(conn.peer);
      connections.emplace(fd, std::move(conn));
      epoll_add(fd, EPOLLIN);
      c_accepted->add(1);
      g_open->add(1);
      open_count.fetch_add(1);
    }
  }

  void handle_readable(int fd) {
    auto it = connections.find(fd);
    if (it == connections.end()) return;
    Connection& conn = it->second;
    std::uint8_t buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        c_bytes_in->add(static_cast<std::uint64_t>(n));
        try {
          conn.decoder.feed({buf, static_cast<std::size_t>(n)});
          if (!drain_decoder(conn)) return;  // connection dropped
        } catch (const ProtocolError& err) {
          protocol_failure(fd, err.what());
          return;
        }
        if (conn.paused) return;  // stop reading until the next tick
        continue;
      }
      if (n == 0) {
        drop_connection(fd, "peer closed");
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      drop_connection(fd, "read error");
      return;
    }
  }

  /// Pop complete frames until the decoder runs dry or the event queue
  /// fills. Returns false when the connection was dropped. Throws
  /// ProtocolError upward for malformed bytes.
  bool drain_decoder(Connection& conn) {
    while (!conn.paused) {
      std::optional<Frame> frame = conn.decoder.next();
      if (!frame.has_value()) return true;
      if (!process_frame(conn, *frame)) return false;
    }
    return true;
  }

  bool process_frame(Connection& conn, const Frame& frame) {
    const auto kind_index = static_cast<std::uint16_t>(frame.kind);
    c_frames_in[kind_index]->add(1);
    h_frame_in->observe(
        static_cast<double>(frame.payload.size() + kFrameHeaderSize));

    if (!conn.hello_done) {
      if (frame.kind != FrameKind::kHello) {
        protocol_failure(conn.fd, "expected hello from " + conn.peer +
                                      ", got " + frame_kind_name(frame.kind));
        return false;
      }
      const HelloMsg hello = decode_hello(frame);
      if (hello.protocol_version != kNetVersion) {
        const int fd = conn.fd;
        (void)send_frame(conn,
                         encode(ErrorMsg{
                             .code = 1,
                             .message = "unsupported protocol version " +
                                        std::to_string(
                                            hello.protocol_version)}));
        drop_connection(fd, "version mismatch");
        return false;
      }
      conn.tenant = std::string(aps::serve::tenant_of(hello.client_name));
      conn.hello_done = true;
      return send_frame(
          conn, encode(HelloAckMsg{.protocol_version = kNetVersion,
                                   .generation = engine.generation(),
                                   .server_name = config.server_name}));
    }

    switch (frame.kind) {
      case FrameKind::kOpenSession: {
        const OpenSessionMsg msg = decode_open_session(frame);
        OpenAckMsg ack{.token = msg.token, .ok = false, .error = ""};
        if (conn.sessions.contains(msg.token)) {
          ack.error = "token already open";
        } else {
          try {
            const aps::serve::SessionId sid = engine.open_session(
                msg.patient_id, msg.monitor, msg.patient_index);
            conn.sessions.emplace(msg.token, sid);
            if (listfile) {
              listfile->record_open({.key = sid,
                                     .patient_id = msg.patient_id,
                                     .monitor = msg.monitor,
                                     .patient_index = msg.patient_index});
            }
            ack.ok = true;
          } catch (const aps::serve::ShedError& err) {
            // Overload, not failure: typed reject so the client backs
            // off and retries; the connection stays up.
            return send_frame(
                conn,
                encode(RejectMsg{
                    .token = msg.token,
                    .seq = 0,
                    .reason = static_cast<std::uint8_t>(err.reason()),
                    .retry_after_ms = err.retry_after_ms(),
                    .message = err.what()}));
          } catch (const std::exception& err) {
            ack.error = err.what();
          }
        }
        return send_frame(conn, encode(ack));
      }
      case FrameKind::kTick: {
        const TickMsg msg = decode_tick(frame);
        conn.events.push_back({.kind = PendingEvent::Kind::kTick,
                               .token = msg.token,
                               .seq = msg.seq,
                               .obs = msg.obs});
        maybe_pause(conn);
        return true;
      }
      case FrameKind::kCloseSession: {
        const CloseSessionMsg msg = decode_close_session(frame);
        conn.events.push_back({.kind = PendingEvent::Kind::kClose,
                               .token = msg.token,
                               .seq = 0,
                               .obs = {}});
        maybe_pause(conn);
        return true;
      }
      case FrameKind::kError: {
        // Client signalled an error; its side of the conversation is over.
        drop_connection(conn.fd, "client error frame");
        return false;
      }
      default:
        protocol_failure(conn.fd, "unexpected " +
                                      std::string(frame_kind_name(frame.kind)) +
                                      " frame from client " + conn.peer);
        return false;
    }
  }

  void maybe_pause(Connection& conn) {
    if (conn.paused || conn.events.size() < config.max_queued_events) return;
    conn.paused = true;
    c_pauses->add(1);
    update_interest(conn);
  }

  // ---- Tick: drain queues through the engine -------------------------------

  struct BatchSlot {
    int fd = -1;
    std::uint64_t token = 0;
    std::uint64_t seq = 0;
    aps::serve::SessionId session = 0;
  };

  struct PendingClose {
    int fd = -1;
    std::uint64_t token = 0;
    aps::serve::SessionId session = 0;
  };

  void run_tick() {
    std::vector<aps::serve::SessionInput> inputs;
    std::vector<BatchSlot> slots;
    std::vector<PendingClose> closes;

    for (auto& [fd, conn] : connections) {
      if (inputs.size() >= config.max_batch) break;
      while (!conn.events.empty() && inputs.size() < config.max_batch) {
        PendingEvent& ev = conn.events.front();
        if (ev.kind == PendingEvent::Kind::kTick) {
          const auto sit = conn.sessions.find(ev.token);
          if (sit == conn.sessions.end()) {
            c_drop_closed->add(1);  // tick arrived after the token's close
          } else {
            // NOT recorded to the listfile yet: admission may shed this
            // tick, and shed ticks must stay out of the record so replay
            // reproduces exactly the served stream.
            inputs.push_back({sit->second, ev.obs});
            slots.push_back({.fd = fd,
                             .token = ev.token,
                             .seq = ev.seq,
                             .session = sit->second});
          }
        } else {
          const auto sit = conn.sessions.find(ev.token);
          if (sit == conn.sessions.end()) {
            c_drop_closed->add(1);
          } else {
            // Unmap the token now so ticks queued behind the close are
            // dropped instead of fed to a closing session; the engine
            // close itself waits until after the batch below feeds the
            // ticks queued ahead of it.
            closes.push_back(
                {.fd = fd, .token = ev.token, .session = sit->second});
            conn.sessions.erase(sit);
          }
        }
        conn.events.pop_front();
      }
    }

    if (!inputs.empty()) {
      std::vector<aps::monitor::Decision> decisions(inputs.size());
      std::vector<aps::serve::TickOutcome> outcomes(inputs.size());
      engine.feed(inputs, decisions, outcomes);
      c_batches->add(1);
      h_batch->observe(static_cast<double>(inputs.size()));
      std::uint64_t served = 0;
      for (std::size_t i = 0; i < decisions.size(); ++i) {
        const BatchSlot& slot = slots[i];
        if (!outcomes[i].served()) {
          // Shed tick: typed reject (seq echoed so the client can match
          // it) instead of a decision; nothing reaches the listfile.
          auto cit = connections.find(slot.fd);
          if (cit == connections.end()) continue;  // client left mid-tick
          (void)send_frame(
              cit->second,
              encode(RejectMsg{
                  .token = slot.token,
                  .seq = slot.seq,
                  .reason = static_cast<std::uint8_t>(outcomes[i].reason),
                  .retry_after_ms = engine.admission_retry_ms(),
                  .message = "tick shed: tenant over quota"}));
          continue;
        }
        ++served;
        if (listfile) {
          // Served ticks only, adjacent to their decisions, in batch
          // order — the replayed stream is exactly the served stream.
          listfile->record_tick({.key = slot.session,
                                 .seq = slot.seq,
                                 .obs = inputs[i].obs});
          listfile->record_decision({.key = slot.session,
                                     .seq = slot.seq,
                                     .decision = decisions[i]});
        }
        auto cit = connections.find(slot.fd);
        if (cit == connections.end()) continue;  // client left mid-tick
        (void)send_frame(cit->second,
                         encode(DecisionMsg{.token = slot.token,
                                            .seq = slot.seq,
                                            .decision = decisions[i]}));
      }
      c_ticks->add(served);
    }

    for (const auto& close : closes) {
      const aps::serve::SessionStats st = engine.stats(close.session);
      engine.close_session(close.session);
      if (listfile) listfile->record_close({.key = close.session});
      auto cit = connections.find(close.fd);
      if (cit == connections.end()) continue;  // client left mid-tick
      (void)send_frame(cit->second,
                       encode(CloseAckMsg{.token = close.token,
                                          .cycles = st.cycles,
                                          .alarms = st.alarms}));
    }

    // Resume paused connections; their decoders may hold buffered frames
    // that arrived before the pause took effect.
    std::vector<int> resumed;
    for (auto& [fd, conn] : connections) {
      if (conn.paused && conn.events.size() < config.max_queued_events) {
        conn.paused = false;
        update_interest(conn);
        resumed.push_back(fd);
      }
    }
    for (const int fd : resumed) {
      auto it = connections.find(fd);
      if (it == connections.end()) continue;
      try {
        (void)drain_decoder(it->second);
      } catch (const ProtocolError& err) {
        protocol_failure(fd, err.what());
      }
    }
  }

  // ---- Writes --------------------------------------------------------------

  /// Queue + flush one frame. Returns false when the connection was
  /// dropped (slow consumer) — `conn` is then dangling and the caller
  /// must stop touching it.
  [[nodiscard]] bool send_frame(Connection& conn, const Frame& frame) {
    const std::vector<std::uint8_t> bytes = encode_frame(frame);
    c_frames_out[static_cast<std::uint16_t>(frame.kind)]->add(1);
    h_frame_out->observe(static_cast<double>(bytes.size()));
    conn.outbuf.insert(conn.outbuf.end(), bytes.begin(), bytes.end());
    flush_outbuf(conn);
    if (conn.outbuf.size() - conn.out_pos > kMaxOutbufBytes) {
      drop_connection(conn.fd, "slow consumer");
      return false;
    }
    return true;
  }

  void flush_outbuf(Connection& conn) {
    while (conn.out_pos < conn.outbuf.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.outbuf.data() + conn.out_pos,
                 conn.outbuf.size() - conn.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        c_bytes_out->add(static_cast<std::uint64_t>(n));
        conn.out_pos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // Peer vanished; reads will notice via EPOLLHUP. Drop the backlog.
      conn.out_pos = 0;
      conn.outbuf.clear();
      break;
    }
    if (conn.out_pos >= conn.outbuf.size()) {
      conn.outbuf.clear();
      conn.out_pos = 0;
      if (conn.want_write) {
        conn.want_write = false;
        update_interest(conn);
      }
    } else if (conn.out_pos > (1u << 20)) {
      // Compact occasionally so the buffer does not grow monotonically.
      conn.outbuf.erase(conn.outbuf.begin(),
                        conn.outbuf.begin() +
                            static_cast<std::ptrdiff_t>(conn.out_pos));
      conn.out_pos = 0;
      if (!conn.want_write) {
        conn.want_write = true;
        update_interest(conn);
      }
    } else if (!conn.want_write) {
      conn.want_write = true;
      update_interest(conn);
    }
  }

  // ---- Teardown ------------------------------------------------------------

  void protocol_failure(int fd, const std::string& reason) {
    c_protocol_errors->add(1);
    auto it = connections.find(fd);
    if (it != connections.end()) {
      // Best effort: tell the peer why before dropping it.
      const std::vector<std::uint8_t> bytes =
          encode_frame(encode(ErrorMsg{.code = 2, .message = reason}));
      const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
      if (n > 0) {
        c_bytes_out->add(static_cast<std::uint64_t>(n));
        c_frames_out[static_cast<std::uint16_t>(FrameKind::kError)]->add(1);
        h_frame_out->observe(static_cast<double>(bytes.size()));
      }
    }
    drop_connection(fd, reason);
  }

  void drop_connection(int fd, const std::string& /*reason*/) {
    auto it = connections.find(fd);
    if (it == connections.end()) return;
    Connection& conn = it->second;
    if (!conn.events.empty()) {
      c_drop_disconnect->add(conn.events.size());
    }
    for (const auto& [token, sid] : conn.sessions) {
      engine.close_session(sid);
      if (listfile) listfile->record_close({.key = sid});
    }
    if (epoll_fd >= 0) {
      (void)epoll_ctl(epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    }
    ::close(fd);
    connections.erase(it);
    c_closed->add(1);
    g_open->add(-1);
    open_count.fetch_sub(1);
  }
};

IngestServer::IngestServer(aps::serve::MonitorEngine& engine,
                           ServerConfig config)
    : impl_(std::make_unique<Impl>(std::make_unique<EngineBackend>(engine),
                                   std::move(config))) {}

IngestServer::IngestServer(aps::serve::EngineGroup& group, ServerConfig config)
    : impl_(std::make_unique<Impl>(std::make_unique<GroupBackend>(group),
                                   std::move(config))) {}

IngestServer::~IngestServer() {
  if (impl_) impl_->shutdown();
}

void IngestServer::start() { impl_->start(); }

void IngestServer::stop() { impl_->shutdown(); }

std::uint16_t IngestServer::port() const { return impl_->bound_port; }

std::size_t IngestServer::open_connections() const {
  return impl_->open_count.load();
}

ServerStats IngestServer::stats() const {
  const auto& reg = impl_->registry;
  ServerStats s;
  s.accepted = reg.counter_value("net_connections_total",
                                 {{"state", "accepted"}});
  s.closed = reg.counter_value("net_connections_total",
                               {{"state", "closed"}});
  s.rejected = reg.counter_value("net_connections_total",
                                 {{"state", "rejected"}});
  s.protocol_errors = reg.counter_value("net_protocol_errors_total");
  s.frames_dropped =
      reg.counter_value("net_frames_dropped_total",
                        {{"reason", "disconnect"}}) +
      reg.counter_value("net_frames_dropped_total",
                        {{"reason", "closed_session"}});
  s.ticks_fed = reg.counter_value("net_ticks_total");
  s.batches = reg.counter_value("net_tick_batches_total");
  s.backpressure_pauses =
      reg.counter_value("net_backpressure_pauses_total");
  s.bytes_in = reg.counter_value("net_bytes_in_total");
  s.bytes_out = reg.counter_value("net_bytes_out_total");
  return s;
}

}  // namespace aps::net
