// Epoll-based TCP ingest front door: multiplexes thousands of client
// connections into one MonitorEngine's batched tick cadence (mvme
// data-server turned inside out — clients push observations in, decisions
// fan back out). Single dedicated IO thread owns every socket:
//
//   accept -> handshake (kHello) -> kOpenSession -> kTick stream
//
// Ticks are NOT fed one-by-one: each connection parks decoded ticks in a
// bounded per-connection event queue, and every tick_interval the IO
// thread drains ALL queues into one engine.feed() batch, then writes each
// decision frame back to its connection. A connection whose queue fills
// stops being read (its EPOLLIN is dropped) until the next tick drains it
// — backpressure lands on the client's TCP window instead of server
// memory. Protocol errors (bad CRC, hostile length, out-of-range enum)
// get a best-effort kError frame and the connection dropped; the server
// never crashes on hostile bytes.
//
// When the backend sheds load (serve::AdmissionController behind an
// EngineGroup), refusals are NOT errors: a shed open or dropped tick is
// answered with a typed kReject frame carrying the reason and a
// retry_after_ms backoff hint, and the connection stays up. Shed ticks
// are excluded from the listfile (only served ticks and their decisions
// are recorded, adjacently), so replay stays bit-identical.
//
// With ServerConfig::listfile set, every open/tick/decision/close is also
// appended to a session listfile (net/listfile.h) in engine-consumption
// order, so the whole serving run can be replayed bit-identically.
//
// Counters/gauges/histograms go through the engine's obs::Registry:
//   net_connections{state="open"}            gauge
//   net_connections_total{state=...}         accepted|closed|rejected
//   net_bytes_in_total / net_bytes_out_total
//   net_frames_total{dir,kind}               per-direction, per-frame-kind
//   net_frames_dropped_total{reason}         queue_full|disconnect|closed
//   net_protocol_errors_total
//   net_ticks_total                          engine batches fed
//   net_backpressure_pauses_total
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/engine.h"

namespace aps::serve {
class EngineGroup;
}  // namespace aps::serve

namespace aps::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 = ephemeral; the chosen port is readable via IngestServer::port().
  std::uint16_t port = 0;
  int backlog = 128;
  /// Accepts beyond this are rejected (counted) and closed immediately.
  std::size_t max_connections = 4096;
  /// Per-connection bound on queued-but-unfed events (ticks + closes);
  /// reaching it pauses reads from that connection until the next tick.
  std::size_t max_queued_events = 256;
  /// IO-thread batching cadence. 0 = feed as soon as any events are
  /// queued (lowest latency; right for tests and benches).
  std::uint32_t tick_interval_ms = 0;
  /// Ceiling on one engine.feed() batch; longer queues span ticks.
  std::size_t max_batch = 8192;
  /// When non-empty, record every session stream to this listfile.
  std::string listfile;
  /// Metrics sink; nullptr = the engine's registry.
  aps::obs::Registry* registry = nullptr;
  std::string server_name = "aps-ingest";
};

/// Point-in-time totals mirrored from the metrics (convenience for tests
/// and benches; the registry stays the source of truth).
struct ServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t ticks_fed = 0;      ///< observations through the engine
  std::uint64_t batches = 0;        ///< engine.feed() calls
  std::uint64_t backpressure_pauses = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

/// Serving plane the front door feeds into. The two adapters (single
/// MonitorEngine, replica-sharded EngineGroup) let the IO loop stay
/// agnostic: with a group, every frame is routed to the session's owning
/// replica by the id's replica bits — the TCP door scales past one engine
/// without knowing the ring exists.
class ServingBackend {
 public:
  virtual ~ServingBackend() = default;
  virtual aps::serve::SessionId open_session(const std::string& patient_id,
                                             const std::string& monitor,
                                             int patient_index) = 0;
  virtual void close_session(aps::serve::SessionId id) = 0;
  virtual void feed(std::span<const aps::serve::SessionInput> inputs,
                    std::span<aps::monitor::Decision> decisions) = 0;
  /// Admission-aware feed: outcomes[i] reports whether inputs[i] was
  /// served or shed. Backends without admission serve everything (this
  /// default); the group backend forwards to EngineGroup's 3-arg feed.
  virtual void feed(std::span<const aps::serve::SessionInput> inputs,
                    std::span<aps::monitor::Decision> decisions,
                    std::span<aps::serve::TickOutcome> outcomes) {
    for (auto& outcome : outcomes) outcome = {};
    feed(inputs, decisions);
  }
  /// Backoff hint (ms) for reject frames; 0 = backend never sheds.
  [[nodiscard]] virtual std::uint32_t admission_retry_ms() const { return 0; }
  [[nodiscard]] virtual aps::serve::SessionStats stats(
      aps::serve::SessionId id) const = 0;
  [[nodiscard]] virtual std::uint64_t generation() const = 0;
  [[nodiscard]] virtual aps::obs::Registry& registry() const = 0;
};

class IngestServer {
 public:
  /// Binds and listens immediately (throws IoError on failure) but does
  /// not serve until start().
  IngestServer(aps::serve::MonitorEngine& engine, ServerConfig config);
  /// Replica-sharded flavor: ticks fan out to the owning replicas through
  /// the group's bounded ingest queues; everything else is identical.
  IngestServer(aps::serve::EngineGroup& group, ServerConfig config);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Spawn the IO thread. Idempotent.
  void start();
  /// Drain + close every connection, stop the IO thread, finish the
  /// listfile. Idempotent; also run by the destructor.
  void stop();

  /// Bound port (resolves ephemeral port 0 to the real one).
  [[nodiscard]] std::uint16_t port() const;
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] std::size_t open_connections() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace aps::net
