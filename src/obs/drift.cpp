#include "obs/drift.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace aps::obs {

double FeatureSummary::stddev() const { return std::sqrt(variance()); }

TrainingStats training_stats_from_samples(std::size_t cols,
                                          std::span<const double> row_major) {
  TrainingStats stats;
  if (cols == 0) return stats;
  stats.features.resize(cols);
  const std::size_t rows = row_major.size() / cols;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      stats.features[c].add(row_major[r * cols + c]);
    }
  }
  return stats;
}

DriftDetector::DriftDetector(std::shared_ptr<const TrainingStats> reference,
                             DriftConfig config)
    : reference_(std::move(reference)), config_(config) {
  live_.resize(reference_ != nullptr ? reference_->features.size() : 0);
}

double DriftDetector::score_locked() const {
  double worst = 0.0;
  for (std::size_t f = 0; f < live_.size(); ++f) {
    const FeatureSummary& train = reference_->features[f];
    const FeatureSummary& live = live_[f];
    if (train.count == 0 || live.count == 0) continue;
    // A degenerate (constant) training feature still yields a usable
    // scale: fall back to a unit proportional to its magnitude.
    const double sigma = std::max(
        train.stddev(), 1e-6 * std::max(1.0, std::abs(train.mean())));
    const double mean_shift = std::abs(live.mean() - train.mean()) / sigma;
    const double scale_shift = std::abs(live.stddev() - train.stddev()) /
                               sigma;
    const double range_escape =
        std::max({live.max - train.max, train.min - live.min, 0.0}) / sigma;
    worst = std::max({worst, mean_shift, scale_shift, range_escape});
  }
  return worst;
}

bool DriftDetector::merge(std::span<const FeatureSummary> batch) {
  if (reference_ == nullptr || live_.empty()) return false;
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = std::min(batch.size(), live_.size());
  for (std::size_t f = 0; f < n; ++f) live_[f].merge(batch[f]);
  score_ = score_locked();
  const std::uint64_t samples = live_.empty() ? 0 : live_[0].count;
  const bool was_alerting = alerting_;
  if (samples >= config_.min_samples) {
    if (!alerting_ && score_ > config_.threshold) {
      alerting_ = true;
    } else if (alerting_ &&
               score_ < config_.threshold * config_.clear_factor) {
      alerting_ = false;
    }
  }
  return alerting_ && !was_alerting;
}

double DriftDetector::score() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return score_;
}

bool DriftDetector::alerting() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return alerting_;
}

std::uint64_t DriftDetector::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return live_.empty() ? 0 : live_[0].count;
}

}  // namespace aps::obs
