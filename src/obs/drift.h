// DOOD-style streaming input-distribution drift detection: per-feature
// running mean/variance/range of the live observation stream compared
// against training-time statistics carried in the ArtifactBundle. The
// deployed monitors were fit on a fixed fault grid; when the serving
// distribution leaves it, their accuracy claims silently expire — the
// detector surfaces that as a per-shard drift-score gauge and a
// drift_alerts_total counter instead of letting it pass unnoticed.
//
// Scoring: for each feature, live and training summaries are reduced to
//   mean shift   |mean_live - mean_train| / std_train
//   scale shift  |std_live - std_train|   / std_train
//   range escape max(live_max - train_max, train_min - live_min) / std_train
// and the detector's score is the max over features of the max of the
// three — i.e. "how many training standard deviations has the stream
// moved". Alerting has a minimum-sample gate and hysteresis so a handful
// of outliers cannot flap the alert.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace aps::obs {

/// Mergeable moment/range summary of one feature. Plain (non-atomic):
/// hot paths accumulate a local batch and merge it under the detector's
/// mutex once per chunk.
struct FeatureSummary {
  std::uint64_t count = 0;
  double sum = 0.0;
  double sum_sq = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void add(double x) {
    ++count;
    sum += x;
    sum_sq += x * x;
    if (x < min) min = x;
    if (x > max) max = x;
  }
  void merge(const FeatureSummary& other) {
    count += other.count;
    sum += other.sum;
    sum_sq += other.sum_sq;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
  }
  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
  [[nodiscard]] double variance() const {
    if (count == 0) return 0.0;
    const double m = mean();
    const double v = sum_sq / static_cast<double>(count) - m * m;
    return v > 0.0 ? v : 0.0;
  }
  [[nodiscard]] double stddev() const;
};

/// Training-time feature statistics persisted with a bundle (optional,
/// versioned trailing section — see io::save_bundle).
struct TrainingStats {
  std::vector<FeatureSummary> features;
  [[nodiscard]] bool empty() const { return features.empty(); }
};

/// Column-wise TrainingStats of a row-major sample matrix (the ML
/// training dataset's feature matrix).
[[nodiscard]] TrainingStats training_stats_from_samples(
    std::size_t cols, std::span<const double> row_major);

struct DriftConfig {
  /// Live observations required before the detector may alert.
  std::uint64_t min_samples = 256;
  /// Alert when the score (training-sigma units) crosses this.
  double threshold = 0.5;
  /// Hysteresis: clear only below threshold * clear_factor.
  double clear_factor = 0.8;
  /// Sample every stride-th lane of a tick (1 = every observation);
  /// bounds the hot-path cost on large shards.
  std::size_t stride = 16;
  /// Sample every Nth feed tick (1 = every tick). Temporal counterpart of
  /// `stride`: on unsampled ticks the serving engine skips drift feature
  /// extraction, tracer spans, and per-chunk latency clocks entirely,
  /// which is what keeps the telemetry A/B overhead inside its <2% budget
  /// now that the identity fast path serves a 1k-lane rule tick in ~10us
  /// (a sampled tick costs ~14us, dominated by feature extraction, so the
  /// cadence must keep it rare). Drift is a minutes-scale signal: even at
  /// 256 the detector still folds tens of thousands of samples per second
  /// at serving rates and arms (min_samples) within ~1k ticks.
  std::uint32_t sample_every_ticks = 256;
};

/// Streaming detector for one shard. Thread-safe: chunks running on the
/// worker pool accumulate local FeatureSummary batches and merge them
/// here; score/alert reads may race scrapes freely.
class DriftDetector {
 public:
  DriftDetector(std::shared_ptr<const TrainingStats> reference,
                DriftConfig config);

  /// Merge a locally accumulated batch (batch[f] summarizes feature f).
  /// Returns true when this merge transitioned the detector into the
  /// alerting state (the caller bumps drift_alerts_total exactly then).
  bool merge(std::span<const FeatureSummary> batch);

  [[nodiscard]] double score() const;
  [[nodiscard]] bool alerting() const;
  [[nodiscard]] std::uint64_t samples() const;
  [[nodiscard]] const DriftConfig& config() const { return config_; }

 private:
  [[nodiscard]] double score_locked() const;

  std::shared_ptr<const TrainingStats> reference_;
  DriftConfig config_;
  mutable std::mutex mu_;
  std::vector<FeatureSummary> live_;
  double score_ = 0.0;
  bool alerting_ = false;
};

}  // namespace aps::obs
