#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace aps::obs {

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot & (kMetricShards - 1);
}

namespace detail {

void atomic_add_double(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

// ---- Histogram -------------------------------------------------------------

Histogram::Histogram(const HistogramSpec& spec) : spec_(spec) {
  if (spec.buckets == 0 || spec.first_bound <= 0.0 || spec.growth <= 1.0) {
    throw std::invalid_argument("histogram spec needs buckets > 0, "
                                "first_bound > 0 and growth > 1");
  }
  bounds_.resize(spec.buckets);
  double bound = spec.first_bound;
  for (auto& b : bounds_) {
    b = bound;
    bound *= spec.growth;
  }
  shards_ = std::vector<Shard>(kMetricShards);
  for (auto& shard : shards_) {
    shard.counts = std::vector<std::atomic<std::uint64_t>>(spec.buckets + 1);
  }
}

void Histogram::observe(double value) noexcept {
  Shard& shard = shards_[thread_shard()];
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add_double(shard.sum, value);
  detail::atomic_max_double(max_, value);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t b = 0; b < shard.counts.size(); ++b) {
      snap.counts[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : snap.counts) snap.count += c;
  snap.max = snap.count > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
  return snap;
}

void Histogram::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& c : shard.counts) c.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
  max_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::percentile(double p) const {
  // Contract: an empty histogram (and a NaN p, which std::clamp would
  // propagate unpredictably) reads as exactly 0.0, never NaN.
  if (count == 0 || std::isnan(p)) return 0.0;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < target) continue;
    const double lower = b == 0 ? 0.0 : bounds[b - 1];
    const double upper = b < bounds.size() ? bounds[b] : max;
    const double fraction =
        (target - before) / static_cast<double>(counts[b]);
    return std::min(lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0),
                    max);
  }
  return max;
}

// ---- Exposition ------------------------------------------------------------

namespace {

/// Escape a Prometheus label value (backslash, quote, newline).
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + prom_escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

/// Number formatting shared by both expositions: shortest round-trip.
std::string fmt(double v) {
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

std::string MetricSample::series() const { return name + label_block(labels); }

std::string RegistrySnapshot::prometheus() const {
  std::string out;
  std::string last_family;
  for (const MetricSample& s : samples) {
    if (s.name != last_family) {
      last_family = s.name;
      if (!s.help.empty()) {
        out += "# HELP " + s.name + " " + s.help + "\n";
      }
      out += "# TYPE " + s.name + " " + std::string(kind_name(s.kind)) + "\n";
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        out += s.series() + " " + std::to_string(s.counter) + "\n";
        break;
      case MetricKind::kGauge:
        out += s.series() + " " + fmt(s.gauge) + "\n";
        break;
      case MetricKind::kHistogram: {
        // Cumulative `le` buckets per the exposition format.
        Labels labels = s.labels;
        labels.emplace_back("le", "");
        std::uint64_t cumulative = 0;
        const auto& h = s.histogram;
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
          cumulative += h.counts[b];
          labels.back().second = b < h.bounds.size() ? fmt(h.bounds[b])
                                                     : "+Inf";
          out += s.name + "_bucket" + label_block(labels) + " " +
                 std::to_string(cumulative) + "\n";
        }
        out += s.name + "_sum" + label_block(s.labels) + " " + fmt(h.sum) +
               "\n";
        out += s.name + "_count" + label_block(s.labels) + " " +
               std::to_string(h.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string RegistrySnapshot::json() const {
  std::string out = "{\"metrics\": [";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    if (i > 0) out += ", ";
    out += "{\"name\": \"" + json_escape(s.name) + "\", \"type\": \"" +
           kind_name(s.kind) + "\"";
    if (!s.labels.empty()) {
      out += ", \"labels\": {";
      for (std::size_t l = 0; l < s.labels.size(); ++l) {
        if (l > 0) out += ", ";
        out += "\"" + json_escape(s.labels[l].first) + "\": \"" +
               json_escape(s.labels[l].second) + "\"";
      }
      out += "}";
    }
    switch (s.kind) {
      case MetricKind::kCounter:
        out += ", \"value\": " + std::to_string(s.counter);
        break;
      case MetricKind::kGauge:
        out += ", \"value\": " + fmt(s.gauge);
        break;
      case MetricKind::kHistogram: {
        const auto& h = s.histogram;
        out += ", \"count\": " + std::to_string(h.count) +
               ", \"sum\": " + fmt(h.sum) + ", \"max\": " + fmt(h.max) +
               ", \"p50\": " + fmt(h.percentile(50.0)) +
               ", \"p95\": " + fmt(h.percentile(95.0)) +
               ", \"p99\": " + fmt(h.percentile(99.0)) + ", \"buckets\": [";
        bool first = true;
        for (std::size_t b = 0; b < h.counts.size(); ++b) {
          if (h.counts[b] == 0) continue;  // sparse: most buckets are empty
          if (!first) out += ", ";
          first = false;
          out += "{\"le\": " +
                 (b < h.bounds.size() ? fmt(h.bounds[b])
                                      : std::string("\"+Inf\"")) +
                 ", \"count\": " + std::to_string(h.counts[b]) + "}";
        }
        out += "]";
        break;
      }
    }
    out += "}";
  }
  out += "], \"spans\": [";
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& span = spans[i];
    if (i > 0) out += ", ";
    out += "{\"name\": \"" + json_escape(span.name) +
           "\", \"thread\": " + std::to_string(span.thread) +
           ", \"start_us\": " + fmt(span.start_us) +
           ", \"dur_us\": " + fmt(span.dur_us) + "}";
  }
  out += "]}";
  return out;
}

// ---- Registry --------------------------------------------------------------

namespace {

/// Canonical label identity: sorted "k=v" joined with unit separators.
std::string label_id(const Labels& labels) {
  std::string id;
  for (const auto& [k, v] : labels) {
    id += k;
    id += '\x1f';
    id += v;
    id += '\x1e';
  }
  return id;
}

}  // namespace

Registry::Metric& Registry::get_or_create(const std::string& name,
                                          Labels labels,
                                          const std::string& help,
                                          MetricKind kind) {
  // Caller must hold mu_.
  std::sort(labels.begin(), labels.end());
  const Key key{name, label_id(labels)};
  const auto it = series_.find(key);
  if (it != series_.end()) {
    if (it->second.kind != kind) {
      throw std::invalid_argument("metric '" + name +
                                  "' already registered with another kind");
    }
    return it->second;
  }
  Metric metric;
  metric.kind = kind;
  metric.help = help;
  metric.labels = std::move(labels);
  return series_.emplace(key, std::move(metric)).first->second;
}

Counter& Registry::counter(const std::string& name, Labels labels,
                           const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Metric& metric =
      get_or_create(name, std::move(labels), help, MetricKind::kCounter);
  if (metric.counter == nullptr) metric.counter = std::make_unique<Counter>();
  return *metric.counter;
}

Gauge& Registry::gauge(const std::string& name, Labels labels,
                       const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Metric& metric =
      get_or_create(name, std::move(labels), help, MetricKind::kGauge);
  if (metric.gauge == nullptr) metric.gauge = std::make_unique<Gauge>();
  return *metric.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const HistogramSpec& spec, Labels labels,
                               const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  Metric& metric =
      get_or_create(name, std::move(labels), help, MetricKind::kHistogram);
  if (metric.histogram == nullptr) {
    metric.histogram = std::make_unique<Histogram>(spec);
  } else if (!(metric.histogram->spec() == spec)) {
    throw std::invalid_argument("histogram '" + name +
                                "' already registered with another layout");
  }
  return *metric.histogram;
}

const Registry::Metric* Registry::find(const std::string& name,
                                       const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_.find(Key{name, label_id(sorted)});
  return it == series_.end() ? nullptr : &it->second;
}

std::uint64_t Registry::counter_value(const std::string& name,
                                      const Labels& labels) const {
  const Metric* metric = find(name, labels);
  return metric != nullptr && metric->counter != nullptr
             ? metric->counter->value()
             : 0;
}

double Registry::gauge_value(const std::string& name,
                             const Labels& labels) const {
  const Metric* metric = find(name, labels);
  return metric != nullptr && metric->gauge != nullptr
             ? metric->gauge->value()
             : 0.0;
}

RegistrySnapshot Registry::scrape() const {
  RegistrySnapshot snap;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    snap.samples.reserve(series_.size());
    for (const auto& [key, metric] : series_) {
      MetricSample sample;
      sample.name = key.first;
      sample.labels = metric.labels;
      sample.kind = metric.kind;
      sample.help = metric.help;
      switch (metric.kind) {
        case MetricKind::kCounter:
          if (metric.counter != nullptr) {
            sample.counter = metric.counter->value();
          }
          break;
        case MetricKind::kGauge:
          if (metric.gauge != nullptr) sample.gauge = metric.gauge->value();
          break;
        case MetricKind::kHistogram:
          if (metric.histogram != nullptr) {
            sample.histogram = metric.histogram->snapshot();
          }
          break;
      }
      snap.samples.push_back(std::move(sample));
    }
  }
  snap.spans = tracer_.recent();
  return snap;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace aps::obs
