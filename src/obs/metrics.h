// Process-wide telemetry: a thread-safe metric registry of counters,
// gauges, and fixed-exponential-bucket histograms. Hot-path updates pay
// one relaxed atomic add on a per-thread shard (cache-line padded, so
// concurrent writers never bounce a line); scrape() merges the shards
// into a consistent-enough snapshot and renders it as Prometheus text or
// JSON. Registration is idempotent: asking for an existing (name, labels)
// series returns the same handle, so call sites can cache raw pointers —
// a Registry never invalidates or moves its metrics while alive.
//
// The registry deliberately has no unregister: serving metrics are
// append-only time series, and a shard that dies simply stops updating
// its labeled series. Tests that need isolation construct their own
// Registry instead of scraping the process-global one.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace aps::obs {

/// Label set of one series; rendered sorted by key, so two label vectors
/// with the same pairs in any order name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Per-metric write shards: power of two, sized for "a handful of worker
/// threads" — more threads than shards just share slots, which stays
/// correct (atomic adds), merely slightly more contended.
inline constexpr std::size_t kMetricShards = 16;

/// Stable per-thread shard slot (assigned on first use, process-wide).
[[nodiscard]] std::size_t thread_shard();

namespace detail {
/// One cache line per atomic so concurrent writers on different shards
/// never invalidate each other.
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

void atomic_add_double(std::atomic<double>& target, double delta);
void atomic_max_double(std::atomic<double>& target, double value);
}  // namespace detail

/// Monotonic event count. add() is one relaxed fetch_add on the caller
/// thread's shard; value() sums the shards (exact once writers quiesce,
/// monotone-approximate while they run).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() noexcept {
    for (auto& shard : shards_) shard.v.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<detail::PaddedU64, kMetricShards> shards_;
};

/// Last-write-wins instantaneous value (generation, open sessions, drift
/// score). Unsharded: gauges are set at bookkeeping rate, not tick rate.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    detail::atomic_add_double(value_, delta);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed exponential bucket layout: finite upper bounds
/// first_bound * growth^i for i in [0, buckets), plus an implicit +Inf
/// overflow bucket. Chosen once at registration; every observe is a
/// binary search plus two relaxed atomic updates on the caller's shard.
struct HistogramSpec {
  double first_bound = 1.0;
  double growth = 2.0;
  std::size_t buckets = 24;

  /// Layout used for all latency series: 1us .. ~500s at 1.5x resolution.
  [[nodiscard]] static HistogramSpec latency_us() {
    return {.first_bound = 1.0, .growth = 1.5, .buckets = 48};
  }

  /// Layout for size series (frame bytes, batch sizes): 16 .. ~16M at 2x.
  [[nodiscard]] static HistogramSpec bytes() {
    return {.first_bound = 16.0, .growth = 2.0, .buckets = 21};
  }

  [[nodiscard]] bool operator==(const HistogramSpec&) const = default;
};

/// Merged point-in-time view of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< finite `le` upper bounds
  std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (last = +Inf)
  std::uint64_t count = 0;             ///< total observations
  double sum = 0.0;
  double max = 0.0;                    ///< largest observed value (0 if none)

  /// Percentile estimate by linear interpolation inside the owning
  /// bucket, clamped to the tracked max so p100 is exact.
  ///
  /// Empty-histogram contract (pinned by obs_test): with count == 0 the
  /// result is exactly 0.0 for every p — never NaN, never a bucket bound.
  /// A NaN p also yields 0.0. Consumers that must distinguish "no data"
  /// from "all zeros" check `count`, not the percentile value.
  [[nodiscard]] double percentile(double p) const;
};

class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec);

  void observe(double value) noexcept;
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] const HistogramSpec& spec() const { return spec_; }
  /// Zero every bucket/sum/max (scrapers racing a reset see a torn but
  /// structurally valid snapshot; totals are exact once writers quiesce).
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> counts;  ///< buckets + overflow
    std::atomic<double> sum{0.0};
  };

  HistogramSpec spec_;
  std::vector<double> bounds_;
  std::vector<Shard> shards_;
  std::atomic<double> max_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One series in a scrape, fully merged.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  std::string help;
  std::uint64_t counter = 0;       ///< kCounter
  double gauge = 0.0;              ///< kGauge
  HistogramSnapshot histogram;     ///< kHistogram

  /// Series identity, Prometheus style: name{k="v",...}.
  [[nodiscard]] std::string series() const;
};

/// Point-in-time scrape of a whole registry: metric samples (sorted by
/// name, then labels) plus the most recent trace spans.
struct RegistrySnapshot {
  std::vector<MetricSample> samples;
  std::vector<SpanRecord> spans;

  /// Prometheus text exposition format (# HELP / # TYPE, cumulative
  /// `le` buckets, _sum/_count). Spans are metrics-only, so they do not
  /// appear here.
  [[nodiscard]] std::string prometheus() const;
  /// JSON object: {"metrics": [...], "spans": [...]}.
  [[nodiscard]] std::string json() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. Throws std::invalid_argument when the (name, labels)
  /// series already exists with a different kind (or, for histograms, a
  /// different bucket layout) — one series, one meaning.
  Counter& counter(const std::string& name, Labels labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, Labels labels = {},
               const std::string& help = "");
  Histogram& histogram(const std::string& name, const HistogramSpec& spec,
                       Labels labels = {}, const std::string& help = "");

  /// Span sink shared by everything reporting into this registry.
  [[nodiscard]] Tracer& tracer() { return tracer_; }

  [[nodiscard]] RegistrySnapshot scrape() const;
  [[nodiscard]] std::string scrape_prometheus() const {
    return scrape().prometheus();
  }
  [[nodiscard]] std::string scrape_json() const { return scrape().json(); }

  /// Current value of an existing counter/gauge series; 0 when the
  /// series does not exist (convenient for tests and delta readers).
  [[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] double gauge_value(const std::string& name,
                                   const Labels& labels = {}) const;

  /// The process-global registry (what serving/sim/experiment code
  /// reports into unless given an explicit instance).
  [[nodiscard]] static Registry& global();

 private:
  struct Metric {
    MetricKind kind = MetricKind::kCounter;
    std::string help;
    Labels labels;  ///< sorted
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  using Key = std::pair<std::string, std::string>;  ///< (name, label id)

  Metric& get_or_create(const std::string& name, Labels labels,
                        const std::string& help, MetricKind kind);
  [[nodiscard]] const Metric* find(const std::string& name,
                                   const Labels& labels) const;

  mutable std::mutex mu_;  ///< guards the series map, not the metrics
  std::map<Key, Metric> series_;
  Tracer tracer_;
};

}  // namespace aps::obs
