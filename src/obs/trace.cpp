#include "obs/trace.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"

namespace aps::obs {

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Tracer::Tracer(std::size_t capacity_per_thread)
    : id_(next_tracer_id()),
      capacity_(capacity_per_thread > 0 ? capacity_per_thread : 1),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::Ring& Tracer::local_ring() {
  // Per-thread cache keyed by the tracer's process-unique id: a destroyed
  // tracer's stale entries can never match a live tracer, so the Ring*
  // they hold is never dereferenced again.
  struct Entry {
    std::uint64_t id;
    Ring* ring;
  };
  thread_local std::vector<Entry> cache;
  for (const Entry& entry : cache) {
    if (entry.id == id_) return *entry.ring;
  }
  const std::lock_guard<std::mutex> lock(mu_);
  auto ring = std::make_unique<Ring>();
  ring->thread = static_cast<std::uint32_t>(rings_.size());
  ring->records.reserve(capacity_);
  Ring* raw = ring.get();
  rings_.push_back(std::move(ring));
  cache.push_back({id_, raw});
  return *raw;
}

void Tracer::record(const char* name, double start_us, double dur_us) {
  Ring& ring = local_ring();
  const std::lock_guard<std::mutex> lock(ring.mu);
  SpanRecord span{name, ring.thread, start_us, dur_us};
  if (ring.records.size() < capacity_) {
    ring.records.push_back(std::move(span));
  } else {
    ring.records[ring.next] = std::move(span);
    ring.next = (ring.next + 1) % capacity_;
  }
  ++ring.total;
}

std::vector<SpanRecord> Tracer::recent() const {
  std::vector<SpanRecord> spans;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      const std::lock_guard<std::mutex> ring_lock(ring->mu);
      // Oldest-first: from the overwrite cursor to the end, then the
      // wrapped prefix.
      for (std::size_t i = ring->next; i < ring->records.size(); ++i) {
        spans.push_back(ring->records[i]);
      }
      for (std::size_t i = 0; i < ring->next; ++i) {
        spans.push_back(ring->records[i]);
      }
    }
  }
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_us < b.start_us;
                   });
  return spans;
}

std::uint64_t Tracer::overwritten() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& ring : rings_) {
    const std::lock_guard<std::mutex> ring_lock(ring->mu);
    dropped += ring->total - ring->records.size();
  }
  return dropped;
}

Tracer::Scope::~Scope() {
  const auto t1 = std::chrono::steady_clock::now();
  const double start_us =
      std::chrono::duration<double, std::micro>(t0_ - tracer_->epoch_)
          .count();
  const double dur_us =
      std::chrono::duration<double, std::micro>(t1 - t0_).count();
  tracer_->record(name_, start_us, dur_us);
  if (histogram_ != nullptr) histogram_->observe(dur_us);
}

}  // namespace aps::obs
