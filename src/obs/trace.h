// Lightweight trace spans: monotonic-clock start/stop pairs recorded into
// per-thread ring buffers (each ring guarded by its own uncontended
// mutex), so instrumented phases — tick ingest, shard dispatch,
// predict_batch, merge; experiment train/eval — cost two clock reads and
// one ring write. recent() merges the rings into a time-ordered view; the
// registry's JSON scrape embeds it.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace aps::obs {

class Histogram;

/// One completed span. Times are microseconds relative to the owning
/// Tracer's construction (monotonic clock).
struct SpanRecord {
  std::string name;
  std::uint32_t thread = 0;  ///< ring index (thread registration order)
  double start_us = 0.0;
  double dur_us = 0.0;
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity_per_thread = 256);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// RAII span: records on destruction; optionally also feeds the
  /// duration (us) into a histogram.
  class Scope {
   public:
    Scope(Tracer* tracer, const char* name, Histogram* histogram = nullptr)
        : tracer_(tracer),
          name_(name),
          histogram_(histogram),
          t0_(std::chrono::steady_clock::now()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope();

   private:
    Tracer* tracer_;
    const char* name_;
    Histogram* histogram_;
    std::chrono::steady_clock::time_point t0_;
  };

  [[nodiscard]] Scope span(const char* name,
                           Histogram* histogram = nullptr) {
    return Scope(this, name, histogram);
  }

  /// All retained spans across threads, ordered by start time.
  [[nodiscard]] std::vector<SpanRecord> recent() const;

  /// Spans dropped ring-buffer-style (overwritten before a recent()).
  [[nodiscard]] std::uint64_t overwritten() const;

 private:
  friend class Scope;

  struct Ring {
    std::mutex mu;
    std::vector<SpanRecord> records;  ///< capacity-bounded
    std::size_t next = 0;             ///< overwrite cursor once full
    std::uint64_t total = 0;          ///< spans ever recorded
    std::uint32_t thread = 0;
  };

  [[nodiscard]] Ring& local_ring();
  void record(const char* name, double start_us, double dur_us);

  std::uint64_t id_;  ///< process-unique, keys the thread-local ring cache
  std::size_t capacity_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;  ///< guards rings_ growth
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace aps::obs
