#include "patient/bergman.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/units.h"
#include "patient/ode.h"

namespace aps::patient {

namespace {
/// U/h -> uU/min.
constexpr double kUPerHourToMicroUPerMin = 1.0e6 / 60.0;
}  // namespace

double BergmanParams::basal_u_per_h() const {
  const double needed_effect = egp / target_bg - gezi;  // SI*Ip_ss (1/min)
  if (needed_effect <= 0.0) return 0.0;  // patient holds target w/o insulin
  const double id_micro_u_per_min = ci * needed_effect / si;
  return id_micro_u_per_min / kUPerHourToMicroUPerMin;
}

BergmanPatient::BergmanPatient(BergmanParams params)
    : params_(std::move(params)) {
  assert(params_.si > 0.0 && params_.ci > 0.0);
  assert(params_.tau1 > 0.0 && params_.tau2 > 0.0 && params_.p2 > 0.0);
  reset(params_.target_bg);
}

void BergmanPatient::reset(double initial_bg) {
  // Insulin compartments at basal steady state, glucose at the requested
  // starting point.
  const double id = basal_rate_u_per_h() * kUPerHourToMicroUPerMin;
  const double isc_ss = id / params_.ci;
  state_[kIsc] = isc_ss;
  state_[kIp] = isc_ss;
  state_[kIeff] = params_.si * isc_ss;
  state_[kG] = std::clamp(initial_bg, kBgMin, kBgMax);
  meals_.clear();
  time_min_ = 0.0;
}

double BergmanPatient::basal_rate_u_per_h() const {
  return params_.basal_u_per_h();
}

void BergmanPatient::announce_meal(double carbs_g) {
  if (carbs_g > 0.0) meals_.push_back({carbs_g, 0.0});
}

double BergmanPatient::meal_ra(double ahead_min) const {
  // Two-parameter gamma-shaped appearance (paper §III / Kanderian):
  // RA(t) = CH*kc / (VG * tau_m^2) * t * exp(-t/tau_m), with CH in mg.
  double ra = 0.0;
  constexpr double kCarbToGlucoseMg = 1000.0;  // 1 g carb -> 1000 mg glucose
  for (const auto& meal : meals_) {
    const double t = meal.elapsed_min + ahead_min;
    if (t < 0.0) continue;
    const double ch_mg = meal.carbs_g * kCarbToGlucoseMg;
    ra += ch_mg / (params_.vg * params_.tau_meal * params_.tau_meal) * t *
          std::exp(-t / params_.tau_meal);
  }
  return ra;
}

void BergmanPatient::step(double insulin_rate_u_per_h, double dt_min) {
  const double id =
      std::max(0.0, insulin_rate_u_per_h) * kUPerHourToMicroUPerMin;
  const auto& p = params_;
  // RA varies slowly relative to the 1-minute substep; evaluate it at the
  // substep midpoint via the elapsed-time offset captured per call.
  const double ra = meal_ra(dt_min * 0.5);
  const auto deriv = [&](const std::array<double, kStateSize>& x) {
    std::array<double, kStateSize> d;
    d[kIsc] = -x[kIsc] / p.tau1 + id / (p.tau1 * p.ci);
    d[kIp] = (x[kIsc] - x[kIp]) / p.tau2;
    d[kIeff] = -p.p2 * x[kIeff] + p.p2 * p.si * x[kIp];
    d[kG] = -(p.gezi + x[kIeff]) * x[kG] + p.egp + ra;
    return d;
  };
  const int substeps = std::max(1, static_cast<int>(std::lround(dt_min)));
  state_ = rk4<kStateSize>(state_, dt_min, substeps, deriv);
  state_[kG] = std::clamp(state_[kG], kBgMin, kBgMax);
  state_[kIsc] = std::max(0.0, state_[kIsc]);
  state_[kIp] = std::max(0.0, state_[kIp]);
  state_[kIeff] = std::max(0.0, state_[kIeff]);
  for (auto& meal : meals_) meal.elapsed_min += dt_min;
  // Drop meals that have fully appeared (>12h old) to bound state size.
  std::erase_if(meals_,
                [](const Meal& m) { return m.elapsed_min > 720.0; });
  time_min_ += dt_min;
}

std::unique_ptr<PatientModel> BergmanPatient::clone() const {
  return std::make_unique<BergmanPatient>(*this);
}

std::unique_ptr<PatientBatch> BergmanPatient::make_batch() const {
  return std::make_unique<BergmanBatch>();
}

// ---- BergmanBatch ----------------------------------------------------------

bool BergmanBatch::add_lane(const PatientModel& prototype) {
  const auto* model = dynamic_cast<const BergmanPatient*>(&prototype);
  if (model == nullptr) return false;
  const BergmanParams& p = model->params();
  params_.push_back(p);
  si_.push_back(p.si);
  gezi_.push_back(p.gezi);
  egp_.push_back(p.egp);
  ci_.push_back(p.ci);
  p2_.push_back(p.p2);
  tau1_.push_back(p.tau1);
  tau2_.push_back(p.tau2);
  isc_.push_back(0.0);
  ip_.push_back(0.0);
  ieff_.push_back(0.0);
  g_.push_back(p.target_bg);
  meals_.emplace_back();
  reset_lane(params_.size() - 1, p.target_bg);
  return true;
}

void BergmanBatch::reset_lane(std::size_t lane, double initial_bg) {
  // Mirrors BergmanPatient::reset.
  const BergmanParams& p = params_[lane];
  const double id = p.basal_u_per_h() * kUPerHourToMicroUPerMin;
  const double isc_ss = id / p.ci;
  isc_[lane] = isc_ss;
  ip_[lane] = isc_ss;
  ieff_[lane] = p.si * isc_ss;
  g_[lane] = std::clamp(initial_bg, kBgMin, kBgMax);
  meals_[lane].clear();
}

void BergmanBatch::announce_meal(std::size_t lane, double carbs_g) {
  if (carbs_g > 0.0) meals_[lane].push_back({carbs_g, 0.0});
}

double BergmanBatch::meal_ra(std::size_t lane, double ahead_min) const {
  // Same accumulation chain as BergmanPatient::meal_ra.
  const BergmanParams& p = params_[lane];
  double ra = 0.0;
  constexpr double kCarbToGlucoseMg = 1000.0;
  for (const auto& meal : meals_[lane]) {
    const double t = meal.elapsed_min + ahead_min;
    if (t < 0.0) continue;
    const double ch_mg = meal.carbs_g * kCarbToGlucoseMg;
    ra += ch_mg / (p.vg * p.tau_meal * p.tau_meal) * t *
          std::exp(-t / p.tau_meal);
  }
  return ra;
}

void BergmanBatch::deriv(const std::vector<double>& isc,
                         const std::vector<double>& ip,
                         const std::vector<double>& ieff,
                         const std::vector<double>& g,
                         std::vector<double>& d_isc,
                         std::vector<double>& d_ip,
                         std::vector<double>& d_ieff,
                         std::vector<double>& d_g) const {
  const std::size_t n = params_.size();
  for (std::size_t l = 0; l < n; ++l) {
    d_isc[l] = -isc[l] / tau1_[l] + id_[l] / (tau1_[l] * ci_[l]);
    d_ip[l] = (isc[l] - ip[l]) / tau2_[l];
    d_ieff[l] = -p2_[l] * ieff[l] + p2_[l] * si_[l] * ip[l];
    d_g[l] = -(gezi_[l] + ieff[l]) * g[l] + egp_[l] + ra_[l];
  }
}

void BergmanBatch::step(std::span<const double> insulin_rate_u_per_h,
                        double dt_min) {
  const std::size_t n = params_.size();
  id_.resize(n);
  ra_.resize(n);
  for (auto* v : {&t_isc_, &t_ip_, &t_ieff_, &t_g_}) v->resize(n);
  for (int s = 0; s < 4; ++s) {
    k_isc_[s].resize(n);
    k_ip_[s].resize(n);
    k_ieff_[s].resize(n);
    k_g_[s].resize(n);
  }

  for (std::size_t l = 0; l < n; ++l) {
    id_[l] = std::max(0.0, insulin_rate_u_per_h[l]) * kUPerHourToMicroUPerMin;
  }
  // As in the scalar model, RA is evaluated once per control step at the
  // substep midpoint.
  for (std::size_t l = 0; l < n; ++l) ra_[l] = meal_ra(l, dt_min * 0.5);

  const int substeps = std::max(1, static_cast<int>(std::lround(dt_min)));
  const double h = dt_min / static_cast<double>(substeps);
  for (int s = 0; s < substeps; ++s) {
    deriv(isc_, ip_, ieff_, g_, k_isc_[0], k_ip_[0], k_ieff_[0], k_g_[0]);
    for (std::size_t l = 0; l < n; ++l) {
      t_isc_[l] = isc_[l] + 0.5 * h * k_isc_[0][l];
      t_ip_[l] = ip_[l] + 0.5 * h * k_ip_[0][l];
      t_ieff_[l] = ieff_[l] + 0.5 * h * k_ieff_[0][l];
      t_g_[l] = g_[l] + 0.5 * h * k_g_[0][l];
    }
    deriv(t_isc_, t_ip_, t_ieff_, t_g_, k_isc_[1], k_ip_[1], k_ieff_[1],
          k_g_[1]);
    for (std::size_t l = 0; l < n; ++l) {
      t_isc_[l] = isc_[l] + 0.5 * h * k_isc_[1][l];
      t_ip_[l] = ip_[l] + 0.5 * h * k_ip_[1][l];
      t_ieff_[l] = ieff_[l] + 0.5 * h * k_ieff_[1][l];
      t_g_[l] = g_[l] + 0.5 * h * k_g_[1][l];
    }
    deriv(t_isc_, t_ip_, t_ieff_, t_g_, k_isc_[2], k_ip_[2], k_ieff_[2],
          k_g_[2]);
    for (std::size_t l = 0; l < n; ++l) {
      t_isc_[l] = isc_[l] + h * k_isc_[2][l];
      t_ip_[l] = ip_[l] + h * k_ip_[2][l];
      t_ieff_[l] = ieff_[l] + h * k_ieff_[2][l];
      t_g_[l] = g_[l] + h * k_g_[2][l];
    }
    deriv(t_isc_, t_ip_, t_ieff_, t_g_, k_isc_[3], k_ip_[3], k_ieff_[3],
          k_g_[3]);
    for (std::size_t l = 0; l < n; ++l) {
      isc_[l] += h / 6.0 *
                 (k_isc_[0][l] + 2.0 * k_isc_[1][l] + 2.0 * k_isc_[2][l] +
                  k_isc_[3][l]);
      ip_[l] += h / 6.0 *
                (k_ip_[0][l] + 2.0 * k_ip_[1][l] + 2.0 * k_ip_[2][l] +
                 k_ip_[3][l]);
      ieff_[l] += h / 6.0 *
                  (k_ieff_[0][l] + 2.0 * k_ieff_[1][l] + 2.0 * k_ieff_[2][l] +
                   k_ieff_[3][l]);
      g_[l] += h / 6.0 *
               (k_g_[0][l] + 2.0 * k_g_[1][l] + 2.0 * k_g_[2][l] +
                k_g_[3][l]);
    }
  }

  for (std::size_t l = 0; l < n; ++l) {
    g_[l] = std::clamp(g_[l], kBgMin, kBgMax);
    isc_[l] = std::max(0.0, isc_[l]);
    ip_[l] = std::max(0.0, ip_[l]);
    ieff_[l] = std::max(0.0, ieff_[l]);
  }
  for (std::size_t l = 0; l < n; ++l) {
    for (auto& meal : meals_[l]) meal.elapsed_min += dt_min;
    std::erase_if(meals_[l],
                  [](const Meal& m) { return m.elapsed_min > 720.0; });
  }
}

void BergmanBatch::bg(std::span<double> out) const {
  for (std::size_t l = 0; l < params_.size(); ++l) out[l] = g_[l];
}

}  // namespace aps::patient
