#include "patient/bergman.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/units.h"
#include "patient/ode.h"

namespace aps::patient {

namespace {
/// U/h -> uU/min.
constexpr double kUPerHourToMicroUPerMin = 1.0e6 / 60.0;
}  // namespace

double BergmanParams::basal_u_per_h() const {
  const double needed_effect = egp / target_bg - gezi;  // SI*Ip_ss (1/min)
  if (needed_effect <= 0.0) return 0.0;  // patient holds target w/o insulin
  const double id_micro_u_per_min = ci * needed_effect / si;
  return id_micro_u_per_min / kUPerHourToMicroUPerMin;
}

BergmanPatient::BergmanPatient(BergmanParams params)
    : params_(std::move(params)) {
  assert(params_.si > 0.0 && params_.ci > 0.0);
  assert(params_.tau1 > 0.0 && params_.tau2 > 0.0 && params_.p2 > 0.0);
  reset(params_.target_bg);
}

void BergmanPatient::reset(double initial_bg) {
  // Insulin compartments at basal steady state, glucose at the requested
  // starting point.
  const double id = basal_rate_u_per_h() * kUPerHourToMicroUPerMin;
  const double isc_ss = id / params_.ci;
  state_[kIsc] = isc_ss;
  state_[kIp] = isc_ss;
  state_[kIeff] = params_.si * isc_ss;
  state_[kG] = std::clamp(initial_bg, kBgMin, kBgMax);
  meals_.clear();
  time_min_ = 0.0;
}

double BergmanPatient::basal_rate_u_per_h() const {
  return params_.basal_u_per_h();
}

void BergmanPatient::announce_meal(double carbs_g) {
  if (carbs_g > 0.0) meals_.push_back({carbs_g, 0.0});
}

double BergmanPatient::meal_ra(double ahead_min) const {
  // Two-parameter gamma-shaped appearance (paper §III / Kanderian):
  // RA(t) = CH*kc / (VG * tau_m^2) * t * exp(-t/tau_m), with CH in mg.
  double ra = 0.0;
  constexpr double kCarbToGlucoseMg = 1000.0;  // 1 g carb -> 1000 mg glucose
  for (const auto& meal : meals_) {
    const double t = meal.elapsed_min + ahead_min;
    if (t < 0.0) continue;
    const double ch_mg = meal.carbs_g * kCarbToGlucoseMg;
    ra += ch_mg / (params_.vg * params_.tau_meal * params_.tau_meal) * t *
          std::exp(-t / params_.tau_meal);
  }
  return ra;
}

void BergmanPatient::step(double insulin_rate_u_per_h, double dt_min) {
  const double id =
      std::max(0.0, insulin_rate_u_per_h) * kUPerHourToMicroUPerMin;
  const auto& p = params_;
  // RA varies slowly relative to the 1-minute substep; evaluate it at the
  // substep midpoint via the elapsed-time offset captured per call.
  const double ra = meal_ra(dt_min * 0.5);
  const auto deriv = [&](const std::array<double, kStateSize>& x) {
    std::array<double, kStateSize> d;
    d[kIsc] = -x[kIsc] / p.tau1 + id / (p.tau1 * p.ci);
    d[kIp] = (x[kIsc] - x[kIp]) / p.tau2;
    d[kIeff] = -p.p2 * x[kIeff] + p.p2 * p.si * x[kIp];
    d[kG] = -(p.gezi + x[kIeff]) * x[kG] + p.egp + ra;
    return d;
  };
  const int substeps = std::max(1, static_cast<int>(std::lround(dt_min)));
  state_ = rk4<kStateSize>(state_, dt_min, substeps, deriv);
  state_[kG] = std::clamp(state_[kG], kBgMin, kBgMax);
  state_[kIsc] = std::max(0.0, state_[kIsc]);
  state_[kIp] = std::max(0.0, state_[kIp]);
  state_[kIeff] = std::max(0.0, state_[kIeff]);
  for (auto& meal : meals_) meal.elapsed_min += dt_min;
  // Drop meals that have fully appeared (>12h old) to bound state size.
  std::erase_if(meals_,
                [](const Meal& m) { return m.elapsed_min > 720.0; });
  time_min_ += dt_min;
}

std::unique_ptr<PatientModel> BergmanPatient::clone() const {
  return std::make_unique<BergmanPatient>(*this);
}

}  // namespace aps::patient
