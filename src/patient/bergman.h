// Identifiable-virtual-patient (IVP) glucose model, the dynamics class used
// by the Glucosym simulator (Kanderian et al. 2009, Bergman-Sherwin family;
// paper Eq. 6 is its glucose equation).
//
//   dIsc/dt  = -Isc/tau1 + ID(t) / (tau1 * CI)
//   dIp/dt   = -Ip/tau2  + Isc/tau2
//   dIeff/dt = -p2*Ieff + p2*SI*Ip
//   dG/dt    = -(GEZI + Ieff)*G + EGP + RA(t)
//
// with ID the insulin delivery (uU/min), Isc/Ip subcutaneous and plasma
// insulin concentrations (uU/mL), Ieff the insulin effect (1/min), G plasma
// glucose (mg/dL), and RA(t) the meal glucose appearance.
//
// Substitution note (DESIGN.md §2): Glucosym's clinical parameter sets are
// replaced by 10 synthetic adults drawn from the physiological ranges
// published by Kanderian et al.; see profiles.cpp.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "patient/model.h"

namespace aps::patient {

/// Per-patient parameters of the IVP model. Units in comments.
struct BergmanParams {
  std::string name;
  double si = 7.0e-4;    ///< insulin sensitivity (mL/uU/min)
  double gezi = 2.0e-3;  ///< glucose effectiveness at zero insulin (1/min)
  double egp = 1.3;      ///< endogenous glucose production (mg/dL/min)
  double ci = 1200.0;    ///< insulin clearance (mL/min)
  double p2 = 0.012;     ///< insulin action time constant (1/min)
  double tau1 = 60.0;    ///< s.c. insulin absorption time constant (min)
  double tau2 = 50.0;    ///< plasma insulin time constant (min)
  double tau_meal = 40.0;///< meal appearance time-to-peak (min)
  double vg = 150.0;     ///< glucose distribution volume (dL)
  double target_bg = 120.0;  ///< steady state the basal rate maintains

  /// Basal delivery (U/h) that holds G at target_bg:
  /// ID = CI * (EGP/G* - GEZI) / SI  [uU/min].
  [[nodiscard]] double basal_u_per_h() const;
};

class BergmanPatient final : public PatientModel {
 public:
  explicit BergmanPatient(BergmanParams params);

  void reset(double initial_bg) override;
  void step(double insulin_rate_u_per_h, double dt_min) override;
  [[nodiscard]] double bg() const override { return state_[kG]; }
  [[nodiscard]] double plasma_insulin() const override { return state_[kIp]; }
  [[nodiscard]] double basal_rate_u_per_h() const override;
  void announce_meal(double carbs_g) override;
  [[nodiscard]] const std::string& name() const override {
    return params_.name;
  }
  [[nodiscard]] std::unique_ptr<PatientModel> clone() const override;
  [[nodiscard]] std::unique_ptr<PatientBatch> make_batch() const override;

  [[nodiscard]] const BergmanParams& params() const { return params_; }
  /// Insulin effect state (1/min), exposed for tests.
  [[nodiscard]] double insulin_effect() const { return state_[kIeff]; }

 private:
  enum StateIndex { kIsc = 0, kIp = 1, kIeff = 2, kG = 3, kStateSize = 4 };

  struct Meal {
    double carbs_g;
    double elapsed_min;
  };

  /// Total meal glucose appearance (mg/dL/min) at `ahead_min` minutes past
  /// the current instant.
  [[nodiscard]] double meal_ra(double ahead_min) const;

  BergmanParams params_;
  std::array<double, kStateSize> state_{};
  std::vector<Meal> meals_;
  double time_min_ = 0.0;
};

/// Structure-of-arrays batch of IVP patients: the RK4 hot loop runs as
/// lane-inner passes over contiguous per-state arrays, so the compiler can
/// vectorize across runs. Each lane reproduces BergmanPatient::step
/// bit-for-bit (identical per-lane operation chains).
class BergmanBatch final : public PatientBatch {
 public:
  [[nodiscard]] bool add_lane(const PatientModel& prototype) override;
  [[nodiscard]] std::size_t lanes() const override { return params_.size(); }
  void reset_lane(std::size_t lane, double initial_bg) override;
  void announce_meal(std::size_t lane, double carbs_g) override;
  void step(std::span<const double> insulin_rate_u_per_h,
            double dt_min) override;
  void bg(std::span<double> out) const override;

 private:
  struct Meal {
    double carbs_g;
    double elapsed_min;
  };

  /// d/dt of every lane from (isc, ip, ieff, g) into the d_* arrays, using
  /// the per-step id_/ra_ inputs. Same expressions as BergmanPatient.
  void deriv(const std::vector<double>& isc, const std::vector<double>& ip,
             const std::vector<double>& ieff, const std::vector<double>& g,
             std::vector<double>& d_isc, std::vector<double>& d_ip,
             std::vector<double>& d_ieff, std::vector<double>& d_g) const;

  [[nodiscard]] double meal_ra(std::size_t lane, double ahead_min) const;

  std::vector<BergmanParams> params_;  ///< per-lane parameter sets

  // SoA mirrors of the parameters the hot loop touches.
  std::vector<double> si_, gezi_, egp_, ci_, p2_, tau1_, tau2_;

  // SoA state (BergmanPatient::StateIndex split into one array per state).
  std::vector<double> isc_, ip_, ieff_, g_;

  std::vector<std::vector<Meal>> meals_;  ///< per-lane announced meals

  // Per-step scratch (insulin delivery uU/min, meal appearance, RK4 slopes).
  std::vector<double> id_, ra_;
  std::vector<double> k_isc_[4], k_ip_[4], k_ieff_[4], k_g_[4];
  std::vector<double> t_isc_, t_ip_, t_ieff_, t_g_;
};

}  // namespace aps::patient
