#include "patient/dallaman.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/units.h"
#include "patient/ode.h"

namespace aps::patient {

namespace {
/// 1 U of insulin = 6000 pmol; rates are normalized per kg body weight.
double u_per_h_to_pmol_per_kg_min(double rate_u_per_h, double bw_kg) {
  return rate_u_per_h * 6000.0 / 60.0 / bw_kg;
}

double pmol_per_kg_min_to_u_per_h(double rate, double bw_kg) {
  return rate * bw_kg * 60.0 / 6000.0;
}
}  // namespace

DallaManPatient::DallaManPatient(DallaManParams params)
    : params_(std::move(params)) {
  assert(params_.bw > 0.0 && params_.vg > 0.0 && params_.vi > 0.0);
  solve_basal();
  reset(params_.target_bg);
}

double DallaManPatient::bg() const { return state_[kGp] / params_.vg; }

void DallaManPatient::solve_basal() {
  const auto& p = params_;
  const double gp = p.target_bg * p.vg;  // mg/kg

  // Tissue glucose from 0 = -Uid + k1*Gp - k2*Gt with X = 0:
  //   Vm0*Gt/(Km0+Gt) + k2*Gt = k1*Gp  — monotone in Gt, bisect.
  const double rhs = p.k1 * gp;
  double lo = 0.0, hi = gp * 4.0 + p.km0 * 4.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    const double val = p.vm0 * mid / (p.km0 + mid) + p.k2 * mid;
    (val < rhs ? lo : hi) = mid;
  }
  const double gt = 0.5 * (lo + hi);

  // Required EGP from the plasma-glucose balance.
  const double renal = p.ke1 * std::max(0.0, gp - p.ke2);
  const double egp = p.uii + renal + p.k1 * gp - p.k2 * gt;
  // Delayed insulin signal that produces this EGP.
  const double id = (p.kp1 - p.kp2 * gp - egp) / p.kp3;
  if (id <= 0.0) {
    throw std::invalid_argument(
        "DallaManPatient: parameters admit no positive basal insulin at "
        "target BG (patient '" + p.name + "')");
  }
  const double i_ss = id;          // at steady state Id = I1 = I
  ib_ = i_ss;                      // basal plasma concentration (pmol/L)
  const double ip = i_ss * p.vi;   // pmol/kg

  // Insulin kinetics steady state -> required appearance rate Rai = IIRb.
  const double il = p.m2 * ip / (p.m1 + p.m30);
  const double rai = (p.m2 + p.m4) * ip - p.m1 * il;
  if (rai <= 0.0) {
    throw std::invalid_argument(
        "DallaManPatient: negative basal appearance for '" + p.name + "'");
  }
  basal_u_per_h_ = pmol_per_kg_min_to_u_per_h(rai, p.bw);

  // Subcutaneous depot at steady state for that infusion.
  const double isc1 = rai / (p.kd + p.ka1);
  // Note: Rai = ka1*Isc1 + ka2*Isc2 and dIsc1/dt = 0 give
  // Isc2 = kd*Isc1/ka2, and indeed ka1*Isc1 + kd*Isc1 = IIRb. Consistent.
  const double isc2 = p.kd * isc1 / p.ka2;

  basal_state_[kGp] = gp;
  basal_state_[kGt] = gt;
  basal_state_[kX] = 0.0;
  basal_state_[kI1] = i_ss;
  basal_state_[kId] = i_ss;
  basal_state_[kIl] = il;
  basal_state_[kIp] = ip;
  basal_state_[kIsc1] = isc1;
  basal_state_[kIsc2] = isc2;
}

void DallaManPatient::reset(double initial_bg) {
  state_ = basal_state_;
  state_[kGp] = std::clamp(initial_bg, kBgMin, kBgMax) * params_.vg;
  // Tissue compartment re-equilibrated toward the initial plasma level so
  // the first minutes are not dominated by an artificial Gp/Gt imbalance.
  state_[kGt] = basal_state_[kGt] * (state_[kGp] / basal_state_[kGp]);
  meals_.clear();
}

void DallaManPatient::announce_meal(double carbs_g) {
  if (carbs_g > 0.0) meals_.push_back({carbs_g, 0.0});
}

double DallaManPatient::meal_ra(double ahead_min) const {
  double ra = 0.0;
  for (const auto& meal : meals_) {
    const double t = meal.elapsed_min + ahead_min;
    if (t < 0.0) continue;
    const double dose_mg = meal.carbs_g * 1000.0 * params_.f_meal;
    // gamma-shaped appearance per kg body weight
    ra += dose_mg / params_.bw /
          (params_.tau_meal * params_.tau_meal) * t *
          std::exp(-t / params_.tau_meal);
  }
  return ra;
}

void DallaManPatient::advance(const DallaManParams& p, double ib, double iir,
                              double ra, double dt_min,
                              std::array<double, kStateSize>& state) {
  const auto deriv = [&](const std::array<double, kStateSize>& x) {
    std::array<double, kStateSize> d;
    const double i_conc = x[kIp] / p.vi;  // pmol/L
    const double egp =
        std::max(0.0, p.kp1 - p.kp2 * x[kGp] - p.kp3 * x[kId]);
    const double uid =
        (p.vm0 + p.vmx * std::max(0.0, x[kX])) * x[kGt] / (p.km0 + x[kGt]);
    const double renal = p.ke1 * std::max(0.0, x[kGp] - p.ke2);
    d[kGp] = egp + ra - p.uii - renal - p.k1 * x[kGp] + p.k2 * x[kGt];
    d[kGt] = -uid + p.k1 * x[kGp] - p.k2 * x[kGt];
    d[kX] = -p.p2u * x[kX] + p.p2u * (i_conc - ib);
    d[kI1] = -p.ki * (x[kI1] - i_conc);
    d[kId] = -p.ki * (x[kId] - x[kI1]);
    const double rai = p.ka1 * x[kIsc1] + p.ka2 * x[kIsc2];
    d[kIl] = -(p.m1 + p.m30) * x[kIl] + p.m2 * x[kIp];
    d[kIp] = -(p.m2 + p.m4) * x[kIp] + p.m1 * x[kIl] + rai;
    d[kIsc1] = -(p.kd + p.ka1) * x[kIsc1] + iir;
    d[kIsc2] = p.kd * x[kIsc1] - p.ka2 * x[kIsc2];
    return d;
  };

  const int substeps = std::max(1, static_cast<int>(std::lround(dt_min)));
  state = rk4<kStateSize>(state, dt_min, substeps, deriv);
  // Physical clamps: concentrations and masses cannot go negative; plasma
  // glucose is clamped to the simulator's physiological range.
  for (std::size_t i = 0; i < kStateSize; ++i) {
    if (i != kX) state[i] = std::max(0.0, state[i]);
  }
  state[kGp] = std::clamp(state[kGp], kBgMin * p.vg, kBgMax * p.vg);
}

void DallaManPatient::step(double insulin_rate_u_per_h, double dt_min) {
  const auto& p = params_;
  const double iir =
      u_per_h_to_pmol_per_kg_min(std::max(0.0, insulin_rate_u_per_h), p.bw);
  const double ra = meal_ra(dt_min * 0.5);
  advance(p, ib_, iir, ra, dt_min, state_);
  for (auto& meal : meals_) meal.elapsed_min += dt_min;
  std::erase_if(meals_,
                [](const Meal& m) { return m.elapsed_min > 720.0; });
}

std::unique_ptr<PatientModel> DallaManPatient::clone() const {
  return std::make_unique<DallaManPatient>(*this);
}

std::unique_ptr<PatientBatch> DallaManPatient::make_batch() const {
  return std::make_unique<DallaManBatch>();
}

// ---- DallaManBatch ---------------------------------------------------------

bool DallaManBatch::add_lane(const PatientModel& prototype) {
  const auto* model = dynamic_cast<const DallaManPatient*>(&prototype);
  if (model == nullptr) return false;
  params_.push_back(model->params_);
  state_.push_back(model->basal_state_);
  basal_state_.push_back(model->basal_state_);
  ib_.push_back(model->ib_);
  meals_.emplace_back();
  reset_lane(params_.size() - 1, model->params_.target_bg);
  return true;
}

void DallaManBatch::reset_lane(std::size_t lane, double initial_bg) {
  // Mirrors DallaManPatient::reset.
  using P = DallaManPatient;
  state_[lane] = basal_state_[lane];
  state_[lane][P::kGp] =
      std::clamp(initial_bg, kBgMin, kBgMax) * params_[lane].vg;
  state_[lane][P::kGt] =
      basal_state_[lane][P::kGt] *
      (state_[lane][P::kGp] / basal_state_[lane][P::kGp]);
  meals_[lane].clear();
}

void DallaManBatch::announce_meal(std::size_t lane, double carbs_g) {
  if (carbs_g > 0.0) meals_[lane].push_back({carbs_g, 0.0});
}

double DallaManBatch::meal_ra(std::size_t lane, double ahead_min) const {
  // Same accumulation chain as DallaManPatient::meal_ra.
  const DallaManParams& p = params_[lane];
  double ra = 0.0;
  for (const auto& meal : meals_[lane]) {
    const double t = meal.elapsed_min + ahead_min;
    if (t < 0.0) continue;
    const double dose_mg = meal.carbs_g * 1000.0 * p.f_meal;
    ra += dose_mg / p.bw / (p.tau_meal * p.tau_meal) * t *
          std::exp(-t / p.tau_meal);
  }
  return ra;
}

void DallaManBatch::step(std::span<const double> insulin_rate_u_per_h,
                         double dt_min) {
  for (std::size_t l = 0; l < params_.size(); ++l) {
    const DallaManParams& p = params_[l];
    const double iir = u_per_h_to_pmol_per_kg_min(
        std::max(0.0, insulin_rate_u_per_h[l]), p.bw);
    const double ra = meal_ra(l, dt_min * 0.5);
    DallaManPatient::advance(p, ib_[l], iir, ra, dt_min, state_[l]);
    for (auto& meal : meals_[l]) meal.elapsed_min += dt_min;
    std::erase_if(meals_[l],
                  [](const Meal& m) { return m.elapsed_min > 720.0; });
  }
}

void DallaManBatch::bg(std::span<double> out) const {
  for (std::size_t l = 0; l < params_.size(); ++l) {
    out[l] = state_[l][DallaManPatient::kGp] / params_[l].vg;
  }
}

}  // namespace aps::patient
