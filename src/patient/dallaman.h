// Reduced UVA-Padova (Dalla Man) type-1 diabetes model, the dynamics class
// behind the T1DS2013 simulator used in the paper's second evaluation stack.
//
// Implements the published glucose and insulin subsystems (Dalla Man et al.
// 2007; "The UVA/Padova Type 1 Diabetes Simulator: New Features", 2014):
//
//   glucose:   dGp/dt = EGP + Ra - Uii - E - k1*Gp + k2*Gt
//              dGt/dt = -Uid + k1*Gp - k2*Gt
//              Uid    = (Vm0 + Vmx*X) * Gt / (Km0 + Gt)
//              EGP    = max(0, kp1 - kp2*Gp - kp3*Id)
//              E      = ke1 * max(0, Gp - ke2)
//              G      = Gp / VG                               [mg/dL]
//   action:    dX/dt  = -p2U*X + p2U*(I - Ib)
//   delays:    dI1/dt = -ki*(I1 - I);  dId/dt = -ki*(Id - I1)
//   insulin:   dIl/dt = -(m1+m3)*Il + m2*Ip
//              dIp/dt = -(m2+m4)*Ip + m1*Il + Rai
//              I      = Ip / VI
//   s.c. depot dIsc1/dt = -(kd+ka1)*Isc1 + IIR(t)
//              dIsc2/dt = kd*Isc1 - ka2*Isc2
//              Rai     = ka1*Isc1 + ka2*Isc2
//   meal       Ra from a gamma-shaped gut appearance (reduced from the
//              three-compartment oral model).
//
// Substitution note (DESIGN.md §2): the licensed S2013 virtual-patient
// parameter sets are replaced with 10 synthetic adults spanning the
// published adult averages +-30%; see profiles.cpp.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "patient/model.h"

namespace aps::patient {

/// Per-patient parameters (units follow Dalla Man 2007/2014).
struct DallaManParams {
  std::string name;
  double bw = 70.0;      ///< body weight (kg)
  double vg = 1.88;      ///< glucose distribution volume (dL/kg)
  double k1 = 0.065;     ///< glucose rate Gp->Gt (1/min)
  double k2 = 0.079;     ///< glucose rate Gt->Gp (1/min)
  double kp1 = 2.70;     ///< EGP at zero glucose & insulin (mg/kg/min)
  /// EGP glucose inhibition (1/min). Below the published adult average
  /// (0.0021): with the reduced model's insulin-independent utilization,
  /// the literature value lets glucose alone shut EGP down and the
  /// zero-insulin equilibrium lands near 150 mg/dL — not type-1 diabetic.
  /// 0.0007 restores the defining T1D behaviour (no insulin -> sustained
  /// hyperglycemia above 250 mg/dL).
  double kp2 = 0.0007;
  double kp3 = 0.009;    ///< EGP insulin inhibition (mg/kg/min per pmol/L)
  double ki = 0.0079;    ///< delayed insulin signal rate (1/min)
  double uii = 1.0;      ///< insulin-independent utilization (mg/kg/min)
  double vm0 = 2.50;     ///< max insulin-indep. part of Uid (mg/kg/min)
  double vmx = 0.047;    ///< insulin sensitivity of Uid (mg/kg/min per pmol/L)
  double km0 = 225.59;   ///< Michaelis constant (mg/kg)
  double p2u = 0.0331;   ///< insulin action rate (1/min)
  double vi = 0.05;      ///< insulin distribution volume (L/kg)
  double m1 = 0.190;     ///< insulin kinetics (1/min)
  double m2 = 0.484;
  double m4 = 0.194;
  double m30 = 0.285;    ///< hepatic extraction term (1/min)
  double ke1 = 0.0005;   ///< renal clearance rate (1/min)
  double ke2 = 339.0;    ///< renal threshold (mg/kg)
  double kd = 0.0164;    ///< s.c. insulin: degradation to monomeric (1/min)
  double ka1 = 0.0018;   ///< absorption of non-monomeric (1/min)
  double ka2 = 0.0182;   ///< absorption of monomeric (1/min)
  double tau_meal = 45.0;///< meal appearance time-to-peak (min)
  double f_meal = 0.90;  ///< fraction of carbs appearing in plasma
  double target_bg = 120.0;  ///< steady state the basal rate maintains
};

class DallaManPatient final : public PatientModel {
 public:
  explicit DallaManPatient(DallaManParams params);

  void reset(double initial_bg) override;
  void step(double insulin_rate_u_per_h, double dt_min) override;
  [[nodiscard]] double bg() const override;
  [[nodiscard]] double plasma_insulin() const override {
    return state_[kIp];
  }
  [[nodiscard]] double basal_rate_u_per_h() const override {
    return basal_u_per_h_;
  }
  void announce_meal(double carbs_g) override;
  [[nodiscard]] const std::string& name() const override {
    return params_.name;
  }
  [[nodiscard]] std::unique_ptr<PatientModel> clone() const override;
  [[nodiscard]] std::unique_ptr<PatientBatch> make_batch() const override;

  [[nodiscard]] const DallaManParams& params() const { return params_; }

 private:
  friend class DallaManBatch;
  enum StateIndex {
    kGp = 0,
    kGt,
    kX,
    kI1,
    kId,
    kIl,
    kIp,
    kIsc1,
    kIsc2,
    kStateSize
  };

  struct Meal {
    double carbs_g;
    double elapsed_min;
  };

  /// Solve the basal operating point (steady state at target_bg); fills
  /// basal_u_per_h_, ib_ and the steady-state template used by reset().
  void solve_basal();

  [[nodiscard]] double meal_ra(double ahead_min) const;  // mg/kg/min

  /// RK4 advance of one state vector by dt_min (with the physical clamps);
  /// the single dynamics kernel shared by the scalar model and
  /// DallaManBatch, so both backends are bit-identical by construction.
  static void advance(const DallaManParams& p, double ib, double iir,
                      double ra, double dt_min,
                      std::array<double, kStateSize>& state);

  DallaManParams params_;
  std::array<double, kStateSize> state_{};
  std::array<double, kStateSize> basal_state_{};
  double basal_u_per_h_ = 0.0;
  double ib_ = 0.0;  ///< basal plasma insulin concentration (pmol/L)
  std::vector<Meal> meals_;
};

/// Batch of reduced UVA-Padova patients stepped in lockstep. Per-lane state
/// vectors live in one contiguous allocation and each lane is advanced by
/// the same DallaManPatient::advance kernel as the scalar model, so lane
/// traces are bit-identical to per-lane clones.
class DallaManBatch final : public PatientBatch {
 public:
  [[nodiscard]] bool add_lane(const PatientModel& prototype) override;
  [[nodiscard]] std::size_t lanes() const override { return params_.size(); }
  void reset_lane(std::size_t lane, double initial_bg) override;
  void announce_meal(std::size_t lane, double carbs_g) override;
  void step(std::span<const double> insulin_rate_u_per_h,
            double dt_min) override;
  void bg(std::span<double> out) const override;

 private:
  struct Meal {
    double carbs_g;
    double elapsed_min;
  };

  [[nodiscard]] double meal_ra(std::size_t lane, double ahead_min) const;

  std::vector<DallaManParams> params_;
  std::vector<std::array<double, DallaManPatient::kStateSize>> state_;
  std::vector<std::array<double, DallaManPatient::kStateSize>> basal_state_;
  std::vector<double> ib_;
  std::vector<std::vector<Meal>> meals_;
};

}  // namespace aps::patient
