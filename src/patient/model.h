// Abstract interface for glucose-insulin patient models used in the
// closed-loop simulation (paper Fig. 5a).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

namespace aps::patient {

class PatientModel;

/// Lockstep batch counterpart of PatientModel: N independent virtual
/// patients advanced together over structure-of-arrays state, so the ODE
/// hot loop stays cache-friendly and auto-vectorizable across lanes. Lane
/// semantics are bit-identical to stepping one PatientModel clone per lane
/// with the same inputs (the golden-trace suite enforces this).
class PatientBatch {
 public:
  virtual ~PatientBatch() = default;

  /// Append a lane configured like `prototype`; returns false when the
  /// prototype is not this batch's model kind (the caller then falls back
  /// to another backend).
  [[nodiscard]] virtual bool add_lane(const PatientModel& prototype) = 0;

  [[nodiscard]] virtual std::size_t lanes() const = 0;

  /// PatientModel::reset for one lane.
  virtual void reset_lane(std::size_t lane, double initial_bg) = 0;

  /// PatientModel::announce_meal for one lane.
  virtual void announce_meal(std::size_t lane, double carbs_g) = 0;

  /// Advance every lane by `dt_min` with its own infusion rate (U/h);
  /// per-lane semantics of PatientModel::step.
  virtual void step(std::span<const double> insulin_rate_u_per_h,
                    double dt_min) = 0;

  /// out[lane] = current plasma glucose (mg/dL).
  virtual void bg(std::span<double> out) const = 0;
};

/// A virtual patient: continuous glucose-insulin dynamics driven by a
/// subcutaneous insulin infusion rate. All models expose plasma glucose in
/// mg/dL and accept insulin rates in U/h.
class PatientModel {
 public:
  virtual ~PatientModel() = default;

  /// Reset all internal state; glucose starts at `initial_bg` (mg/dL) and
  /// the insulin compartments at the steady state for the model's basal
  /// rate (so simulations begin in a physiologically consistent state).
  virtual void reset(double initial_bg) = 0;

  /// Advance the physiology by `dt_min` minutes with the infusion rate
  /// (U/h) held constant, optionally with carbohydrate appearing from a
  /// meal announced earlier via `announce_meal`.
  virtual void step(double insulin_rate_u_per_h, double dt_min) = 0;

  /// Current plasma glucose (mg/dL).
  [[nodiscard]] virtual double bg() const = 0;

  /// Plasma insulin concentration (model-specific units); exposed for
  /// tests and extensions, not used by monitors.
  [[nodiscard]] virtual double plasma_insulin() const = 0;

  /// Basal infusion rate (U/h) that holds the model at its target
  /// steady-state glucose.
  [[nodiscard]] virtual double basal_rate_u_per_h() const = 0;

  /// Register a meal of `carbs_g` grams starting at the current time;
  /// glucose appears over the following hours (extension beyond the
  /// paper's no-meal scenario; used by the meal-disturbance example).
  virtual void announce_meal(double carbs_g) = 0;

  [[nodiscard]] virtual const std::string& name() const = 0;

  [[nodiscard]] virtual std::unique_ptr<PatientModel> clone() const = 0;

  /// A fresh, empty batch backend of this model's kind, or nullptr when
  /// the model has no specialized structure-of-arrays implementation (the
  /// simulator then steps per-lane clones instead).
  [[nodiscard]] virtual std::unique_ptr<PatientBatch> make_batch() const {
    return nullptr;
  }
};

}  // namespace aps::patient
