// Abstract interface for glucose-insulin patient models used in the
// closed-loop simulation (paper Fig. 5a).
#pragma once

#include <memory>
#include <string>

namespace aps::patient {

/// A virtual patient: continuous glucose-insulin dynamics driven by a
/// subcutaneous insulin infusion rate. All models expose plasma glucose in
/// mg/dL and accept insulin rates in U/h.
class PatientModel {
 public:
  virtual ~PatientModel() = default;

  /// Reset all internal state; glucose starts at `initial_bg` (mg/dL) and
  /// the insulin compartments at the steady state for the model's basal
  /// rate (so simulations begin in a physiologically consistent state).
  virtual void reset(double initial_bg) = 0;

  /// Advance the physiology by `dt_min` minutes with the infusion rate
  /// (U/h) held constant, optionally with carbohydrate appearing from a
  /// meal announced earlier via `announce_meal`.
  virtual void step(double insulin_rate_u_per_h, double dt_min) = 0;

  /// Current plasma glucose (mg/dL).
  [[nodiscard]] virtual double bg() const = 0;

  /// Plasma insulin concentration (model-specific units); exposed for
  /// tests and extensions, not used by monitors.
  [[nodiscard]] virtual double plasma_insulin() const = 0;

  /// Basal infusion rate (U/h) that holds the model at its target
  /// steady-state glucose.
  [[nodiscard]] virtual double basal_rate_u_per_h() const = 0;

  /// Register a meal of `carbs_g` grams starting at the current time;
  /// glucose appears over the following hours (extension beyond the
  /// paper's no-meal scenario; used by the meal-disturbance example).
  virtual void announce_meal(double carbs_g) = 0;

  [[nodiscard]] virtual const std::string& name() const = 0;

  [[nodiscard]] virtual std::unique_ptr<PatientModel> clone() const = 0;
};

}  // namespace aps::patient
