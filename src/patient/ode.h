// Fixed-step classical Runge-Kutta (RK4) integration over small fixed-size
// state vectors. Patient models advance in 1-minute internal substeps
// between 5-minute control cycles.
#pragma once

#include <array>
#include <cstddef>

namespace aps::patient {

/// Integrate dx/dt = f(x) from x over total `dt` using `substeps` RK4 steps.
/// `f` must be callable as f(const std::array<double,N>&) ->
/// std::array<double,N>.
template <std::size_t N, typename F>
std::array<double, N> rk4(const std::array<double, N>& x0, double dt,
                          int substeps, F&& f) {
  std::array<double, N> x = x0;
  const double h = dt / static_cast<double>(substeps);
  for (int s = 0; s < substeps; ++s) {
    const auto k1 = f(x);
    std::array<double, N> tmp;
    for (std::size_t i = 0; i < N; ++i) tmp[i] = x[i] + 0.5 * h * k1[i];
    const auto k2 = f(tmp);
    for (std::size_t i = 0; i < N; ++i) tmp[i] = x[i] + 0.5 * h * k2[i];
    const auto k3 = f(tmp);
    for (std::size_t i = 0; i < N; ++i) tmp[i] = x[i] + h * k3[i];
    const auto k4 = f(tmp);
    for (std::size_t i = 0; i < N; ++i) {
      x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
  }
  return x;
}

}  // namespace aps::patient
