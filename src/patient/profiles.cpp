#include "patient/profiles.h"

#include <stdexcept>

namespace aps::patient {

// Synthetic cohort spanning the Kanderian et al. 2009 ranges:
//   SI   1.5e-4 .. 1.9e-3 mL/uU/min     (insulin sensitivity)
//   GEZI ~0     .. 6e-3   1/min
//   EGP  0.6    .. 3.5    mg/dL/min
//   CI   600    .. 2200   mL/min
//   p2   0.005  .. 0.035  1/min
//   tau1/tau2  25 .. 130  min
// Patients A..J are ordered roughly from insulin-resistant/slow (robust to
// over-delivery) to insulin-sensitive/fast (fragile), which yields the wide
// hazard-coverage spread of Fig. 7a.
std::vector<BergmanParams> glucosym_cohort() {
  std::vector<BergmanParams> cohort;
  auto add = [&](const char* name, double si, double gezi, double egp,
                 double ci, double p2, double tau1, double tau2) {
    BergmanParams p;
    p.name = name;
    p.si = si;
    p.gezi = gezi;
    p.egp = egp;
    p.ci = ci;
    p.p2 = p2;
    p.tau1 = tau1;
    p.tau2 = tau2;
    cohort.push_back(p);
  };
  //   name        SI       GEZI     EGP   CI      p2      tau1  tau2
  add("glucosym-A", 3.0e-4, 1.0e-3, 1.7, 1800.0, 0.0070, 90.0, 70.0);
  add("glucosym-B", 4.2e-4, 2.2e-3, 1.4, 1500.0, 0.0085, 80.0, 65.0);
  add("glucosym-C", 5.5e-4, 1.6e-3, 2.1, 2000.0, 0.0100, 70.0, 60.0);
  add("glucosym-D", 6.8e-4, 2.8e-3, 1.2, 1300.0, 0.0120, 65.0, 55.0);
  add("glucosym-E", 8.0e-4, 2.0e-3, 1.8, 1100.0, 0.0140, 60.0, 50.0);
  add("glucosym-F", 9.5e-4, 1.2e-3, 2.4, 1600.0, 0.0160, 55.0, 45.0);
  add("glucosym-G", 1.1e-3, 3.2e-3, 1.0, 900.0,  0.0190, 50.0, 42.0);
  add("glucosym-H", 1.3e-3, 2.4e-3, 1.5, 1200.0, 0.0230, 45.0, 38.0);
  add("glucosym-I", 1.6e-3, 1.8e-3, 2.0, 800.0,  0.0280, 38.0, 34.0);
  add("glucosym-J", 1.9e-3, 3.6e-3, 1.1, 700.0,  0.0330, 30.0, 28.0);
  return cohort;
}

// Synthetic adults around the published Dalla Man adult averages, varying
// the insulin-sensitivity (vmx), EGP inhibition (kp3), action speed (p2u),
// body weight, and s.c. absorption within +-30%.
std::vector<DallaManParams> padova_cohort() {
  std::vector<DallaManParams> cohort;
  auto add = [&](const char* name, double bw, double vmx, double kp3,
                 double p2u, double vm0, double kd, double kp1) {
    DallaManParams p;
    p.name = name;
    p.bw = bw;
    p.vmx = vmx;
    p.kp3 = kp3;
    p.p2u = p2u;
    p.vm0 = vm0;
    p.kd = kd;
    p.kp1 = kp1;
    cohort.push_back(p);
  };
  // kp1 (max EGP) scales with vm0 so every patient needs a positive basal
  // insulin level to hold the 120 mg/dL target (the basal solver rejects
  // parameter sets that self-regulate without insulin).
  //   name       bw     vmx     kp3     p2u     vm0   kd      kp1
  add("padova-A", 92.0, 0.034, 0.0065, 0.0240, 2.10, 0.0120, 2.70);
  add("padova-B", 85.0, 0.038, 0.0072, 0.0265, 2.25, 0.0135, 2.72);
  add("padova-C", 78.0, 0.042, 0.0081, 0.0290, 2.40, 0.0150, 2.76);
  add("padova-D", 74.0, 0.045, 0.0088, 0.0310, 2.50, 0.0160, 2.80);
  add("padova-E", 70.0, 0.047, 0.0090, 0.0331, 2.50, 0.0164, 2.84);
  add("padova-F", 66.0, 0.050, 0.0096, 0.0355, 2.60, 0.0172, 2.88);
  add("padova-G", 62.0, 0.054, 0.0104, 0.0380, 2.70, 0.0185, 2.93);
  add("padova-H", 58.0, 0.058, 0.0112, 0.0405, 2.85, 0.0200, 2.99);
  add("padova-I", 54.0, 0.062, 0.0120, 0.0430, 3.00, 0.0215, 3.07);
  add("padova-J", 50.0, 0.066, 0.0130, 0.0460, 3.15, 0.0230, 3.16);
  return cohort;
}

std::unique_ptr<PatientModel> make_glucosym_patient(int index) {
  const auto cohort = glucosym_cohort();
  if (index < 0 || index >= static_cast<int>(cohort.size())) {
    throw std::out_of_range("glucosym patient index out of range");
  }
  return std::make_unique<BergmanPatient>(
      cohort[static_cast<std::size_t>(index)]);
}

std::unique_ptr<PatientModel> make_padova_patient(int index) {
  const auto cohort = padova_cohort();
  if (index < 0 || index >= static_cast<int>(cohort.size())) {
    throw std::out_of_range("padova patient index out of range");
  }
  return std::make_unique<DallaManPatient>(
      cohort[static_cast<std::size_t>(index)]);
}

}  // namespace aps::patient
