// Factory for the virtual-patient cohorts used throughout the evaluation:
// 10 Bergman/IVP adults (the Glucosym substitute) and 10 reduced Dalla Man
// adults (the UVA-Padova T1DS2013 substitute). Parameter sets are synthetic
// but span the physiological ranges published for each model family, so the
// cohort reproduces the strong inter-patient variability the paper relies
// on (Fig. 7a: hazard coverage 6.7%..92.4% across patients).
#pragma once

#include <memory>
#include <vector>

#include "patient/bergman.h"
#include "patient/dallaman.h"

namespace aps::patient {

/// Number of patients in each cohort (paper §V-A: 10 + 10).
inline constexpr int kCohortSize = 10;

[[nodiscard]] std::vector<BergmanParams> glucosym_cohort();
[[nodiscard]] std::vector<DallaManParams> padova_cohort();

/// Construct patient i (0-based) of the respective cohort.
[[nodiscard]] std::unique_ptr<PatientModel> make_glucosym_patient(int index);
[[nodiscard]] std::unique_ptr<PatientModel> make_padova_patient(int index);

}  // namespace aps::patient
