#include "patient/sensor.h"

#include <algorithm>
#include <cmath>

#include "common/units.h"

namespace aps::patient {

CgmSensor::CgmSensor(CgmConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {}

void CgmSensor::reset() { lagged_ = -1.0; }

double CgmSensor::read(double bg, double dt_min) {
  double value = bg;
  if (config_.lag_min > 0.0) {
    if (lagged_ < 0.0) {
      lagged_ = bg;
    } else {
      const double alpha = 1.0 - std::exp(-dt_min / config_.lag_min);
      lagged_ += alpha * (bg - lagged_);
    }
    value = lagged_;
  }
  if (config_.noise_std_mg_dl > 0.0) {
    value += rng_.gaussian(0.0, config_.noise_std_mg_dl);
  }
  if (config_.quantization_mg_dl > 0.0) {
    value = std::round(value / config_.quantization_mg_dl) *
            config_.quantization_mg_dl;
  }
  return std::clamp(value, kBgMin, kBgMax);
}

}  // namespace aps::patient
