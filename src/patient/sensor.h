// CGM sensor layer: turns true plasma glucose into the measurement stream
// the controller and monitor observe. The paper assumes sensor data are
// fault-free or already protected (§II "Hazard Prediction"), so the default
// configuration is noise-free; Gaussian noise and a first-order sensor lag
// are available for robustness experiments.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace aps::patient {

struct CgmConfig {
  double noise_std_mg_dl = 0.0;  ///< additive Gaussian measurement noise
  double lag_min = 0.0;          ///< first-order interstitial lag constant
  double quantization_mg_dl = 1.0;  ///< CGM output resolution (0 = none)
};

class CgmSensor {
 public:
  explicit CgmSensor(CgmConfig config = {}, std::uint64_t seed = 0);

  /// Produce the CGM reading for true glucose `bg` after `dt_min` minutes
  /// since the previous reading.
  [[nodiscard]] double read(double bg, double dt_min);

  void reset();

 private:
  CgmConfig config_;
  Rng rng_;
  double lagged_ = -1.0;  ///< <0 means uninitialized
};

}  // namespace aps::patient
