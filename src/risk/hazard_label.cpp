#include "risk/hazard_label.h"

#include <algorithm>

#include "risk/risk_index.h"

namespace aps::risk {

TraceLabel label_trace(std::span<const double> bg,
                       const HazardLabelConfig& config) {
  TraceLabel out;
  const auto n = bg.size();
  out.sample_hazard.assign(n, false);
  out.lbgi.assign(n, 0.0);
  out.hbgi.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t start =
        k + 1 >= static_cast<std::size_t>(config.window_samples)
            ? k + 1 - static_cast<std::size_t>(config.window_samples)
            : 0;
    const auto window = bg.subspan(start, k - start + 1);
    const RiskIndices ri = window_risk(window);
    out.lbgi[k] = ri.lbgi;
    out.hbgi[k] = ri.hbgi;

    const bool low = ri.lbgi > config.lbgi_threshold;
    const bool high = ri.hbgi > config.hbgi_threshold;
    out.sample_hazard[k] = low || high;

    if (out.onset_step < 0 && (low || high) && k > 0) {
      const bool low_rising = low && ri.lbgi > out.lbgi[k - 1];
      const bool high_rising = high && ri.hbgi > out.hbgi[k - 1];
      if (low_rising || high_rising) {
        out.onset_step = static_cast<int>(k);
        // LBGI dominance decides the hazard class: too much insulin drives
        // BG low (H1); too little drives it high (H2).
        out.type = low_rising ? aps::HazardType::kH1TooMuchInsulin
                              : aps::HazardType::kH2TooLittleInsulin;
      }
    }
  }
  out.hazardous = out.onset_step >= 0;
  if (!out.hazardous) {
    // No qualifying onset: clear stray above-threshold samples caused by a
    // recovering initial condition so ground truth matches the trace class.
    std::fill(out.sample_hazard.begin(), out.sample_hazard.end(), false);
  }
  return out;
}

}  // namespace aps::risk
