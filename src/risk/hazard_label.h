// Hazard labeling of simulation traces (paper §IV-C2, Fig. 5b).
//
// A window of BG readings (default: one hour = 12 samples) is hazardous
// when its LBGI exceeds 5 or its HBGI exceeds 9 (thresholds from [63][64]);
// the *onset* additionally requires the index to be increasing, i.e. a high
// chance of impending hypo-/hyperglycemia rather than a recovering episode.
#pragma once

#include <span>
#include <vector>

#include "common/units.h"

namespace aps::risk {

struct HazardLabelConfig {
  int window_samples = 12;  ///< one hour at 5-minute sampling
  double lbgi_threshold = 5.0;
  double hbgi_threshold = 9.0;
};

struct TraceLabel {
  bool hazardous = false;
  int onset_step = -1;  ///< first step with an increasing above-threshold index
  aps::HazardType type = aps::HazardType::kNone;
  /// Per-sample ground truth: true where the trailing-window index is above
  /// threshold (used by the sample-level confusion matrix).
  std::vector<bool> sample_hazard;
  /// Per-sample LBGI/HBGI (trailing window), exposed for plots/benches.
  std::vector<double> lbgi;
  std::vector<double> hbgi;
};

/// Label a BG trace sampled at the control period.
[[nodiscard]] TraceLabel label_trace(std::span<const double> bg,
                                     const HazardLabelConfig& config = {});

}  // namespace aps::risk
