#include "risk/risk_index.h"

#include <algorithm>
#include <cmath>

namespace aps::risk {

namespace {
constexpr double kA = 1.509;
constexpr double kB = 1.084;
constexpr double kC = 5.381;
}  // namespace

double risk_zero_bg() {
  // (ln BG)^1.084 = 5.381  =>  BG = exp(5.381^(1/1.084))
  return std::exp(std::pow(kC, 1.0 / kB));
}

double bg_risk_transform(double bg_mg_dl) {
  const double bg = std::max(bg_mg_dl, 1.0);
  return kA * (std::pow(std::log(bg), kB) - kC);
}

double bg_risk(double bg_mg_dl) {
  const double f = bg_risk_transform(bg_mg_dl);
  return 10.0 * f * f;
}

double bg_risk_signed(double bg_mg_dl) {
  const double f = bg_risk_transform(bg_mg_dl);
  return f < 0.0 ? -10.0 * f * f : 10.0 * f * f;
}

RiskIndices window_risk(std::span<const double> bg_window) {
  RiskIndices out;
  if (bg_window.empty()) return out;
  double lo = 0.0;
  double hi = 0.0;
  for (const double bg : bg_window) {
    const double f = bg_risk_transform(bg);
    const double r = 10.0 * f * f;
    if (f < 0.0) {
      lo += r;
    } else {
      hi += r;
    }
  }
  const auto n = static_cast<double>(bg_window.size());
  out.lbgi = lo / n;
  out.hbgi = hi / n;
  return out;
}

double mean_risk(std::span<const double> bg_trace) {
  if (bg_trace.empty()) return 0.0;
  double total = 0.0;
  for (const double bg : bg_trace) total += bg_risk(bg);
  return total / static_cast<double>(bg_trace.size());
}

}  // namespace aps::risk
