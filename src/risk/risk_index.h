// Kovatchev Blood Glucose Risk Index (paper §IV-C2, Eq. 5; refs [62][63]).
//
//   f(BG)    = 1.509 * ((ln BG)^1.084 - 5.381)      (symmetrizing transform)
//   risk(BG) = 10 * f(BG)^2
//
// f is negative on the hypoglycemic branch (BG below ~112.5 mg/dL) and
// positive on the hyperglycemic branch. The Low/High BG Indices are the
// branch-separated means over a window of readings:
//   LBGI = mean of risk(BG_i) where f(BG_i) < 0
//   HBGI = mean of risk(BG_i) where f(BG_i) > 0
// (means taken over the whole window, off-branch samples contribute 0).
#pragma once

#include <span>

namespace aps::risk {

/// BG (mg/dL) at which the risk function crosses zero (~112.5).
[[nodiscard]] double risk_zero_bg();

/// Symmetrizing transform f(BG); negative = hypo side.
[[nodiscard]] double bg_risk_transform(double bg_mg_dl);

/// Non-negative risk value, Eq. 5.
[[nodiscard]] double bg_risk(double bg_mg_dl);

/// Signed risk: -risk on the hypo branch, +risk on the hyper branch.
[[nodiscard]] double bg_risk_signed(double bg_mg_dl);

struct RiskIndices {
  double lbgi = 0.0;
  double hbgi = 0.0;
};

/// Branch-separated mean risk over a window of BG readings.
[[nodiscard]] RiskIndices window_risk(std::span<const double> bg_window);

/// Mean total risk index of a whole trace (used by the Average Risk
/// metric, Eq. 9).
[[nodiscard]] double mean_risk(std::span<const double> bg_trace);

}  // namespace aps::risk
