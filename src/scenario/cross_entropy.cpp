#include "scenario/cross_entropy.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace aps::scenario {

namespace {

struct PilotEntry {
  double severity = 0.0;
  double weight = 1.0;  ///< p/q at the round that sampled it
  ScenarioDraw draw;
};

/// Smoothed weighted-MLE retilt of one categorical dimension. `probs` are
/// the current sampling probabilities (normalized in place), `elite_mass`
/// the summed likelihood-ratio weights of elite draws realized per cell.
void retilt(std::vector<double>& probs, const std::vector<double>& elite_mass,
            double smoothing, double floor) {
  double prob_total = 0.0;
  double mass_total = 0.0;
  for (const double p : probs) prob_total += p;
  for (const double m : elite_mass) mass_total += m;
  if (prob_total <= 0.0 || mass_total <= 0.0) return;
  double updated_total = 0.0;
  for (std::size_t k = 0; k < probs.size(); ++k) {
    const double current = probs[k] / prob_total;
    const double mle = elite_mass[k] / mass_total;
    probs[k] =
        std::max(floor, smoothing * mle + (1.0 - smoothing) * current);
    updated_total += probs[k];
  }
  for (double& p : probs) p /= updated_total;
}

template <typename Dist>
void retilt_dist(Dist& dist, const std::vector<double>& elite_mass,
                 double smoothing, double floor) {
  std::vector<double> probs;
  probs.reserve(dist.cells.size());
  for (const auto& cell : dist.cells) probs.push_back(cell.weight);
  retilt(probs, elite_mass, smoothing, floor);
  for (std::size_t c = 0; c < dist.cells.size(); ++c) {
    dist.cells[c].weight = probs[c];
  }
}

/// Accumulate the elite weights realized per cell of each tilted dimension
/// and apply the smoothed update to `spec`.
void tilt_toward_elites(ScenarioSpec& spec, const ScenarioSpec& nominal,
                        const std::vector<const PilotEntry*>& elites,
                        const CrossEntropyConfig& config) {
  std::vector<double> kind_mass(spec.kinds.size(), 0.0);
  std::vector<double> start_mass(spec.start_step.cells.size(), 0.0);
  std::vector<double> duration_mass(spec.duration_steps.cells.size(), 0.0);
  std::vector<double> magnitude_mass(spec.magnitude_scale.cells.size(), 0.0);
  std::vector<double> bg_mass(spec.initial_bg.cells.size(), 0.0);
  double fault_mass = 0.0;
  double total_mass = 0.0;

  for (const PilotEntry* e : elites) {
    total_mass += e->weight;
    bg_mass[static_cast<std::size_t>(e->draw.bg_cell)] += e->weight;
    if (!e->draw.has_fault) continue;
    fault_mass += e->weight;
    kind_mass[static_cast<std::size_t>(e->draw.kind)] += e->weight;
    start_mass[static_cast<std::size_t>(e->draw.start_cell)] += e->weight;
    duration_mass[static_cast<std::size_t>(e->draw.duration_cell)] +=
        e->weight;
    magnitude_mass[static_cast<std::size_t>(e->draw.magnitude_cell)] +=
        e->weight;
  }
  if (total_mass <= 0.0) return;

  retilt(spec.kind_weights, kind_mass, config.smoothing, config.weight_floor);
  retilt_dist(spec.start_step, start_mass, config.smoothing,
              config.weight_floor);
  retilt_dist(spec.duration_steps, duration_mass, config.smoothing,
              config.weight_floor);
  retilt_dist(spec.magnitude_scale, magnitude_mass, config.smoothing,
              config.weight_floor);
  retilt_dist(spec.initial_bg, bg_mass, config.smoothing,
              config.weight_floor);
  // Bernoulli fault dimension: only tilt when the nominal spec mixes
  // fault-free runs in (a degenerate nominal stays degenerate so the
  // likelihood ratio never divides by zero).
  if (nominal.fault_prob > 0.0 && nominal.fault_prob < 1.0) {
    const double mle = fault_mass / total_mass;
    spec.fault_prob = std::clamp(
        config.smoothing * mle + (1.0 - config.smoothing) * spec.fault_prob,
        config.weight_floor, 1.0 - config.weight_floor);
  }
  // Meal and CGM-noise dimensions are background disturbances; they are
  // deliberately not tilted.
}

}  // namespace

RareEventEstimate estimate_hazard_probability(
    const aps::sim::Stack& stack, const ScenarioSpec& nominal,
    const aps::sim::MonitorFactory& make_monitor,
    const CrossEntropyConfig& config, aps::ThreadPool* pool) {
  RareEventEstimate estimate;
  ScenarioSpec tilted = nominal;
  const double elite_fraction = std::clamp(config.elite_fraction, 0.01, 1.0);

  for (int round = 0; config.pilot_runs > 0 && round < config.iterations;
       ++round) {
    std::vector<PilotEntry> entries(config.pilot_runs);
    StochasticCampaignConfig pilot;
    pilot.runs = config.pilot_runs;
    pilot.seed = derive_seed(config.seed, static_cast<std::uint64_t>(round));
    pilot.options = config.options;
    pilot.streaming = config.streaming;
    pilot.nominal = &nominal;
    const CampaignStats stats = run_stochastic_campaign(
        stack, tilted, pilot, make_monitor, pool,
        [&](std::size_t i, const SampledScenario& scenario,
            const aps::sim::SimResult& run) {
          PilotEntry& entry = entries[i];
          entry.severity = run_severity(run);
          entry.weight = likelihood_ratio(nominal, tilted, scenario.draw);
          entry.draw = scenario.draw;
        });
    estimate.total_runs += stats.runs;

    // Severity level of this round: the (1 - elite_fraction) quantile,
    // capped at 1.0 (the hazard threshold) once the event region is reached.
    std::vector<double> severities;
    severities.reserve(entries.size());
    for (const PilotEntry& e : entries) severities.push_back(e.severity);
    std::sort(severities.begin(), severities.end());
    const auto rank = static_cast<std::size_t>(
        std::floor((1.0 - elite_fraction) *
                   static_cast<double>(severities.size() - 1)));
    const double level = std::min(severities[rank], 1.0);

    std::vector<const PilotEntry*> elites;
    for (const PilotEntry& e : entries) {
      if (e.severity >= level && e.severity > 0.0) elites.push_back(&e);
    }
    estimate.levels.push_back(
        {level, stats.hazard_rate(), stats.severity.mean()});
    if (!elites.empty()) {
      tilt_toward_elites(tilted, nominal, elites, config);
    }
  }

  StochasticCampaignConfig final_config;
  final_config.runs = config.final_runs;
  final_config.seed = derive_seed(config.seed, 0xF1A1);
  final_config.options = config.options;
  final_config.streaming = config.streaming;
  final_config.nominal = &nominal;
  estimate.final_stats =
      run_stochastic_campaign(stack, tilted, final_config, make_monitor, pool);
  estimate.total_runs += estimate.final_stats.runs;

  estimate.tilted = tilted;
  estimate.probability = estimate.final_stats.weighted_hazard_probability();
  estimate.std_error = estimate.final_stats.weighted_std_error();
  estimate.ci_low =
      std::max(0.0, estimate.probability - 1.96 * estimate.std_error);
  estimate.ci_high = estimate.probability + 1.96 * estimate.std_error;
  estimate.effective_sample_size =
      estimate.final_stats.effective_sample_size();
  return estimate;
}

}  // namespace aps::scenario
