// Cross-entropy importance sampling for rare hazard events (after O'Kelly
// et al., "Scalable End-to-End Autonomous Vehicle Testing via Rare-event
// Simulation", adapted to the APS fault space).
//
// The nominal ScenarioSpec defines the operational distribution whose
// hazard probability we want. Direct (crude) Monte Carlo needs ~100/p runs
// to see enough events; the cross-entropy method instead runs a few small
// pilot campaigns, each retilting the spec's cell weights toward the most
// severe runs (a rising sequence of severity levels), then estimates
//   P(hazard) = E_q[ 1{hazard} * p(x)/q(x) ]
// under the final tilted spec q. The likelihood-ratio weights make the
// estimate unbiased for the nominal spec no matter how aggressive the tilt.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "scenario/executor.h"
#include "scenario/spec.h"

namespace aps::scenario {

struct CrossEntropyConfig {
  int iterations = 4;              ///< pilot tilting rounds
  std::size_t pilot_runs = 1000;   ///< runs per pilot round
  std::size_t final_runs = 4000;   ///< runs of the estimation campaign
  /// Fraction of a pilot treated as elite (most severe) when retilting.
  double elite_fraction = 0.15;
  /// New weights = smoothing * weighted-MLE + (1 - smoothing) * previous;
  /// < 1 avoids collapsing a cell to zero mass in one round.
  double smoothing = 0.7;
  /// Lower bound on any tilted cell probability, so the sampling spec
  /// always dominates the nominal one (finite likelihood ratios).
  double weight_floor = 1e-3;
  std::uint64_t seed = 2021;
  aps::sim::CampaignOptions options;
  aps::sim::StreamingOptions streaming;
};

/// One pilot round: the severity level reached and the hazard fraction of
/// the round's samples (diagnostic trace of the tilting schedule).
struct CrossEntropyLevel {
  double level = 0.0;
  double hazard_fraction = 0.0;
  double mean_severity = 0.0;
};

struct RareEventEstimate {
  double probability = 0.0;  ///< unbiased LR estimate of P(hazard | nominal)
  double std_error = 0.0;
  double ci_low = 0.0;   ///< 95% normal-approximation interval, >= 0
  double ci_high = 0.0;
  double effective_sample_size = 0.0;
  std::size_t total_runs = 0;  ///< pilots + final campaign
  std::vector<CrossEntropyLevel> levels;
  ScenarioSpec tilted;        ///< final sampling spec (reusable)
  CampaignStats final_stats;  ///< accumulator of the estimation campaign

  [[nodiscard]] bool ci_contains(double p) const {
    return p >= ci_low && p <= ci_high;
  }
};

/// Estimate P(hazard) under `nominal` for the monitored closed loop built
/// by `make_monitor`. Deterministic per (config.seed, config sizes).
[[nodiscard]] RareEventEstimate estimate_hazard_probability(
    const aps::sim::Stack& stack, const ScenarioSpec& nominal,
    const aps::sim::MonitorFactory& make_monitor,
    const CrossEntropyConfig& config = {}, aps::ThreadPool* pool = nullptr);

}  // namespace aps::scenario
