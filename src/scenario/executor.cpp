#include "scenario/executor.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"

namespace aps::scenario {

void KindStats::add(bool hazard, bool alarm) {
  ++runs;
  if (hazard) ++hazards;
  if (alarm) ++alarmed;
  if (hazard && alarm) ++tp;
  if (!hazard && alarm) ++fp;
  if (hazard && !alarm) ++fn;
  if (!hazard && !alarm) ++tn;
}

void KindStats::merge(const KindStats& other) {
  runs += other.runs;
  hazards += other.hazards;
  alarmed += other.alarmed;
  tp += other.tp;
  fp += other.fp;
  fn += other.fn;
  tn += other.tn;
}

double run_severity(const aps::sim::SimResult& run) {
  const auto& label = run.label;
  const double lbgi_threshold = run.config.labeling.lbgi_threshold;
  const double hbgi_threshold = run.config.labeling.hbgi_threshold;
  double severity = 0.0;
  for (std::size_t k = 0; k < label.lbgi.size(); ++k) {
    severity = std::max(severity, label.lbgi[k] / lbgi_threshold);
    severity = std::max(severity, label.hbgi[k] / hbgi_threshold);
  }
  return severity;
}

void CampaignStats::add(const SampledScenario& scenario,
                        const aps::sim::SimResult& run, double weight) {
  ++runs;
  const bool hazard = run.label.hazardous;
  const bool alarm = run.any_alarm();
  if (hazard) ++hazardous_runs;
  if (alarm) ++alarmed_runs;

  // Campaign-progress telemetry: scraping scenario_runs_total while a
  // 10^6-run stochastic campaign streams gives live runs/s and hazard/alarm
  // rates without waiting for the merged CampaignStats.
  auto& registry = aps::obs::Registry::global();
  static aps::obs::Counter& runs_total = registry.counter(
      "scenario_runs_total", {}, "scenario campaign runs consumed");
  static aps::obs::Counter& hazards_total = registry.counter(
      "scenario_hazard_runs_total", {}, "campaign runs labeled hazardous");
  static aps::obs::Counter& alarmed_total = registry.counter(
      "scenario_alarmed_runs_total", {},
      "campaign runs whose monitor raised at least one alarm");
  runs_total.add(1);
  if (hazard) hazards_total.add(1);
  if (alarm) alarmed_total.add(1);

  double lowest = aps::kBgMax;
  std::size_t in_range = 0;
  for (const auto& step : run.steps) {
    lowest = std::min(lowest, step.true_bg);
    if (step.true_bg >= aps::kBgLow && step.true_bg <= aps::kBgHigh) {
      ++in_range;
    }
  }
  if (lowest < aps::kBgSevereHypo) ++severe_hypo_runs;
  min_bg.add(lowest);
  if (!run.steps.empty()) {
    time_in_range_pct.add(100.0 * static_cast<double>(in_range) /
                          static_cast<double>(run.steps.size()));
  }
  severity.add(run_severity(run));

  const auto& fault = scenario.config.fault;
  if (hazard && fault.enabled() && run.label.onset_step >= fault.start_step) {
    time_to_hazard_min.add(
        static_cast<double>(run.label.onset_step - fault.start_step) *
        aps::kControlPeriodMin);
  }
  by_kind[fault.enabled() ? fault.name() : "fault_free"].add(hazard, alarm);

  sum_weight += weight;
  sum_weight_sq += weight * weight;
  if (hazard) {
    sum_hazard_weight += weight;
    sum_hazard_weight_sq += weight * weight;
  }
}

void CampaignStats::merge(const CampaignStats& other) {
  runs += other.runs;
  hazardous_runs += other.hazardous_runs;
  alarmed_runs += other.alarmed_runs;
  severe_hypo_runs += other.severe_hypo_runs;
  min_bg.merge(other.min_bg);
  severity.merge(other.severity);
  time_in_range_pct.merge(other.time_in_range_pct);
  time_to_hazard_min.merge(other.time_to_hazard_min);
  for (const auto& [name, stats] : other.by_kind) {
    by_kind[name].merge(stats);
  }
  sum_weight += other.sum_weight;
  sum_weight_sq += other.sum_weight_sq;
  sum_hazard_weight += other.sum_hazard_weight;
  sum_hazard_weight_sq += other.sum_hazard_weight_sq;
}

double CampaignStats::hazard_rate() const {
  return runs > 0
             ? static_cast<double>(hazardous_runs) / static_cast<double>(runs)
             : 0.0;
}

double CampaignStats::weighted_hazard_probability() const {
  return runs > 0 ? sum_hazard_weight / static_cast<double>(runs) : 0.0;
}

double CampaignStats::weighted_std_error() const {
  if (runs < 2) return 0.0;
  const auto n = static_cast<double>(runs);
  const double p = weighted_hazard_probability();
  const double second_moment = sum_hazard_weight_sq / n;
  return std::sqrt(std::max(0.0, second_moment - p * p) / n);
}

double CampaignStats::effective_sample_size() const {
  return sum_hazard_weight_sq > 0.0
             ? sum_hazard_weight * sum_hazard_weight / sum_hazard_weight_sq
             : 0.0;
}

CampaignStats run_stochastic_campaign(
    const aps::sim::Stack& stack, const ScenarioSpec& spec,
    const StochasticCampaignConfig& config,
    const aps::sim::MonitorFactory& make_monitor, aps::ThreadPool* pool,
    const RunTap& tap) {
  std::string why;
  if (!spec.valid(&why)) {
    throw std::invalid_argument("run_stochastic_campaign: invalid spec: " +
                                why);
  }
  std::vector<CampaignStats> shards(
      aps::sim::shard_count(config.runs, config.streaming));

  const auto request = [&](std::size_t i) {
    const SampledScenario scenario = sample_scenario(spec, i, config.seed);
    aps::sim::RunRequest req;
    req.patient_index = scenario.patient_index;
    req.config = scenario.config;
    req.config.mitigation_enabled = config.options.mitigation_enabled;
    req.config.mitigation = config.options.mitigation;
    return req;
  };
  const auto sink = [&](std::size_t shard, std::size_t i,
                        const aps::sim::SimResult& run) {
    // Resampling the scenario is a handful of RNG draws — negligible next
    // to the 150-step simulation — and keeps the execution core oblivious
    // to scenario bookkeeping.
    const SampledScenario scenario = sample_scenario(spec, i, config.seed);
    const double weight =
        config.nominal != nullptr
            ? likelihood_ratio(*config.nominal, spec, scenario.draw)
            : 1.0;
    shards[shard].add(scenario, run, weight);
    if (tap) tap(i, scenario, run);
  };
  aps::sim::for_each_run(stack, config.runs, request, make_monitor, sink,
                         pool, config.streaming);

  CampaignStats total;
  for (const CampaignStats& shard : shards) total.merge(shard);
  return total;
}

CampaignStats run_enumerated_campaign(
    const aps::sim::Stack& stack, const ScenarioSpec& spec,
    const aps::sim::CampaignOptions& options,
    const aps::sim::MonitorFactory& make_monitor, aps::ThreadPool* pool,
    const aps::sim::StreamingOptions& streaming) {
  const std::vector<SampledScenario> scenarios = enumerate_spec(spec);
  const std::size_t count = spec.patients.size() * scenarios.size();
  std::vector<CampaignStats> shards(aps::sim::shard_count(count, streaming));

  const auto request = [&](std::size_t i) {
    aps::sim::RunRequest req;
    req.patient_index = spec.patients[i / scenarios.size()];
    req.config = scenarios[i % scenarios.size()].config;
    req.config.mitigation_enabled = options.mitigation_enabled;
    req.config.mitigation = options.mitigation;
    return req;
  };
  const auto sink = [&](std::size_t shard, std::size_t i,
                        const aps::sim::SimResult& run) {
    SampledScenario scenario = scenarios[i % scenarios.size()];
    scenario.patient_index = spec.patients[i / scenarios.size()];
    shards[shard].add(scenario, run, 1.0);
  };
  aps::sim::for_each_run(stack, count, request, make_monitor, sink, pool,
                         streaming);

  CampaignStats total;
  for (const CampaignStats& shard : shards) total.merge(shard);
  return total;
}

}  // namespace aps::scenario
