// Streaming campaign executor: runs sampled (or enumerated) scenarios
// across the ThreadPool and folds every finished run into small mergeable
// accumulators instead of materializing a CampaignResult. Peak memory is
// O(shards x accumulator), independent of the scenario count — this is what
// lets 10^6-run campaigns fit in RAM.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/stats.h"
#include "common/thread_pool.h"
#include "scenario/spec.h"
#include "sim/runner.h"

namespace aps::scenario {

/// Run-level outcome counts for one fault kind ("max_rate", "hold_glucose",
/// ... or "fault_free"): did the run become hazardous, did the monitor
/// alarm, and the resulting run-level confusion cell.
struct KindStats {
  std::size_t runs = 0;
  std::size_t hazards = 0;
  std::size_t alarmed = 0;
  std::size_t tp = 0;  ///< hazardous run, alarmed
  std::size_t fp = 0;  ///< safe run, alarmed
  std::size_t fn = 0;  ///< hazardous run, silent
  std::size_t tn = 0;  ///< safe run, silent

  void add(bool hazard, bool alarm);
  void merge(const KindStats& other);
};

/// Mergeable campaign summary. Fixed-size: adding a run never grows it
/// (beyond first-touch of a fault-kind key), and merge() of per-shard
/// instances equals one sequential accumulation.
struct CampaignStats {
  std::size_t runs = 0;
  std::size_t hazardous_runs = 0;
  std::size_t alarmed_runs = 0;
  std::size_t severe_hypo_runs = 0;  ///< min true BG < 40 mg/dL

  aps::RunningStats min_bg;
  aps::RunningStats severity;  ///< run_severity() of each run
  aps::RunningStats time_in_range_pct;
  /// Fault start -> hazard onset, minutes (hazardous faulty runs only).
  aps::HistogramAccumulator time_to_hazard_min{0.0, 750.0, 25};
  std::map<std::string, KindStats> by_kind;

  // Importance-sampling totals: weight = p/q likelihood ratio against the
  // nominal spec (1 for crude Monte Carlo).
  double sum_weight = 0.0;
  double sum_weight_sq = 0.0;
  double sum_hazard_weight = 0.0;
  double sum_hazard_weight_sq = 0.0;

  void add(const SampledScenario& scenario, const aps::sim::SimResult& run,
           double weight);
  void merge(const CampaignStats& other);

  /// Unweighted fraction of hazardous runs (the crude-MC estimate when the
  /// campaign sampled the nominal spec directly).
  [[nodiscard]] double hazard_rate() const;
  /// Likelihood-ratio estimate of P(hazard) under the nominal spec:
  /// (1/N) sum w_i 1[hazard_i]. Unbiased for any sampling spec that
  /// dominates the nominal one.
  [[nodiscard]] double weighted_hazard_probability() const;
  /// Standard error of weighted_hazard_probability().
  [[nodiscard]] double weighted_std_error() const;
  /// Effective sample size of the hazard-weight population.
  [[nodiscard]] double effective_sample_size() const;
};

/// Severity of a run: peak trailing-window risk index relative to the
/// hazard thresholds (>= 1 roughly equals "crossed a hazard threshold").
/// The cross-entropy sampler uses this as its continuous level function.
[[nodiscard]] double run_severity(const aps::sim::SimResult& run);

struct StochasticCampaignConfig {
  std::size_t runs = 10000;
  std::uint64_t seed = 2021;
  /// Only the mitigation fields are consulted: the ScenarioSpec fully
  /// describes each run, so the horizon comes from ScenarioSpec::steps,
  /// not options.steps.
  aps::sim::CampaignOptions options;
  aps::sim::StreamingOptions streaming;
  /// When set, every run is weighted by likelihood_ratio(*nominal, spec,
  /// draw); leave null for crude Monte Carlo (weight 1).
  const ScenarioSpec* nominal = nullptr;
};

/// Optional per-run tap (cross-entropy pilots use it to capture severity
/// and draws). Invoked concurrently from pool workers for different
/// indices; must not retain the SimResult reference.
using RunTap = std::function<void(std::size_t index,
                                  const SampledScenario& scenario,
                                  const aps::sim::SimResult& run)>;

/// Sample `config.runs` scenarios from `spec` (scenario i of seed s is
/// always the same run) and stream them through the pool; returns the
/// merged accumulator. No per-run state is retained.
[[nodiscard]] CampaignStats run_stochastic_campaign(
    const aps::sim::Stack& stack, const ScenarioSpec& spec,
    const StochasticCampaignConfig& config,
    const aps::sim::MonitorFactory& make_monitor,
    aps::ThreadPool* pool = nullptr, const RunTap& tap = nullptr);

/// Streamed exhaustive campaign: every enumerated scenario of an
/// enumerable() spec, for every patient of the spec — the old grid path,
/// now with O(1) memory. Weights are 1. As with the stochastic path,
/// `options` supplies the mitigation fields only; the horizon is
/// ScenarioSpec::steps.
[[nodiscard]] CampaignStats run_enumerated_campaign(
    const aps::sim::Stack& stack, const ScenarioSpec& spec,
    const aps::sim::CampaignOptions& options,
    const aps::sim::MonitorFactory& make_monitor,
    aps::ThreadPool* pool = nullptr,
    const aps::sim::StreamingOptions& streaming = {});

}  // namespace aps::scenario
