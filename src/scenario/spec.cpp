#include "scenario/spec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aps::scenario {

namespace {

/// Normalized weight of cell `idx`, or 0 when out of range.
template <typename Dist>
double cell_prob(const Dist& dist, int idx) {
  const double total = dist.total_weight();
  if (total <= 0.0 || idx < 0 ||
      static_cast<std::size_t>(idx) >= dist.cells.size()) {
    return 0.0;
  }
  return dist.cells[static_cast<std::size_t>(idx)].weight / total;
}

template <typename Dist>
int pick_cell(const Dist& dist, aps::Rng& rng) {
  const double total = dist.total_weight();
  double u = rng.uniform(0.0, total);
  for (std::size_t c = 0; c < dist.cells.size(); ++c) {
    u -= dist.cells[c].weight;
    if (u < 0.0) return static_cast<int>(c);
  }
  return static_cast<int>(dist.cells.size()) - 1;
}

template <typename Dist>
bool same_boundaries(const Dist& a, const Dist& b) {
  if (a.cells.size() != b.cells.size()) return false;
  for (std::size_t c = 0; c < a.cells.size(); ++c) {
    if (a.cells[c].lo != b.cells[c].lo || a.cells[c].hi != b.cells[c].hi) {
      return false;
    }
  }
  return true;
}

/// p/q ratio for one realized component; throws when the draw is outside
/// the sampling spec's support (q must dominate p).
double prob_ratio(double p, double q, const char* what) {
  if (q <= 0.0) {
    throw std::invalid_argument(
        std::string("likelihood_ratio: sampling spec has zero mass on "
                    "realized ") +
        what);
  }
  return p / q;
}

}  // namespace

ValueDist ValueDist::point(double v) { return {{{v, v, 1.0}}}; }

ValueDist ValueDist::points(const std::vector<double>& values) {
  ValueDist dist;
  for (const double v : values) dist.cells.push_back({v, v, 1.0});
  return dist;
}

ValueDist ValueDist::range(double lo, double hi, std::size_t bins) {
  if (hi <= lo) return point(lo);
  ValueDist dist;
  if (bins == 0) bins = 1;
  const double width = (hi - lo) / static_cast<double>(bins);
  for (std::size_t b = 0; b < bins; ++b) {
    const double cell_lo = lo + width * static_cast<double>(b);
    dist.cells.push_back({cell_lo, b + 1 == bins ? hi : cell_lo + width, 1.0});
  }
  return dist;
}

double ValueDist::total_weight() const {
  double total = 0.0;
  for (const Cell& c : cells) total += c.weight;
  return total;
}

bool ValueDist::is_points() const {
  if (cells.empty()) return false;
  for (const Cell& c : cells) {
    if (c.lo != c.hi) return false;
  }
  return true;
}

IntDist IntDist::point(int v) { return {{{v, v, 1.0}}}; }

IntDist IntDist::points(const std::vector<int>& values) {
  IntDist dist;
  for (const int v : values) dist.cells.push_back({v, v, 1.0});
  return dist;
}

IntDist IntDist::range(int lo, int hi, std::size_t bins) {
  if (hi <= lo) return point(lo);
  IntDist dist;
  if (bins == 0) bins = 1;
  const int span = hi - lo + 1;
  // Never emit empty cells: more bins than integers degrades to one bin
  // per integer.
  bins = std::min(bins, static_cast<std::size_t>(span));
  const int base = span / static_cast<int>(bins);
  int cell_lo = lo;
  for (std::size_t b = 0; b < bins; ++b) {
    int cell_hi = cell_lo + base - 1;
    if (b + 1 == bins) cell_hi = hi;
    dist.cells.push_back({cell_lo, cell_hi, 1.0});
    cell_lo = cell_hi + 1;
  }
  return dist;
}

double IntDist::total_weight() const {
  double total = 0.0;
  for (const IntCell& c : cells) total += c.weight;
  return total;
}

bool IntDist::is_points() const {
  if (cells.empty()) return false;
  for (const IntCell& c : cells) {
    if (c.lo != c.hi) return false;
  }
  return true;
}

bool ScenarioSpec::valid(std::string* why) const {
  const auto fail = [&](const char* reason) {
    if (why != nullptr) *why = reason;
    return false;
  };
  if (patients.empty()) return fail("no patients");
  if (steps <= 0) return fail("steps must be positive");
  if (fault_prob < 0.0 || fault_prob > 1.0) {
    return fail("fault_prob outside [0, 1]");
  }
  if (meal_prob < 0.0 || meal_prob > 1.0) {
    return fail("meal_prob outside [0, 1]");
  }
  if (kinds.size() != kind_weights.size()) {
    return fail("kinds / kind_weights size mismatch");
  }
  const auto cells_ok = [](const auto& dist) {
    for (const auto& cell : dist.cells) {
      if (cell.hi < cell.lo || cell.weight < 0.0) return false;
    }
    return true;
  };
  if (!cells_ok(start_step) || !cells_ok(duration_steps) ||
      !cells_ok(magnitude_scale) || !cells_ok(initial_bg) ||
      !cells_ok(meal_carbs) || !cells_ok(meal_step)) {
    return fail("malformed distribution cell (hi < lo or negative weight)");
  }
  if (fault_prob > 0.0) {
    if (kinds.empty()) return fail("fault_prob > 0 but no fault kinds");
    double total = 0.0;
    for (const double w : kind_weights) {
      if (w < 0.0) return fail("negative kind weight");
      total += w;
    }
    if (total <= 0.0) return fail("kind weights sum to zero");
    if (start_step.total_weight() <= 0.0) return fail("empty start_step");
    if (duration_steps.total_weight() <= 0.0) {
      return fail("empty duration_steps");
    }
    if (magnitude_scale.total_weight() <= 0.0) {
      return fail("empty magnitude_scale");
    }
  }
  if (initial_bg.total_weight() <= 0.0) return fail("empty initial_bg");
  if (meal_prob > 0.0) {
    if (meal_carbs.total_weight() <= 0.0) return fail("empty meal_carbs");
    if (meal_step.total_weight() <= 0.0) return fail("empty meal_step");
  }
  if (cgm_noise_std < 0.0) return fail("negative cgm_noise_std");
  return true;
}

bool ScenarioSpec::enumerable() const {
  if (!initial_bg.is_points()) return false;
  if (fault_prob != 0.0 && fault_prob != 1.0) return false;
  if (fault_prob == 1.0) {
    if (kinds.empty() || !start_step.is_points() ||
        !duration_steps.is_points() || !magnitude_scale.is_points()) {
      return false;
    }
  }
  if (meal_prob != 0.0 &&
      (meal_prob != 1.0 || !meal_carbs.is_points() ||
       !meal_step.is_points())) {
    return false;
  }
  return true;
}

ScenarioSpec default_stochastic_spec(int cohort_size) {
  ScenarioSpec spec;
  spec.patients.clear();
  for (int p = 0; p < cohort_size; ++p) spec.patients.push_back(p);
  spec.fault_prob = 0.9;
  for (const aps::fi::FaultType type :
       {aps::fi::FaultType::kTruncate, aps::fi::FaultType::kHold,
        aps::fi::FaultType::kMax, aps::fi::FaultType::kMin,
        aps::fi::FaultType::kAdd, aps::fi::FaultType::kSub,
        aps::fi::FaultType::kBitflipDec}) {
    for (const aps::fi::FaultTarget target :
         {aps::fi::FaultTarget::kSensorGlucose,
          aps::fi::FaultTarget::kControllerIob,
          aps::fi::FaultTarget::kCommandRate}) {
      spec.kinds.push_back({type, target});
      spec.kind_weights.push_back(1.0);
    }
  }
  spec.start_step = IntDist::range(10, 90, 4);
  spec.duration_steps = IntDist::range(6, 72, 6);
  spec.magnitude_scale = ValueDist::range(0.25, 1.5, 5);
  spec.initial_bg = ValueDist::range(70.0, 220.0, 6);
  spec.meal_prob = 0.35;
  spec.meal_carbs = ValueDist::range(20.0, 80.0, 3);
  spec.meal_step = IntDist::range(10, 100, 3);
  spec.cgm_noise_std = 2.0;
  return spec;
}

ScenarioSpec spec_from_grid(const aps::fi::CampaignGrid& grid,
                            int cohort_size) {
  ScenarioSpec spec;
  spec.patients.clear();
  for (int p = 0; p < cohort_size; ++p) spec.patients.push_back(p);
  spec.fault_prob = 1.0;
  for (const aps::fi::FaultType type : grid.types) {
    for (const aps::fi::FaultTarget target : grid.targets) {
      spec.kinds.push_back({type, target});
      spec.kind_weights.push_back(1.0);
    }
  }
  spec.start_step = IntDist::points(grid.start_steps);
  spec.duration_steps = IntDist::points(grid.duration_steps);
  spec.magnitude_scale = ValueDist::point(1.0);
  spec.glucose_magnitude = grid.glucose_magnitude;
  spec.rate_magnitude = grid.rate_magnitude;
  spec.iob_magnitude = grid.iob_magnitude;
  spec.initial_bg = ValueDist::points(grid.initial_bgs);
  return spec;
}

namespace {

double base_magnitude(const ScenarioSpec& spec, aps::fi::FaultTarget target) {
  switch (target) {
    case aps::fi::FaultTarget::kSensorGlucose: return spec.glucose_magnitude;
    case aps::fi::FaultTarget::kControllerIob: return spec.iob_magnitude;
    case aps::fi::FaultTarget::kCommandRate: return spec.rate_magnitude;
    case aps::fi::FaultTarget::kNone: break;
  }
  return 0.0;
}

double value_in_cell(const Cell& cell, aps::Rng& rng) {
  return cell.lo == cell.hi ? cell.lo : rng.uniform(cell.lo, cell.hi);
}

int value_in_cell(const IntCell& cell, aps::Rng& rng) {
  return cell.lo == cell.hi ? cell.lo : rng.uniform_int(cell.lo, cell.hi);
}

}  // namespace

SampledScenario sample_scenario(const ScenarioSpec& spec, std::uint64_t index,
                                std::uint64_t campaign_seed) {
  // One independent stream per scenario index: scenario i of seed s is the
  // same run whether it executes first, last, or on another thread.
  aps::Rng rng = aps::Rng(campaign_seed).split(index);

  SampledScenario out;
  out.index = index;
  out.config.steps = spec.steps;

  out.draw.patient_cell =
      spec.patients.size() > 1
          ? rng.uniform_int(0, static_cast<int>(spec.patients.size()) - 1)
          : 0;
  out.patient_index =
      spec.patients[static_cast<std::size_t>(out.draw.patient_cell)];

  out.draw.has_fault = spec.fault_prob >= 1.0 ||
                       (spec.fault_prob > 0.0 && rng.bernoulli(spec.fault_prob));
  if (out.draw.has_fault) {
    // Kind draw via the weight vector (categorical).
    double total = 0.0;
    for (const double w : spec.kind_weights) total += w;
    double u = rng.uniform(0.0, total);
    out.draw.kind = static_cast<int>(spec.kinds.size()) - 1;
    for (std::size_t k = 0; k < spec.kinds.size(); ++k) {
      u -= spec.kind_weights[k];
      if (u < 0.0) {
        out.draw.kind = static_cast<int>(k);
        break;
      }
    }
    const FaultKind& kind =
        spec.kinds[static_cast<std::size_t>(out.draw.kind)];
    out.draw.start_cell = pick_cell(spec.start_step, rng);
    out.draw.duration_cell = pick_cell(spec.duration_steps, rng);
    out.draw.magnitude_cell = pick_cell(spec.magnitude_scale, rng);

    aps::fi::FaultSpec fault;
    fault.type = kind.type;
    fault.target = kind.target;
    fault.start_step = value_in_cell(
        spec.start_step.cells[static_cast<std::size_t>(out.draw.start_cell)],
        rng);
    fault.duration_steps = value_in_cell(
        spec.duration_steps
            .cells[static_cast<std::size_t>(out.draw.duration_cell)],
        rng);
    fault.magnitude =
        base_magnitude(spec, kind.target) *
        value_in_cell(spec.magnitude_scale
                          .cells[static_cast<std::size_t>(
                              out.draw.magnitude_cell)],
                      rng);
    out.config.fault = fault;
  }

  out.draw.bg_cell = pick_cell(spec.initial_bg, rng);
  out.config.initial_bg = value_in_cell(
      spec.initial_bg.cells[static_cast<std::size_t>(out.draw.bg_cell)], rng);

  out.draw.has_meal =
      spec.meal_prob >= 1.0 ||
      (spec.meal_prob > 0.0 && rng.bernoulli(spec.meal_prob));
  if (out.draw.has_meal) {
    out.draw.carbs_cell = pick_cell(spec.meal_carbs, rng);
    out.draw.meal_step_cell = pick_cell(spec.meal_step, rng);
    aps::sim::MealEvent meal;
    meal.carbs_g = value_in_cell(
        spec.meal_carbs.cells[static_cast<std::size_t>(out.draw.carbs_cell)],
        rng);
    meal.step = value_in_cell(
        spec.meal_step
            .cells[static_cast<std::size_t>(out.draw.meal_step_cell)],
        rng);
    out.config.meals.push_back(meal);
  }

  out.config.cgm.noise_std_mg_dl = spec.cgm_noise_std;
  out.config.cgm_seed = rng.split(0xC6).seed();
  return out;
}

double likelihood_ratio(const ScenarioSpec& nominal,
                        const ScenarioSpec& sampling,
                        const ScenarioDraw& draw) {
  if (nominal.kinds.size() != sampling.kinds.size() ||
      nominal.patients.size() != sampling.patients.size() ||
      !same_boundaries(nominal.start_step, sampling.start_step) ||
      !same_boundaries(nominal.duration_steps, sampling.duration_steps) ||
      !same_boundaries(nominal.magnitude_scale, sampling.magnitude_scale) ||
      !same_boundaries(nominal.initial_bg, sampling.initial_bg) ||
      !same_boundaries(nominal.meal_carbs, sampling.meal_carbs) ||
      !same_boundaries(nominal.meal_step, sampling.meal_step)) {
    throw std::invalid_argument(
        "likelihood_ratio: specs do not share cell structure");
  }

  double ratio = 1.0;  // patient draw is uniform in both specs: cancels
  ratio *= draw.has_fault
               ? prob_ratio(nominal.fault_prob, sampling.fault_prob, "fault")
               : prob_ratio(1.0 - nominal.fault_prob,
                            1.0 - sampling.fault_prob, "fault-free run");
  if (draw.has_fault) {
    double nominal_total = 0.0;
    double sampling_total = 0.0;
    for (const double w : nominal.kind_weights) nominal_total += w;
    for (const double w : sampling.kind_weights) sampling_total += w;
    const auto k = static_cast<std::size_t>(draw.kind);
    ratio *= prob_ratio(nominal.kind_weights[k] / nominal_total,
                        sampling.kind_weights[k] / sampling_total, "kind");
    ratio *= prob_ratio(cell_prob(nominal.start_step, draw.start_cell),
                        cell_prob(sampling.start_step, draw.start_cell),
                        "start cell");
    ratio *=
        prob_ratio(cell_prob(nominal.duration_steps, draw.duration_cell),
                   cell_prob(sampling.duration_steps, draw.duration_cell),
                   "duration cell");
    ratio *=
        prob_ratio(cell_prob(nominal.magnitude_scale, draw.magnitude_cell),
                   cell_prob(sampling.magnitude_scale, draw.magnitude_cell),
                   "magnitude cell");
  }
  ratio *= prob_ratio(cell_prob(nominal.initial_bg, draw.bg_cell),
                      cell_prob(sampling.initial_bg, draw.bg_cell),
                      "initial-BG cell");
  ratio *= draw.has_meal
               ? prob_ratio(nominal.meal_prob, sampling.meal_prob, "meal")
               : prob_ratio(1.0 - nominal.meal_prob, 1.0 - sampling.meal_prob,
                            "meal-free run");
  if (draw.has_meal) {
    ratio *= prob_ratio(cell_prob(nominal.meal_carbs, draw.carbs_cell),
                        cell_prob(sampling.meal_carbs, draw.carbs_cell),
                        "carbs cell");
    ratio *= prob_ratio(cell_prob(nominal.meal_step, draw.meal_step_cell),
                        cell_prob(sampling.meal_step, draw.meal_step_cell),
                        "meal-step cell");
  }
  return ratio;
}

std::vector<SampledScenario> enumerate_spec(const ScenarioSpec& spec) {
  if (!spec.enumerable()) {
    throw std::invalid_argument(
        "enumerate_spec: spec has non-degenerate dimensions");
  }
  std::vector<SampledScenario> out;
  const auto push = [&](const ScenarioDraw& draw) {
    SampledScenario s;
    s.index = out.size();
    s.patient_index = spec.patients.front();
    s.draw = draw;
    s.config.steps = spec.steps;
    s.config.initial_bg =
        spec.initial_bg.cells[static_cast<std::size_t>(draw.bg_cell)].lo;
    if (draw.has_fault) {
      const FaultKind& kind = spec.kinds[static_cast<std::size_t>(draw.kind)];
      s.config.fault.type = kind.type;
      s.config.fault.target = kind.target;
      s.config.fault.start_step =
          spec.start_step.cells[static_cast<std::size_t>(draw.start_cell)].lo;
      s.config.fault.duration_steps =
          spec.duration_steps
              .cells[static_cast<std::size_t>(draw.duration_cell)]
              .lo;
      s.config.fault.magnitude =
          base_magnitude(spec, kind.target) *
          spec.magnitude_scale
              .cells[static_cast<std::size_t>(draw.magnitude_cell)]
              .lo;
    }
    if (spec.meal_prob == 1.0) {
      aps::sim::MealEvent meal;
      meal.carbs_g = spec.meal_carbs.cells.front().lo;
      meal.step = spec.meal_step.cells.front().lo;
      s.config.meals.push_back(meal);
      s.draw.has_meal = true;
      s.draw.carbs_cell = 0;
      s.draw.meal_step_cell = 0;
    }
    s.config.cgm.noise_std_mg_dl = spec.cgm_noise_std;
    out.push_back(std::move(s));
  };

  if (spec.fault_prob == 0.0) {
    for (std::size_t bg = 0; bg < spec.initial_bg.cells.size(); ++bg) {
      ScenarioDraw draw;
      draw.bg_cell = static_cast<int>(bg);
      push(draw);
    }
    return out;
  }
  for (std::size_t k = 0; k < spec.kinds.size(); ++k) {
    for (std::size_t st = 0; st < spec.start_step.cells.size(); ++st) {
      for (std::size_t d = 0; d < spec.duration_steps.cells.size(); ++d) {
        for (std::size_t m = 0; m < spec.magnitude_scale.cells.size(); ++m) {
          for (std::size_t bg = 0; bg < spec.initial_bg.cells.size(); ++bg) {
            ScenarioDraw draw;
            draw.has_fault = true;
            draw.kind = static_cast<int>(k);
            draw.start_cell = static_cast<int>(st);
            draw.duration_cell = static_cast<int>(d);
            draw.magnitude_cell = static_cast<int>(m);
            draw.bg_cell = static_cast<int>(bg);
            push(draw);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace aps::scenario
