// Declarative stochastic scenario distributions (the "what to simulate"
// layer of the scenario engine).
//
// A ScenarioSpec is a product distribution over everything that varies
// between closed-loop runs: fault kind / window / magnitude, initial BG,
// meal disturbances, CGM noise, and the cohort patient. Continuous and
// integer dimensions are piecewise-uniform mixtures of weighted cells;
// because the cross-entropy sampler only *reweights* cells (never moves
// their boundaries), likelihood ratios between a nominal and a tilted spec
// reduce to exact products of cell-weight ratios — no density pitfalls.
//
// Sampling is deterministic at campaign scale: scenario `index` under
// campaign seed `s` is drawn from Rng(s).split(index), so shard layout,
// thread count, and evaluation order never change what scenario i is.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fi/campaign.h"
#include "sim/closed_loop.h"

namespace aps::scenario {

/// One weighted cell of a piecewise-uniform distribution: uniform on
/// [lo, hi), or the point lo when lo == hi.
struct Cell {
  double lo = 0.0;
  double hi = 0.0;
  double weight = 1.0;
};

/// Integer counterpart: uniform over the inclusive range [lo, hi].
struct IntCell {
  int lo = 0;
  int hi = 0;
  double weight = 1.0;
};

struct ValueDist {
  std::vector<Cell> cells;

  [[nodiscard]] static ValueDist point(double v);
  /// Equal-weight point cells, one per value (grid dimensions).
  [[nodiscard]] static ValueDist points(const std::vector<double>& values);
  /// [lo, hi) split into `bins` equal-weight cells.
  [[nodiscard]] static ValueDist range(double lo, double hi,
                                       std::size_t bins = 1);

  [[nodiscard]] double total_weight() const;
  /// All cells degenerate (lo == hi): the dimension is a finite value set.
  [[nodiscard]] bool is_points() const;
};

struct IntDist {
  std::vector<IntCell> cells;

  [[nodiscard]] static IntDist point(int v);
  [[nodiscard]] static IntDist points(const std::vector<int>& values);
  /// [lo, hi] split into `bins` equal-weight contiguous subranges.
  [[nodiscard]] static IntDist range(int lo, int hi, std::size_t bins = 1);

  [[nodiscard]] double total_weight() const;
  [[nodiscard]] bool is_points() const;
};

/// A (type, target) fault kind the spec can draw.
struct FaultKind {
  aps::fi::FaultType type = aps::fi::FaultType::kNone;
  aps::fi::FaultTarget target = aps::fi::FaultTarget::kNone;
};

struct ScenarioSpec {
  /// Cohort patients a scenario may draw, uniformly.
  std::vector<int> patients = {0};
  int steps = aps::kDefaultSimSteps;

  /// Probability a scenario carries a fault at all (1 - fault_prob of the
  /// campaign is fault-free background load).
  double fault_prob = 1.0;
  std::vector<FaultKind> kinds;
  std::vector<double> kind_weights;  ///< same length as `kinds`
  IntDist start_step = IntDist::point(20);
  IntDist duration_steps = IntDist::point(30);
  /// Multiplier on the per-target base magnitude below (kAdd/kSub).
  ValueDist magnitude_scale = ValueDist::point(1.0);
  double glucose_magnitude = 75.0;  ///< mg/dL
  double rate_magnitude = 2.0;      ///< U/h
  double iob_magnitude = 2.0;       ///< U

  ValueDist initial_bg = ValueDist::point(120.0);

  double meal_prob = 0.0;
  ValueDist meal_carbs = ValueDist::point(45.0);
  IntDist meal_step = IntDist::point(24);

  double cgm_noise_std = 0.0;  ///< mg/dL additive sensor noise

  /// Structural sanity (non-empty dimensions, weights aligned, probs in
  /// [0, 1]). On failure returns false and, when `why` is non-null, a
  /// human-readable reason.
  [[nodiscard]] bool valid(std::string* why = nullptr) const;
  /// Every fault/BG dimension is a finite point set and both Bernoulli
  /// dimensions are degenerate: the spec can be exhaustively enumerated.
  [[nodiscard]] bool enumerable() const;
};

/// Default production distribution: all 7 fault types x all 3 targets
/// (including kControllerIob), randomized windows and magnitudes, mixed-in
/// fault-free runs, meal disturbances, and CGM noise.
[[nodiscard]] ScenarioSpec default_stochastic_spec(int cohort_size);

/// The deterministic paper grid expressed as one ScenarioSpec (point cells
/// per grid axis, no meals, no noise). enumerate_spec() of the result
/// reproduces fi::enumerate_scenarios(grid) order exactly.
[[nodiscard]] ScenarioSpec spec_from_grid(const aps::fi::CampaignGrid& grid,
                                          int cohort_size);

/// The cells/kinds realized by one draw — the spec-measurable part of a
/// scenario, sufficient for likelihood evaluation.
struct ScenarioDraw {
  int patient_cell = 0;
  bool has_fault = false;
  int kind = -1;
  int start_cell = -1;
  int duration_cell = -1;
  int magnitude_cell = -1;
  int bg_cell = 0;
  bool has_meal = false;
  int carbs_cell = -1;
  int meal_step_cell = -1;
};

struct SampledScenario {
  std::uint64_t index = 0;
  int patient_index = 0;
  aps::sim::SimConfig config;  ///< ready to hand to run_simulation
  ScenarioDraw draw;
};

/// Draw scenario `index` of the campaign keyed by `campaign_seed`.
/// Deterministic and order-independent: uses Rng(campaign_seed).split(index).
[[nodiscard]] SampledScenario sample_scenario(const ScenarioSpec& spec,
                                              std::uint64_t index,
                                              std::uint64_t campaign_seed);

/// Importance weight p/q of a draw made under `sampling`, relative to the
/// nominal spec. Both specs must share cell boundaries and kind lists (the
/// cross-entropy sampler only retilts weights); throws std::invalid_argument
/// on structural mismatch.
[[nodiscard]] double likelihood_ratio(const ScenarioSpec& nominal,
                                      const ScenarioSpec& sampling,
                                      const ScenarioDraw& draw);

/// Exhaustive cross product of an enumerable() spec in deterministic order
/// (kind-major, then start, duration, magnitude, initial BG), one scenario
/// per fault combination — patients are *not* expanded (the executor runs
/// each enumerated scenario for every cohort patient). Throws
/// std::invalid_argument when the spec is not enumerable.
[[nodiscard]] std::vector<SampledScenario> enumerate_spec(
    const ScenarioSpec& spec);

}  // namespace aps::scenario
