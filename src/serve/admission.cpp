#include "serve/admission.h"

#include <algorithm>
#include <cmath>

namespace aps::serve {

std::string_view tenant_of(std::string_view patient_id) {
  const auto slash = patient_id.find('/');
  if (slash == std::string_view::npos || slash == 0) {
    return "default";
  }
  return patient_id.substr(0, slash);
}

const char* overload_state_name(OverloadState state) {
  switch (state) {
    case OverloadState::kHealthy:
      return "healthy";
    case OverloadState::kDegrade:
      return "degrade";
    case OverloadState::kShed:
      return "shed";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         aps::obs::Registry& registry)
    : config_(std::move(config)), registry_(registry) {
  if (config_.latency_window == 0) config_.latency_window = 1;
  window_.resize(config_.latency_window, 0.0);
  window_scratch_.reserve(config_.latency_window);
  state_gauge_ = &registry_.gauge(
      "serve_overload_state", {},
      "admission overload rung: 0=healthy 1=degrade 2=shed");
  to_healthy_ = &registry_.counter("serve_overload_transitions_total",
                                   {{"to", "healthy"}},
                                   "overload state machine transitions");
  to_degrade_ = &registry_.counter("serve_overload_transitions_total",
                                   {{"to", "degrade"}},
                                   "overload state machine transitions");
  to_shed_ = &registry_.counter("serve_overload_transitions_total",
                                {{"to", "shed"}},
                                "overload state machine transitions");
  state_gauge_->set(0.0);
}

int AdmissionController::signal_level(double queue_frac, double p99_us,
                                      double scale) const {
  int level = 0;
  if (queue_frac >= config_.degrade_queue_frac * scale) level = 1;
  if (queue_frac >= config_.shed_queue_frac * scale) level = 2;
  if (config_.degrade_p99_us > 0.0 &&
      p99_us >= config_.degrade_p99_us * scale) {
    level = std::max(level, 1);
  }
  if (config_.shed_p99_us > 0.0 && p99_us >= config_.shed_p99_us * scale) {
    level = 2;
  }
  return level;
}

void AdmissionController::observe_tick(double queue_frac, double tick_us) {
  if (!config_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);

  window_[window_pos_] = tick_us;
  window_pos_ = (window_pos_ + 1) % window_.size();
  window_count_ = std::min(window_count_ + 1, window_.size());

  double p99_us = 0.0;
  if (window_count_ > 0) {
    window_scratch_.assign(window_.begin(),
                           window_.begin() +
                               static_cast<std::ptrdiff_t>(window_count_));
    const auto rank = static_cast<std::size_t>(
        std::floor(0.99 * static_cast<double>(window_count_ - 1)));
    std::nth_element(window_scratch_.begin(),
                     window_scratch_.begin() + static_cast<std::ptrdiff_t>(rank),
                     window_scratch_.end());
    p99_us = window_scratch_[rank];
  }

  const auto current = state_.load(std::memory_order_relaxed);
  const int entry = signal_level(queue_frac, p99_us, 1.0);
  if (entry > static_cast<int>(current)) {
    // Escalate immediately — overload waits for nobody.
    set_state_locked(static_cast<OverloadState>(entry));
    return;
  }
  if (current == OverloadState::kHealthy) {
    dwell_ = 0;
    return;
  }
  // De-escalation: everything must sit below recover_ratio of the rung we
  // would step down *past* (i.e. signals no longer justify even the rung
  // below) for min_dwell_ticks consecutive ticks; then step one rung.
  const int recovered = signal_level(queue_frac, p99_us, config_.recover_ratio);
  if (recovered < static_cast<int>(current)) {
    if (++dwell_ >= config_.min_dwell_ticks) {
      set_state_locked(
          static_cast<OverloadState>(static_cast<int>(current) - 1));
    }
  } else {
    dwell_ = 0;
  }
}

void AdmissionController::set_state_locked(OverloadState next) {
  state_.store(next, std::memory_order_relaxed);
  dwell_ = 0;
  state_gauge_->set(static_cast<double>(next));
  switch (next) {
    case OverloadState::kHealthy:
      to_healthy_->add(1);
      break;
    case OverloadState::kDegrade:
      to_degrade_->add(1);
      break;
    case OverloadState::kShed:
      to_shed_->add(1);
      break;
  }
}

AdmissionController::Tenant& AdmissionController::tenant_locked(
    std::string_view name) {
  auto it = tenant_ids_.find(std::string(name));
  if (it != tenant_ids_.end()) return *tenants_[it->second];

  auto tenant = std::make_unique<Tenant>();
  tenant->name = std::string(name);
  TenantQuota quota = config_.default_quota;
  for (const auto& [key, value] : config_.tenant_quotas) {
    if (key == name) {
      quota = value;
      break;
    }
  }
  tenant->rate = quota.ticks_per_sec;
  tenant->burst = quota.burst > 0.0 ? quota.burst : quota.ticks_per_sec;
  tenant->tokens = tenant->burst;
  tenant->last_refill = std::chrono::steady_clock::now();
  tenant->shed_open = &registry_.counter(
      "serve_shed_total", {{"reason", "open"}, {"tenant", tenant->name}},
      "opens/ticks refused by admission control");
  tenant->shed_tick = &registry_.counter(
      "serve_shed_total", {{"reason", "tick"}, {"tenant", tenant->name}},
      "opens/ticks refused by admission control");

  const auto index = static_cast<std::uint32_t>(tenants_.size());
  tenants_.push_back(std::move(tenant));
  tenant_ids_.emplace(std::string(name), index);
  return *tenants_[index];
}

std::uint32_t AdmissionController::tenant_index(std::string_view tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  tenant_locked(tenant);
  return tenant_ids_.at(std::string(tenant));
}

void AdmissionController::refill_locked(
    Tenant& tenant, std::chrono::steady_clock::time_point now) {
  if (tenant.rate <= 0.0) return;  // unlimited
  const std::chrono::duration<double> dt = now - tenant.last_refill;
  tenant.last_refill = now;
  tenant.tokens =
      std::min(tenant.burst, tenant.tokens + dt.count() * tenant.rate);
}

bool AdmissionController::admit_open(std::string_view tenant) {
  if (!config_.enabled) return true;
  if (state_.load(std::memory_order_relaxed) != OverloadState::kShed) {
    return true;
  }
  std::lock_guard<std::mutex> lock(mu_);
  tenant_locked(tenant).shed_open->add(1);
  return false;
}

std::size_t AdmissionController::admit_ticks(std::uint32_t tenant_index,
                                             std::size_t count) {
  if (!config_.enabled || count == 0) return count;
  if (state_.load(std::memory_order_relaxed) != OverloadState::kShed) {
    return count;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (tenant_index >= tenants_.size()) return count;
  Tenant& tenant = *tenants_[tenant_index];
  if (tenant.rate <= 0.0) return count;  // unlimited tenants never shed
  refill_locked(tenant, std::chrono::steady_clock::now());
  const auto admitted = std::min(
      count, static_cast<std::size_t>(std::max(0.0, tenant.tokens)));
  tenant.tokens -= static_cast<double>(admitted);
  if (admitted < count) {
    tenant.shed_tick->add(static_cast<std::uint64_t>(count - admitted));
  }
  return admitted;
}

std::uint64_t AdmissionController::shed_opens_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& tenant : tenants_) total += tenant->shed_open->value();
  return total;
}

std::uint64_t AdmissionController::shed_ticks_total() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& tenant : tenants_) total += tenant->shed_tick->value();
  return total;
}

}  // namespace aps::serve
