// Admission control for the replica-sharded serving plane: the policy
// layer that turns "queue full" from an opaque stall into a measured,
// tenant-fair degradation ladder. Three pieces:
//
//   * per-tenant token buckets — a tenant is the patient-id prefix before
//     the first '/' ("clinic-7/patient-42" -> "clinic-7"; ids without a
//     prefix share the "default" tenant). Buckets refill continuously at
//     TenantQuota::ticks_per_sec up to `burst`; a tenant whose bucket runs
//     dry is *over quota*. Quotas are a protection mechanism, not a calm-
//     weather rate limit: they only bite at the top of the ladder.
//
//   * a global overload state machine, healthy -> degrade -> shed, driven
//     by two signals the group observes every tick: the worst ingest-queue
//     occupancy fraction seen while enqueuing, and the p99 tick latency
//     over a sliding window of recent ticks. Escalation is immediate;
//     de-escalation steps down one rung at a time, only after
//     `min_dwell_ticks` consecutive ticks with every signal below
//     `recover_ratio` of its entry threshold (hysteresis, no flapping).
//
//   * a shed policy ordered by monitor cost. Rung 1 (degrade): every tick
//     is served FeedMode::kDegraded — LSTM lanes answer from their DT twin
//     while the primary stream ingests observations and resumes
//     bit-identically; nothing is dropped. Rung 2 (shed): new session
//     opens are rejected (ShedError -> a typed reject frame on the wire),
//     and ticks from over-quota tenants are dropped — never ticks from
//     in-quota tenants. Every shed is counted:
//
//       serve_overload_state                      gauge (0/1/2)
//       serve_overload_transitions_total{to=...}  counter
//       serve_shed_total{reason="open"|"tick", tenant=...}
//
// Thread model: state() is a relaxed atomic read (hot path); bucket and
// window mutation is mutex-guarded — opens are bookkeeping-rate and the
// group charges ticks once per (tenant, batch), not per input.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace aps::serve {

/// Tenant of a patient id: the prefix before the first '/' when present,
/// otherwise the shared "default" tenant. Used for quota buckets and the
/// `tenant` label on shed counters, so prefixes are expected to be a
/// small, bounded set (clinics, fleets), not per-patient.
[[nodiscard]] std::string_view tenant_of(std::string_view patient_id);

enum class OverloadState : std::uint8_t {
  kHealthy = 0,
  kDegrade = 1,  ///< serve every tick degraded (LSTM -> DT twin)
  kShed = 2,     ///< additionally reject opens + drop over-quota ticks
};

[[nodiscard]] const char* overload_state_name(OverloadState state);

/// Why an open or a tick was refused (mirrored on the wire as the typed
/// reject frame's code; values are part of the protocol).
enum class RejectReason : std::uint8_t {
  kNone = 0,           ///< not rejected (a served tick's outcome)
  kOverloadOpen = 1,   ///< new sessions rejected while shedding
  kOverQuotaTick = 2,  ///< tick dropped: tenant over its token bucket
};

/// Per-input verdict from an admission-aware feed. A shed input carries a
/// default (no-alarm) Decision; consumers must check the outcome before
/// treating the decision as a served answer.
struct TickOutcome {
  RejectReason reason = RejectReason::kNone;
  [[nodiscard]] bool served() const { return reason == RejectReason::kNone; }
};

/// Thrown by EngineGroup::open_session when admission refuses the open.
/// Distinct from std::invalid_argument (caller error) so the front door
/// can answer with a typed reject frame + backoff hint instead of a
/// generic open failure.
class ShedError : public std::runtime_error {
 public:
  ShedError(RejectReason reason, std::uint32_t retry_after_ms,
            const std::string& what)
      : std::runtime_error(what),
        reason_(reason),
        retry_after_ms_(retry_after_ms) {}

  [[nodiscard]] RejectReason reason() const { return reason_; }
  [[nodiscard]] std::uint32_t retry_after_ms() const {
    return retry_after_ms_;
  }

 private:
  RejectReason reason_;
  std::uint32_t retry_after_ms_;
};

/// Token-bucket quota for one tenant. ticks_per_sec == 0 means unlimited
/// (the tenant is never over quota); burst == 0 defaults to one second of
/// refill (== ticks_per_sec).
struct TenantQuota {
  double ticks_per_sec = 0.0;
  double burst = 0.0;
};

struct AdmissionConfig {
  /// Off by default: an EngineGroup without admission behaves exactly as
  /// before (blanket queue backpressure only).
  bool enabled = false;
  /// Quota for tenants without an explicit entry (0 = unlimited).
  TenantQuota default_quota = {};
  /// Per-tenant overrides, keyed by tenant name (see tenant_of).
  std::vector<std::pair<std::string, TenantQuota>> tenant_quotas;

  // -- Overload state machine signals ---------------------------------------
  /// Ingest-queue occupancy fraction (0..1, worst replica at enqueue time)
  /// at which the group enters kDegrade / kShed. > 1 disables the signal.
  double degrade_queue_frac = 0.75;
  double shed_queue_frac = 0.95;
  /// p99 tick latency (us, over `latency_window` recent ticks) at which
  /// the group enters kDegrade / kShed. 0 disables the signal.
  double degrade_p99_us = 0.0;
  double shed_p99_us = 0.0;
  /// De-escalation hysteresis: every signal must sit below
  /// entry_threshold * recover_ratio ...
  double recover_ratio = 0.7;
  /// ... for this many consecutive ticks before stepping down one rung.
  std::uint32_t min_dwell_ticks = 16;
  /// Sliding window (ticks) for the p99 latency signal.
  std::size_t latency_window = 128;
  /// Backoff hint carried in ShedError (and the wire reject frame).
  std::uint32_t retry_after_ms = 250;
};

/// The policy object. One per EngineGroup; all methods are thread-safe.
class AdmissionController {
 public:
  AdmissionController(AdmissionConfig config, aps::obs::Registry& registry);

  [[nodiscard]] bool enabled() const { return config_.enabled; }
  [[nodiscard]] const AdmissionConfig& config() const { return config_; }
  [[nodiscard]] OverloadState state() const {
    return state_.load(std::memory_order_relaxed);
  }

  /// Observe one group tick: the worst queue-occupancy fraction seen while
  /// enqueuing and the tick's wall latency. Drives the state machine (the
  /// group calls this under its feed lock, once per tick).
  void observe_tick(double queue_frac, double tick_us);

  /// Stable dense index for a tenant (registers it on first use). The
  /// group stores this per session so the feed path never re-hashes
  /// patient ids.
  [[nodiscard]] std::uint32_t tenant_index(std::string_view tenant);

  /// Session-open admission. False (counted, per tenant) while shedding.
  [[nodiscard]] bool admit_open(std::string_view tenant);

  /// Charge `count` ticks to a tenant's bucket; returns how many are
  /// admitted. Everything is admitted below kShed; while shedding, a dry
  /// bucket sheds the remainder (counted per tenant). The group admits a
  /// batch's inputs in batch order, so within one feed the *first*
  /// admitted-count inputs of the tenant are served.
  [[nodiscard]] std::size_t admit_ticks(std::uint32_t tenant_index,
                                        std::size_t count);

  /// Totals for tests/benches (reads the registry-backed counters).
  [[nodiscard]] std::uint64_t shed_opens_total() const;
  [[nodiscard]] std::uint64_t shed_ticks_total() const;

 private:
  struct Tenant {
    std::string name;
    double rate = 0.0;   ///< tokens per second (0 = unlimited)
    double burst = 0.0;  ///< bucket depth
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill;
    aps::obs::Counter* shed_open = nullptr;
    aps::obs::Counter* shed_tick = nullptr;
  };

  /// Ladder rung implied by the signals with thresholds scaled by
  /// `scale` (1.0 on entry; recover_ratio when testing for recovery).
  [[nodiscard]] int signal_level(double queue_frac, double p99_us,
                                 double scale) const;
  Tenant& tenant_locked(std::string_view name);
  void refill_locked(Tenant& tenant, std::chrono::steady_clock::time_point now);
  void set_state_locked(OverloadState next);

  AdmissionConfig config_;
  aps::obs::Registry& registry_;
  std::atomic<OverloadState> state_{OverloadState::kHealthy};

  mutable std::mutex mu_;  ///< guards tenants + the latency window + dwell
  std::unordered_map<std::string, std::uint32_t> tenant_ids_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<double> window_;  ///< ring buffer of recent tick latencies
  std::size_t window_pos_ = 0;
  std::size_t window_count_ = 0;
  std::vector<double> window_scratch_;  ///< reused for the p99 nth_element
  std::uint32_t dwell_ = 0;  ///< consecutive recovered ticks in this state

  aps::obs::Gauge* state_gauge_ = nullptr;
  aps::obs::Counter* to_healthy_ = nullptr;
  aps::obs::Counter* to_degrade_ = nullptr;
  aps::obs::Counter* to_shed_ = nullptr;
};

}  // namespace aps::serve
