#include "serve/engine.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "common/stats.h"
#include "io/artifact_io.h"
#include "ml/kernels/kernels.h"
#include "monitor/ml_monitor.h"

namespace aps::serve {

namespace {

/// Smallest lane chunk worth dispatching to a worker: below this the
/// gather/scatter overhead beats the parallelism.
constexpr std::size_t kMinChunkLanes = 64;

}  // namespace

MonitorEngine::MonitorEngine(EngineConfig config)
    : config_(config), pool_(config.threads) {
  if (config_.registry != nullptr) {
    registry_ = config_.registry;
  } else if (config_.telemetry) {
    registry_ = &aps::obs::Registry::global();
  } else {
    // Keep the opted-out engine's mandatory series out of the global
    // registry (the A/B baseline must not pollute process metrics).
    owned_registry_ = std::make_unique<aps::obs::Registry>();
    registry_ = owned_registry_.get();
  }
  const auto latency_spec = aps::obs::HistogramSpec::latency_us();
  metrics_.tick_latency = &registry_->histogram(
      "serve_tick_latency_us", latency_spec, {},
      "feed()/feed_one() wall time per tick");
  metrics_.ticks =
      &registry_->counter("serve_ticks_total", {}, "feed ticks served");
  metrics_.cycles = &registry_->counter("serve_cycles_total", {},
                                        "session-cycles served");
  metrics_.alarms = &registry_->counter("serve_alarms_total", {},
                                        "alarming decisions served");
  metrics_.sessions_opened = &registry_->counter(
      "serve_sessions_opened_total", {}, "open_session calls");
  metrics_.sessions_closed = &registry_->counter(
      "serve_sessions_closed_total", {}, "close_session calls");
  metrics_.sessions_restored = &registry_->counter(
      "serve_sessions_restored_total", {}, "snapshot restores");
  metrics_.session_resets = &registry_->counter(
      "serve_session_resets_total", {}, "reset_session calls");
  metrics_.reloads = &registry_->counter(
      "serve_reloads_total", {}, "register_monitor/register_bundle calls");
  metrics_.sessions_open =
      &registry_->gauge("serve_sessions_open", {}, "currently open sessions");
  metrics_.generation =
      &registry_->gauge("serve_generation", {}, "current model generation");
  metrics_.drift_alerts = &registry_->counter(
      "drift_alerts_total", {},
      "shard drift detectors entering the alerting state");
  metrics_.drift_samples = &registry_->counter(
      "drift_samples_total", {}, "observations folded into drift detectors");
  metrics_.degraded_ticks = &registry_->counter(
      "serve_degraded_ticks_total", {},
      "session-cycles answered by a degrade twin under deadline pressure");
  // Which ML kernel backend this process dispatches to (scalar/avx2/neon);
  // a labeled flag gauge so dashboards can pivot on the backend string.
  registry_
      ->gauge("kernels_backend",
              {{"backend", aps::ml::kernels::backend_name()}},
              "active ML kernel backend (value is always 1)")
      .set(1.0);
  if (config_.telemetry) {
    const auto phase = [&](const char* name) {
      return &registry_->histogram("serve_phase_us", latency_spec,
                                   {{"phase", name}},
                                   "sharded tick phase wall time");
    };
    metrics_.phase_ingest = phase("ingest");
    metrics_.phase_dispatch = phase("dispatch");
    metrics_.phase_predict = phase("predict");
    metrics_.phase_merge = phase("merge");
  }
}

void MonitorEngine::bump_generation_locked() {
  ++generation_;
  metrics_.reloads->add(1);
  metrics_.generation->set(static_cast<double>(generation_));
}

void MonitorEngine::register_monitor(const std::string& name,
                                     aps::sim::MonitorFactory factory,
                                     int cohort) {
  if (factory == nullptr) {
    throw std::invalid_argument("null factory for monitor '" + name + "'");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  bump_generation_locked();
  monitors_[name] = {std::move(factory), generation_, cohort, nullptr};
}

void MonitorEngine::register_bundle(const aps::core::ArtifactBundle& bundle) {
  // Build every factory before touching the registry so a throwing
  // construction leaves the current generation fully intact.
  std::vector<std::pair<std::string, aps::sim::MonitorFactory>> factories;
  for (const auto& name : aps::core::bundle_monitor_names(bundle)) {
    factories.emplace_back(name, aps::core::factory_from_bundle(bundle, name));
  }
  const int cohort = aps::core::bundle_cohort_size(bundle);
  const std::lock_guard<std::mutex> lock(mu_);
  bump_generation_locked();
  for (auto& [name, factory] : factories) {
    monitors_[name] = {std::move(factory), generation_, cohort,
                       bundle.training_stats};
  }
}

void MonitorEngine::register_bundle_file(const std::string& path) {
  // load_bundle throws io::IoError on corruption/truncation — before any
  // registry mutation, so live sessions keep serving their generation.
  register_bundle(aps::io::load_bundle(path));
}

std::vector<std::string> MonitorEngine::registered_monitors() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(monitors_.size());
  for (const auto& [name, entry] : monitors_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

std::uint64_t MonitorEngine::generation() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

const MonitorEngine::RegisteredMonitor& MonitorEngine::checked_monitor(
    const std::string& monitor_name, int patient_index) const {
  const auto it = monitors_.find(monitor_name);
  if (it == monitors_.end()) {
    throw std::invalid_argument("unknown monitor '" + monitor_name +
                                "' (register it first)");
  }
  const RegisteredMonitor& entry = it->second;
  if (patient_index < 0 ||
      (entry.cohort >= 0 && patient_index >= entry.cohort)) {
    throw std::out_of_range(
        "patient_index " + std::to_string(patient_index) +
        " outside the registered cohort of monitor '" + monitor_name + "'");
  }
  return entry;
}

void MonitorEngine::init_shard_telemetry(ServeShard& shard,
                                         const RegisteredMonitor& entry) {
  if (!config_.telemetry) return;
  aps::obs::Histogram* latency = &registry_->histogram(
      "serve_shard_tick_latency_us", aps::obs::HistogramSpec::latency_us(),
      {{"shard", shard.label()}}, "per-shard chunk wall time");
  registry_
      ->gauge("serve_shard_precision",
              {{"shard", shard.label()},
               {"precision",
                shard.precision() == aps::monitor::Precision::kF32 ? "f32"
                                                                   : "f64"}},
              "inference precision configured for the shard (always 1)")
      .set(1.0);
  aps::obs::Gauge* score = nullptr;
  std::unique_ptr<aps::obs::DriftDetector> drift;
  if (entry.stats != nullptr && !entry.stats->empty()) {
    score = &registry_->gauge(
        "serve_drift_score", {{"shard", shard.label()}},
        "input drift vs training stats (training-sigma units)");
    drift =
        std::make_unique<aps::obs::DriftDetector>(entry.stats, config_.drift);
  }
  shard.set_telemetry(latency, score, std::move(drift));
}

SessionId MonitorEngine::place_session(Session session,
                                       const aps::monitor::Monitor* prototype,
                                       const RegisteredMonitor& entry) {
  // The lane is placed before the session record is committed, so a
  // failure here leaves the registry and session table untouched.
  const std::uint64_t version = entry.version;
  const SessionId id = free_ids_.empty()
                           ? static_cast<SessionId>(sessions_.size())
                           : free_ids_.back();
  if (config_.backend == ServeBackend::kSharded) {
    // First shard of this (name, generation) whose batch accepts the
    // prototype; a rejected prototype (same name, different model
    // instance — e.g. a snapshot restored across a reload) gets a sibling
    // shard so it still batches with its own kind.
    for (const auto& shard : shards_) {
      if (shard->monitor_name() != session.monitor_name ||
          shard->version() != version) {
        continue;
      }
      if (const auto added = shard->try_add_lane(*prototype, id)) {
        session.shard = shard.get();
        session.lane = *added;
        break;
      }
    }
    if (session.shard == nullptr) {
      auto fresh = std::make_unique<ServeShard>(session.monitor_name,
                                                version, next_shard_ordinal_);
      // Degrade twin: if the map covers this monitor AND the degrade-to
      // monitor exists at the SAME generation (one register_bundle call
      // registers both), the shard carries a twin batch so kDegraded
      // ticks can answer from the cheap kind. A missing or stale-
      // generation target simply leaves the shard non-degradable.
      for (const auto& [from, to] : config_.degrade) {
        if (from != session.monitor_name || to == from) continue;
        const auto to_it = monitors_.find(to);
        if (to_it == monitors_.end() || to_it->second.version != version) {
          continue;
        }
        fresh->set_degrade_twin(to_it->second.factory(session.patient_index));
        break;
      }
      fresh->set_precision(config_.precision);
      const auto added = fresh->try_add_lane(*prototype, id);
      if (!added) {
        // A batch must accept its own prototype (shard.h invariant); a
        // Monitor whose make_batch() violates it is a programming error —
        // fail loudly instead of dereferencing an empty optional.
        throw std::logic_error("monitor '" + session.monitor_name +
                               "' produced a batch that rejects its own "
                               "prototype");
      }
      ++next_shard_ordinal_;
      init_shard_telemetry(*fresh, entry);
      session.shard = fresh.get();
      session.lane = *added;
      shards_.push_back(std::move(fresh));
    }
  }
  if (!free_ids_.empty()) {
    free_ids_.pop_back();
    sessions_[id] = std::move(session);
  } else {
    sessions_.push_back(std::move(session));
  }
  by_patient_.emplace(sessions_[id].patient_id, id);
  ++open_count_;
  metrics_.sessions_open->set(static_cast<double>(open_count_));
  return id;
}

SessionId MonitorEngine::open_session(const std::string& patient_id,
                                      const std::string& monitor_name,
                                      int patient_index) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (by_patient_.count(patient_id) != 0) {
    throw std::invalid_argument("patient '" + patient_id +
                                "' already has an open session");
  }
  const RegisteredMonitor& entry =
      checked_monitor(monitor_name, patient_index);
  // Build the monitor before any mutation: an unknown-cohort factory may
  // still reject the patient_index here.
  std::unique_ptr<aps::monitor::Monitor> monitor =
      entry.factory(patient_index);
  Session session;
  session.patient_id = patient_id;
  session.monitor_name = monitor_name;
  session.patient_index = patient_index;
  session.open = true;
  const aps::monitor::Monitor* prototype = monitor.get();
  if (config_.backend == ServeBackend::kScalar) {
    session.monitor = std::move(monitor);
    prototype = session.monitor.get();
  }
  metrics_.sessions_opened->add(1);
  return place_session(std::move(session), prototype, entry);
}

MonitorEngine::Session& MonitorEngine::checked_session(SessionId id) {
  if (id >= sessions_.size() || !sessions_[id].open) {
    throw std::out_of_range("no open session with id " + std::to_string(id));
  }
  return sessions_[id];
}

const MonitorEngine::Session& MonitorEngine::checked_session(
    SessionId id) const {
  if (id >= sessions_.size() || !sessions_[id].open) {
    throw std::out_of_range("no open session with id " + std::to_string(id));
  }
  return sessions_[id];
}

void MonitorEngine::close_session(SessionId id) {
  const std::lock_guard<std::mutex> lock(mu_);
  Session& session = checked_session(id);
  by_patient_.erase(session.patient_id);
  if (session.shard != nullptr) {
    ServeShard* shard = session.shard;
    // Swap-with-last lane compaction: the shard tells us which session
    // moved into the vacated lane so its index stays correct.
    if (const auto moved = shard->remove_lane(session.lane)) {
      sessions_[*moved].lane = session.lane;
    }
    if (shard->lanes() == 0) {
      std::erase_if(shards_, [shard](const std::unique_ptr<ServeShard>& s) {
        return s.get() == shard;
      });
    }
  }
  session = Session{};  // releases the monitor / lane bookkeeping
  free_ids_.push_back(id);
  --open_count_;
  metrics_.sessions_closed->add(1);
  metrics_.sessions_open->set(static_cast<double>(open_count_));
}

std::optional<SessionId> MonitorEngine::find_session(
    const std::string& patient_id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_patient_.find(patient_id);
  if (it == by_patient_.end()) return std::nullopt;
  return it->second;
}

std::size_t MonitorEngine::session_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return open_count_;
}

void MonitorEngine::record_latency(double seconds, std::size_t cycles) {
  ++latency_ticks_;
  latency_cycles_ += cycles;
  latency_seconds_ += seconds;
  metrics_.tick_latency->observe(seconds * 1e6);
  metrics_.ticks->add(1);
  metrics_.cycles->add(cycles);
}

LatencySummary MonitorEngine::latency() const {
  const std::lock_guard<std::mutex> lock(mu_);
  LatencySummary summary;
  summary.ticks = latency_ticks_;
  summary.cycles = latency_cycles_;
  summary.degraded_ticks = latency_degraded_;
  summary.seconds = latency_seconds_;
  // Empty-histogram contract (obs/metrics.h): percentiles of a series
  // with no observations are 0.0. Guard explicitly anyway so a summary
  // taken before the first tick is visibly all-zero by construction.
  const aps::obs::HistogramSnapshot snap = metrics_.tick_latency->snapshot();
  if (snap.count > 0) {
    summary.p50_us = snap.percentile(50.0);
    summary.p95_us = snap.percentile(95.0);
    summary.p99_us = snap.percentile(99.0);
    summary.max_us = snap.max;
  }
  // Per-shard breakdown; sibling shards share a label (same registry
  // series), so report each label once.
  std::unordered_set<std::string> seen;
  for (const auto& shard : shards_) {
    if (shard->latency_histogram() == nullptr ||
        !seen.insert(shard->label()).second) {
      continue;
    }
    const aps::obs::HistogramSnapshot h =
        shard->latency_histogram()->snapshot();
    if (h.count == 0) continue;
    summary.shards.push_back({shard->label(), h.count, h.percentile(50.0),
                              h.percentile(95.0), h.percentile(99.0), h.max});
  }
  return summary;
}

void MonitorEngine::reset_latency() {
  const std::lock_guard<std::mutex> lock(mu_);
  latency_ticks_ = 0;
  latency_cycles_ = 0;
  latency_degraded_ = 0;
  latency_seconds_ = 0.0;
  metrics_.tick_latency->reset();
  for (const auto& shard : shards_) {
    if (shard->latency_histogram() != nullptr) {
      shard->latency_histogram()->reset();
    }
  }
}

std::vector<aps::monitor::Decision> MonitorEngine::feed(
    std::span<const SessionInput> inputs) {
  std::vector<aps::monitor::Decision> decisions(inputs.size());
  feed(inputs, decisions);
  return decisions;
}

void MonitorEngine::feed(std::span<const SessionInput> inputs,
                         std::span<aps::monitor::Decision> decisions) {
  if (decisions.size() != inputs.size()) {
    throw std::invalid_argument(
        "feed: decisions span size " + std::to_string(decisions.size()) +
        " does not match inputs size " + std::to_string(inputs.size()));
  }
  const std::lock_guard<std::mutex> lock(mu_);
  // Repack AoS into the SoA scratch once; the SoA overload is the native
  // path (no further payload copy when the batch is already grouped).
  aos_sessions_.resize(inputs.size());
  aos_obs_.resize(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    aos_sessions_[i] = inputs[i].session;
    aos_obs_[i] = inputs[i].obs;
  }
  feed_locked(aos_sessions_, aos_obs_, decisions, FeedMode::kNormal);
}

void MonitorEngine::feed(std::span<const SessionId> sessions,
                         std::span<const aps::monitor::Observation> obs,
                         std::span<aps::monitor::Decision> decisions,
                         FeedMode mode) {
  if (obs.size() != sessions.size() || decisions.size() != sessions.size()) {
    throw std::invalid_argument(
        "feed: span sizes differ (sessions " + std::to_string(sessions.size()) +
        ", obs " + std::to_string(obs.size()) + ", decisions " +
        std::to_string(decisions.size()) + ")");
  }
  const std::lock_guard<std::mutex> lock(mu_);
  feed_locked(sessions, obs, decisions, mode);
}

void MonitorEngine::feed_locked(std::span<const SessionId> sessions,
                                std::span<const aps::monitor::Observation> obs,
                                std::span<aps::monitor::Decision> decisions,
                                FeedMode mode) {
  if (sessions.empty()) return;

  // Validate up front so the parallel section cannot throw.
  for (const SessionId sid : sessions) (void)checked_session(sid);

  const auto t0 = std::chrono::steady_clock::now();
  if (config_.backend == ServeBackend::kScalar) {
    feed_scalar(sessions, obs, decisions);
  } else {
    feed_sharded(sessions, obs, decisions, mode);
  }
  total_cycles_ += sessions.size();
  record_latency(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count(),
      sessions.size());
}

bool MonitorEngine::drift_tick_due() {
  const std::uint32_t every = std::max(1u, config_.drift.sample_every_ticks);
  return (drift_tick_++ % every) == 0;
}

/// Fold a chunk's observations into the shard's drift detector: strided
/// subsampling into a stack-local per-feature batch, one mutexed merge.
/// Purely observational — decisions are untouched.
void MonitorEngine::accumulate_drift(
    ServeShard& shard, std::span<const aps::monitor::Observation> obs) {
  aps::obs::DriftDetector* drift = shard.drift();
  if (drift == nullptr || obs.empty()) return;
  std::array<aps::obs::FeatureSummary, aps::monitor::kMlFeatureCount> batch{};
  std::array<double, aps::monitor::kMlFeatureCount> features{};
  const std::size_t stride = std::max<std::size_t>(1, drift->config().stride);
  std::uint64_t sampled = 0;
  for (std::size_t i = 0; i < obs.size(); i += stride) {
    aps::monitor::ml_features_into(obs[i], features);
    for (std::size_t f = 0; f < features.size(); ++f) {
      batch[f].add(features[f]);
    }
    ++sampled;
  }
  if (drift->merge(batch)) metrics_.drift_alerts->add(1);
  metrics_.drift_samples->add(sampled);
}

void MonitorEngine::feed_scalar(std::span<const SessionId> sessions,
                                std::span<const aps::monitor::Observation> obs,
                                std::span<aps::monitor::Decision> decisions) {
  // Partition the batch into per-session groups, preserving batch order
  // within each session. A session appears in exactly one group, so each
  // group is an independent serial unit of work.
  order_.resize(sessions.size());
  for (std::uint32_t i = 0; i < sessions.size(); ++i) order_[i] = i;
  std::stable_sort(order_.begin(), order_.end(),
                   [sessions](std::uint32_t a, std::uint32_t b) {
                     return sessions[a] < sessions[b];
                   });
  groups_.clear();
  for (std::uint32_t lo = 0; lo < order_.size();) {
    std::uint32_t hi = lo + 1;
    const SessionId session = sessions[order_[lo]];
    while (hi < order_.size() && sessions[order_[hi]] == session) ++hi;
    groups_.emplace_back(lo, hi);
    lo = hi;
  }

  // Gather each group's observations into one contiguous stretch so every
  // session gets a single observe_batch call (batched monitors amortize
  // inference across their group).
  sorted_obs_.resize(sessions.size());
  sorted_decisions_.resize(sessions.size());
  for (std::uint32_t k = 0; k < order_.size(); ++k) {
    sorted_obs_[k] = obs[order_[k]];
  }

  pool_.parallel_for(groups_.size(), [this, sessions](std::size_t g) {
    const auto [lo, hi] = groups_[g];
    Session& session = sessions_[sessions[order_[lo]]];
    const std::size_t count = hi - lo;
    session.monitor->observe_batch(
        std::span<const aps::monitor::Observation>(&sorted_obs_[lo], count),
        std::span<aps::monitor::Decision>(&sorted_decisions_[lo], count));
    session.stats.cycles += count;
    std::uint64_t alarms = 0;
    for (std::uint32_t k = lo; k < hi; ++k) {
      if (sorted_decisions_[k].alarm) ++alarms;
    }
    session.stats.alarms += alarms;
    if (alarms > 0) metrics_.alarms->add(alarms);
  });

  for (std::uint32_t k = 0; k < order_.size(); ++k) {
    decisions[order_[k]] = sorted_decisions_[k];
  }
}

void MonitorEngine::feed_sharded(std::span<const SessionId> sessions,
                                 std::span<const aps::monitor::Observation> obs,
                                 std::span<aps::monitor::Decision> decisions,
                                 FeedMode mode) {
  const std::size_t n = sessions.size();
  const bool telemetry = config_.telemetry;
  // Detailed instrumentation — tracer spans, per-chunk latency clocks, and
  // drift feature extraction — is tick-sampled on one shared cadence
  // (DriftConfig::sample_every_ticks). Unsampled ticks pay only the
  // aggregate counters (alarms, session stats, the engine-level tick
  // latency), which is what keeps the telemetry overhead inside its <2%
  // budget now that the identity fast path makes a rule tick this cheap.
  const bool detailed = telemetry && drift_tick_due();
  aps::obs::Tracer* tracer = detailed ? &registry_->tracer() : nullptr;
  const bool drift_due = detailed;
  const bool degraded_mode = mode == FeedMode::kDegraded;
  std::atomic<std::uint64_t> degraded{0};

  // Round r of a session = its r-th input in this batch; rounds execute as
  // sequential lockstep ticks so multiple inputs for one session apply in
  // batch order, exactly like the scalar path. The per-session occurrence
  // counters reset lazily via the feed epoch.
  bool single_round = true;
  {
    std::optional<aps::obs::Tracer::Scope> span;
    if (tracer != nullptr) {
      span.emplace(tracer, "serve.ingest", metrics_.phase_ingest);
    }
    ++feed_epoch_;
    if (feed_epoch_ == 0) {  // epoch wrapped: hard-reset the lazy counters
      std::fill(occ_epoch_.begin(), occ_epoch_.end(), 0);
      feed_epoch_ = 1;
    }
    occ_.resize(sessions_.size(), 0);
    occ_epoch_.resize(sessions_.size(), 0);
    round_of_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const SessionId sid = sessions[i];
      if (occ_epoch_[sid] != feed_epoch_) {
        occ_epoch_[sid] = feed_epoch_;
        occ_[sid] = 0;
      }
      round_of_[i] = occ_[sid]++;
      single_round = single_round && round_of_[i] == 0;
    }
  }

  // The worker body for one chunk of lanes [b, e) of `shard`, reading
  // observations from chunk_obs and writing decisions straight to
  // chunk_dec (+ the same range of lanes_flat_). Shared by the identity
  // fast path and the sorted general path; `src` maps chunk positions back
  // to input indices (nullptr = identity).
  const auto run_chunk = [&](ServeShard* shard, std::size_t b, std::size_t e,
                             const aps::monitor::Observation* chunk_obs,
                             aps::monitor::Decision* chunk_dec,
                             const std::uint32_t* src) {
    const std::size_t count = e - b;
    const std::span<const std::size_t> lane_span(&lanes_flat_[b], count);
    const std::span<const aps::monitor::Observation> obs_span(chunk_obs + b,
                                                              count);
    const std::span<aps::monitor::Decision> dec_span(chunk_dec + b, count);
    const auto c0 = detailed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};
    if (degraded_mode && shard->can_degrade()) {
      shard->observe_lanes_degraded(lane_span, obs_span, dec_span);
      degraded.fetch_add(count, std::memory_order_relaxed);
    } else {
      shard->observe_lanes(lane_span, obs_span, dec_span);
    }
    if (detailed && shard->latency_histogram() != nullptr) {
      shard->latency_histogram()->observe(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - c0)
              .count());
    }
    std::uint64_t alarms = 0;
    for (std::size_t kk = b; kk < e; ++kk) {
      const std::uint32_t i =
          src != nullptr ? src[kk] : static_cast<std::uint32_t>(kk);
      Session& session = sessions_[sessions[i]];
      ++session.stats.cycles;
      if (chunk_dec[kk].alarm) {
        ++session.stats.alarms;
        ++alarms;
      }
      if (src != nullptr) decisions[i] = chunk_dec[kk];
    }
    if (alarms > 0) metrics_.alarms->add(alarms);
    if (drift_due) accumulate_drift(*shard, obs_span);
  };

  // Detect the steady-state tick — one input per session, shard-contiguous
  // (ordinal-monotonic) — and serve it with ZERO payload movement: no
  // index sort, no observation gather, decisions written directly into the
  // caller's span. Only the lane lookup runs per input. Out-of-order or
  // multi-round batches fall back to the sort + gather + scatter path.
  bool already_grouped = true;
  {
    std::optional<aps::obs::Tracer::Scope> span;
    if (tracer != nullptr) {
      span.emplace(tracer, "serve.dispatch", metrics_.phase_dispatch);
    }
    for (std::size_t i = 1; i < n && already_grouped; ++i) {
      const std::uint32_t ra = round_of_[i - 1];
      const std::uint32_t rb = round_of_[i];
      if (ra != rb) {
        already_grouped = ra < rb;
        continue;
      }
      already_grouped = sessions_[sessions[i - 1]].shard->ordinal() <=
                        sessions_[sessions[i]].shard->ordinal();
    }
    lanes_flat_.resize(n);
    if (single_round && already_grouped) {
      for (std::size_t i = 0; i < n; ++i) {
        lanes_flat_[i] = sessions_[sessions[i]].lane;
      }
    } else {
      order_.resize(n);
      for (std::uint32_t i = 0; i < n; ++i) order_[i] = i;
      if (!already_grouped) {
        std::stable_sort(
            order_.begin(), order_.end(), [this, sessions](std::uint32_t a,
                                                           std::uint32_t b) {
              if (round_of_[a] != round_of_[b]) {
                return round_of_[a] < round_of_[b];
              }
              return sessions_[sessions[a]].shard->ordinal() <
                     sessions_[sessions[b]].shard->ordinal();
            });
      }
      sorted_obs_.resize(n);
      sorted_decisions_.resize(n);
      src_flat_.resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t i = order_[k];
        sorted_obs_[k] = obs[i];
        lanes_flat_[k] = sessions_[sessions[i]].lane;
        src_flat_[k] = i;
      }
    }
  }

  {
    std::optional<aps::obs::Tracer::Scope> span;
    if (tracer != nullptr) {
      span.emplace(tracer, "serve.predict", metrics_.phase_predict);
    }
    // Chunking only pays when workers can actually overlap; a
    // single-worker pool serves each shard stretch as one whole batched
    // call.
    const std::size_t target_chunks =
        pool_.thread_count() > 1 ? pool_.thread_count() * 2 : 1;
    if (single_round && already_grouped) {
      // Identity fast path: one round over [0, n), observations and
      // decisions used in place.
      groups_.clear();
      chunk_shards_.clear();
      std::size_t lo = 0;
      while (lo < n) {
        ServeShard* shard = sessions_[sessions[lo]].shard;
        std::size_t hi = lo + 1;
        while (hi < n && sessions_[sessions[hi]].shard == shard) ++hi;
        const std::size_t chunk = std::max(
            kMinChunkLanes, (hi - lo + target_chunks - 1) / target_chunks);
        for (std::size_t b = lo; b < hi; b += chunk) {
          groups_.emplace_back(static_cast<std::uint32_t>(b),
                               static_cast<std::uint32_t>(std::min(b + chunk,
                                                                   hi)));
          chunk_shards_.push_back(shard);
        }
        lo = hi;
      }
      pool_.parallel_for(groups_.size(), [&](std::size_t g) {
        const auto [b, e] = groups_[g];
        run_chunk(chunk_shards_[g], b, e, obs.data(), decisions.data(),
                  nullptr);
      });
    } else {
      std::size_t k = 0;
      while (k < n) {
        const std::uint32_t round = round_of_[order_[k]];
        // Collect this round's shard stretches, subdividing large ones
        // into chunks; all chunks of one round touch disjoint lanes, so
        // they run concurrently against their shards.
        groups_.clear();
        chunk_shards_.clear();
        std::size_t lo = k;
        while (lo < n && round_of_[order_[lo]] == round) {
          ServeShard* shard = sessions_[sessions[order_[lo]]].shard;
          std::size_t hi = lo + 1;
          while (hi < n && round_of_[order_[hi]] == round &&
                 sessions_[sessions[order_[hi]]].shard == shard) {
            ++hi;
          }
          const std::size_t chunk = std::max(
              kMinChunkLanes, (hi - lo + target_chunks - 1) / target_chunks);
          for (std::size_t b = lo; b < hi; b += chunk) {
            groups_.emplace_back(
                static_cast<std::uint32_t>(b),
                static_cast<std::uint32_t>(std::min(b + chunk, hi)));
            chunk_shards_.push_back(shard);
          }
          lo = hi;
        }
        pool_.parallel_for(groups_.size(), [&](std::size_t g) {
          const auto [b, e] = groups_[g];
          run_chunk(chunk_shards_[g], b, e, sorted_obs_.data(),
                    sorted_decisions_.data(), src_flat_.data());
        });
        k = lo;
      }
    }
  }

  if (const std::uint64_t d = degraded.load(std::memory_order_relaxed)) {
    latency_degraded_ += d;
    metrics_.degraded_ticks->add(d);
  }

  if (drift_due) {
    // Merge: refresh each drifting shard's score gauge (sampled ticks
    // only, alongside the accumulation those scores reflect).
    std::optional<aps::obs::Tracer::Scope> span;
    if (tracer != nullptr) {
      span.emplace(tracer, "serve.merge", metrics_.phase_merge);
    }
    for (const auto& shard : shards_) {
      if (shard->drift() != nullptr && shard->drift_gauge() != nullptr) {
        shard->drift_gauge()->set(shard->drift()->score());
      }
    }
  }
}

aps::monitor::Decision MonitorEngine::feed_one(
    SessionId id, const aps::monitor::Observation& obs) {
  const std::lock_guard<std::mutex> lock(mu_);
  Session& session = checked_session(id);
  const auto t0 = std::chrono::steady_clock::now();
  aps::monitor::Decision decision;
  if (session.shard != nullptr) {
    const std::size_t lane = session.lane;
    session.shard->observe_lanes(
        std::span<const std::size_t>(&lane, 1),
        std::span<const aps::monitor::Observation>(&obs, 1),
        std::span<aps::monitor::Decision>(&decision, 1));
  } else {
    decision = session.monitor->observe(obs);
  }
  ++session.stats.cycles;
  if (decision.alarm) {
    ++session.stats.alarms;
    metrics_.alarms->add(1);
  }
  if (config_.telemetry && session.shard != nullptr && drift_tick_due()) {
    accumulate_drift(*session.shard,
                     std::span<const aps::monitor::Observation>(&obs, 1));
    if (session.shard->drift() != nullptr &&
        session.shard->drift_gauge() != nullptr) {
      session.shard->drift_gauge()->set(session.shard->drift()->score());
    }
  }
  ++total_cycles_;
  record_latency(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count(),
      1);
  return decision;
}

void MonitorEngine::reset_session(SessionId id) {
  const std::lock_guard<std::mutex> lock(mu_);
  Session& session = checked_session(id);
  metrics_.session_resets->add(1);
  if (session.shard != nullptr) {
    session.shard->reset_lane(session.lane);
  } else {
    session.monitor->reset();
  }
}

SessionSnapshot MonitorEngine::snapshot(SessionId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Session& session = checked_session(id);
  SessionSnapshot snap;
  snap.patient_id = session.patient_id;
  snap.monitor_name = session.monitor_name;
  snap.patient_index = session.patient_index;
  snap.stats = session.stats;
  snap.monitor = session.shard != nullptr
                     ? session.shard->extract_lane(session.lane)
                     : session.monitor->clone();
  return snap;
}

SessionId MonitorEngine::restore(const SessionSnapshot& snap) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (snap.monitor == nullptr) {
    throw std::invalid_argument("cannot restore an empty snapshot");
  }
  if (by_patient_.count(snap.patient_id) != 0) {
    throw std::invalid_argument("patient '" + snap.patient_id +
                                "' already has an open session");
  }
  // The registry may have changed shape since the snapshot was taken
  // (different bundle, smaller cohort): fail loudly instead of serving a
  // session whose per-patient artifacts no longer exist.
  const RegisteredMonitor& entry =
      checked_monitor(snap.monitor_name, snap.patient_index);
  Session session;
  session.patient_id = snap.patient_id;
  session.monitor_name = snap.monitor_name;
  session.patient_index = snap.patient_index;
  session.stats = snap.stats;
  session.open = true;
  const aps::monitor::Monitor* prototype = snap.monitor.get();
  if (config_.backend == ServeBackend::kScalar) {
    session.monitor = snap.monitor->clone();
    prototype = session.monitor.get();
  }
  metrics_.sessions_restored->add(1);
  return place_session(std::move(session), prototype, entry);
}

SessionStats MonitorEngine::stats(SessionId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return checked_session(id).stats;
}

std::uint64_t MonitorEngine::total_cycles() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_cycles_;
}

}  // namespace aps::serve
