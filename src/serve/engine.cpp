#include "serve/engine.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace aps::serve {

MonitorEngine::MonitorEngine(EngineConfig config)
    : config_(config), pool_(config.threads) {}

void MonitorEngine::register_monitor(const std::string& name,
                                     aps::sim::MonitorFactory factory) {
  if (factory == nullptr) {
    throw std::invalid_argument("null factory for monitor '" + name + "'");
  }
  monitors_[name] = std::move(factory);
}

void MonitorEngine::register_bundle(const aps::core::ArtifactBundle& bundle) {
  for (const auto& name : aps::core::bundle_monitor_names(bundle)) {
    register_monitor(name, aps::core::factory_from_bundle(bundle, name));
  }
}

std::vector<std::string> MonitorEngine::registered_monitors() const {
  std::vector<std::string> names;
  names.reserve(monitors_.size());
  for (const auto& [name, factory] : monitors_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

SessionId MonitorEngine::place_session(Session session) {
  SessionId id = 0;
  if (!free_ids_.empty()) {
    id = free_ids_.back();
    free_ids_.pop_back();
    sessions_[id] = std::move(session);
  } else {
    id = static_cast<SessionId>(sessions_.size());
    sessions_.push_back(std::move(session));
  }
  by_patient_.emplace(sessions_[id].patient_id, id);
  ++open_count_;
  return id;
}

SessionId MonitorEngine::open_session(const std::string& patient_id,
                                      const std::string& monitor_name,
                                      int patient_index) {
  if (by_patient_.count(patient_id) != 0) {
    throw std::invalid_argument("patient '" + patient_id +
                                "' already has an open session");
  }
  const auto it = monitors_.find(monitor_name);
  if (it == monitors_.end()) {
    throw std::invalid_argument("unknown monitor '" + monitor_name +
                                "' (register it first)");
  }
  Session session;
  session.patient_id = patient_id;
  session.monitor_name = monitor_name;
  session.patient_index = patient_index;
  session.monitor = it->second(patient_index);
  session.open = true;
  return place_session(std::move(session));
}

MonitorEngine::Session& MonitorEngine::checked_session(SessionId id) {
  if (id >= sessions_.size() || !sessions_[id].open) {
    throw std::out_of_range("no open session with id " + std::to_string(id));
  }
  return sessions_[id];
}

const MonitorEngine::Session& MonitorEngine::checked_session(
    SessionId id) const {
  if (id >= sessions_.size() || !sessions_[id].open) {
    throw std::out_of_range("no open session with id " + std::to_string(id));
  }
  return sessions_[id];
}

void MonitorEngine::close_session(SessionId id) {
  Session& session = checked_session(id);
  by_patient_.erase(session.patient_id);
  session = Session{};  // releases the monitor
  free_ids_.push_back(id);
  --open_count_;
}

std::optional<SessionId> MonitorEngine::find_session(
    const std::string& patient_id) const {
  const auto it = by_patient_.find(patient_id);
  if (it == by_patient_.end()) return std::nullopt;
  return it->second;
}

std::vector<aps::monitor::Decision> MonitorEngine::feed(
    std::span<const SessionInput> inputs) {
  std::vector<aps::monitor::Decision> decisions(inputs.size());
  if (inputs.empty()) return decisions;

  // Validate up front so the parallel section cannot throw.
  for (const auto& input : inputs) (void)checked_session(input.session);

  // Partition the batch into per-session groups, preserving batch order
  // within each session. A session appears in exactly one group, so each
  // group is an independent serial unit of work.
  order_.resize(inputs.size());
  for (std::uint32_t i = 0; i < inputs.size(); ++i) order_[i] = i;
  std::stable_sort(order_.begin(), order_.end(),
                   [&inputs](std::uint32_t a, std::uint32_t b) {
                     return inputs[a].session < inputs[b].session;
                   });
  groups_.clear();
  for (std::uint32_t lo = 0; lo < order_.size();) {
    std::uint32_t hi = lo + 1;
    const SessionId session = inputs[order_[lo]].session;
    while (hi < order_.size() && inputs[order_[hi]].session == session) ++hi;
    groups_.emplace_back(lo, hi);
    lo = hi;
  }

  // Gather each group's observations into one contiguous stretch so every
  // session gets a single observe_batch call (batched monitors amortize
  // inference across their group).
  sorted_obs_.resize(inputs.size());
  sorted_decisions_.resize(inputs.size());
  for (std::uint32_t k = 0; k < order_.size(); ++k) {
    sorted_obs_[k] = inputs[order_[k]].obs;
  }

  pool_.parallel_for(groups_.size(), [this, inputs](std::size_t g) {
    const auto [lo, hi] = groups_[g];
    Session& session = sessions_[inputs[order_[lo]].session];
    const std::size_t count = hi - lo;
    session.monitor->observe_batch(
        std::span<const aps::monitor::Observation>(&sorted_obs_[lo], count),
        std::span<aps::monitor::Decision>(&sorted_decisions_[lo], count));
    session.stats.cycles += count;
    for (std::uint32_t k = lo; k < hi; ++k) {
      if (sorted_decisions_[k].alarm) ++session.stats.alarms;
    }
  });

  for (std::uint32_t k = 0; k < order_.size(); ++k) {
    decisions[order_[k]] = sorted_decisions_[k];
  }
  total_cycles_ += inputs.size();
  return decisions;
}

aps::monitor::Decision MonitorEngine::feed_one(
    SessionId id, const aps::monitor::Observation& obs) {
  Session& session = checked_session(id);
  const aps::monitor::Decision decision = session.monitor->observe(obs);
  ++session.stats.cycles;
  if (decision.alarm) ++session.stats.alarms;
  ++total_cycles_;
  return decision;
}

void MonitorEngine::reset_session(SessionId id) {
  checked_session(id).monitor->reset();
}

SessionSnapshot MonitorEngine::snapshot(SessionId id) const {
  const Session& session = checked_session(id);
  SessionSnapshot snap;
  snap.patient_id = session.patient_id;
  snap.monitor_name = session.monitor_name;
  snap.patient_index = session.patient_index;
  snap.stats = session.stats;
  snap.monitor = session.monitor->clone();
  return snap;
}

SessionId MonitorEngine::restore(const SessionSnapshot& snap) {
  if (snap.monitor == nullptr) {
    throw std::invalid_argument("cannot restore an empty snapshot");
  }
  if (by_patient_.count(snap.patient_id) != 0) {
    throw std::invalid_argument("patient '" + snap.patient_id +
                                "' already has an open session");
  }
  Session session;
  session.patient_id = snap.patient_id;
  session.monitor_name = snap.monitor_name;
  session.patient_index = snap.patient_index;
  session.stats = snap.stats;
  session.monitor = snap.monitor->clone();
  session.open = true;
  return place_session(std::move(session));
}

SessionStats MonitorEngine::stats(SessionId id) const {
  return checked_session(id).stats;
}

}  // namespace aps::serve
