// Monitor serving engine: multiplexes thousands of independent per-patient
// streaming sessions over the batched SoA monitor backend.
//
// Sessions are sharded by (monitor name, model generation): every session
// of a shard is one contiguous lane behind a single monitor::MonitorBatch,
// so a control tick costs one DecisionTree/Mlp/Lstm::predict_batch call
// per shard instead of one model call per session (ServeBackend::kSharded,
// the default). The pre-shard per-session path is retained as
// ServeBackend::kScalar — the conformance suite pins the sharded path
// bit-identical to it. Large ticks additionally split each shard's lanes
// into chunks that run across the worker pool; every batch implementation
// is lane-independent, so output never depends on chunking or threads.
//
// Model generations: register_bundle / register_monitor atomically bump a
// generation counter. Sessions pin the factories (and the shared immutable
// models behind them) that were current when they opened — a hot reload
// never perturbs live sessions; new sessions pick up the new generation
// and land in fresh shards. register_bundle_file loads a bundle from disk
// first, so a corrupt file surfaces as io::IoError with the registry (and
// every live session) untouched.
//
// Thread model: the public API is internally synchronized — any number of
// frontend threads may open/close/feed/reload concurrently. A feed tick
// holds the engine lock (concurrent feeds serialize, each parallelizing
// internally over the pool), which also gives reloads tick-boundary
// semantics: in-flight ticks finish on the old generation, later ticks see
// the new one.
//
// Telemetry: the engine reports into an obs::Registry — tick latency
// histograms (whole-tick and per-shard chunk), session open/close/
// restore/reload counters, a generation gauge, tick-phase trace spans
// (ingest -> dispatch -> predict -> merge), and DOOD-style per-shard
// drift detectors seeded from the bundle's training-time feature stats
// (serve_drift_score gauges + drift_alerts_total). All hot-path updates
// are relaxed atomics on per-thread shards; scraping never takes the
// engine lock. Everything here is observational: decisions stay
// bit-identical with telemetry on, off, or racing a scrape.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/monitor_factory.h"
#include "monitor/monitor.h"
#include "obs/drift.h"
#include "obs/metrics.h"
#include "serve/shard.h"
#include "sim/runner.h"

namespace aps::serve {

/// One streaming step for one session.
struct SessionInput {
  SessionId session = 0;
  aps::monitor::Observation obs;
};

struct SessionStats {
  std::uint64_t cycles = 0;
  std::uint64_t alarms = 0;
};

/// Point-in-time copy of a session, including the monitor's internal
/// observation state (LSTM window, guideline recovery counters). Restoring
/// it — in this engine or a fresh one — continues the stream exactly where
/// the snapshot was taken.
struct SessionSnapshot {
  std::string patient_id;
  std::string monitor_name;
  int patient_index = 0;
  SessionStats stats;
  std::unique_ptr<aps::monitor::Monitor> monitor;
};

enum class ServeBackend {
  kSharded,  ///< SoA lanes, one batched model call per shard per tick
  kScalar,   ///< one Monitor instance per session (pre-shard reference path)
};

/// How a feed tick is served. kNormal runs every session's own monitor;
/// kDegraded is the overload escape hatch — sessions whose shard carries a
/// degrade twin (see EngineConfig::degrade) are answered by the cheap twin
/// while their primary monitor only ingests the observation, so the
/// primary's stream continues bit-identically once pressure subsides.
/// Callers (the replica worker in serve::EngineGroup) pick the mode per
/// tick from deadline pressure; sessions without a twin always serve
/// normally.
enum class FeedMode { kNormal, kDegraded };

struct EngineConfig {
  /// Worker threads for batched feeds; 0 = hardware concurrency.
  std::size_t threads = 0;
  ServeBackend backend = ServeBackend::kSharded;
  /// Metric registry the engine reports into; null = the process-global
  /// obs::Registry. Counters/gauges/histograms are registry-owned series,
  /// so several engines sharing one registry aggregate.
  aps::obs::Registry* registry = nullptr;
  /// false: skip the optional telemetry — tick-phase spans, per-shard
  /// latency histograms, and drift detection — and report the mandatory
  /// series (tick latency, counters) into a private registry instead of
  /// the global one. The A/B overhead baseline in bench/serve_throughput.
  bool telemetry = true;
  /// Inference precision applied to every shard this engine creates
  /// (sharded backend). kF64 is the reference path; kF32 routes MLP/LSTM
  /// lanes through the float32 kernels (tolerance-pinned, see
  /// monitor::Precision). Monitors without a float32 path ignore it. The
  /// scalar backend always serves kF64.
  aps::monitor::Precision precision = aps::monitor::Precision::kF64;
  /// Drift-detector tuning for shards whose generation carries
  /// training stats.
  aps::obs::DriftConfig drift = {};
  /// Overload degrade map (sharded backend only): shards of a `first`
  /// monitor get a twin of the `second` monitor from the same bundle
  /// generation, enabling FeedMode::kDegraded ticks. The default degrades
  /// the LSTM (window-bound, transcendental-heavy) to the decision tree —
  /// the cheapest ML monitor in every bundle. Empty disables degradation.
  std::vector<std::pair<std::string, std::string>> degrade = {{"lstm", "dt"}};
};

/// One shard's chunk-latency distribution ("<monitor>@g<generation>").
struct ShardLatencySummary {
  std::string shard;
  std::uint64_t chunks = 0;  ///< chunk observations merged into the series
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;
};

/// Per-tick feed() latency distribution plus aggregate throughput.
/// Percentiles/max come from the engine's serve_tick_latency_us histogram
/// (the same series a registry scrape exposes); ticks/cycles/seconds are
/// exact engine totals.
struct LatencySummary {
  std::uint64_t ticks = 0;    ///< feed() calls measured
  std::uint64_t cycles = 0;   ///< session-cycles served by those calls
  double seconds = 0.0;       ///< total wall time inside feed()
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double max_us = 0.0;        ///< slowest measured tick
  /// Session-cycles answered by a degrade twin (FeedMode::kDegraded ticks
  /// on shards with a twin) — zero below deadline pressure.
  std::uint64_t degraded_ticks = 0;
  /// Per-shard chunk latency (telemetry on, sharded backend only).
  std::vector<ShardLatencySummary> shards;
  [[nodiscard]] double cycles_per_sec() const {
    return seconds > 0.0 ? static_cast<double>(cycles) / seconds : 0.0;
  }
};

class MonitorEngine {
 public:
  explicit MonitorEngine(EngineConfig config = {});

  // -- Monitor registry --

  /// Register a named monitor prototype (bumping the model generation).
  /// Replaces an existing name; live sessions keep the factory they were
  /// opened with. `cohort` bounds patient_index when >= 0 (-1 = unknown,
  /// range errors then surface from the factory itself).
  void register_monitor(const std::string& name,
                        aps::sim::MonitorFactory factory, int cohort = -1);
  /// Register every monitor constructible from the bundle under its
  /// standard name ("guideline", "cawt", "dt", ...) as ONE new generation.
  void register_bundle(const aps::core::ArtifactBundle& bundle);
  /// Load a bundle file and register it. A corrupt/truncated file throws
  /// io::IoError before any registry mutation: existing sessions and the
  /// current generation are untouched.
  void register_bundle_file(const std::string& path);
  [[nodiscard]] std::vector<std::string> registered_monitors() const;
  /// Monotonic model generation; bumped by every register_* call.
  [[nodiscard]] std::uint64_t generation() const;

  // -- Session registry (keyed by patient id) --

  /// Open a streaming session for `patient_id` running `monitor_name`.
  /// `patient_index` selects the per-patient artifact row (thresholds,
  /// percentiles) inside the monitor factory. Throws std::invalid_argument
  /// for duplicate patient ids or unknown monitor names, and
  /// std::out_of_range for a patient_index outside the registered cohort.
  SessionId open_session(const std::string& patient_id,
                         const std::string& monitor_name,
                         int patient_index = 0);
  void close_session(SessionId id);
  [[nodiscard]] std::optional<SessionId> find_session(
      const std::string& patient_id) const;
  [[nodiscard]] std::size_t session_count() const;

  // -- Streaming --

  /// Process one batch; decisions[i] answers inputs[i]. Inputs may target
  /// any mix of sessions; multiple inputs for one session are applied in
  /// batch order. Throws std::out_of_range for unknown/closed sessions
  /// (before any input is processed).
  std::vector<aps::monitor::Decision> feed(
      std::span<const SessionInput> inputs);
  /// Allocation-free variant for hot callers (the network front door's
  /// tick loop): decisions.size() must equal inputs.size(); decisions[i]
  /// answers inputs[i]. Same validation and ordering semantics as above.
  void feed(std::span<const SessionInput> inputs,
            std::span<aps::monitor::Decision> decisions);
  /// Structure-of-arrays variant — the replica worker's hot path:
  /// decisions[i] answers obs[i] for sessions[i], same validation and
  /// ordering semantics as the AoS overloads but with no per-tick copy of
  /// the observation payload when the batch is already grouped (steady
  /// state: one input per session, shard-contiguous). `mode` selects the
  /// overload policy for this tick (see FeedMode).
  void feed(std::span<const SessionId> sessions,
            std::span<const aps::monitor::Observation> obs,
            std::span<aps::monitor::Decision> decisions,
            FeedMode mode = FeedMode::kNormal);
  aps::monitor::Decision feed_one(SessionId id,
                                  const aps::monitor::Observation& obs);
  /// Reset the session's monitor state (new trace, same patient).
  void reset_session(SessionId id);

  // -- Snapshot / restore --

  [[nodiscard]] SessionSnapshot snapshot(SessionId id) const;
  /// Re-create a session from a snapshot (the patient id must be free).
  /// The snapshot's monitor name must exist in THIS engine's registry and
  /// its patient_index must lie inside the registered cohort — a snapshot
  /// taken against a registry that has since changed shape yields a clear
  /// std::invalid_argument / std::out_of_range instead of serving with
  /// dangling per-patient state.
  SessionId restore(const SessionSnapshot& snap);

  // -- Introspection --

  [[nodiscard]] SessionStats stats(SessionId id) const;
  [[nodiscard]] std::uint64_t total_cycles() const;
  [[nodiscard]] std::size_t thread_count() const {
    return pool_.thread_count();
  }
  [[nodiscard]] ServeBackend backend() const { return config_.backend; }
  /// Latency distribution over the feed() ticks since the last reset.
  [[nodiscard]] LatencySummary latency() const;
  void reset_latency();
  /// Registry this engine reports into (the configured one, the global
  /// one, or the private one when telemetry is off) — scrape it for tick
  /// latency histograms, session/reload counters, and drift gauges.
  [[nodiscard]] aps::obs::Registry& registry() const { return *registry_; }

 private:
  struct Session {
    std::string patient_id;
    std::string monitor_name;
    int patient_index = 0;
    SessionStats stats;
    bool open = false;
    // Sharded backend: the shard lane this session occupies.
    ServeShard* shard = nullptr;
    std::size_t lane = 0;
    // Scalar backend: the session's own monitor instance.
    std::unique_ptr<aps::monitor::Monitor> monitor;
  };

  struct RegisteredMonitor {
    aps::sim::MonitorFactory factory;
    std::uint64_t version = 0;  ///< generation at registration
    int cohort = -1;            ///< patient_index bound; -1 = unknown
    /// Training-time feature stats of the registered bundle (null for
    /// bare register_monitor calls); seeds drift detectors of shards
    /// created for this generation.
    std::shared_ptr<const aps::obs::TrainingStats> stats;
  };

  /// Registry-owned series handles, resolved once at construction.
  struct Metrics {
    aps::obs::Counter* sessions_opened = nullptr;
    aps::obs::Counter* sessions_closed = nullptr;
    aps::obs::Counter* sessions_restored = nullptr;
    aps::obs::Counter* session_resets = nullptr;
    aps::obs::Counter* reloads = nullptr;
    aps::obs::Gauge* sessions_open = nullptr;
    aps::obs::Gauge* generation = nullptr;
    aps::obs::Counter* ticks = nullptr;
    aps::obs::Counter* cycles = nullptr;
    aps::obs::Counter* alarms = nullptr;
    aps::obs::Counter* drift_alerts = nullptr;
    aps::obs::Counter* drift_samples = nullptr;
    aps::obs::Counter* degraded_ticks = nullptr;
    aps::obs::Histogram* tick_latency = nullptr;
    aps::obs::Histogram* phase_ingest = nullptr;
    aps::obs::Histogram* phase_dispatch = nullptr;
    aps::obs::Histogram* phase_predict = nullptr;
    aps::obs::Histogram* phase_merge = nullptr;
  };

  [[nodiscard]] Session& checked_session(SessionId id);
  [[nodiscard]] const Session& checked_session(SessionId id) const;
  [[nodiscard]] const RegisteredMonitor& checked_monitor(
      const std::string& monitor_name, int patient_index) const;
  SessionId place_session(Session session,
                          const aps::monitor::Monitor* prototype,
                          const RegisteredMonitor& entry);
  void init_shard_telemetry(ServeShard& shard,
                            const RegisteredMonitor& entry);
  void bump_generation_locked();
  void record_latency(double seconds, std::size_t cycles);
  void accumulate_drift(ServeShard& shard,
                        std::span<const aps::monitor::Observation> obs);
  /// Tick-sampled drift accounting: true on the ticks that pay the drift
  /// feature-extraction + gauge-refresh cost (every drift.sample_every_ticks
  /// feeds). Keeps the telemetry overhead inside its <2% budget.
  [[nodiscard]] bool drift_tick_due();
  void feed_locked(std::span<const SessionId> sessions,
                   std::span<const aps::monitor::Observation> obs,
                   std::span<aps::monitor::Decision> decisions, FeedMode mode);
  void feed_scalar(std::span<const SessionId> sessions,
                   std::span<const aps::monitor::Observation> obs,
                   std::span<aps::monitor::Decision> decisions);
  void feed_sharded(std::span<const SessionId> sessions,
                    std::span<const aps::monitor::Observation> obs,
                    std::span<aps::monitor::Decision> decisions, FeedMode mode);

  EngineConfig config_;
  aps::ThreadPool pool_;
  std::unique_ptr<aps::obs::Registry> owned_registry_;  ///< telemetry off
  aps::obs::Registry* registry_ = nullptr;
  Metrics metrics_;

  mutable std::mutex mu_;  ///< guards everything below
  std::unordered_map<std::string, RegisteredMonitor> monitors_;
  std::uint64_t generation_ = 0;
  std::vector<std::unique_ptr<ServeShard>> shards_;
  std::uint32_t next_shard_ordinal_ = 0;
  std::vector<Session> sessions_;
  std::vector<SessionId> free_ids_;
  std::unordered_map<std::string, SessionId> by_patient_;
  std::size_t open_count_ = 0;
  std::uint64_t total_cycles_ = 0;

  // Exact tick totals since the last reset_latency(); the distribution
  // itself lives in the serve_tick_latency_us histogram.
  std::uint64_t latency_ticks_ = 0;
  std::uint64_t latency_cycles_ = 0;
  std::uint64_t latency_degraded_ = 0;
  double latency_seconds_ = 0.0;
  std::uint64_t drift_tick_ = 0;  ///< feed ticks since construction (sampling)

  // Scratch reused across feed() calls to avoid per-batch allocation churn.
  std::vector<SessionId> aos_sessions_;  ///< AoS feed() SoA repack
  std::vector<aps::monitor::Observation> aos_obs_;
  std::vector<std::uint32_t> order_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> groups_;
  std::vector<aps::monitor::Observation> sorted_obs_;
  std::vector<aps::monitor::Decision> sorted_decisions_;
  std::vector<std::uint32_t> round_of_;
  std::vector<std::uint32_t> occ_;        ///< per-session occurrence count
  std::vector<std::uint32_t> occ_epoch_;  ///< lazy-reset epoch per session
  std::uint32_t feed_epoch_ = 0;
  std::vector<std::size_t> lanes_flat_;
  std::vector<std::uint32_t> src_flat_;
  std::vector<ServeShard*> chunk_shards_;  ///< shard behind each chunk
};

}  // namespace aps::serve
