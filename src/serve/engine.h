// Monitor serving engine: multiplexes thousands of independent per-patient
// streaming sessions across the shared ThreadPool.
//
// Each session owns one Monitor instance (cloned from a registered
// factory) plus its observation-window state; the trained models behind
// the ML monitors are shared immutable storage (shared_ptr<const ...>), so
// ten thousand sessions cost one copy of the weights. A batched feed()
// partitions the inputs by session, hands each session its inputs as one
// contiguous Monitor::observe_batch call (ML monitors amortize inference
// across the group, e.g. one MLP forward pass), and writes decisions back
// by input index — output is therefore deterministic and identical to
// running every session sequentially, regardless of thread scheduling.
//
// Thread model: feed() parallelizes internally; the engine's public API
// itself is externally synchronized (one driver thread opens/closes
// sessions and submits batches, as a network frontend's event loop would).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/monitor_factory.h"
#include "monitor/monitor.h"
#include "sim/runner.h"

namespace aps::serve {

using SessionId = std::uint32_t;

/// One streaming step for one session.
struct SessionInput {
  SessionId session = 0;
  aps::monitor::Observation obs;
};

struct SessionStats {
  std::uint64_t cycles = 0;
  std::uint64_t alarms = 0;
};

/// Point-in-time copy of a session, including the monitor's internal
/// observation state (LSTM window, guideline recovery counters). Restoring
/// it — in this engine or a fresh one — continues the stream exactly where
/// the snapshot was taken.
struct SessionSnapshot {
  std::string patient_id;
  std::string monitor_name;
  int patient_index = 0;
  SessionStats stats;
  std::unique_ptr<aps::monitor::Monitor> monitor;
};

struct EngineConfig {
  /// Worker threads for batched feeds; 0 = hardware concurrency.
  std::size_t threads = 0;
};

class MonitorEngine {
 public:
  explicit MonitorEngine(EngineConfig config = {});

  // -- Monitor registry --

  /// Register a named monitor prototype. Replaces an existing name.
  void register_monitor(const std::string& name,
                        aps::sim::MonitorFactory factory);
  /// Register every monitor constructible from the bundle under its
  /// standard name ("guideline", "cawt", "dt", ...).
  void register_bundle(const aps::core::ArtifactBundle& bundle);
  [[nodiscard]] std::vector<std::string> registered_monitors() const;

  // -- Session registry (keyed by patient id) --

  /// Open a streaming session for `patient_id` running `monitor_name`.
  /// `patient_index` selects the per-patient artifact row (thresholds,
  /// percentiles) inside the monitor factory. Throws std::invalid_argument
  /// for duplicate patient ids or unknown monitor names; a patient_index
  /// outside the factory's cohort propagates the factory's
  /// std::out_of_range.
  SessionId open_session(const std::string& patient_id,
                         const std::string& monitor_name,
                         int patient_index = 0);
  void close_session(SessionId id);
  [[nodiscard]] std::optional<SessionId> find_session(
      const std::string& patient_id) const;
  [[nodiscard]] std::size_t session_count() const { return open_count_; }

  // -- Streaming --

  /// Process one batch; decisions[i] answers inputs[i]. Inputs may target
  /// any mix of sessions; multiple inputs for one session are applied in
  /// batch order. Throws std::out_of_range for unknown/closed sessions
  /// (before any input is processed).
  std::vector<aps::monitor::Decision> feed(
      std::span<const SessionInput> inputs);
  aps::monitor::Decision feed_one(SessionId id,
                                  const aps::monitor::Observation& obs);
  /// Reset the session's monitor state (new trace, same patient).
  void reset_session(SessionId id);

  // -- Snapshot / restore --

  [[nodiscard]] SessionSnapshot snapshot(SessionId id) const;
  /// Re-create a session from a snapshot (the patient id must be free).
  SessionId restore(const SessionSnapshot& snap);

  // -- Introspection --

  [[nodiscard]] SessionStats stats(SessionId id) const;
  [[nodiscard]] std::uint64_t total_cycles() const { return total_cycles_; }
  [[nodiscard]] std::size_t thread_count() const {
    return pool_.thread_count();
  }

 private:
  struct Session {
    std::string patient_id;
    std::string monitor_name;
    int patient_index = 0;
    std::unique_ptr<aps::monitor::Monitor> monitor;
    SessionStats stats;
    bool open = false;
  };

  [[nodiscard]] Session& checked_session(SessionId id);
  [[nodiscard]] const Session& checked_session(SessionId id) const;
  SessionId place_session(Session session);

  EngineConfig config_;
  aps::ThreadPool pool_;
  std::unordered_map<std::string, aps::sim::MonitorFactory> monitors_;
  std::vector<Session> sessions_;
  std::vector<SessionId> free_ids_;
  std::unordered_map<std::string, SessionId> by_patient_;
  std::size_t open_count_ = 0;
  std::uint64_t total_cycles_ = 0;

  // Scratch reused across feed() calls to avoid per-batch allocation churn.
  std::vector<std::uint32_t> order_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> groups_;
  std::vector<aps::monitor::Observation> sorted_obs_;
  std::vector<aps::monitor::Decision> sorted_decisions_;
};

}  // namespace aps::serve
