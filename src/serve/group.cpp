#include "serve/group.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace aps::serve {

EngineGroup::EngineGroup(GroupConfig config) : config_(std::move(config)) {
  if (config_.replicas < 1 ||
      config_.replicas > (SessionId{1} << (32 - kReplicaShift)) - 1) {
    throw std::invalid_argument("EngineGroup: replicas must be in 1..255");
  }
  // One shared registry: the configured one, the global one (telemetry
  // on), or a group-owned one (telemetry off) — never one private
  // registry per replica, which would fracture the group-level series.
  EngineConfig engine_config = config_.engine;
  if (engine_config.registry == nullptr) {
    if (engine_config.telemetry) {
      registry_ = &aps::obs::Registry::global();
    } else {
      owned_registry_ = std::make_unique<aps::obs::Registry>();
      registry_ = owned_registry_.get();
    }
    engine_config.registry = registry_;
  } else {
    registry_ = engine_config.registry;
  }
  // Each replica is the thread-affinity unit: one worker thread drains its
  // queue, so the inner engine pool stays single-threaded unless the
  // caller explicitly asks for more.
  if (engine_config.threads == 0) engine_config.threads = 1;

  backpressure_ = &registry_->counter(
      "serve_group_backpressure_total", {},
      "tick enqueue attempts that found a replica ingest queue full");
  group_feeds_ = &registry_->counter("serve_group_feeds_total", {},
                                     "group-level feed fan-outs");
  admission_ =
      std::make_unique<AdmissionController>(config_.admission, *registry_);

  ring_.reserve(config_.replicas * std::max<std::size_t>(1,
                                                         config_.virtual_nodes));
  replicas_.reserve(config_.replicas);
  for (std::size_t r = 0; r < config_.replicas; ++r) {
    auto replica = std::make_unique<Replica>(config_.queue_capacity);
    replica->engine = std::make_unique<MonitorEngine>(engine_config);
    const std::string label = std::to_string(r);
    replica->queue_depth = &registry_->gauge(
        "serve_replica_queue_depth", {{"replica", label}},
        "ingest queue occupancy at the last enqueue");
    replica->sessions_gauge = &registry_->gauge(
        "serve_replica_sessions", {{"replica", label}},
        "sessions owned by the replica");
    for (std::size_t v = 0; v < std::max<std::size_t>(1, config_.virtual_nodes);
         ++v) {
      const std::string vnode =
          "replica-" + label + "#" + std::to_string(v);
      ring_.emplace_back(ring_hash(vnode), static_cast<std::uint32_t>(r));
    }
    replicas_.push_back(std::move(replica));
  }
  std::sort(ring_.begin(), ring_.end());
  for (auto& replica : replicas_) {
    replica->worker = std::thread([this, r = replica.get()] {
      worker_loop(*r);
    });
  }
}

EngineGroup::~EngineGroup() { shutdown(); }

void EngineGroup::shutdown() {
  std::call_once(shutdown_once_, [this] {
    // Raise stop UNDER the feed lock: an in-flight feed() finishes its
    // whole fan-out + barrier first (so every enqueued job is drained and
    // its completion reported), and any feed that arrives later sees
    // stop_ before enqueuing anything and fails with ShutdownError. By
    // construction the queues are empty when the workers are told to
    // exit — no job is ever abandoned half-delivered.
    {
      const std::lock_guard<std::mutex> lock(feed_mu_);
      stop_.store(true, std::memory_order_release);
    }
    for (auto& replica : replicas_) {
      replica->pushed.fetch_add(1, std::memory_order_release);
      replica->pushed.notify_all();
    }
    for (auto& replica : replicas_) {
      if (replica->worker.joinable()) replica->worker.join();
    }
  });
}

std::size_t EngineGroup::replica_of(std::string_view patient_id) const {
  const std::uint64_t h = ring_hash(patient_id);
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), h,
      [](const std::pair<std::uint64_t, std::uint32_t>& node,
         std::uint64_t key) { return node.first < key; });
  if (it == ring_.end()) it = ring_.begin();  // ring wrap
  return it->second;
}

void EngineGroup::worker_loop(Replica& replica) {
  for (;;) {
    TickJob job;
    if (replica.queue.try_pop(job)) {
      run_job(replica, job);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    // Sleep on the push ticket. Loading the ticket BEFORE the re-check
    // closes the race: a push between try_pop and wait bumps the ticket,
    // so wait(ticket) returns immediately.
    const std::uint64_t ticket = replica.pushed.load(std::memory_order_acquire);
    if (replica.queue.try_pop(job)) {
      run_job(replica, job);
      continue;
    }
    replica.pushed.wait(ticket, std::memory_order_acquire);
  }
}

void EngineGroup::run_job(Replica& replica, const TickJob& job) {
  try {
    FeedMode mode = job.degrade ? FeedMode::kDegraded : FeedMode::kNormal;
    if (mode == FeedMode::kNormal && config_.tick_deadline_us > 0) {
      const auto lag_us = std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - job.enqueued)
                              .count();
      if (lag_us > static_cast<long long>(config_.tick_deadline_us)) {
        mode = FeedMode::kDegraded;
      }
    }
    const std::size_t n = job.end - job.begin;
    replica.engine->feed(
        std::span<const SessionId>(replica.local_sessions)
            .subspan(job.begin, n),
        std::span<const aps::monitor::Observation>(replica.local_obs)
            .subspan(job.begin, n),
        std::span<aps::monitor::Decision>(replica.local_decisions)
            .subspan(job.begin, n),
        mode);
  } catch (...) {
    // Jobs for one replica run serially on its worker, so plain writes to
    // replica.error never race; the first failure wins is fine (feed
    // rethrows one).
    if (replica.error == nullptr) replica.error = std::current_exception();
  }
  job.pending->fetch_sub(1, std::memory_order_release);
  job.pending->notify_one();
}

void EngineGroup::register_monitor(const std::string& name,
                                   aps::sim::MonitorFactory factory,
                                   int cohort) {
  for (auto& replica : replicas_) {
    replica->engine->register_monitor(name, factory, cohort);
  }
}

void EngineGroup::register_bundle(const aps::core::ArtifactBundle& bundle) {
  for (auto& replica : replicas_) replica->engine->register_bundle(bundle);
}

void EngineGroup::register_bundle_file(const std::string& path) {
  for (auto& replica : replicas_) replica->engine->register_bundle_file(path);
}

std::vector<std::string> EngineGroup::registered_monitors() const {
  return replicas_.front()->engine->registered_monitors();
}

std::uint64_t EngineGroup::generation() const {
  return replicas_.front()->engine->generation();
}

EngineGroup::Replica& EngineGroup::checked_replica(SessionId id) const {
  const std::uint32_t r = replica_of_session(id);
  if (r >= replicas_.size()) {
    throw std::out_of_range("session id " + std::to_string(id) +
                            " names replica " + std::to_string(r) +
                            " of a " + std::to_string(replicas_.size()) +
                            "-replica group");
  }
  return *replicas_[r];
}

void EngineGroup::record_tenant(Replica& replica, SessionId local,
                                std::string_view patient_id) {
  if (!admission_->enabled()) return;
  const std::uint32_t tenant = admission_->tenant_index(tenant_of(patient_id));
  const std::lock_guard<std::mutex> lock(tenant_mu_);
  if (replica.tenant_of_local.size() <= local) {
    replica.tenant_of_local.resize(local + 1, 0);
  }
  replica.tenant_of_local[local] = tenant;
}

SessionId EngineGroup::open_session(const std::string& patient_id,
                                    const std::string& monitor_name,
                                    int patient_index) {
  if (!admission_->admit_open(tenant_of(patient_id))) {
    throw ShedError(RejectReason::kOverloadOpen,
                    admission_->config().retry_after_ms,
                    "open rejected: serving plane is shedding load");
  }
  const std::size_t r = replica_of(patient_id);
  Replica& replica = *replicas_[r];
  const SessionId local =
      replica.engine->open_session(patient_id, monitor_name, patient_index);
  if (local > kLocalMask) {
    replica.engine->close_session(local);
    throw std::length_error("replica " + std::to_string(r) +
                            " exhausted its 2^24 session-id space");
  }
  record_tenant(replica, local, patient_id);
  replica.sessions_gauge->set(
      static_cast<double>(replica.engine->session_count()));
  return (static_cast<SessionId>(r) << kReplicaShift) | local;
}

void EngineGroup::close_session(SessionId id) {
  Replica& replica = checked_replica(id);
  replica.engine->close_session(id & kLocalMask);
  replica.sessions_gauge->set(
      static_cast<double>(replica.engine->session_count()));
}

std::optional<SessionId> EngineGroup::find_session(
    const std::string& patient_id) const {
  const std::size_t r = replica_of(patient_id);
  const auto local = replicas_[r]->engine->find_session(patient_id);
  if (!local) return std::nullopt;
  return (static_cast<SessionId>(r) << kReplicaShift) | *local;
}

std::size_t EngineGroup::session_count() const {
  std::size_t count = 0;
  for (const auto& replica : replicas_) {
    count += replica->engine->session_count();
  }
  return count;
}

void EngineGroup::feed(std::span<const SessionInput> inputs,
                       std::span<aps::monitor::Decision> decisions) {
  feed(inputs, decisions, {});
}

void EngineGroup::feed(std::span<const SessionInput> inputs,
                       std::span<aps::monitor::Decision> decisions,
                       std::span<TickOutcome> outcomes) {
  if (decisions.size() != inputs.size()) {
    throw std::invalid_argument(
        "feed: decisions span size " + std::to_string(decisions.size()) +
        " does not match inputs size " + std::to_string(inputs.size()));
  }
  if (!outcomes.empty() && outcomes.size() != inputs.size()) {
    throw std::invalid_argument(
        "feed: outcomes span size " + std::to_string(outcomes.size()) +
        " does not match inputs size " + std::to_string(inputs.size()));
  }
  if (inputs.empty()) return;
  const std::lock_guard<std::mutex> lock(feed_mu_);
  if (stop_.load(std::memory_order_acquire)) throw ShutdownError();
  group_feeds_->add(1);
  const auto tick_start = std::chrono::steady_clock::now();
  for (auto& outcome : outcomes) outcome = TickOutcome{};

  // Admission ladder: the state read once here governs the whole batch.
  // kDegrade serves everything FeedMode::kDegraded; kShed additionally
  // drops inputs of over-quota tenants (never in-quota ones) before any
  // of them reach a queue.
  const OverloadState adm_state =
      admission_->enabled() ? admission_->state() : OverloadState::kHealthy;
  feed_shed_.assign(inputs.size(), 0);
  if (adm_state == OverloadState::kShed) {
    feed_tenants_.resize(inputs.size());
    {
      const std::lock_guard<std::mutex> tlock(tenant_mu_);
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        const Replica& replica = checked_replica(inputs[i].session);
        const SessionId local = inputs[i].session & kLocalMask;
        feed_tenants_[i] = local < replica.tenant_of_local.size()
                               ? replica.tenant_of_local[local]
                               : 0;
      }
    }
    // Bulk-charge each tenant's bucket once per batch, then grant serves
    // in batch order so a partially-admitted tenant keeps its earliest
    // ticks (per-session streams stay prefix-consistent).
    std::unordered_map<std::uint32_t, std::size_t> grant;
    for (const std::uint32_t t : feed_tenants_) ++grant[t];
    for (auto& [tenant, count] : grant) {
      count = admission_->admit_ticks(tenant, count);
    }
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      std::size_t& remaining = grant[feed_tenants_[i]];
      if (remaining > 0) {
        --remaining;
        continue;
      }
      feed_shed_[i] = 1;
      decisions[i] = aps::monitor::Decision{};
      if (!outcomes.empty()) {
        outcomes[i].reason = RejectReason::kOverQuotaTick;
      }
    }
  }

  // Partition admitted inputs by owning replica, preserving batch order
  // within each partition (session input order = batch order, exactly
  // like a single engine). Replica ids are validated before anything is
  // enqueued.
  for (auto& replica : replicas_) {
    replica->local_sessions.clear();
    replica->local_obs.clear();
    replica->global_index.clear();
    replica->error = nullptr;
  }
  for (std::uint32_t i = 0; i < inputs.size(); ++i) {
    Replica& replica = checked_replica(inputs[i].session);
    if (feed_shed_[i] != 0) continue;
    replica.local_sessions.push_back(inputs[i].session & kLocalMask);
    replica.local_obs.push_back(inputs[i].obs);
    replica.global_index.push_back(i);
  }

  // One job per replica by default; with max_ticks_per_job the partition
  // is chunked so a slow replica's queue can genuinely fill — the
  // occupancy fraction below is the state machine's queue signal.
  const std::size_t chunk = config_.max_ticks_per_job;
  std::atomic<std::size_t> pending{0};
  std::size_t total_jobs = 0;
  for (const auto& replica : replicas_) {
    const std::size_t n = replica->local_sessions.size();
    if (n == 0) continue;
    total_jobs += chunk == 0 ? 1 : (n + chunk - 1) / chunk;
  }
  pending.store(total_jobs, std::memory_order_relaxed);

  const bool degrade_all = adm_state != OverloadState::kHealthy;
  double worst_frac = 0.0;
  for (auto& replica : replicas_) {
    const std::size_t n = replica->local_sessions.size();
    if (n == 0) continue;
    replica->local_decisions.resize(n);
    const std::size_t step = chunk == 0 ? n : chunk;
    for (std::size_t begin = 0; begin < n; begin += step) {
      TickJob job{&pending, std::chrono::steady_clock::now(), begin,
                  std::min(begin + step, n), degrade_all};
      // Bounded queue: a full queue is explicit backpressure — count it
      // and yield to the (busy) workers rather than growing memory.
      while (!replica->queue.try_push(job)) {
        backpressure_->add(1);
        worst_frac = 1.0;
        std::this_thread::yield();
      }
      const auto depth = replica->queue.size_approx();
      worst_frac = std::max(worst_frac,
                            static_cast<double>(depth) /
                                static_cast<double>(replica->queue.capacity()));
      replica->queue_depth->set(static_cast<double>(depth));
      replica->pushed.fetch_add(1, std::memory_order_release);
      replica->pushed.notify_one();
    }
  }

  // Barrier: every job reports completion through `pending`.
  for (std::size_t p = pending.load(std::memory_order_acquire); p != 0;
       p = pending.load(std::memory_order_acquire)) {
    pending.wait(p, std::memory_order_acquire);
  }

  for (auto& replica : replicas_) {
    if (replica->error != nullptr) std::rethrow_exception(replica->error);
  }
  // Deterministic merge: each decision lands at its input index, so the
  // result is independent of replica count and worker scheduling.
  for (const auto& replica : replicas_) {
    for (std::size_t j = 0; j < replica->global_index.size(); ++j) {
      decisions[replica->global_index[j]] = replica->local_decisions[j];
    }
  }

  if (admission_->enabled()) {
    const double tick_us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - tick_start)
            .count();
    admission_->observe_tick(worst_frac, tick_us);
  }
}

std::vector<aps::monitor::Decision> EngineGroup::feed(
    std::span<const SessionInput> inputs) {
  std::vector<aps::monitor::Decision> decisions(inputs.size());
  feed(inputs, decisions);
  return decisions;
}

aps::monitor::Decision EngineGroup::feed_one(
    SessionId id, const aps::monitor::Observation& obs) {
  return checked_replica(id).engine->feed_one(id & kLocalMask, obs);
}

void EngineGroup::reset_session(SessionId id) {
  checked_replica(id).engine->reset_session(id & kLocalMask);
}

SessionSnapshot EngineGroup::snapshot(SessionId id) const {
  return checked_replica(id).engine->snapshot(id & kLocalMask);
}

SessionId EngineGroup::restore(const SessionSnapshot& snap) {
  const std::size_t r = replica_of(snap.patient_id);
  Replica& replica = *replicas_[r];
  const SessionId local = replica.engine->restore(snap);
  if (local > kLocalMask) {
    replica.engine->close_session(local);
    throw std::length_error("replica " + std::to_string(r) +
                            " exhausted its 2^24 session-id space");
  }
  record_tenant(replica, local, snap.patient_id);
  replica.sessions_gauge->set(
      static_cast<double>(replica.engine->session_count()));
  return (static_cast<SessionId>(r) << kReplicaShift) | local;
}

SessionStats EngineGroup::stats(SessionId id) const {
  return checked_replica(id).engine->stats(id & kLocalMask);
}

std::uint64_t EngineGroup::total_cycles() const {
  std::uint64_t cycles = 0;
  for (const auto& replica : replicas_) {
    cycles += replica->engine->total_cycles();
  }
  return cycles;
}

LatencySummary EngineGroup::latency() const {
  // Replica 0's percentiles already read the SHARED serve_tick_latency_us
  // series (one registry across the group), so only the exact totals and
  // the per-shard union need merging.
  LatencySummary summary = replicas_.front()->engine->latency();
  std::unordered_set<std::string> seen;
  for (const auto& shard : summary.shards) seen.insert(shard.shard);
  for (std::size_t r = 1; r < replicas_.size(); ++r) {
    const LatencySummary part = replicas_[r]->engine->latency();
    summary.ticks += part.ticks;
    summary.cycles += part.cycles;
    summary.degraded_ticks += part.degraded_ticks;
    summary.seconds += part.seconds;
    for (const auto& shard : part.shards) {
      if (seen.insert(shard.shard).second) summary.shards.push_back(shard);
    }
  }
  return summary;
}

void EngineGroup::reset_latency() {
  for (auto& replica : replicas_) replica->engine->reset_latency();
}

}  // namespace aps::serve
